#!/usr/bin/env python3
"""Quickstart: build a diameter-two topology, route, simulate, measure.

Builds the three topologies the paper evaluates (at a laptop-friendly
scale), prints their cost/scale metrics, then runs one uniform-traffic
simulation per topology with minimal routing and reports throughput and
latency -- the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from repro.analysis import cost_metrics
from repro.experiments.report import ascii_table
from repro.routing import MinimalRouting
from repro.sim import Network
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import UniformRandom


def main() -> None:
    # The three cost-effective diameter-two designs (reduced scale;
    # swap in SlimFly(13), MLFM(15), OFT(12) for the paper's sizes).
    topologies = [SlimFly(q=5), MLFM(h=5), OFT(k=4)]

    print("== Topology metrics (paper Sec. 2) ==")
    rows = []
    for topo in topologies:
        m = cost_metrics(topo, with_diameter=True)
        rows.append(
            [m.topology, m.num_nodes, m.num_routers, m.max_radix,
             m.ports_per_node, m.links_per_node, m.diameter]
        )
    print(ascii_table(
        ["topology", "N", "R", "radix", "ports/N", "links/N", "diameter"], rows
    ))

    print("\n== Uniform random traffic at 70% load, minimal routing ==")
    rows = []
    for topo in topologies:
        net = Network(topo, MinimalRouting(topo, seed=1))
        stats = net.run_synthetic(
            UniformRandom(topo.num_nodes),
            load=0.70,
            warmup_ns=2_000,
            measure_ns=8_000,
            seed=42,
        )
        rows.append(
            [topo.name, f"{stats.throughput:.3f}", f"{stats.mean_latency_ns:.0f} ns",
             stats.ejected_packets]
        )
    print(ascii_table(["topology", "throughput", "mean latency", "packets"], rows))
    print("\nAll three sustain the offered load with sub-microsecond latency --")
    print("the paper's core claim for these cost-effective designs.")


if __name__ == "__main__":
    main()
