#!/usr/bin/env python3
"""Submit a load-sweep campaign to a running ``repro serve`` instance.

The service accepts the same declarative :class:`repro.orchestrate.Job`
specs the CLI builds internally; a campaign is just a client-side grid
expanded into a JSON list.  This script submits one, follows the live
NDJSON event stream of the first job, polls the rest to completion and
prints a throughput/latency table.  Identical points already computed —
by anyone, ever — come back instantly from the content-addressed cache
(watch the ``cached`` column on a second run).

Start a server, then run the client:

    python -m repro serve --port 8000 --workers 2 &
    python examples/submit_campaign.py --base http://127.0.0.1:8000 \\
        --topology sf:q=5 --loads 0.2,0.4,0.6 --tenant demo

Stdlib only — this file doubles as the reference for writing your own
client.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def api(base: str, path: str, payload=None, tenant: str = "demo"):
    """One JSON request against the service; raises on HTTP errors."""
    req = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json", "X-Tenant": tenant},
        method="POST" if payload is not None else "GET",
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return json.load(resp)


def stream_events(base: str, job_id: str) -> None:
    """Print the live NDJSON progress stream for one job."""
    with urllib.request.urlopen(base + f"/v1/jobs/{job_id}/events", timeout=300) as resp:
        for raw in resp:
            event = json.loads(raw)
            kind = event.get("type")
            if kind in ("record", "job_start", "job_done", "record_done"):
                print(f"  [{job_id}] {kind}: "
                      + ", ".join(f"{k}={v}" for k, v in sorted(event.items())
                                  if k not in ("type", "ts")))
            if kind == "record_done":
                break


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--base", default="http://127.0.0.1:8000")
    parser.add_argument("--topology", default="sf:q=5")
    parser.add_argument("--routing", default="min")
    parser.add_argument("--pattern", default="uniform")
    parser.add_argument("--loads", default="0.2,0.4,0.6")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--warmup", type=float, default=300.0)
    parser.add_argument("--measure", type=float, default=1200.0)
    parser.add_argument("--tenant", default="demo")
    args = parser.parse_args()

    loads = [float(x) for x in args.loads.split(",")]
    campaign = [
        {
            "kind": "sweep",
            "topology": args.topology,
            "routing": args.routing,
            "pattern": args.pattern,
            "load": load,
            "seed": args.seed,
            "warmup_ns": args.warmup,
            "measure_ns": args.measure,
            "tag": f"example/{args.topology}",
        }
        for load in loads
    ]

    try:
        accepted = api(args.base, "/v1/jobs", campaign, tenant=args.tenant)
    except urllib.error.URLError as exc:
        print(f"cannot reach {args.base}: {exc}", file=sys.stderr)
        print("start a server first:  python -m repro serve --port 8000",
              file=sys.stderr)
        return 1
    print(f"accepted {accepted['accepted']}/{len(campaign)} jobs "
          f"(rejected {accepted['rejected']} over quota)")

    jobs = [item for item in accepted["jobs"] if "id" in item]
    if jobs:
        print(f"streaming events for {jobs[0]['id']}:")
        stream_events(args.base, jobs[0]["id"])

    rows = []
    for item in jobs:
        while True:
            record = api(args.base, f"/v1/jobs/{item['id']}", tenant=args.tenant)
            if record["status"] in ("done", "failed"):
                break
            time.sleep(0.2)
        if record["status"] == "failed":
            rows.append((item["id"], "failed", record.get("error"), "", ""))
            continue
        point = record["result"]["payload"]
        rows.append(
            (item["id"],
             f"{point['load']:.2f}",
             f"{point['throughput']:.3f}",
             f"{point['mean_latency_ns']:.0f} ns",
             "cache" if record["cached"] else
             "coalesced" if record["coalesced"] else "ran")
        )

    print(f"\n{'job':<10} {'load':>5} {'thrpt':>6} {'latency':>10}  source")
    for row in rows:
        print(f"{row[0]:<10} {row[1]:>5} {row[2]:>6} {row[3]:>10}  {row[4]}")

    stats = api(args.base, "/v1/stats", tenant=args.tenant)
    m = stats["metrics"]
    print(f"\nserver totals: {m['submitted']} submitted, "
          f"{m['cache_hits']} cache hits, {m['coalesced']} coalesced, "
          f"{m['misses']} executed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
