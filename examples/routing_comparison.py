#!/usr/bin/env python3
"""Routing-strategy comparison under benign and adversarial traffic.

Reproduces the heart of the paper's Sec. 4.3 story on one topology:

- minimal routing is ideal for uniform traffic but collapses to 1/h on
  the MLFM's worst-case shift pattern;
- indirect random (Valiant) routing halves uniform throughput but
  rescues the worst case;
- UGAL-L adaptive routing gets the best of both, per packet.

Run:  python examples/routing_comparison.py [h]
"""

import sys

from repro.experiments.report import ascii_table
from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting
from repro.sim import Network
from repro.topology import MLFM
from repro.traffic import UniformRandom, worst_case_traffic


def measure(topo, routing, pattern, load):
    net = Network(topo, routing)
    stats = net.run_synthetic(
        pattern, load=load, warmup_ns=2_000, measure_ns=8_000, seed=11
    )
    return stats.throughput, stats.mean_latency_ns


def main() -> None:
    h = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    topo = MLFM(h)
    print(f"Topology: {topo.name}  (N={topo.num_nodes}, R={topo.num_routers})")
    print(f"Worst-case analytic saturation under minimal routing: 1/h = {1 / h:.3f}\n")

    routings = {
        "MIN": lambda: MinimalRouting(topo, seed=1),
        "INR": lambda: IndirectRandomRouting(topo, seed=1),
        "UGAL-A": lambda: UGALRouting(topo, c=2.0, num_indirect=5, seed=1),
        "UGAL-ATh": lambda: UGALRouting(topo, c=2.0, num_indirect=5, threshold=0.10, seed=1),
    }
    patterns = {
        "uniform @ 0.80": (lambda: UniformRandom(topo.num_nodes), 0.80),
        "worst-case @ 0.40": (lambda: worst_case_traffic(topo), 0.40),
    }

    rows = []
    for rname, rfactory in routings.items():
        for pname, (pfactory, load) in patterns.items():
            thr, lat = measure(topo, rfactory(), pfactory(), load)
            rows.append([rname, pname, f"{thr:.3f}", f"{lat:.0f} ns"])
    print(ascii_table(["routing", "pattern", "throughput", "mean latency"], rows))

    print("""
Reading the table:
- MIN sustains 0.80 uniform but only ~1/h of the worst case.
- INR sustains ~0.40 on BOTH (it makes every pattern look uniform, at
  half bandwidth and double latency).
- UGAL variants keep MIN's uniform performance and INR's worst-case
  rescue; the threshold variant additionally keeps low-load uniform
  packets on minimal paths (compare latencies).""")


if __name__ == "__main__":
    main()
