#!/usr/bin/env python3
"""Topology explorer: scalability, bisection and path diversity.

Regenerates the paper's analytic comparisons (Sec. 2.3, Figs. 3-4) for
any radix budget:

- feasible (radix, N) scaling points per family,
- the best configuration per family at the budget,
- approximate bisection bandwidth (multilevel partitioner),
- minimal-path diversity statistics.

Run:  python examples/topology_explorer.py [max_radix]
"""

import sys

from repro.analysis import (
    bisection_bandwidth,
    nodes_at_radix,
    path_diversity_stats,
    scalability_points,
    spectral_stats,
)
from repro.experiments.report import ascii_table
from repro.topology import MLFM, OFT, SlimFly


def main() -> None:
    max_radix = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    print(f"== Scalability at radix budget {max_radix} (Fig. 3) ==")
    rows = []
    for family in ("SF", "SF-ceil", "MLFM", "OFT", "HyperX2D", "FT2", "FT3"):
        points = scalability_points(family, max_radix)
        best = nodes_at_radix(family, max_radix)
        rows.append([family, len(points), best])
    print(ascii_table(["family", "feasible configs", f"best N @ r<={max_radix}"], rows))

    print("\n== Bisection bandwidth (Fig. 4, reduced scale) ==")
    rows = []
    for topo in (SlimFly(7, "floor"), SlimFly(7, "ceil"), MLFM(7), OFT(6)):
        bb = bisection_bandwidth(topo, restarts=6, seed=1)
        rows.append([bb.topology, topo.num_nodes, int(bb.cut_links), f"{bb.per_node:.3f}"])
    print(ascii_table(["topology", "N", "cut links", "bisection b/node"], rows))

    print("\n== Minimal-path diversity (Sec. 2.3.3) ==")
    rows = []
    for topo in (SlimFly(9), MLFM(5), OFT(4)):
        st = path_diversity_stats(topo)
        rows.append(
            [st.topology, st.num_pairs, f"{st.mean:.3f}", st.max,
             f"{st.mean_distance2:.3f}" if st.mean_distance2 else "", st.max_distance2]
        )
    print(ascii_table(
        ["topology", "pairs", "mean", "max", "mean d2", "max d2"], rows
    ))
    print("""
Notes: the MLFM's max diversity is h (same-column pairs), the OFT's is
k (symmetric counterparts), and the SF has only sparse diversity among
distance-2 pairs -- the scalability/diversity trade-off of Sec. 2.3.3.""")

    print("\n== Spectral structure (why uniform traffic flows so well) ==")
    rows = []
    for topo in (SlimFly(7), MLFM(5), OFT(4)):
        s = spectral_stats(topo)
        rows.append(
            [s.topology, f"{s.degree:.1f}", f"{s.lambda2:.3f}", f"{s.spectral_gap:.3f}",
             "yes" if s.is_ramanujan else "no", "yes" if s.bipartite else "no"]
        )
    print(ascii_table(
        ["topology", "degree", "lambda2", "gap", "Ramanujan", "bipartite"], rows
    ))
    print("All three router graphs meet the Ramanujan bound -- optimal "
          "expanders,\nwhich is the structural reason minimal routing "
          "sustains near-full uniform load.")


if __name__ == "__main__":
    main()
