#!/usr/bin/env python3
"""Anatomy of the adversarial worst-case patterns (paper Sec. 4.2, Fig. 5).

For each topology this example:

1. constructs the paper's worst-case permutation,
2. computes the *analytic* per-link loads (static analysis -- no
   simulation) and the implied saturation throughput,
3. verifies the collapse points 1/(2p), 1/h and 1/k,
4. cross-checks one simulated point against the analytic prediction.

Run:  python examples/worst_case_study.py
"""

from repro.analysis import channel_loads_minimal, permutation_flows, saturation_throughput
from repro.experiments.report import ascii_table
from repro.routing import MinimalRouting
from repro.sim import Network
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import worst_case_traffic
from repro.traffic.worstcase import SlimFlyWorstCase


def main() -> None:
    rows = []
    for topo, expected in (
        (SlimFly(5), lambda t: 1.0 / (2 * t.p)),
        (MLFM(5), lambda t: 1.0 / t.h),
        (OFT(4), lambda t: 1.0 / t.k),
    ):
        wc = worst_case_traffic(topo, seed=2)
        loads = channel_loads_minimal(topo, permutation_flows(wc.destinations))
        analytic = saturation_throughput(loads)

        net = Network(topo, MinimalRouting(topo, seed=1))
        stats = net.run_synthetic(wc, load=0.5, warmup_ns=2_000, measure_ns=8_000, seed=3)

        rows.append(
            [topo.name, f"{max(loads.values()):.1f}", f"{expected(topo):.3f}",
             f"{analytic:.3f}", f"{stats.throughput:.3f}"]
        )

        if isinstance(wc, SlimFlyWorstCase):
            print(f"{topo.name}: greedy distance-2 chain(s) of length(s) "
                  f"{[len(c) for c in wc.chains]}")
        else:
            print(f"{topo.name}: node-shift by p = {wc.shift} "
                  f"(all of a router's nodes target the next router)")

    print()
    print(ascii_table(
        ["topology", "max link load", "paper bound", "analytic sat", "simulated thr @0.5"],
        rows,
        title="Worst-case traffic under minimal routing",
    ))
    print("""
The most-loaded link carries 2p (SF) / h (MLFM) / k (OFT) flows, so
minimal routing saturates at the reciprocal -- the paper's 5% / 6.6% /
8.3% figures at its scale.  The simulated column confirms the static
analysis end-to-end.""")


if __name__ == "__main__":
    main()
