#!/usr/bin/env python3
"""Bring your own topology: the full stack on a custom graph.

Everything in this library -- routing, deadlock analysis, static link
loads, the analytic latency model, the simulator -- works on any
:class:`repro.topology.Topology`, not just the paper's designs.  This
example builds a random regular router graph, sizes a VC policy to its
measured diameter, proves the policy deadlock-free, predicts the
uniform-traffic latency analytically, and confirms both by simulation.

Run:  python examples/custom_topology.py [degree] [routers]
"""

import sys

import networkx as nx

from repro.analysis import uniform_latency_model
from repro.experiments.report import ascii_table
from repro.routing import MinimalRouting, build_cdg_minimal
from repro.routing.vc import HopIndexVC
from repro.sim import Network
from repro.topology import Topology, save_topology
from repro.traffic import UniformRandom


def random_regular(degree: int, routers: int, p: int = 2, seed: int = 7) -> Topology:
    """Connected random regular graph with *p* end-nodes per router."""
    for attempt in range(50):
        g = nx.random_regular_graph(degree, routers, seed=seed + attempt)
        if nx.is_connected(g):
            return Topology(
                f"random({degree},{routers})",
                [sorted(g.neighbors(r)) for r in range(routers)],
                [p] * routers,
            )
    raise RuntimeError("could not draw a connected regular graph")


def main() -> None:
    degree = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    routers = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    topo = random_regular(degree, routers)
    diameter = topo.endpoint_diameter()
    print(f"Built {topo.name}: N={topo.num_nodes}, R={topo.num_routers}, "
          f"diameter={diameter}")

    # Size the hop-indexed VC policy to the measured diameter and PROVE
    # deadlock freedom for this instance before simulating.
    policy = HopIndexVC(minimal_vcs=max(2, diameter), indirect_vcs=max(4, 2 * diameter))
    cdg = build_cdg_minimal(topo, policy)
    print(f"CDG: {cdg.num_vertices} resources, {cdg.num_edges} dependencies, "
          f"acyclic={cdg.is_acyclic()}")

    print("\n== Analytic M/D/1 model vs simulation (uniform traffic) ==")
    rows = []
    for load in (0.2, 0.5, 0.8):
        model = uniform_latency_model(topo, load)
        net = Network(topo, MinimalRouting(topo, vc_policy=policy, seed=1))
        stats = net.run_synthetic(
            UniformRandom(topo.num_nodes), load=load,
            warmup_ns=2_000, measure_ns=6_000, seed=5,
        )
        rows.append([
            load, f"{model['total']:.0f} ns", f"{stats.mean_latency_ns:.0f} ns",
            f"{stats.throughput:.3f}",
        ])
    print(ascii_table(["load", "model latency", "simulated latency", "throughput"], rows))

    save_topology(topo, "/tmp/custom_topology.json")
    print("\nTopology serialised to /tmp/custom_topology.json "
          "(reload with repro.topology.load_topology).")


if __name__ == "__main__":
    main()
