#!/usr/bin/env python3
"""Link-failure resilience of the diameter-two designs (extension).

The paper notes (Sec. 2.3.3) that these topologies trade minimal-path
diversity for scalability; this example quantifies the operational
flip side: how connectivity, endpoint diameter and diversity degrade
as random links fail, and how a single failure affects live traffic.

Run:  python examples/fault_tolerance.py
"""

from repro.analysis import fault_resilience
from repro.analysis.faults import degrade, safe_vc_policy
from repro.experiments.report import ascii_table
from repro.routing import MinimalRouting
from repro.sim import Network
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import UniformRandom


def main() -> None:
    print("== Static degradation sweep (random link failures) ==")
    rows = []
    for topo in (SlimFly(5), MLFM(5), OFT(4)):
        for trial in fault_resilience(
            topo, fractions=(0.0, 0.02, 0.05, 0.10), trials=4, seed=1
        ):
            rows.append(
                [topo.name, f"{trial.fraction:.0%}", f"{trial.connected_fraction:.2f}",
                 f"{trial.mean_endpoint_diameter:.2f}", trial.worst_endpoint_diameter,
                 f"{trial.mean_diversity:.2f}"]
            )
    print(ascii_table(
        ["topology", "failed", "connected", "mean ep-diam", "worst ep-diam", "mean divers."],
        rows,
    ))

    print("\n== Live traffic across a single failed link (Slim Fly) ==")
    sf = SlimFly(5)
    victim = next(iter(sf.edges()))
    degraded = degrade(sf, links=[victim])
    rows = []
    for label, topo in (("intact", sf), (f"link {victim} failed", degraded)):
        # Degraded networks can have >2-hop minimal paths; size the VC
        # budget accordingly (safe_vc_policy measures the new diameter).
        net = Network(topo, MinimalRouting(topo, vc_policy=safe_vc_policy(topo), seed=1))
        stats = net.run_synthetic(
            UniformRandom(topo.num_nodes), load=0.6,
            warmup_ns=2_000, measure_ns=6_000, seed=5,
        )
        rows.append([label, f"{stats.throughput:.3f}", f"{stats.mean_latency_ns:.0f} ns"])
    print(ascii_table(["network", "throughput @0.6", "mean latency"], rows))
    print("""
A single failure barely moves uniform-traffic performance (the MMS
graph re-routes around it with 2-hop alternatives), but the static
sweep shows the single-path structure of the SSPTs pushes some pairs
to 3-4 hop routes well before connectivity is lost.""")


if __name__ == "__main__":
    main()
