#!/usr/bin/env python3
"""All-to-all exchange on the three topologies (paper Fig. 13).

Runs one complete A2A exchange (every process sends one message to
every other process, randomized per-node schedule as in optimized MPI
implementations) and reports the effective throughput per node under
minimal, indirect random and adaptive routing.

Run:  python examples/alltoall_exchange.py
"""

from repro.experiments.report import ascii_table
from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting
from repro.sim import Network
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import AllToAll

MESSAGE_BYTES = 512  # scaled-down from the paper's 7.5 KB (see DESIGN.md §4)


def adaptive_for(topo):
    if isinstance(topo, SlimFly):
        return UGALRouting(topo, cost_mode="sf", c_sf=1.0, num_indirect=4, seed=1)
    if isinstance(topo, MLFM):
        return UGALRouting(topo, c=4.0, num_indirect=5, seed=1)
    return UGALRouting(topo, c=2.0, num_indirect=1, seed=1)


def main() -> None:
    rows = []
    for topo in (SlimFly(5), MLFM(5), OFT(4)):
        exchange = AllToAll(topo.num_nodes, message_bytes=MESSAGE_BYTES, seed=7)
        for rname, routing in (
            ("MIN", MinimalRouting(topo, seed=1)),
            ("INR", IndirectRandomRouting(topo, seed=1)),
            ("ADAPTIVE", adaptive_for(topo)),
        ):
            net = Network(topo, routing)
            res = net.run_exchange(exchange)
            rows.append(
                [topo.name, rname,
                 f"{res['effective_throughput']:.3f}",
                 f"{res['completion_ns'] / 1000:.1f} us",
                 int(res["packets"])]
            )
        print(f"finished {topo.name}")
    print()
    print(ascii_table(
        ["topology", "routing", "effective throughput", "completion", "packets"], rows,
        title=f"One all-to-all exchange, {MESSAGE_BYTES} B messages (Fig. 13 shape)",
    ))
    print("\nExpected shape: MIN and ADAPTIVE high and similar; INR about half")
    print("(indirect routes double every path, exactly as for uniform traffic).")


if __name__ == "__main__":
    main()
