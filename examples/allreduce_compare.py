#!/usr/bin/env python3
"""All-reduce completion time on the three topologies (closed-loop).

Drives the two standard all-reduce schedules -- the bandwidth-optimal
ring (reduce-scatter + all-gather) and the latency-optimal recursive
doubling -- as dependency DAGs through the flit-level simulator on
Slim Fly, MLFM and OFT, under minimal and adaptive routing.  Unlike
the open-loop synthetic sweeps, injection here is gated by delivery:
a rank sends only once the chunks it depends on have arrived, so the
reported number is *schedule completion time*, the quantity that
actually separates topologies on real applications.

Run:  python examples/allreduce_compare.py
"""

from repro.experiments.report import ascii_table
from repro.routing import MinimalRouting, UGALRouting
from repro.sim import Network
from repro.topology import MLFM, OFT, SlimFly
from repro.workload import recursive_doubling_allreduce, ring_allreduce

RANKS = 32  # power of two so both schedules apply unchanged
MESSAGE_BYTES = 64 * 1024  # the full vector being reduced


def adaptive_for(topo):
    if isinstance(topo, SlimFly):
        return UGALRouting(topo, cost_mode="sf", c_sf=1.0, num_indirect=4, seed=1)
    if isinstance(topo, MLFM):
        return UGALRouting(topo, c=4.0, num_indirect=5, seed=1)
    return UGALRouting(topo, c=2.0, num_indirect=1, seed=1)


def main() -> None:
    schedules = (
        ("ring", ring_allreduce(RANKS, MESSAGE_BYTES)),
        ("recursive-doubling", recursive_doubling_allreduce(RANKS, MESSAGE_BYTES)),
    )
    rows = []
    for topo in (SlimFly(5), MLFM(5), OFT(4)):
        for rname, make_routing in (
            ("MIN", lambda t: MinimalRouting(t, seed=1)),
            ("ADAPTIVE", adaptive_for),
        ):
            for sname, workload in schedules:
                net = Network(topo, make_routing(topo))
                res = net.run_workload(workload)
                rows.append(
                    [topo.name, rname, sname,
                     f"{res['completion_ns'] / 1000:.1f} us",
                     f"{res['critical_path_ideal_ns'] / 1000:.1f} us",
                     f"{res['contention_stretch']:.2f}",
                     f"{res['link_load_skew']:.2f}"]
                )
        print(f"finished {topo.name}")
    print()
    print(ascii_table(
        ["topology", "routing", "schedule", "completion",
         "ideal (no contention)", "stretch", "link skew"], rows,
        title=(
            f"All-reduce of {MESSAGE_BYTES // 1024} KiB across {RANKS} ranks "
            f"(closed-loop schedule completion)"
        ),
    ))
    print(
        "\nReading the table: 'stretch' is completion time over the DAG\n"
        "critical path's zero-contention bound -- pure queueing/contention\n"
        "overhead.  At this vector size the bandwidth-optimal ring wins:\n"
        "it moves 1/R of the vector per step, while recursive doubling's\n"
        "log2(R) rounds each exchange the full vector and contend for the\n"
        "same links (watch its stretch under MIN routing).  Shrink\n"
        "MESSAGE_BYTES to ~1 KiB and the ranking flips -- the ring's\n"
        "2(R-1)-deep dependency chain becomes pure latency."
    )


if __name__ == "__main__":
    main()
