"""Collective-workload engine benchmark.

Drives each registered schedule once on the tiny Slim Fly under
minimal routing and records, per schedule type, the simulated
completion time, the DAG critical-path bound, the contention stretch,
and the *driver overhead* -- wall-clock seconds and simulator events
spent per delivered packet -- to
``benchmarks/out/workload_summary.json``.  This tracks both the
physics (does a schedule suddenly complete slower?) and the engine
cost (did the closed-loop release machinery get more expensive?).
"""

from __future__ import annotations

import json

from repro.experiments.configs import SCALES
from repro.routing import MinimalRouting
from repro.sim import Network
from repro.topology import SlimFly
from repro.workload import build_workload

#: message_bytes per schedule, sized so every schedule moves real data
#: but the whole benchmark stays in unit-test time at tiny scale.
SCHEDULES = {
    "ring-allreduce": 16_384,
    "rd-allreduce": 8_192,
    "allgather": 4_096,
    "halo3d": 8_192,
    "phased-a2a": 512,
}


def test_bench_workload_schedules(scale, report_dir):
    q = SCALES[scale]["q"]
    topo = SlimFly(q)

    per_schedule = {}
    for name, message_bytes in SCHEDULES.items():
        workload = build_workload(name, topo.num_nodes, message_bytes)
        net = Network(topo, MinimalRouting(topo, seed=1))
        res = net.run_workload(workload)

        assert res["messages"] == workload.num_messages
        assert res["contention_stretch"] >= 1.0

        wall_s = res["driver_wall_s"]
        per_schedule[name] = {
            "message_bytes": message_bytes,
            "messages": res["messages"],
            "packets": res["packets"],
            "completion_ns": res["completion_ns"],
            "critical_path_ideal_ns": res["critical_path_ideal_ns"],
            "contention_stretch": res["contention_stretch"],
            "link_load_skew": res["link_load_skew"],
            "effective_throughput": res["effective_throughput"],
            # Driver overhead: how much host time / how many events the
            # closed-loop machinery spends moving one packet.
            "driver_wall_s": wall_s,
            "events": res["events"],
            "events_per_packet": res["events"] / res["packets"],
            "wall_us_per_packet": 1e6 * wall_s / res["packets"],
            "sim_events_per_second": res["events"] / wall_s if wall_s > 0 else None,
        }

    summary = {
        "scale": scale,
        "topology": topo.name,
        "num_nodes": topo.num_nodes,
        "schedules": per_schedule,
    }
    out = report_dir / "workload_summary.json"
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    # Sanity of the recorded overhead numbers themselves.
    for name, row in per_schedule.items():
        assert row["packets"] > 0, name
        assert row["events_per_packet"] > 1.0, name
