"""Figs. 7/8 benchmarks: SF adaptive routing parameter sensitivity.

Fig. 7 (SF-A): throughput matches MIN under uniform and clearly beats
MIN's 1/(2p) collapse under worst-case; low cSF inflates uniform
latency (indirect paths chosen too eagerly).

Fig. 8 (SF-ATh, T=10%): same throughput, but the threshold suppresses
the high-load uniform latency creep of the generic algorithm.
"""

from repro.experiments import fig7_data, fig8_data
from repro.experiments.configs import SCALES

UNI = (0.5, 0.8)
WC = (0.1, 0.3)
NI = (1, 4)
CSF = (0.5, 2.0)


def _series(rows):
    """(param, pattern) -> {load: (throughput, latency, indirect_frac)}."""
    out = {}
    for _cfg, param, pattern, load, thr, lat, ifrac in rows:
        out.setdefault((param, pattern), {})[load] = (thr, lat, ifrac)
    return out


def test_fig7_sf_a(benchmark, save_report, scale):
    data = benchmark.pedantic(
        fig7_data,
        kwargs=dict(scale=scale, uni_loads=UNI, wc_loads=WC, ni_values=NI, csf_values=CSF),
        rounds=1,
        iterations=1,
    )
    q = SCALES[scale]["q"]
    from repro.topology import SlimFly

    p = SlimFly(q, "floor").p
    wc_collapse = 1.0 / (2 * p)

    a = _series(data["a"]["rows"])
    for ni in NI:
        key = (f"num_indirect={ni}", "UNI")
        assert a[key][0.5][0] >= 0.45  # sustains uniform load
        key_wc = (f"num_indirect={ni}", "WC")
        assert a[key_wc][0.3][0] > 1.5 * wc_collapse  # rescues the WC

    # Fig. 7b: lower cSF -> higher uniform latency (eager indirect).
    b = _series(data["b"]["rows"])
    lat_low_c = b[("c_sf=0.5", "UNI")][0.8][1]
    lat_high_c = b[("c_sf=2", "UNI")][0.8][1]
    assert lat_low_c > lat_high_c * 0.95  # low c never better, usually worse

    save_report("fig7", data["report"])


def test_fig8_sf_ath(benchmark, save_report, scale):
    data = benchmark.pedantic(
        fig8_data,
        kwargs=dict(scale=scale, uni_loads=UNI, wc_loads=WC, ni_values=NI, csf_values=CSF),
        rounds=1,
        iterations=1,
    )
    a = _series(data["a"]["rows"])
    # The threshold keeps packets minimal under moderate uniform load.
    for ni in NI:
        ifrac = a[(f"num_indirect={ni}", "UNI")][0.5][2]
        assert ifrac < 0.10, ifrac
    # Worst-case still rescued above the collapse point.
    for ni in NI:
        assert a[(f"num_indirect={ni}", "WC")][0.3][0] > 0.2
    save_report("fig8", data["report"])
