"""Benchmark harness configuration.

Each benchmark regenerates one paper artefact (table or figure) at the
``tiny`` reduced scale by default (DESIGN.md §4) and writes the rendered
ASCII report to ``benchmarks/out/<name>.txt`` so the regenerated series
can be inspected and diffed against EXPERIMENTS.md.

Set ``REPRO_BENCH_SCALE=small`` (or ``paper``, hours of runtime) to
regenerate at larger scales.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def save_report(report_dir):
    """Callable fixture: persist a figure's rendered report."""

    def _save(name: str, report: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(report + "\n")

    return _save


@pytest.fixture()
def save_csv(report_dir):
    """Callable fixture: persist a figure's raw series as CSV."""
    from repro.experiments.export import write_csv

    def _save(name: str, columns, rows) -> None:
        write_csv(report_dir / f"{name}.csv", columns, rows)

    return _save
