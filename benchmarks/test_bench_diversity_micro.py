"""Sec. 2.3.3 diversity bench plus core microbenchmarks.

The microbenchmarks time the hot building blocks (event kernel,
topology construction, route computation, static analysis) so
performance regressions in the simulator substrate are visible.
"""

from repro.analysis import channel_loads_minimal, uniform_flows
from repro.experiments import diversity_data
from repro.routing import MinimalRouting, UGALRouting
from repro.sim import Network
from repro.sim.engine import Engine
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import UniformRandom


def test_diversity(benchmark, save_report, scale):
    """Sec. 2.3.3: path diversity statistics for the four configs."""
    data = benchmark.pedantic(diversity_data, args=(scale,), rounds=1, iterations=1)
    by_name = {s.topology: s for s in data["stats"]}
    mlfm = next(s for n, s in by_name.items() if n.startswith("MLFM"))
    oft = next(s for n, s in by_name.items() if n.startswith("OFT"))
    # MLFM column pairs have h paths; OFT symmetric pairs have k.
    assert mlfm.max == max(int(x) for x in mlfm.histogram)
    assert oft.max in oft.histogram
    sf = next(s for n, s in by_name.items() if n.startswith("SF"))
    assert sf.mean_distance2 is not None and sf.mean_distance2 < 1.5
    save_report("diversity", data["report"])


def test_micro_engine_throughput(benchmark):
    """Event-kernel speed: schedule+run 20k no-op events."""

    def run_events():
        e = Engine()
        noop = lambda: None
        for i in range(20_000):
            e.schedule(float(i % 97), noop)
        e.run()
        return e.events_executed

    assert benchmark(run_events) == 20_000


def test_micro_slimfly_construction(benchmark):
    """MMS graph construction cost (q = 13, the paper's config)."""
    sf = benchmark(SlimFly, 13)
    assert sf.num_nodes == 3042


def test_micro_oft_construction(benchmark):
    oft = benchmark(OFT, 12)
    assert oft.num_nodes == 3192


def test_micro_mlfm_construction(benchmark):
    mlfm = benchmark(MLFM, 15)
    assert mlfm.num_nodes == 3600


def test_micro_minimal_route_lookup(benchmark):
    """Cached minimal-route computation over many pairs."""
    sf = SlimFly(7)
    mr = MinimalRouting(sf, seed=1)

    def lookup():
        total = 0
        for d in range(1, sf.num_routers):
            total += mr.route(0, d).num_hops
        return total

    assert benchmark(lookup) > 0


def test_micro_ugal_route_decision(benchmark):
    """UGAL decision cost (the per-packet injection-time work)."""
    sf = SlimFly(7)
    net = Network(sf, MinimalRouting(sf, seed=1))  # provides congestion iface
    ug = UGALRouting(sf, cost_mode="sf", num_indirect=4, seed=1)

    def decide():
        for d in range(1, 200):
            ug.route(0, d % sf.num_routers or 1, net)

    benchmark(decide)


def test_micro_linkload_uniform(benchmark):
    """Static uniform link-load analysis on the SF q=7."""
    sf = SlimFly(7)
    loads = benchmark.pedantic(
        channel_loads_minimal, args=(sf, list(uniform_flows(sf))), rounds=1, iterations=1
    )
    assert loads


def test_micro_simulation_rate(benchmark):
    """End-to-end simulated events per wall-clock second (tiny SF)."""
    sf = SlimFly(5)

    def simulate():
        net = Network(sf, MinimalRouting(sf, seed=1))
        net.run_synthetic(
            UniformRandom(sf.num_nodes), load=0.5, warmup_ns=500, measure_ns=2000, seed=3
        )
        return net.engine.events_executed

    assert benchmark.pedantic(simulate, rounds=1, iterations=1) > 10_000
