"""Tail-effects benchmark (Sec. 4.4's steady-state vs effective claim).

The paper: "the effective throughput is almost identical to the steady
state throughput" for the A2A exchange, indicating negligible tail
effects.  At reduced scale the tail (ramp + straggler) is relatively
larger, so the asserted bound is looser than the paper's near-1.0; at
``small``/``paper`` scale the ratio climbs toward 1.
"""

from repro.experiments import tail_effects_data


def test_tail_effects(benchmark, save_report, scale):
    data = benchmark.pedantic(tail_effects_data, args=(scale,), rounds=1, iterations=1)
    floor = {"tiny": 0.70, "small": 0.75, "paper": 0.85}[scale]
    for key, ratio in data["ratios"].items():
        assert ratio >= floor, (key, data["ratios"])
        assert ratio <= 1.1, (key, data["ratios"])  # can't beat steady state
    save_report("tail_effects", data["report"])
