"""Figs. 13/14 benchmarks: all-to-all and nearest-neighbour exchanges.

Fig. 13 shape: MIN and the tuned adaptive configuration deliver high
effective throughput on A2A; INR delivers roughly half of MIN.

Fig. 14 shape: MIN is weakest overall (single Y-paths), INR levels
everything around its 50% ceiling (X stays intra-router), and the
adaptive scheme matches or beats INR everywhere except the OFT, where
the paper also found no adaptive benefit.
"""

from repro.experiments import fig13_data, fig14_data


def test_fig13_all_to_all(benchmark, save_report, save_csv, scale):
    data = benchmark.pedantic(fig13_data, args=(scale,), rounds=1, iterations=1)
    res = data["results"]
    for key in ("sf-floor", "sf-ceil", "mlfm", "oft"):
        assert res[f"{key}/MIN"] >= 0.55, res
        # INR about half of MIN (paper: exactly the uniform halving).
        ratio = res[f"{key}/INR"] / res[f"{key}/MIN"]
        assert 0.35 <= ratio <= 0.75, (key, res)
        # Adaptive close to MIN (within 25% at this scale).
        assert res[f"{key}/ADAPT"] >= 0.7 * res[f"{key}/MIN"], (key, res)
    save_report("fig13", data["report"])
    save_csv("fig13", ["config", "routing", "effective_throughput", "completion_ns"],
             data["rows"])


def test_fig14_nearest_neighbor(benchmark, save_report, save_csv, scale):
    data = benchmark.pedantic(fig14_data, args=(scale,), rounds=1, iterations=1)
    res = data["results"]
    for key in ("sf-floor", "mlfm", "oft"):
        for routing in ("MIN", "INR", "ADAPT"):
            assert 0.15 <= res[f"{key}/{routing}"] <= 1.0, (key, routing, res)
    # SF: adaptive beats INR (paper: by ~20%).
    assert res["sf-floor/ADAPT"] > res["sf-floor/INR"], res
    # MLFM: adaptive is the best of the three (paper: close to 100%).
    assert res["mlfm/ADAPT"] >= max(res["mlfm/MIN"], res["mlfm/INR"]) * 0.95, res
    save_report("fig14", data["report"])
    save_csv("fig14", ["config", "torus", "routing", "effective_throughput"],
             data["rows"])
