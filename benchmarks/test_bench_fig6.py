"""Fig. 6 benchmark: oblivious routing under uniform and worst-case.

Regenerates the throughput/saturation series for MIN and INR on all
four configurations and checks the paper's shape:

- MIN sustains high uniform load (>= 85% at this scale; paper: 96-98%,
  87% for SF-ceil);
- MIN collapses to ~1/(2p) / ~1/h / ~1/k on worst-case;
- INR halves the uniform saturation (~0.5) and lifts the worst case to
  the same ~0.5.
"""

import pytest

from repro.experiments import configs_for_scale, fig6_data
from repro.experiments.configs import SCALES

UNI_LOADS = (0.5, 0.8, 0.9)
WC_LOADS = (0.1, 0.3, 0.45)


def test_fig6(benchmark, save_report, save_csv, scale):
    data = benchmark.pedantic(
        fig6_data,
        kwargs=dict(scale=scale, uni_loads=UNI_LOADS, wc_loads=WC_LOADS, seed=0),
        rounds=1,
        iterations=1,
    )
    sat = data["saturations"]
    params = SCALES[scale]
    q, h, k = params["q"], params["h"], params["k"]
    rp = {"sf-floor": None}  # placeholder, p derived below

    from repro.topology import SlimFly

    p_floor = SlimFly(q, "floor").p

    # MIN on uniform: high.  The SF-ceil variant legitimately saturates
    # around 0.86 (the paper's own ~87% figure), so its floor is lower.
    for key in ("sf-floor", "mlfm", "oft"):
        assert sat[f"{key}/MIN/UNI"] >= 0.8, (key, sat)
    assert sat["sf-ceil/MIN/UNI"] >= 0.75, sat

    # MIN on worst case: the analytic collapse points.
    assert sat["sf-floor/MIN/WC"] <= 1.5 / (2 * p_floor)
    assert sat["mlfm/MIN/WC"] <= 1.5 / h
    assert sat["oft/MIN/WC"] <= 1.5 / k

    # INR: both patterns around one half.
    for key in ("sf-floor", "mlfm", "oft"):
        assert 0.35 <= sat[f"{key}/INR/UNI"] <= 0.6, (key, sat)
        assert 0.35 <= sat[f"{key}/INR/WC"] <= 0.6, (key, sat)

    # INR rescues the worst case relative to MIN.
    for key in ("sf-floor", "mlfm", "oft"):
        assert sat[f"{key}/INR/WC"] > 1.5 * sat[f"{key}/MIN/WC"]

    save_report("fig6", data["report"])
    save_csv("fig6", ["config", "routing", "pattern", "load", "throughput", "latency_ns"],
             data["rows"])
