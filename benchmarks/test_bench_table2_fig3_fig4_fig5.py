"""Benchmarks regenerating the analytic artefacts: Table 2, Figs. 3-5.

These are fast (no simulation); the benchmark timings measure the
construction/analysis algorithms themselves (ML3B build, scalability
enumeration, multilevel partitioning, worst-case pattern synthesis).
"""

import numpy as np

from repro.experiments import fig3_data, fig4_data, fig5_data, table2_data

PAPER_TABLE_2 = np.array(
    [
        [9, 10, 11, 12], [9, 0, 1, 2], [9, 3, 4, 5], [9, 6, 7, 8],
        [10, 0, 3, 6], [10, 1, 4, 7], [10, 2, 5, 8], [11, 0, 4, 8],
        [11, 1, 5, 6], [11, 2, 3, 7], [12, 0, 5, 7], [12, 1, 3, 8],
        [12, 2, 4, 6],
    ]
)


def test_table2(benchmark, save_report):
    """Table 2: exact reproduction of the 4-ML3B tabular representation."""
    data = benchmark(table2_data)
    assert np.array_equal(data["table"], PAPER_TABLE_2)
    save_report("table2", data["report"])


def test_fig3(benchmark, save_report):
    """Fig. 3: scale and cost vs router radix.

    Checks the paper's radix-64 claims: OFT ~63.5K endpoints, roughly
    2x the MLFM and SF, all at 3 ports / 2 links per endpoint.
    """
    data = benchmark(fig3_data, 64)
    best = data["best_at_radix"]
    assert best["OFT"] == 63552
    assert 1.7 <= best["OFT"] / best["MLFM"] <= 2.2
    assert 1.6 <= best["OFT"] / best["Slim Fly"] <= 2.2
    assert best["2-lvl Fat-Tree"] == 64 * 64 // 2
    save_report("fig3", data["report"])


def test_fig4(benchmark, save_report, scale):
    """Fig. 4: approximate bisection bandwidth per end-node.

    Shape checks (paper values: OFT ~0.89, SF ~0.71/0.67, MLFM ~0.5):
    the MLFM trends lowest and the SF floor variant beats the ceil
    variant; all values fall in the paper's 0.45-0.95 band.
    """
    data = benchmark.pedantic(fig4_data, args=(scale,), rounds=1, iterations=1)
    by_name = {r.topology: r.per_node for r in data["results"]}
    floors = [v for k, v in by_name.items() if k.startswith("SF") and _is_floor(k)]
    ceils = [v for k, v in by_name.items() if k.startswith("SF") and not _is_floor(k)]
    mlfms = [v for k, v in by_name.items() if k.startswith("MLFM")]
    assert all(0.45 <= v <= 1.0 for v in by_name.values()), by_name
    assert min(floors) > max(mlfms) - 0.15
    assert sum(floors) / len(floors) > sum(ceils) / len(ceils)
    save_report("fig4", data["report"])


def _is_floor(name: str) -> bool:
    # SF(q=7,p=5) with r'=11: floor -> 5, ceil -> 6.  Recover by parity
    # of r' via q; simpler: floor names use p = (3q - delta)//2 // 2.
    import re

    from repro.topology.slimfly import slim_fly_delta

    m = re.match(r"SF\(q=(\d+),p=(\d+)\)", name)
    q, p = int(m.group(1)), int(m.group(2))
    return p == ((3 * q - slim_fly_delta(q)) // 2) // 2


def test_fig5(benchmark, save_report, scale):
    """Fig. 5: SF worst-case construction -- max link load equals 2p."""
    data = benchmark.pedantic(fig5_data, args=(scale,), rounds=1, iterations=1)
    assert abs(data["saturation"] - data["expected_saturation"]) <= 0.2 * data[
        "expected_saturation"
    ]
    save_report("fig5", data["report"])
