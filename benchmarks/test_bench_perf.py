"""Simulator-throughput benchmark: the perf trajectory of the hot path.

Measures packets/sec and events/sec for MIN / INR / UGAL on the small
Slim Fly and MLFM instances, with the precompiled route-candidate cache
on (the default) and off (the legacy per-packet construction), plus a
routing-layer microbenchmark that times ``UGALRouting.route`` itself
against live congestion state on a warmed network -- the purest view of
the cached-vs-uncached difference, undiluted by event-queue costs.

A second axis compares the simulator backends (``SimConfig.backend =
"object" | "batched" | "kernel"``) on identical work: per-backend
wall-clock and throughput plus ``batched_speedup`` / ``kernel_speedup``
(wall-clock ratios over the object engine; event *counts* differ across
backends by design, the batched engine elides bookkeeping events, so
events/sec is per-backend color, not a comparison).  The compiled
kernel rows appear only where the extension builds; a third bench runs
the three backends at the UGAL saturation point on the 490-node Slim
Fly (MMS q=7), the operating regime the kernel exists for.

Results go to ``benchmarks/out/perf_summary.json`` so future PRs have a
perf trajectory to regress against.  Wall-clock is taken as the best of
``REPS`` interleaved repetitions: the minimum is robust against CPU
contention on shared runners, and interleaving keeps both modes exposed
to the same machine conditions.

Set ``REPRO_PERF_BASELINE=<path to committed baseline JSON>`` (the CI
perf-smoke job points it at ``benchmarks/perf_baseline.json``) to fail
the run when cached packets/sec drops below 70% of the baseline.
"""

from __future__ import annotations

import gc
import json
import os
import random
import time

from repro.experiments.configs import configs_for_scale
from repro.sim import Network
from repro.sim.config import SimConfig
from repro.traffic import UniformRandom

LOAD = 0.4
WARMUP_NS = 500.0
MEASURE_NS = 2_000.0
SEED = 0
REPS = 3
MICRO_ROUTES = 20_000
REGRESSION_FLOOR = 0.7  # fail below 70% of the committed baseline

#: Wall-clock floor for the batched backend relative to the object
#: engine on the same work.  Measured reality (CPython, 2026-08): the
#: batched engine runs ~1.15x (MIN) to ~1.35x (UGAL, larger scales)
#: faster -- the struct-of-arrays layout pays for row-table congestion
#: lookups and the calendar queue beats heappop, but per-event dispatch
#: is still Python bytecode either way (see docs/PERFORMANCE.md for the
#: compiled-kernel direction).  The gate is a *regression* guard at the
#: noise floor of shared runners, not the aspiration: batched must
#: never fall meaningfully behind the reference engine.
BATCHED_SPEEDUP_FLOOR = 0.8

#: Wall-clock floor for the compiled kernel relative to the object
#: engine on the saturation bench (the acceptance gate of the kernel
#: PR).  Measured reality (gcc -O2, CPython 3.11, 2026-08): ~4.3x on
#: UGAL/Slim Fly with the C route-selection and delivery-accounting
#: fast paths live (~2.4x before them, when every make_packet/deliver
#: escaped to Python per packet).  The remaining gap to the 5-10x
#: aspiration is Amdahl-bound in the cold-path escapes (scheduled
#: CALLs, cache-row refills under faults) -- see docs/PERFORMANCE.md
#: for the measured escape split.  Only enforced when
#: ``REPRO_PERF_BASELINE`` is set (the CI perf-smoke job): shared
#: runners without that gate still record the number but don't fail.
KERNEL_SPEEDUP_FLOOR = 3.5


def _force_mode(routing, compiled: bool):
    routing.compiled = compiled
    for sub in ("_minimal", "_indirect"):
        if hasattr(routing, sub):
            getattr(routing, sub).compiled = compiled
    return routing


def _configs(scale: str):
    by_key = {cfg.key: cfg for cfg in configs_for_scale(scale)}
    return {"sf": by_key["sf-floor"], "mlfm": by_key["mlfm"]}


def _sim_once(cfg, kind: str, compiled: bool):
    topo = cfg.topology()
    builder = {"min": cfg.minimal, "inr": cfg.indirect, "ugal": cfg.adaptive}[kind]
    routing = _force_mode(builder(topo), compiled)
    net = Network(topo, routing, SimConfig())
    t0 = time.perf_counter()
    stats = net.run_synthetic(
        UniformRandom(topo.num_nodes),
        load=LOAD,
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        seed=SEED,
    )
    wall = time.perf_counter() - t0
    return wall, stats.ejected_packets, net.engine.events_executed


def _bench_sim(cfg, kind: str):
    """Interleaved best-of-REPS for one (config, routing) pair."""
    walls = {True: [], False: []}
    packets = events = None
    for _ in range(REPS):
        for compiled in (True, False):
            wall, pkts, evs = _sim_once(cfg, kind, compiled)
            walls[compiled].append(wall)
            # Bit-identity means both modes deliver the same counts.
            if packets is None:
                packets, events = pkts, evs
            assert (pkts, evs) == (packets, events), (
                f"{cfg.key}/{kind}: cached and legacy runs diverged "
                f"({pkts}, {evs}) != ({packets}, {events})"
            )
    out = {}
    for compiled in (True, False):
        wall = min(walls[compiled])
        out["cached" if compiled else "uncached"] = {
            "wall_s": round(wall, 4),
            "packets_per_sec": round(packets / wall, 1),
            "events_per_sec": round(events / wall, 1),
        }
    out["packets"] = packets
    out["events"] = events
    out["speedup"] = round(
        out["cached"]["packets_per_sec"] / out["uncached"]["packets_per_sec"], 3
    )
    return out


def _sim_once_backend(cfg, kind: str, backend: str):
    topo = cfg.topology()
    builder = {"min": cfg.minimal, "inr": cfg.indirect, "ugal": cfg.adaptive}[kind]
    net = Network(topo, builder(topo), SimConfig(backend=backend))
    t0 = time.perf_counter()
    stats = net.run_synthetic(
        UniformRandom(topo.num_nodes),
        load=LOAD,
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        seed=SEED,
    )
    wall = time.perf_counter() - t0
    return wall, stats.ejected_packets, net.engine.events_executed


def _backend_axis() -> tuple:
    """The backends this machine can run: kernel only where it builds."""
    from repro.sim.vec.kernel import load_kernel

    backends = ["object", "batched"]
    if load_kernel() is not None:
        backends.append("kernel")
    return tuple(backends)


def _bench_backends(cfg, kind: str, backends: tuple):
    """Interleaved best-of-REPS across the simulator backends.

    The backends execute different *event counts* for the same physics
    (the batched/kernel engines elide link-free/credit-return events),
    so ``events_per_sec`` is reported per backend but is not comparable
    across them; ``batched_speedup`` / ``kernel_speedup`` are wall-clock
    ratios over the object engine on identical delivered work.
    """
    walls = {backend: [] for backend in backends}
    packets = None
    events = {}
    for _ in range(REPS):
        for backend in backends:
            wall, pkts, evs = _sim_once_backend(cfg, kind, backend)
            walls[backend].append(wall)
            events[backend] = evs
            # Conformance contract: identical physics on every backend.
            if packets is None:
                packets = pkts
            assert pkts == packets, (
                f"{cfg.key}/{kind}: backends diverged on delivered "
                f"packets ({backend}: {pkts} != {packets})"
            )
    out = {"packets": packets}
    for backend in backends:
        wall = min(walls[backend])
        out[backend] = {
            "wall_s": round(wall, 4),
            "packets_per_sec": round(packets / wall, 1),
            "events": events[backend],
            "events_per_sec": round(events[backend] / wall, 1),
        }
    for backend in backends[1:]:
        out[f"{backend}_speedup"] = round(
            out["object"]["wall_s"] / out[backend]["wall_s"], 3
        )
    return out


#: The saturation bench instance: MMS q=7 with floor concentration is
#: 98 routers x 5 endpoints = 490 nodes -- the smallest Slim Fly where
#: per-event Python overhead, not cache effects, dominates wall-clock.
SAT_Q = 7
SAT_LOAD = 0.9  # past the UGAL saturation knee: maximal event pressure
SAT_WARMUP_NS = 500.0
SAT_MEASURE_NS = 1_500.0
SAT_REPS = 2  # each rep is seconds of wall-clock at this scale


def _bench_saturation(backends: tuple):
    """All backends at the UGAL saturation point on the 490-node SF.

    This is the regime the compiled kernel exists for: every queue
    deep, every VC arbitration contested, wake-up elision earning its
    keep.  Reports per-backend events/sec (per-backend color, see
    ``_bench_backends``) and wall-clock speedups over the object engine.
    """
    from repro.routing import UGALRouting
    from repro.topology import SlimFly

    walls = {backend: [] for backend in backends}
    packets = nodes = None
    events = {}
    for _ in range(SAT_REPS):
        for backend in backends:
            topo = SlimFly(SAT_Q)
            nodes = topo.num_nodes
            net = Network(topo, UGALRouting(topo, seed=SEED),
                          SimConfig(backend=backend))
            t0 = time.perf_counter()
            stats = net.run_synthetic(
                UniformRandom(topo.num_nodes),
                load=SAT_LOAD,
                warmup_ns=SAT_WARMUP_NS,
                measure_ns=SAT_MEASURE_NS,
                seed=SEED,
            )
            walls[backend].append(time.perf_counter() - t0)
            events[backend] = net.engine.events_executed
            if packets is None:
                packets = stats.ejected_packets
            assert stats.ejected_packets == packets, (
                f"saturation bench: backends diverged "
                f"({backend}: {stats.ejected_packets} != {packets})"
            )
    out = {
        "case": f"sf:q={SAT_Q}/ugal",
        "nodes": nodes,
        "load": SAT_LOAD,
        "packets": packets,
    }
    for backend in backends:
        wall = min(walls[backend])
        out[backend] = {
            "wall_s": round(wall, 4),
            "packets_per_sec": round(packets / wall, 1),
            "events": events[backend],
            "events_per_sec": round(events[backend] / wall, 1),
        }
    for backend in backends[1:]:
        out[f"{backend}_speedup"] = round(
            out["object"]["wall_s"] / out[backend]["wall_s"], 3
        )
    return out


def _bench_checker_overhead(cfg, kind: str = "ugal"):
    """Wall-clock cost of the runtime invariant checker (``--check``) on
    one end-to-end simulation, interleaved best-of-REPS.  Deliberately
    NOT part of the ``REPRO_PERF_BASELINE`` regression gate
    (``_check_baseline`` only reads ``end_to_end`` and the routing
    microbench): the checker is an opt-in debugging tool, so its cost is
    tracked and bounded but never fails a perf-smoke run."""
    topo = cfg.topology()
    walls = {False: [], True: []}
    packets = None
    for _ in range(REPS):
        for check in (False, True):
            routing = {"min": cfg.minimal, "inr": cfg.indirect,
                       "ugal": cfg.adaptive}[kind](topo)
            net = Network(topo, routing, SimConfig(check=check))
            t0 = time.perf_counter()
            stats = net.run_synthetic(
                UniformRandom(topo.num_nodes),
                load=LOAD,
                warmup_ns=WARMUP_NS,
                measure_ns=MEASURE_NS,
                seed=SEED,
            )
            walls[check].append(time.perf_counter() - t0)
            # The checker must not change the physics.
            if packets is None:
                packets = stats.ejected_packets
            assert stats.ejected_packets == packets, (
                f"checker changed delivery count: {stats.ejected_packets} "
                f"!= {packets}"
            )
    plain, checked = min(walls[False]), min(walls[True])
    return {
        "case": f"{cfg.key}/{kind}",
        "packets": packets,
        "unchecked_wall_s": round(plain, 4),
        "checked_wall_s": round(checked, 4),
        "overhead": round(checked / plain, 3),
    }


def _bench_routing_micro(cfg):
    """Routing-layer microbenchmark: UGAL route() calls per second
    against live congestion, cached vs uncached in the same run."""
    topo = cfg.topology()
    # Warm a network so congestion lookups see realistic occupancies.
    net = Network(topo, cfg.adaptive(topo), SimConfig())
    net.run_synthetic(
        UniformRandom(topo.num_nodes),
        load=0.6,
        warmup_ns=500.0,
        measure_ns=1_000.0,
        seed=7,
    )
    pair_rng = random.Random(123)
    n = topo.num_routers
    pairs = []
    while len(pairs) < MICRO_ROUTES:
        s, d = pair_rng.randrange(n), pair_rng.randrange(n)
        if s != d:
            pairs.append((s, d))

    def routes_per_sec(compiled: bool) -> tuple:
        best = float("inf")
        kinds = None
        for _ in range(REPS):
            routing = _force_mode(cfg.adaptive(topo), compiled)
            route = routing.route
            t0 = time.perf_counter()
            indirect = 0
            for s, d in pairs:
                indirect += route(s, d, net).kind == "indirect"
            best = min(best, time.perf_counter() - t0)
            if kinds is None:
                kinds = indirect
            assert indirect == kinds, "route decisions diverged across reps"
        return len(pairs) / best, kinds

    cached_rps, kinds_c = routes_per_sec(True)
    uncached_rps, kinds_u = routes_per_sec(False)
    # Same seeds, same congestion snapshot: identical decisions.
    assert kinds_c == kinds_u, (kinds_c, kinds_u)
    return {
        "routes": len(pairs),
        "indirect_fraction": round(kinds_c / len(pairs), 4),
        "cached_routes_per_sec": round(cached_rps, 1),
        "uncached_routes_per_sec": round(uncached_rps, 1),
        "speedup": round(cached_rps / uncached_rps, 3),
    }


def _bench_fault_overhead(cfg):
    """No-fault cost of the fault-aware candidate-set machinery.

    Fault awareness added exactly one branch to every row fill
    (``if self._failed:``); all other bookkeeping was deliberately
    moved to fault time (``fail_link`` scans the filled rows).  This
    microbenchmark times the row-lookup idiom the routing algorithms
    use -- row hit or lazy ``minimal_fill`` -- over a fresh cache,
    against a replica of the pre-fault fill path (ensure row, compile
    candidates, store) with no fault branch at all.  Fault-free
    simulations must pay (almost) nothing for the machinery; the
    acceptance gate is <= 5% overhead.
    """
    from repro.routing.cache import RouteCache

    topo = cfg.topology()
    vc_policy = cfg.adaptive(topo).cache.vc_policy
    pair_rng = random.Random(321)
    n = topo.num_routers
    pairs = []
    while len(pairs) < MICRO_ROUTES:
        s, d = pair_rng.randrange(n), pair_rng.randrange(n)
        if s != d:
            pairs.append((s, d))

    def plain_fill(cache, src, dst):
        # The fill path as it was before fault awareness existed.
        row = cache.ensure_minimal_row(src)
        cands = cache.minimal_candidates(src, dst)
        row[dst] = cands
        return cands

    def timed_region(fault_aware: bool) -> float:
        # Several fresh-cache passes per timed region: the delta under
        # test sits on the fill path, and single-pass regions (~15 ms)
        # are inside shared-runner noise.  CPU time rather than wall
        # clock (a ~1% ratio gate cannot absorb scheduler preemption on
        # shared runners), with the GC parked so collection pauses from
        # the fresh caches don't land on one side of the A/B.
        gc.collect()
        gc.disable()
        t0 = time.process_time()
        for _ in range(3):
            cache = RouteCache(topo, vc_policy)
            rows = cache.minimal_rows
            if fault_aware:
                fill = cache.minimal_fill
            else:
                fill = lambda s, d: plain_fill(cache, s, d)  # noqa: E731
            for s, d in pairs:
                row = rows[s]
                if row is None or row[d] is None:
                    fill(s, d)
        elapsed = time.process_time() - t0
        gc.enable()
        return elapsed

    # Interleave the two modes rep-by-rep so machine drift (CPU
    # contention, thermal throttling) hits both sides alike, then
    # compare best-of-reps against best-of-reps.
    plain = aware = float("inf")
    for _ in range(REPS + 4):
        plain = min(plain, timed_region(False))
        aware = min(aware, timed_region(True))
    return {
        "lookups": len(pairs),
        "plain_cpu_s": round(plain, 4),
        "fault_aware_cpu_s": round(aware, 4),
        "overhead": round(aware / plain, 3),
    }


def _check_baseline(summary) -> list:
    """Compare cached throughputs against the committed baseline."""
    path = os.environ.get("REPRO_PERF_BASELINE")
    if not path:
        return []
    with open(path) as fh:
        baseline = json.load(fh)
    failures = []
    for topo_key, per_routing in baseline.get("end_to_end", {}).items():
        for kind, entry in per_routing.items():
            ref = entry.get("cached", {}).get("packets_per_sec")
            got = (
                summary["end_to_end"]
                .get(topo_key, {})
                .get(kind, {})
                .get("cached", {})
                .get("packets_per_sec")
            )
            if ref and got and got < REGRESSION_FLOOR * ref:
                failures.append(
                    f"{topo_key}/{kind}: {got:.0f} pkts/s < "
                    f"{REGRESSION_FLOOR:.0%} of baseline {ref:.0f}"
                )
    for topo_key, per_routing in baseline.get("backends", {}).items():
        for kind, entry in per_routing.items():
            for backend in ("batched", "kernel"):
                ref = entry.get(backend, {}).get("packets_per_sec")
                got = (
                    summary.get("backends", {})
                    .get(topo_key, {})
                    .get(kind, {})
                    .get(backend, {})
                    .get("packets_per_sec")
                )
                # Kernel rows are absent where the extension can't
                # build; the dedicated fallback CI job covers that leg.
                if ref and got and got < REGRESSION_FLOOR * ref:
                    failures.append(
                        f"backends {topo_key}/{kind}: {backend} {got:.0f} "
                        f"pkts/s < {REGRESSION_FLOOR:.0%} of baseline "
                        f"{ref:.0f}"
                    )
    # The kernel acceptance gate: on the saturation bench the compiled
    # kernel must hold >= KERNEL_SPEEDUP_FLOOR over the object engine.
    sat = summary.get("kernel_saturation", {})
    if baseline.get("kernel_saturation", {}).get("kernel_speedup") and \
            "kernel_speedup" in sat:
        if sat["kernel_speedup"] < KERNEL_SPEEDUP_FLOOR:
            failures.append(
                f"kernel saturation bench: speedup {sat['kernel_speedup']} "
                f"< floor {KERNEL_SPEEDUP_FLOOR} over object"
            )
    micro_ref = baseline.get("ugal_sf_routing_microbench", {}).get(
        "cached_routes_per_sec"
    )
    micro_got = summary["ugal_sf_routing_microbench"]["cached_routes_per_sec"]
    if micro_ref and micro_got < REGRESSION_FLOOR * micro_ref:
        failures.append(
            f"routing microbench: {micro_got:.0f} routes/s < "
            f"{REGRESSION_FLOOR:.0%} of baseline {micro_ref:.0f}"
        )
    return failures


def test_bench_perf(scale, report_dir):
    configs = _configs(scale)
    summary = {
        "scale": scale,
        "load": LOAD,
        "warmup_ns": WARMUP_NS,
        "measure_ns": MEASURE_NS,
        "reps": REPS,
        "end_to_end": {},
    }
    for topo_key, cfg in configs.items():
        summary["end_to_end"][topo_key] = {
            kind: _bench_sim(cfg, kind) for kind in ("min", "inr", "ugal")
        }
    backends = _backend_axis()
    summary["backend_axis"] = list(backends)
    summary["backends"] = {
        topo_key: {
            kind: _bench_backends(cfg, kind, backends)
            for kind in ("min", "ugal")
        }
        for topo_key, cfg in configs.items()
    }
    summary["kernel_saturation"] = _bench_saturation(backends)
    summary["ugal_sf_routing_microbench"] = _bench_routing_micro(configs["sf"])
    summary["checker_overhead"] = _bench_checker_overhead(configs["sf"])
    summary["fault_overhead"] = _bench_fault_overhead(configs["sf"])

    (report_dir / "perf_summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    # The routing-layer cache must pay for itself where it matters: the
    # UGAL hot path on the Slim Fly (acceptance gate: >= 1.3x).
    assert summary["ugal_sf_routing_microbench"]["speedup"] >= 1.3, summary[
        "ugal_sf_routing_microbench"
    ]
    # End-to-end, cached must never be slower than legacy beyond noise
    # (same tolerance as the baseline regression check: shared runners
    # can skew a single mode's wall-clock by tens of percent).
    for topo_key, per_routing in summary["end_to_end"].items():
        for kind, entry in per_routing.items():
            assert entry["speedup"] > REGRESSION_FLOOR, (topo_key, kind, entry)

    # The batched backend must stay at least at parity with the object
    # engine (floor sits below 1.0 only to absorb shared-runner noise);
    # the compiled kernel must in turn never fall behind batched.
    for topo_key, per_routing in summary["backends"].items():
        for kind, entry in per_routing.items():
            assert entry["batched_speedup"] > BATCHED_SPEEDUP_FLOOR, (
                topo_key, kind, entry
            )
            if "kernel_speedup" in entry:
                assert entry["kernel_speedup"] > BATCHED_SPEEDUP_FLOOR, (
                    topo_key, kind, entry
                )

    # The invariant checker advertises "about 2x"; gate it at < 3x so a
    # hook that quietly lands on the hot path is caught here.
    assert summary["checker_overhead"]["overhead"] < 3.0, summary["checker_overhead"]

    # Fault-free runs must not pay for fault-awareness: the candidate-
    # set bookkeeping is gated at <= 5% on the row fill/lookup path.
    assert summary["fault_overhead"]["overhead"] <= 1.05, summary["fault_overhead"]

    failures = _check_baseline(summary)
    assert not failures, "; ".join(failures)
