"""Extra analytic benchmarks: classic adversaries and spectral structure.

1. **Classic adversaries vs the tailored worst case** -- the paper's
   Sec. 4.2 constructions are *worse* (lower analytic saturation) than
   the literature's standard permutation adversaries (tornado,
   bit-complement, bit-reverse, transpose) on every topology, which is
   exactly what makes them worst cases.
2. **Spectral table** -- all three designs' router graphs meet the
   Ramanujan bound; the indirect (SSPT) designs are bipartite.  This is
   the structural backdrop of the paper's uniform-traffic results.
"""

from repro.analysis import spectral_stats
from repro.analysis.linkload import (
    channel_loads_minimal,
    permutation_flows,
    saturation_throughput,
)
from repro.experiments.report import ascii_table
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import BitComplement, BitReverse, Tornado, Transpose, worst_case_traffic


def test_classic_adversaries(benchmark, save_report):
    topologies = [SlimFly(5), MLFM(5), OFT(4)]
    patterns = {
        "tailored-WC": lambda t: worst_case_traffic(t, seed=1),
        "tornado": lambda t: Tornado(t.num_nodes),
        "bit-complement": lambda t: BitComplement(t.num_nodes),
        "bit-reverse": lambda t: BitReverse(t.num_nodes),
        "transpose": lambda t: Transpose(t.num_nodes),
    }

    def run():
        rows = []
        table = {}
        for topo in topologies:
            for name, factory in patterns.items():
                pattern = factory(topo)
                loads = channel_loads_minimal(
                    topo, permutation_flows(pattern.destinations)
                )
                sat = saturation_throughput(loads)
                table[(topo.name, name)] = sat
                rows.append([topo.name, name, sat])
        return rows, table

    rows, table = benchmark(run)
    # The tailored worst case is the worst (or tied) everywhere.
    for topo in topologies:
        tailored = table[(topo.name, "tailored-WC")]
        for name in patterns:
            assert table[(topo.name, name)] >= tailored - 1e-9, (topo.name, name)
    save_report(
        "classic_adversaries",
        ascii_table(["topology", "pattern", "analytic saturation"], rows,
                    title="Tailored worst case vs classic adversaries (minimal routing)"),
    )


def test_spectral_structure(benchmark, save_report):
    topologies = [SlimFly(5), SlimFly(7), MLFM(5), OFT(4)]

    def run():
        return [spectral_stats(t) for t in topologies]

    stats = benchmark(run)
    for s in stats:
        assert s.is_ramanujan, s
    by_name = {s.topology: s for s in stats}
    assert not by_name["SF(q=5,p=3)"].bipartite
    assert by_name["MLFM(h=5)"].bipartite
    assert by_name["OFT(k=4)"].bipartite
    rows = [
        [s.topology, s.degree, s.lambda2, s.spectral_gap, s.ramanujan_bound,
         s.is_ramanujan, s.bipartite]
        for s in stats
    ]
    save_report(
        "spectral",
        ascii_table(
            ["topology", "degree", "lambda2", "gap", "2sqrt(d-1)", "Ramanujan", "bipartite"],
            rows,
            title="Spectral structure of the router graphs",
        ),
    )
