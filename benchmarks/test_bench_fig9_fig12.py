"""Figs. 9-12 benchmarks: MLFM/OFT adaptive parameter sensitivity.

Fig. 9 (MLFM-A) and Fig. 10 (OFT-A): generic UGAL reaches MIN-level
uniform throughput and INR-level worst-case throughput across the
parameter grid.  Fig. 11 (MLFM-ATh) and Fig. 12 (OFT-ATh): the T=10%
threshold keeps uniform traffic minimal (low indirect fraction) at the
cost of worst-case latency at low loads, as the paper reports.
"""

from repro.experiments import fig9_data, fig10_data, fig11_data, fig12_data
from repro.experiments.configs import SCALES

UNI = (0.5, 0.8)
WC = (0.1, 0.3)
NI = (1, 5)
C = (1.0, 4.0)


def _series(rows):
    out = {}
    for _cfg, param, pattern, load, thr, lat, ifrac in rows:
        out.setdefault((param, pattern), {})[load] = (thr, lat, ifrac)
    return out


def _wc_bound(wc_collapse, load):
    """Adaptive must clearly beat the minimal-routing collapse, capped
    below the offered load (throughput can never exceed it)."""
    return min(1.3 * wc_collapse, 0.9 * load)


def _check_adaptive_shape(data, wc_collapse):
    a = _series(data["a"]["rows"])
    for (param, pattern), series in a.items():
        if pattern == "UNI":
            assert series[0.5][0] >= 0.45, (param, series)
        else:
            assert series[0.3][0] > _wc_bound(wc_collapse, 0.3), (param, series)


def test_fig9_mlfm_a(benchmark, save_report, scale):
    data = benchmark.pedantic(
        fig9_data,
        kwargs=dict(scale=scale, uni_loads=UNI, wc_loads=WC, ni_values=NI, c_values=C),
        rounds=1, iterations=1,
    )
    h = SCALES[scale]["h"]
    _check_adaptive_shape(data, 1.0 / h)
    save_report("fig9", data["report"])


def test_fig10_oft_a(benchmark, save_report, scale):
    data = benchmark.pedantic(
        fig10_data,
        kwargs=dict(scale=scale, uni_loads=UNI, wc_loads=WC, ni_values=NI, c_values=C),
        rounds=1, iterations=1,
    )
    k = SCALES[scale]["k"]
    _check_adaptive_shape(data, 1.0 / k)
    save_report("fig10", data["report"])


def test_fig11_mlfm_ath(benchmark, save_report, scale):
    data = benchmark.pedantic(
        fig11_data,
        kwargs=dict(scale=scale, uni_loads=UNI, wc_loads=WC, ni_values=NI, c_values=C),
        rounds=1, iterations=1,
    )
    a = _series(data["a"]["rows"])
    # Threshold: uniform traffic stays essentially minimal.
    for (param, pattern), series in a.items():
        if pattern == "UNI":
            assert series[0.5][2] < 0.10, (param, series)
    # Worst case still rescued.
    h = SCALES[scale]["h"]
    for (param, pattern), series in a.items():
        if pattern == "WC":
            assert series[0.3][0] > _wc_bound(1.0 / h, 0.3), (param, series)
    save_report("fig11", data["report"])


def test_fig12_oft_ath(benchmark, save_report, scale):
    data = benchmark.pedantic(
        fig12_data,
        kwargs=dict(scale=scale, uni_loads=UNI, wc_loads=WC, ni_values=NI, c_values=C),
        rounds=1, iterations=1,
    )
    a = _series(data["a"]["rows"])
    for (param, pattern), series in a.items():
        if pattern == "UNI":
            assert series[0.5][2] < 0.10, (param, series)
    k = SCALES[scale]["k"]
    for (param, pattern), series in a.items():
        if pattern == "WC":
            assert series[0.3][0] > _wc_bound(1.0 / k, 0.3), (param, series)
    save_report("fig12", data["report"])
