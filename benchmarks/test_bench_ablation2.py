"""Second ablation set: mapping locality, UGAL signal scope, and the
related-work topology comparison.

1. **Contiguous vs random mapping** (Sec. 4.4): the paper's contiguous
   process-to-node mapping aligns the NN torus with the topology
   morphology; randomising the mapping destroys the X-dimension's
   intra-router locality and lowers effective throughput.
2. **UGAL-L vs UGAL-G**: the global (impractical) signal sees
   downstream congestion that the deployable local signal cannot; on
   the worst case both rescue throughput, and the ablation quantifies
   the residual gap.
3. **Related work** (paper Sec. 1 / Fig. 3): the same harness drives
   the 2D HyperX, the two-level Fat-Tree and the Dragonfly under
   uniform traffic -- all diameter-<=3 alternatives sustain high load,
   but at very different cost/scalability points (printed).
"""

import random

import pytest

from repro.routing import MinimalRouting, UGALRouting
from repro.routing.vc import HopIndexVC
from repro.sim import Network
from repro.topology import MLFM, Dragonfly, FatTree2L, HyperX2D, SlimFly
from repro.traffic import (
    NearestNeighbor3D,
    UniformRandom,
    paper_torus_dims,
    worst_case_traffic,
)

WARMUP = 1_500.0
MEASURE = 5_000.0


def test_ablation_mapping_locality(benchmark, save_report):
    topo = MLFM(5)
    dims = paper_torus_dims(topo)
    mapping = list(range(topo.num_nodes))
    random.Random(3).shuffle(mapping)

    def compare():
        out = {}
        for label, nm in (("contiguous", None), ("random", mapping)):
            nn = NearestNeighbor3D(
                topo.num_nodes, message_bytes=4096, dims=dims, node_map=nm
            )
            net = Network(topo, MinimalRouting(topo, seed=1))
            out[label] = net.run_exchange(nn)["effective_throughput"]
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert out["contiguous"] > out["random"]
    save_report(
        "ablation_mapping",
        "\n".join(f"{k}: NN effective throughput={v:.3f}" for k, v in out.items()),
    )


def test_ablation_ugal_local_vs_global(benchmark, save_report):
    topo = SlimFly(5)
    wc = worst_case_traffic(topo, seed=2)

    def compare():
        out = {}
        for label, signal in (("UGAL-L", "local"), ("UGAL-G", "global")):
            routing = UGALRouting(
                topo, cost_mode="sf", c_sf=1.0, num_indirect=4, seed=1, signal=signal
            )
            net = Network(topo, routing)
            stats = net.run_synthetic(
                wc, load=0.4, warmup_ns=WARMUP, measure_ns=MEASURE, seed=5
            )
            out[label] = (stats.throughput, stats.mean_latency_ns)
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    # Both signals rescue the worst case far beyond the 1/(2p) collapse.
    for label, (thr, _lat) in out.items():
        assert thr > 0.3, out
    save_report(
        "ablation_ugal_scope",
        "\n".join(
            f"{k}: wc throughput={thr:.3f} latency={lat:.0f}ns"
            for k, (thr, lat) in out.items()
        ),
    )


def test_related_work_topologies(benchmark, save_report):
    """HyperX / FT2 / Dragonfly under uniform traffic with the shared
    harness (cost context from Fig. 3 alongside)."""

    def run_all():
        rows = []
        cases = [
            (HyperX2D.balanced(9), None),
            (FatTree2L(10), None),
            (Dragonfly(2), HopIndexVC(minimal_vcs=3, indirect_vcs=6)),
        ]
        for topo, policy in cases:
            net = Network(topo, MinimalRouting(topo, vc_policy=policy, seed=1))
            stats = net.run_synthetic(
                UniformRandom(topo.num_nodes), load=0.8,
                warmup_ns=WARMUP, measure_ns=MEASURE, seed=5,
            )
            rows.append(
                (topo.name, topo.num_nodes, topo.ports_per_node(),
                 stats.throughput, stats.mean_latency_ns)
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, _n, _ports, thr, _lat in rows:
        assert thr >= 0.7, rows
    save_report(
        "related_work",
        "\n".join(
            f"{name}: N={n} ports/node={ports:.2f} uniform@0.8 thr={thr:.3f} "
            f"lat={lat:.0f}ns"
            for name, n, ports, thr, lat in rows
        ),
    )
