"""Orchestration subsystem benchmark.

Runs one small campaign (2 routings x 4 loads on the tiny Slim Fly)
through the process-pool scheduler, then resumes it from cache, and
writes the measured trajectory — wall-clock, jobs, cache hits,
events/s, parallel speedup versus the serial path — to
``benchmarks/out/orchestrate_summary.json`` so the perf history of the
subsystem is tracked alongside the figure artefacts.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.configs import SCALES, windows_for_scale
from repro.orchestrate import Orchestrator, run_campaign, sweep_jobs

LOADS = (0.2, 0.4, 0.6, 0.8)
ROUTINGS = (
    ("min", {}),
    ("inr", {}),
)


def _campaign_jobs(scale: str):
    q = SCALES[scale]["q"]
    windows = windows_for_scale(scale)
    jobs = []
    for routing in ROUTINGS:
        jobs.extend(sweep_jobs(
            f"sf:q={q},p=floor", routing, ("uniform", {}), LOADS,
            warmup_ns=windows.warmup_ns, measure_ns=windows.measure_ns,
            seed=0, tag=f"bench/{routing[0]}",
        ))
    return jobs


def test_bench_orchestrate_campaign(scale, report_dir, tmp_path):
    cache_dir = tmp_path / "cache"

    # Serial reference (no cache): the single-core baseline.
    t0 = time.perf_counter()
    serial = run_campaign(_campaign_jobs(scale))
    serial_s = time.perf_counter() - t0
    assert not serial.failed

    # Parallel cold run (populates the cache).
    parallel = Orchestrator(jobs=4, cache_dir=cache_dir, resume=True)
    cold = parallel.run(_campaign_jobs(scale))
    assert not cold.failed
    cold_stats = parallel.last_stats

    # Identical payloads: the scheduler must not change the physics.
    for a, b in zip(serial.outcome_list(), cold.outcome_list()):
        assert a.result.payload == b.result.payload

    # Warm resume: 100% cache hits, zero simulations executed.
    resume = Orchestrator(jobs=4, cache_dir=cache_dir, resume=True)
    warm = resume.run(_campaign_jobs(scale))
    assert not warm.failed
    assert resume.last_stats["executed"] == 0
    assert resume.last_stats["cache_hits"] == len(warm.order)

    # Speedup only makes sense relative to the CPU budget: on a
    # single-core box the pool pays fork/IPC overhead with no gain.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1

    summary = {
        "scale": scale,
        "cpus": cpus,
        "jobs": len(cold.order),
        "serial_wall_clock_s": serial_s,
        "parallel_wall_clock_s": cold_stats["wall_clock_s"],
        "speedup": serial_s / cold_stats["wall_clock_s"]
        if cold_stats["wall_clock_s"] > 0 else None,
        "resume_wall_clock_s": resume.last_stats["wall_clock_s"],
        "cache_hits_on_resume": resume.last_stats["cache_hits"],
        "events_total": cold_stats["events_total"],
        "events_per_second": cold_stats["events_per_second"],
        "workers": len(cold_stats["per_worker"]),
        "per_worker": cold_stats["per_worker"],
    }
    out = report_dir / "orchestrate_summary.json"
    out.write_text(json.dumps(summary, indent=2) + "\n")
