"""Ablation benchmarks for the design decisions called out in DESIGN.md.

1. **Buffer size** (packet-granularity VCT substitution): saturation
   behaviour must be stable across a wide range of per-port buffering,
   showing the reproduced saturation points are not artefacts of the
   100 KB default.
2. **SF p = floor vs ceil**: the ceil variant carries more endpoints
   per router and saturates earlier under uniform traffic (Sec. 4.3.1).
3. **Arrival process**: Poisson vs deterministic injection shifts
   latency but not the saturation point.
4. **UGAL congestion signal**: the local queue-count signal vs a
   degenerate zero signal (oblivious minimal) -- quantifies how much of
   the worst-case rescue comes from the adaptive signal itself.
"""

import pytest

from repro.routing import MinimalRouting, UGALRouting
from repro.routing.base import NULL_CONGESTION
from repro.sim import Network, SimConfig
from repro.topology import MLFM, SlimFly
from repro.traffic import UniformRandom, worst_case_traffic

WARMUP = 1_500.0
MEASURE = 5_000.0


def _throughput(topo, routing, pattern, load, config=None, arrival="poisson"):
    net = Network(topo, routing, config or SimConfig())
    return net.run_synthetic(
        pattern, load=load, warmup_ns=WARMUP, measure_ns=MEASURE, seed=5, arrival=arrival
    ).throughput


def test_ablation_buffer_size(benchmark, save_report):
    """WC saturation is buffer-size independent (it is a path-count
    limit, not a buffering limit)."""
    mlfm = MLFM(5)
    wc = worst_case_traffic(mlfm)

    def sweep():
        rows = []
        for buf in (10_000, 50_000, 100_000, 200_000):
            cfg = SimConfig(buffer_bytes_per_port=buf)
            thr = _throughput(mlfm, MinimalRouting(mlfm, seed=1), wc, 0.5, cfg)
            rows.append((buf, thr))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for buf, thr in rows:
        assert thr == pytest.approx(1.0 / mlfm.h, rel=0.15), rows
    save_report(
        "ablation_buffer",
        "\n".join(f"buffer={b:7d}B  wc_throughput={t:.3f}" for b, t in rows),
    )


def test_ablation_sf_floor_vs_ceil(benchmark, save_report):
    """Sec. 4.3.1: p = ceil(r'/2) saturates earlier under uniform."""

    def compare():
        out = {}
        for mode in ("floor", "ceil"):
            sf = SlimFly(5, mode)
            out[mode] = _throughput(
                sf, MinimalRouting(sf, seed=1), UniformRandom(sf.num_nodes), 0.97
            )
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert out["ceil"] < out["floor"]
    save_report(
        "ablation_floor_ceil",
        f"uniform throughput @0.97 load: floor={out['floor']:.3f} ceil={out['ceil']:.3f}",
    )


def test_ablation_arrival_process(benchmark, save_report):
    """Poisson vs deterministic injection: same saturation."""
    sf = SlimFly(5)

    def compare():
        return {
            arrival: _throughput(
                sf, MinimalRouting(sf, seed=1), UniformRandom(sf.num_nodes), 0.5,
                arrival=arrival,
            )
            for arrival in ("poisson", "deterministic")
        }

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert out["poisson"] == pytest.approx(out["deterministic"], rel=0.1)
    save_report(
        "ablation_arrival",
        "\n".join(f"{k}: throughput={v:.3f}" for k, v in out.items()),
    )


def test_ablation_ugal_signal(benchmark, save_report):
    """Blinding UGAL (NULL congestion signal) collapses it to minimal
    behaviour on the worst case -- the live queue signal is what buys
    the rescue."""
    sf = SlimFly(5)
    wc = worst_case_traffic(sf, seed=2)

    class BlindUGAL(UGALRouting):
        def route(self, s, d, congestion=NULL_CONGESTION):
            return super().route(s, d, NULL_CONGESTION)

    def compare():
        sighted = _throughput(
            sf, UGALRouting(sf, cost_mode="sf", num_indirect=4, seed=1), wc, 0.4
        )
        blind = _throughput(
            sf, BlindUGAL(sf, cost_mode="sf", num_indirect=4, seed=1), wc, 0.4
        )
        return {"sighted": sighted, "blind": blind}

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert out["sighted"] > 1.5 * out["blind"], out
    save_report(
        "ablation_ugal_signal",
        f"wc throughput @0.4: sighted={out['sighted']:.3f} blind={out['blind']:.3f}",
    )
