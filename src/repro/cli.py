"""Command-line interface.

Gives shell access to the library's main entry points::

    python -m repro info sf:q=13
    python -m repro simulate mlfm:h=5 --routing ugal --pattern worstcase --load 0.4
    python -m repro sweep oft:k=4 --routing min --pattern uniform --loads 0.2,0.5,0.8
    python -m repro sweep oft:k=4 --loads 0.2,0.5,0.8 --jobs 4 --resume
    python -m repro campaign --topologies "sf:q=5;oft:k=4" --routings min,ugal \
        --patterns uniform,worstcase --jobs 4 --resume
    python -m repro exchange sf:q=5 --pattern a2a --routing min
    python -m repro workload sf:q=5 --collective ring-allreduce --sizes 4096,65536
    python -m repro workload oft:k=4 --collective halo3d --iterations 4 --jobs 4
    python -m repro figure fig6 --scale tiny
    python -m repro scalability --max-radix 64
    python -m repro bisection oft:k=6

Topology specs are ``family:key=value,...``:

- ``sf:q=5[,p=floor|ceil|<int>]``
- ``mlfm:h=5[,l=...,p=...]``      - ``oft:k=4[,p=...]``
- ``sspt:r1=4,r2=2``              - ``hyperx:r=9`` or ``hyperx:s1=4,s2=4,p=3``
- ``ft2:r=8``  ``ft3:r=8``        - ``dfly:p=2[,a=...,h=...]``
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.topology import (
    MLFM,
    OFT,
    SSPT,
    Dragonfly,
    FatTree2L,
    FatTree3L,
    HyperX2D,
    SlimFly,
    Topology,
)

__all__ = ["main", "parse_topology"]


def _parse_kv(spec: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    if not spec:
        return out
    for item in spec.split(","):
        if "=" not in item:
            raise ValueError(f"bad parameter {item!r} (expected key=value)")
        key, value = item.split("=", 1)
        out[key.strip()] = value.strip()
    return out


def parse_topology(spec: str) -> Topology:
    """Build a topology from a ``family:key=value,...`` spec string."""
    family, _, params = spec.partition(":")
    kv = _parse_kv(params)
    family = family.lower()
    try:
        if family == "sf":
            p: object = kv.get("p", "floor")
            if p not in ("floor", "ceil"):
                p = int(p)  # type: ignore[arg-type]
            return SlimFly(int(kv["q"]), p)  # type: ignore[arg-type]
        if family == "mlfm":
            return MLFM(
                int(kv["h"]),
                l=int(kv["l"]) if "l" in kv else None,
                p=int(kv["p"]) if "p" in kv else None,
            )
        if family == "oft":
            return OFT(int(kv["k"]), p=int(kv["p"]) if "p" in kv else None)
        if family == "sspt":
            return SSPT(int(kv["r1"]), int(kv["r2"]))
        if family == "hyperx":
            if "r" in kv:
                return HyperX2D.balanced(int(kv["r"]))
            return HyperX2D(int(kv["s1"]), int(kv["s2"]), int(kv["p"]) if "p" in kv else None)
        if family == "ft2":
            return FatTree2L(int(kv["r"]))
        if family == "ft3":
            return FatTree3L(int(kv["r"]))
        if family == "dfly":
            return Dragonfly(
                int(kv["p"]),
                a=int(kv["a"]) if "a" in kv else None,
                h=int(kv["h"]) if "h" in kv else None,
            )
    except KeyError as exc:
        raise ValueError(f"topology spec {spec!r}: missing parameter {exc}") from exc
    raise ValueError(f"unknown topology family {family!r}")


def _make_routing(topology: Topology, name: str, seed: int):
    from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting

    name = name.lower()
    if name == "min":
        return MinimalRouting(topology, seed=seed)
    if name == "inr":
        return IndirectRandomRouting(topology, seed=seed)
    if name in ("ugal", "ugal-a"):
        if isinstance(topology, SlimFly):
            return UGALRouting(topology, cost_mode="sf", c_sf=1.0, num_indirect=4, seed=seed)
        return UGALRouting(topology, c=2.0, num_indirect=4, seed=seed)
    if name in ("ugal-ath", "ugalth"):
        if isinstance(topology, SlimFly):
            return UGALRouting(
                topology, cost_mode="sf", c_sf=1.0, num_indirect=4, threshold=0.10, seed=seed
            )
        return UGALRouting(topology, c=2.0, num_indirect=4, threshold=0.10, seed=seed)
    raise ValueError(f"unknown routing {name!r} (min | inr | ugal | ugal-ath)")


def _make_pattern(topology: Topology, name: str, seed: int):
    from repro.traffic import (
        BitComplement,
        BitReverse,
        HotspotTraffic,
        ShiftTraffic,
        Tornado,
        Transpose,
        UniformRandom,
        worst_case_traffic,
    )

    name = name.lower()
    if name == "uniform":
        return UniformRandom(topology.num_nodes)
    if name == "worstcase":
        return worst_case_traffic(topology, seed=seed)
    if name.startswith("shift"):
        _, _, arg = name.partition(":")
        shift = int(arg) if arg else topology.nodes_attached(topology.endpoint_routers()[0])
        return ShiftTraffic(topology.num_nodes, shift)
    if name == "bitcomp":
        return BitComplement(topology.num_nodes)
    if name == "bitrev":
        return BitReverse(topology.num_nodes)
    if name == "transpose":
        return Transpose(topology.num_nodes)
    if name == "tornado":
        return Tornado(topology.num_nodes)
    if name.startswith("hotspot"):
        _, _, arg = name.partition(":")
        fraction = float(arg) if arg else 0.2
        return HotspotTraffic(topology.num_nodes, hotspots=[0], hot_fraction=fraction)
    raise ValueError(
        f"unknown pattern {name!r} (uniform | worstcase | shift[:k] | bitcomp | "
        f"bitrev | transpose | tornado | hotspot[:frac])"
    )


def _cmd_info(args) -> int:
    from repro.analysis import cost_metrics
    from repro.experiments.report import ascii_table

    topo = parse_topology(args.topology)
    m = cost_metrics(topo, with_diameter=not args.no_diameter)
    rows = [
        ["name", m.topology],
        ["end-nodes (N)", m.num_nodes],
        ["routers (R)", m.num_routers],
        ["max radix", m.max_radix],
        ["router links", topo.num_router_links],
        ["ports / node", f"{m.ports_per_node:.3f}"],
        ["links / node", f"{m.links_per_node:.3f}"],
    ]
    if m.diameter is not None:
        rows.append(["endpoint diameter", m.diameter])
    print(ascii_table(["metric", "value"], rows))
    return 0


def _maybe_profile(enabled: bool, top: int = 20):
    """Context manager wrapping a run in cProfile when *enabled*.

    On exit prints the *top* functions by internal time to stderr, so
    the profile never corrupts machine-readable stdout output.
    """
    import contextlib

    if not enabled:
        return contextlib.nullcontext()

    import cProfile
    import pstats

    @contextlib.contextmanager
    def _profiled():
        prof = cProfile.Profile()
        prof.enable()
        try:
            yield
        finally:
            prof.disable()
            print(f"--- cProfile: top {top} functions by internal time ---",
                  file=sys.stderr)
            stats = pstats.Stats(prof, stream=sys.stderr)
            stats.sort_stats("tottime")
            stats.print_stats(top)

    return _profiled()


def _print_kernel_profile(net) -> None:
    """--profile satellite for the kernel backend: the Python-escape
    split (where the remaining wall-clock lives once dispatch is in C),
    printed to stderr next to the cProfile table."""
    engine = net.engine
    stats_fn = getattr(engine, "kernel_stats", None)
    if stats_fn is None:
        return
    s = stats_fn()
    esc_ns = s["escape_ns"]
    run_ns = s["run_ns"]
    # A run that never entered the kernel (or a fully-fast one with no
    # escapes) must still print a well-formed table: guard the percent
    # denominator and say explicitly when the escape set is empty.
    denom = run_ns or 1.0
    in_kernel_ns = max(run_ns - esc_ns, 0.0)
    print("--- kernel escape split ---", file=sys.stderr)
    print(
        f"in-kernel: {s['events']} events, {in_kernel_ns / 1e6:.1f} ms "
        f"({100.0 * in_kernel_ns / denom:.1f}% of kernel run time)",
        file=sys.stderr,
    )
    for name, f in sorted(s.get("fast_path", {}).items()):
        print(
            f"fast-path {name}: {f['count']} packets handled in C",
            file=sys.stderr,
        )
    fired = [
        (name, e) for name, e in s["escapes"].items() if e["count"]
    ]
    if not fired:
        print("escapes: none", file=sys.stderr)
        return
    for name, e in sorted(fired, key=lambda kv: kv[1]["ns"], reverse=True):
        print(
            f"escape {name}: {e['count']} calls, {e['ns'] / 1e6:.1f} ms "
            f"({100.0 * e['ns'] / denom:.1f}%)",
            file=sys.stderr,
        )


def _sim_config(args):
    """The run's SimConfig: the paper's, plus --check/--backend/--faults
    when requested."""
    from repro.sim import PAPER_CONFIG, SimConfig

    check = getattr(args, "check", False)
    backend = getattr(args, "backend", "object")
    faults = tuple(getattr(args, "faults", None) or ())
    if not check and backend == "object" and not faults:
        return PAPER_CONFIG
    return SimConfig(check=check, backend=backend, faults=faults,
                     fault_policy=getattr(args, "fault_policy", "reroute"))


def _print_fault_summary(net) -> None:
    fm = net.fault_manager
    s = fm.summary()
    print(
        f"faults: {s['events_fired']} events fired, "
        f"{s['reroutes']} packets rerouted, {s['dropped']} dropped, "
        f"{s['links_down']} links still down "
        f"(first failure at {s['first_fault_ns']}ns)"
    )


def _print_check_summary(net) -> None:
    checker = net.checker
    print(
        f"check: invariants verified ({checker.injected} packets tracked, "
        f"{checker.audits} full audits, {checker.history.appended} transitions)"
    )


def _cmd_simulate(args) -> int:
    from repro.sim import Network

    topo = parse_topology(args.topology)
    net = Network(topo, _make_routing(topo, args.routing, args.seed), _sim_config(args))
    tracer = net.enable_trace(capacity=args.trace) if args.trace else None
    with _maybe_profile(args.profile):
        stats = net.run_synthetic(
            _make_pattern(topo, args.pattern, args.seed),
            load=args.load,
            warmup_ns=args.warmup,
            measure_ns=args.measure,
            seed=args.seed,
        )
    if args.profile:
        _print_kernel_profile(net)
    print(
        f"{topo.name} routing={args.routing} pattern={args.pattern} load={args.load:.2f}: "
        f"throughput={stats.throughput:.3f} mean_latency={stats.mean_latency_ns:.1f}ns "
        f"p99={stats.p99_latency_ns:.1f}ns packets={stats.ejected_packets}"
    )
    if net.fault_manager is not None:
        _print_fault_summary(net)
    if net.checker is not None:
        _print_check_summary(net)
    if tracer is not None:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(tracer.by_kind().items()))
        print(f"trace: {len(tracer.records)} packets recorded ({kinds})")
        if tracer.dropped:
            print(
                f"warning: trace capacity {tracer.capacity} exhausted; "
                f"{tracer.dropped} delivered packets were not recorded, so the "
                f"traced latency distribution is truncated (raise --trace)",
                file=sys.stderr,
            )
    return 0


def _orchestration_requested(args) -> bool:
    return args.jobs != 1 or args.resume or args.force


def _make_orchestrator(args):
    """Build an Orchestrator from the shared ``--jobs/--resume/...`` flags."""
    from repro.orchestrate import Orchestrator

    return Orchestrator(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        resume=args.resume,
        force=args.force,
        timeout_s=args.job_timeout,
        max_retries=args.retries,
        telemetry_path=args.telemetry,
        progress=True if args.progress else None,
    )


def _print_campaign_stats(stats) -> None:
    jobs = stats.get("jobs", {})
    print(
        f"campaign: {jobs.get('done', 0)} done, {jobs.get('failed', 0)} failed, "
        f"{stats.get('cache_hits', 0)} cache hits, {stats.get('executed', 0)} executed "
        f"in {stats.get('wall_clock_s', 0.0):.1f}s "
        f"({stats.get('events_per_second', 0.0) / 1e3:.0f}k events/s)"
    )


def _cmd_sweep(args) -> int:
    from repro.experiments import load_sweep, saturation_point
    from repro.experiments.report import ascii_table

    topo = parse_topology(args.topology)
    loads = [float(x) for x in args.loads.split(",")]
    if _orchestration_requested(args):
        from repro.orchestrate import cli_pattern_spec, cli_routing_spec, orchestrated_load_sweep

        orch = _make_orchestrator(args)
        try:
            points = orchestrated_load_sweep(
                args.topology,
                cli_routing_spec(topo, args.routing),
                cli_pattern_spec(topo, args.pattern, seed=args.seed),
                loads,
                orchestrator=orch,
                warmup_ns=args.warmup,
                measure_ns=args.measure,
                seed=args.seed,
            )
        except RuntimeError as exc:
            # A point failed even after retries: report it like every
            # other CLI error instead of unwinding with a traceback.
            print(f"error: {exc}", file=sys.stderr)
            _print_campaign_stats(orch.last_stats)
            return 1
    else:
        points = load_sweep(
            topo,
            lambda t, s: _make_routing(t, args.routing, s),
            lambda t: _make_pattern(t, args.pattern, args.seed),
            loads,
            warmup_ns=args.warmup,
            measure_ns=args.measure,
            seed=args.seed,
        )
        orch = None
    rows = [
        [p.load, p.throughput, p.mean_latency_ns, p.indirect_fraction] for p in points
    ]
    print(ascii_table(["load", "throughput", "latency ns", "indirect frac"], rows))
    print(f"saturation point: {saturation_point(points):.3f}")
    if orch is not None:
        _print_campaign_stats(orch.last_stats)
    return 0


def _cmd_campaign(args) -> int:
    """Cross-product campaign: topologies x routings x patterns x loads x seeds."""
    from repro.experiments.export import write_json
    from repro.experiments.report import ascii_table
    from repro.orchestrate import cli_pattern_spec, cli_routing_spec, sweep_jobs

    loads = [float(x) for x in args.loads.split(",")]
    seeds = [int(x) for x in args.seeds.split(",")]
    config = _sim_config(args)
    jobs = []
    for topo_spec in args.topologies.split(";"):
        topo = parse_topology(topo_spec)
        for routing in args.routings.split(","):
            for pattern in args.patterns.split(","):
                for seed in seeds:
                    jobs.extend(sweep_jobs(
                        topo_spec,
                        cli_routing_spec(topo, routing),
                        cli_pattern_spec(topo, pattern, seed=seed),
                        loads,
                        warmup_ns=args.warmup,
                        measure_ns=args.measure,
                        seed=seed,
                        config=config,
                        tag=f"{topo_spec}/{routing}/{pattern}/s{seed}",
                    ))
    orch = _make_orchestrator(args)
    result = orch.run(jobs)
    rows = []
    for job, job_id in zip(jobs, result.order):
        outcome = result.outcomes[job_id]
        if outcome.ok:
            point = outcome.result.sweep_point()
            rows.append([job.tag, job.load, point.throughput, point.mean_latency_ns,
                         "cached" if outcome.result.cached else "run"])
        else:
            rows.append([job.tag, job.load, "-", "-", f"FAILED: {outcome.error}"])
    print(ascii_table(["series", "load", "throughput", "latency ns", "status"], rows))
    _print_campaign_stats(result.stats)
    if args.summary_json:
        write_json(args.summary_json, result.stats)
        print(f"summary written to {args.summary_json}")
    return 1 if result.failed else 0


def _cmd_exchange(args) -> int:
    from repro.sim import Network
    from repro.traffic import AllToAll, NearestNeighbor3D, paper_torus_dims

    topo = parse_topology(args.topology)
    if args.pattern == "a2a":
        exchange = AllToAll(topo.num_nodes, message_bytes=args.msg_bytes, seed=args.seed)
    elif args.pattern == "nn":
        exchange = NearestNeighbor3D(
            topo.num_nodes, message_bytes=args.msg_bytes, dims=paper_torus_dims(topo)
        )
    else:
        raise ValueError(f"unknown exchange pattern {args.pattern!r} (a2a | nn)")
    net = Network(topo, _make_routing(topo, args.routing, args.seed))
    res = net.run_exchange(exchange)
    print(
        f"{topo.name} {args.pattern} routing={args.routing}: "
        f"effective_throughput={res['effective_throughput']:.3f} "
        f"completion={res['completion_ns'] / 1000:.2f}us "
        f"packets={int(res['packets'])}"
    )
    return 0


def _cmd_workload(args) -> int:
    """Closed-loop collective workloads (repro.workload)."""
    from repro.experiments.report import ascii_table

    topo = parse_topology(args.topology)
    sizes = [int(x) for x in args.sizes.split(",")]
    wkwargs: Dict[str, object] = {}
    if args.ranks is not None:
        wkwargs["ranks"] = args.ranks
    if args.iterations != 1:
        wkwargs["iterations"] = args.iterations
    if args.barrier:
        wkwargs["barrier"] = True

    def indirect_fraction(res: Dict) -> float:
        kinds: Dict[str, int] = {}
        for phase in res["phases"].values():
            for kind, count in phase["kind_counts"].items():
                kinds[kind] = kinds.get(kind, 0) + count
        total = sum(kinds.values()) or 1
        return kinds.get("indirect", 0) / total

    config = _sim_config(args)
    orch = None
    if _orchestration_requested(args):
        from repro.orchestrate import cli_routing_spec, workload_size_jobs

        orch = _make_orchestrator(args)
        jobs = workload_size_jobs(
            args.topology,
            cli_routing_spec(topo, args.routing),
            args.collective,
            sizes,
            workload_kwargs=wkwargs,
            seed=args.seed,
            config=config,
        )
        result = orch.run(jobs)
        try:
            result.raise_on_failure()
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            _print_campaign_stats(orch.last_stats)
            return 1
        outcomes = [result.outcomes[job_id].result.payload for job_id in result.order]
    else:
        from repro.experiments.runner import run_workload
        from repro.workload import build_workload

        outcomes = []
        nets: list = []
        with _maybe_profile(args.profile):
            for size in sizes:
                workload = build_workload(
                    args.collective, topo.num_nodes, size, **wkwargs
                )
                outcomes.append(
                    run_workload(
                        topo,
                        lambda t, s: _make_routing(t, args.routing, s),
                        workload,
                        seed=args.seed,
                        config=config,
                        net_sink=nets if args.profile else None,
                    )
                )
        if args.profile and nets:
            _print_kernel_profile(nets[-1])
    rows = [
        [
            size,
            res["messages"],
            res["completion_ns"],
            res["critical_path_ideal_ns"],
            res["contention_stretch"],
            res["link_load_skew"],
            indirect_fraction(res),
        ]
        for size, res in zip(sizes, outcomes)
    ]
    print(ascii_table(
        ["msg bytes", "messages", "completion ns", "critical path ns",
         "stretch", "link skew", "indirect frac"],
        rows,
        title=f"{topo.name} {args.collective} routing={args.routing} (closed loop)",
    ))
    if getattr(args, "faults", None):
        for size, res in zip(sizes, outcomes):
            print(
                f"faults[{size}B]: {res.get('fault_events', 0)} events fired, "
                f"{res.get('fault_reroutes', 0)} packets rerouted, "
                f"{res.get('fault_dropped', 0)} dropped, post-fault skew "
                f"{res.get('post_fault_link_load_skew', 0.0):.3f}"
            )
    if args.check:
        print("check: invariant checker enabled; all runs completed without violation")
    if orch is not None:
        _print_campaign_stats(orch.last_stats)
    return 0


def _cmd_resilience(args) -> int:
    """Mid-collective degradation sweep (repro.experiments.resilience)."""
    from repro.experiments.resilience import resilience_data

    try:
        data = resilience_data(
            scale=args.scale,
            seed=args.seed,
            collective=args.collective,
            message_bytes=args.msg_bytes,
            drip_count=args.failures,
            drip_every_ns=args.every,
            drip_seed=args.fault_seed,
            fault_policy=args.fault_policy,
            backend=args.backend,
            check=args.check,
        )
    except RuntimeError as exc:
        # A dropped packet orphans its message's dependents, so the
        # schedule cannot complete -- report instead of unwinding.
        print(f"error: {exc}", file=sys.stderr)
        if args.fault_policy == "drop":
            print("note: fault-policy 'drop' is incompatible with "
                  "closed-loop workload completion; use 'reroute'",
                  file=sys.stderr)
        return 1
    print(data["report"])
    print(f"fault schedule: {', '.join(data['fault_specs'])}")
    return 0


def _cmd_figure(args) -> int:
    import inspect

    from repro import experiments

    func = getattr(experiments, f"{args.figure}_data", None)
    if func is None:
        valid = [n[: -len("_data")] for n in dir(experiments) if n.endswith("_data")]
        raise ValueError(f"unknown figure {args.figure!r}; choose from {sorted(valid)}")
    if args.figure in ("table2", "fig3"):
        data = func()
    else:
        kwargs = {}
        orch = None
        if (_orchestration_requested(args)
                and "orchestrator" in inspect.signature(func).parameters):
            orch = _make_orchestrator(args)
            kwargs["orchestrator"] = orch
        data = func(args.scale, **kwargs)
        if orch is not None and orch.last_stats:
            _print_campaign_stats(orch.last_stats)
    print(data["report"])
    return 0


def _cmd_validate(args) -> int:
    """Network doctor: structure, deadlock, forwarding-table checks."""
    from repro.routing import build_cdg_indirect, build_cdg_minimal
    from repro.routing.tables import ForwardingTables
    from repro.routing.vc import default_vc_policy
    from repro.topology.validate import validate_topology

    topo = parse_topology(args.topology)
    failures = 0

    report = validate_topology(topo)
    print(f"structure: {'OK' if report.ok else 'FAIL'} "
          f"(endpoint diameter {report.diameter})")
    for problem in report.problems:
        print(f"  - {problem}")
    failures += not report.ok

    policy = default_vc_policy(topo)
    minimal_ok = build_cdg_minimal(topo, policy).is_acyclic()
    print(f"deadlock (minimal, {type(policy).__name__}, "
          f"{policy.num_vcs(False)} VC): {'OK' if minimal_ok else 'FAIL'}")
    failures += not minimal_ok
    if not args.skip_indirect:
        indirect_ok = build_cdg_indirect(topo, policy).is_acyclic()
        print(f"deadlock (indirect, {policy.num_vcs(True)} VC): "
              f"{'OK' if indirect_ok else 'FAIL'}")
        failures += not indirect_ok

    tables = ForwardingTables(topo)
    problems = tables.verify()
    print(f"forwarding tables: {'OK' if not problems else 'FAIL'} "
          f"({tables.total_entries()} entries)")
    for problem in problems[:5]:
        print(f"  - {problem}")
    failures += bool(problems)

    print("verdict:", "HEALTHY" if failures == 0 else f"{failures} check(s) failed")
    return 0 if failures == 0 else 1


def _cmd_reproduce(args) -> int:
    from repro.experiments.export import write_json
    from repro.experiments.summary import run_all, write_summary

    only = args.only.split(",") if args.only else None

    def progress(exp_id: str, seconds: float) -> None:
        print(f"  {exp_id}: done in {seconds:.1f}s")

    print(f"Reproducing {'all experiments' if only is None else only} at scale {args.scale}")
    results = run_all(scale=args.scale, only=only, progress=progress)
    write_summary(results, args.output, scale=args.scale)
    print(f"summary written to {args.output}")
    if args.json:
        write_json(args.json, {k: {kk: vv for kk, vv in v.items() if kk != "report"}
                               for k, v in results.items()})
        print(f"raw data written to {args.json}")
    return 0


def _cmd_serve(args) -> int:
    """Simulation-as-a-service front-end (repro.serve)."""
    from repro.serve import serve

    def ready(host: str, port: int) -> None:
        # Parsed by smoke scripts and clients waiting for startup; keep
        # the prefix stable.
        print(f"repro-serve listening on http://{host}:{port} "
              f"(workers={args.workers}, store={args.store})", flush=True)

    return serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store_dir=args.store,
        spool_dir=args.spool,
        max_queued=args.max_queued,
        max_running=args.max_running,
        job_timeout_s=args.job_timeout,
        max_retries=args.retries,
        inline=args.inline,
        store_gc_age_s=args.store_gc_age,
        ready=ready,
    )


def _cmd_scalability(args) -> int:
    from repro.analysis import scalability_table
    from repro.experiments.report import ascii_table

    table = scalability_table(args.max_radix)
    rows = sorted(table.items(), key=lambda kv: -kv[1])
    print(ascii_table(["family", f"max N @ radix {args.max_radix}"], rows))
    return 0


def _cmd_bisection(args) -> int:
    from repro.analysis import bisection_bandwidth

    topo = parse_topology(args.topology)
    bb = bisection_bandwidth(topo, restarts=args.restarts, seed=args.seed)
    print(
        f"{bb.topology}: cut={bb.cut_links:.0f} links, "
        f"bisection={bb.per_node:.3f} b/node, imbalance={bb.imbalance:.3f}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-effective diameter-two topologies (SC '15) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="topology metrics")
    p.add_argument("topology")
    p.add_argument("--no-diameter", action="store_true")
    p.set_defaults(func=_cmd_info)

    def add_sim_args(p):
        p.add_argument("topology")
        p.add_argument("--routing", default="min")
        p.add_argument("--pattern", default="uniform")
        p.add_argument("--warmup", type=float, default=2_000.0)
        p.add_argument("--measure", type=float, default=8_000.0)
        p.add_argument("--seed", type=int, default=0)

    def add_check_arg(p):
        p.add_argument("--check", action="store_true",
                       help="run with the invariant checker (repro.sim.invariants): "
                            "verifies packet conservation, credit loops, VC "
                            "legality, latency floors and progress on every "
                            "transition; ~2x slower, identical results")

    def add_backend_arg(p):
        p.add_argument("--backend", default="object",
                       choices=["object", "batched", "kernel"],
                       help="simulator backend: 'object' is the reference "
                            "event-per-callback engine, 'batched' dispatches "
                            "typed events over struct-of-arrays state, "
                            "'kernel' runs the batched loop as a compiled C "
                            "extension (built at first use; falls back to "
                            "'batched' with a warning when no compiler is "
                            "available).  All bit-identical, "
                            "conformance-gated; see docs/PERFORMANCE.md)")

    def add_fault_args(p):
        g = p.add_argument_group("fault injection (repro.resilience)")
        g.add_argument("--faults", action="append", default=None,
                       metavar="SPEC",
                       help="fault-schedule entry (repeatable): "
                            "'fail@T:U-V', 'recover@T:U-V', 'fail@T:rR' "
                            "(all links of router R), or "
                            "'drip@T:n=N,every=E[,seed=S]' for seeded "
                            "random connectivity-preserving failures; "
                            "requires compiled routing")
        g.add_argument("--fault-policy", default="reroute",
                       choices=["reroute", "drop"],
                       help="packets queued toward a dead link are "
                            "rerouted at their current router (default) "
                            "or counted dropped; 'drop' breaks closed-"
                            "loop workload completion")

    def add_orchestration_args(p):
        g = p.add_argument_group("orchestration (repro.orchestrate)")
        g.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="parallel worker processes (1 = serial, in-process)")
        g.add_argument("--resume", action="store_true",
                       help="skip points already in the result cache")
        g.add_argument("--force", action="store_true",
                       help="invalidate cached results for these points and re-run")
        g.add_argument("--cache-dir", default=".repro-cache", metavar="DIR",
                       help="result-cache directory (default: %(default)s)")
        g.add_argument("--job-timeout", type=float, default=None, metavar="S",
                       help="per-job wall-clock timeout in seconds")
        g.add_argument("--retries", type=int, default=1, metavar="K",
                       help="extra attempts per failed/crashed job (default: %(default)s)")
        g.add_argument("--telemetry", default=None, metavar="FILE",
                       help="append JSONL campaign events to FILE")
        g.add_argument("--progress", action="store_true",
                       help="force the live progress line even when not a TTY")

    p = sub.add_parser("simulate", help="one synthetic-traffic simulation")
    add_sim_args(p)
    p.add_argument("--load", type=float, default=0.5)
    p.add_argument("--trace", type=int, default=0, metavar="N",
                   help="record up to N delivered packets (route kind, latency); "
                        "warns if the capacity truncates the distribution")
    p.add_argument("--profile", action="store_true",
                   help="wrap the run in cProfile and print the top hot "
                        "functions to stderr")
    add_check_arg(p)
    add_backend_arg(p)
    add_fault_args(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("sweep", help="offered-load sweep")
    add_sim_args(p)
    p.add_argument("--loads", default="0.2,0.4,0.6,0.8")
    add_orchestration_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="orchestrated sweep grid: topologies x routings x patterns x seeds",
    )
    p.add_argument("--topologies", required=True,
                   help="';'-separated topology specs, e.g. 'sf:q=5;oft:k=4'")
    p.add_argument("--routings", default="min",
                   help="comma-separated routings (min | inr | ugal | ugal-ath)")
    p.add_argument("--patterns", default="uniform",
                   help="comma-separated traffic patterns")
    p.add_argument("--loads", default="0.2,0.4,0.6,0.8")
    p.add_argument("--seeds", default="0", help="comma-separated base seeds")
    p.add_argument("--warmup", type=float, default=2_000.0)
    p.add_argument("--measure", type=float, default=8_000.0)
    p.add_argument("--summary-json", default=None, metavar="FILE",
                   help="write the campaign summary (wall-clock, cache hits, ev/s) as JSON")
    add_check_arg(p)
    add_backend_arg(p)
    add_orchestration_args(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "workload",
        help="closed-loop collective workload (dependency-DAG schedule)",
    )
    p.add_argument("topology")
    p.add_argument("--collective", default="ring-allreduce",
                   choices=["ring-allreduce", "rd-allreduce", "allgather",
                            "halo3d", "phased-a2a"])
    p.add_argument("--routing", default="min")
    p.add_argument("--sizes", default="4096", metavar="B1,B2,...",
                   help="comma-separated message sizes in bytes (one run each)")
    p.add_argument("--ranks", type=int, default=None,
                   help="participating ranks (default: every node; rd-allreduce "
                        "trims to the largest power of two)")
    p.add_argument("--iterations", type=int, default=1,
                   help="stencil sweeps for halo3d (default: %(default)s)")
    p.add_argument("--barrier", action="store_true",
                   help="phased-a2a: global barrier between phases")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", action="store_true",
                   help="wrap the serial run in cProfile and print the top "
                        "hot functions to stderr (ignored with --jobs > 1: "
                        "the work executes in worker processes)")
    add_check_arg(p)
    add_backend_arg(p)
    add_fault_args(p)
    add_orchestration_args(p)
    p.set_defaults(func=_cmd_workload)

    p = sub.add_parser("exchange", help="finite exchange (a2a | nn)")
    p.add_argument("topology")
    p.add_argument("--pattern", default="a2a", choices=["a2a", "nn"])
    p.add_argument("--routing", default="min")
    p.add_argument("--msg-bytes", type=int, default=512)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_exchange)

    p = sub.add_parser(
        "resilience",
        help="mid-collective degradation sweep under identical fault schedules",
    )
    p.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    p.add_argument("--collective", default="ring-allreduce",
                   choices=["ring-allreduce", "rd-allreduce", "allgather",
                            "halo3d", "phased-a2a"])
    p.add_argument("--msg-bytes", type=int, default=None,
                   help="message size in bytes (default: the scale's A2A size)")
    p.add_argument("--failures", type=int, default=2, metavar="N",
                   help="links to fail mid-run (default: %(default)s)")
    p.add_argument("--every", type=float, default=100.0, metavar="NS",
                   help="spacing between drip failures (default: %(default)s)")
    p.add_argument("--fault-seed", type=int, default=1,
                   help="drip link-selection seed (default: %(default)s)")
    p.add_argument("--fault-policy", default="reroute",
                   choices=["reroute", "drop"])
    p.add_argument("--seed", type=int, default=0)
    add_check_arg(p)
    add_backend_arg(p)
    p.set_defaults(func=_cmd_resilience)

    p = sub.add_parser("figure", help="regenerate a paper artefact")
    p.add_argument("figure", help="table2 | fig3 | ... | fig14 | diversity")
    p.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    add_orchestration_args(p)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("validate", help="structure/deadlock/table checks")
    p.add_argument("topology")
    p.add_argument("--skip-indirect", action="store_true",
                   help="skip the (larger) indirect-routing CDG check")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("reproduce", help="run all table/figure reproductions")
    p.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    p.add_argument("--only", default=None, help="comma-separated experiment ids")
    p.add_argument("--output", default="reproduction_summary.md")
    p.add_argument("--json", default=None, help="also dump raw data as JSON")
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser(
        "serve",
        help="simulation-as-a-service HTTP API (asyncio, repro.serve)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="TCP port (0 = pick a free one; the chosen port is "
                        "printed on the ready line)")
    p.add_argument("--workers", default="auto", metavar="N|MIN:MAX|auto",
                   help="simulation worker pool: a fixed count, a min:max "
                        "autoscaling range, or 'auto' (1:min(cpus,8), scaled "
                        "by queue depth with hysteresis; default: %(default)s)")
    p.add_argument("--store", default=".repro-cache", metavar="DIR",
                   help="content-addressed ResultStore served at "
                        "/v1/results/{hash} (default: %(default)s)")
    p.add_argument("--spool", default=None, metavar="DIR",
                   help="event streams + drain state (default: STORE/serve)")
    p.add_argument("--max-queued", type=int, default=16, metavar="N",
                   help="per-tenant queued-job quota; breach answers 429 "
                        "(default: %(default)s)")
    p.add_argument("--max-running", type=int, default=4, metavar="N",
                   help="per-tenant concurrently-running ceiling; excess "
                        "stays queued behind other tenants (default: %(default)s)")
    p.add_argument("--job-timeout", type=float, default=None, metavar="S",
                   help="per-job wall-clock timeout in seconds")
    p.add_argument("--retries", type=int, default=1, metavar="K",
                   help="extra attempts per failed/crashed job (default: %(default)s)")
    p.add_argument("--store-gc-age", type=float, default=None, metavar="S",
                   help="periodically prune cached results older than S seconds")
    p.add_argument("--inline", action="store_true",
                   help="run jobs in server threads instead of per-job "
                        "worker processes (no crash isolation; for tests "
                        "and fork-averse environments)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("scalability", help="Fig. 3 summary")
    p.add_argument("--max-radix", type=int, default=64)
    p.set_defaults(func=_cmd_scalability)

    p = sub.add_parser("bisection", help="Fig. 4 estimate for one topology")
    p.add_argument("topology")
    p.add_argument("--restarts", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_bisection)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # Surface invariant violations as their structured report rather
        # than a traceback that buries it (lazy import: the checker may
        # never have been loaded).
        from repro.sim.invariants import InvariantViolation

        if isinstance(exc, InvariantViolation):
            print(exc.report(), file=sys.stderr)
            return 3
        raise
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        return 0
