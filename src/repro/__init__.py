"""repro -- Cost-Effective Diameter-Two Topologies (SC '15), reproduced.

An open implementation of Kathareios, Minkenberg, Prisacari, Rodriguez
and Hoefler, *Cost-Effective Diameter-Two Topologies: Analysis and
Evaluation*, SC '15 (DOI 10.1145/2807591.2807652):

- :mod:`repro.topology` -- Slim Fly, Multi-Layer Full-Mesh, two-level
  Orthogonal Fat-Tree, 2D HyperX, 2/3-level Fat-Trees, Dragonfly;
- :mod:`repro.routing` -- minimal, indirect random (Valiant) and UGAL-L
  adaptive routing with VC-based deadlock avoidance and an exact
  channel-dependency-graph checker;
- :mod:`repro.sim` -- a flit/packet-level event-driven network
  simulator (VC input-output-buffered switches, credit flow control);
- :mod:`repro.traffic` -- uniform, per-topology worst-case, all-to-all
  and 3D-torus nearest-neighbour workloads;
- :mod:`repro.analysis` -- cost, scalability, bisection bandwidth
  (multilevel partitioner), path diversity and static link loads;
- :mod:`repro.experiments` -- one reproduction function per table and
  figure of the paper.

Quickstart::

    from repro.topology import SlimFly
    from repro.routing import UGALRouting
    from repro.sim import Network
    from repro.traffic import UniformRandom

    topo = SlimFly(q=5)
    net = Network(topo, UGALRouting(topo, cost_mode="sf"))
    stats = net.run_synthetic(UniformRandom(topo.num_nodes), load=0.7)
    print(f"throughput={stats.throughput:.2f}")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
