"""Timed fault schedules: parse, validate, expand.

A schedule is a sequence of spec strings (CLI ``--faults``, config
``SimConfig.faults``), each describing link/router failures or
recoveries at simulated-time instants:

``fail@T:U-V``
    Fail the (undirected) link between routers U and V at time T ns.
``recover@T:U-V``
    Recover a previously failed link at time T ns.
``fail@T:rR`` / ``recover@T:rR``
    Fail (recover) every live (failed) link incident to router R.
``drip@T:n=N,every=E[,seed=S]``
    Starting at time T, fail one randomly chosen live link every E ns,
    N times total.  Each drip spec draws from its own
    ``random.Random(S)`` (default seed 0) and only picks links whose
    removal keeps the live router graph connected, so drip schedules
    are reproducible and never partition the network.

Parsing happens at construction (so ``SimConfig`` validation rejects
malformed specs early); :meth:`FaultSchedule.expand` binds the schedule
to a concrete topology, resolving drips and checking semantic rules
(no double-fail, no recovery of a live link, links must exist).

This module deliberately imports nothing from :mod:`repro.sim` --
``SimConfig.__post_init__`` validates specs through it, and a circular
import would wedge that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["FaultEvent", "FaultSchedule"]

Link = Tuple[int, int]


@dataclass(frozen=True)
class FaultEvent:
    """One resolved schedule entry: at ``time`` ns, fail or recover
    every link in ``links`` (normalized ``(min, max)`` pairs, sorted).
    ``spec`` is the source spec string, kept for reporting."""

    time: float
    kind: str  # "fail" | "recover"
    links: Tuple[Link, ...]
    spec: str


def _normalize(u: int, v: int) -> Link:
    return (u, v) if u < v else (v, u)


class _Entry:
    """A parsed spec instance awaiting topology binding."""

    __slots__ = ("time", "kind", "target", "spec")

    def __init__(self, time: float, kind: str, target, spec: str):
        self.time = time
        self.kind = kind  # "fail" | "recover" | "drip"
        self.target = target  # Link | ("router", rid) | ("drip", index)
        self.spec = spec


class FaultSchedule:
    """An ordered collection of fault specs (see module docstring).

    Construction parses and syntax-checks every spec; ``expand`` binds
    them to a topology and returns the concrete event timeline.
    """

    def __init__(self, specs: Iterable[str]):
        self.specs: Tuple[str, ...] = tuple(specs)
        self._entries: List[_Entry] = []
        self._drip_params: List[Tuple[float, int, float, int]] = []
        for spec in self.specs:
            self._parse(spec)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultSchedule({list(self.specs)!r})"

    # -- parsing -------------------------------------------------------------

    def _parse(self, spec: str) -> None:
        if not isinstance(spec, str):
            raise ValueError(f"fault spec must be a string, got {spec!r}")
        head, sep, body = spec.partition("@")
        if not sep or head not in ("fail", "recover", "drip"):
            raise ValueError(
                f"bad fault spec {spec!r}: expected "
                "'fail@T:...', 'recover@T:...' or 'drip@T:...'")
        time_s, sep, rest = body.partition(":")
        try:
            time = float(time_s)
        except ValueError:
            raise ValueError(f"bad fault spec {spec!r}: non-numeric time "
                             f"{time_s!r}") from None
        if not sep or time < 0:
            raise ValueError(f"bad fault spec {spec!r}: missing target or "
                             "negative time")
        if head == "drip":
            self._parse_drip(spec, time, rest)
            return
        if rest.startswith("r"):
            try:
                rid = int(rest[1:])
            except ValueError:
                raise ValueError(f"bad fault spec {spec!r}: router target "
                                 f"must be 'r<int>', got {rest!r}") from None
            self._entries.append(_Entry(time, head, ("router", rid), spec))
            return
        u_s, sep, v_s = rest.partition("-")
        try:
            u, v = int(u_s), int(v_s)
        except ValueError:
            raise ValueError(f"bad fault spec {spec!r}: link target must be "
                             f"'U-V' or 'r<R>', got {rest!r}") from None
        if u == v:
            raise ValueError(f"bad fault spec {spec!r}: self-link {u}-{v}")
        self._entries.append(_Entry(time, head, _normalize(u, v), spec))

    def _parse_drip(self, spec: str, time: float, rest: str) -> None:
        n = every = seed = None
        for part in rest.split(","):
            key, sep, val = part.partition("=")
            if not sep:
                raise ValueError(f"bad fault spec {spec!r}: drip parameter "
                                 f"{part!r} is not key=value")
            try:
                if key == "n":
                    n = int(val)
                elif key == "every":
                    every = float(val)
                elif key == "seed":
                    seed = int(val)
                else:
                    raise ValueError
            except ValueError:
                raise ValueError(f"bad fault spec {spec!r}: unknown or "
                                 f"malformed drip parameter {part!r}") from None
        if n is None or n < 1 or every is None or every <= 0:
            raise ValueError(f"bad fault spec {spec!r}: drip needs n>=1 and "
                             "every>0")
        drip_idx = len(self._drip_params)
        self._drip_params.append((time, n, every, 0 if seed is None else seed))
        for k in range(n):
            self._entries.append(
                _Entry(time + k * every, "drip", ("drip", drip_idx), spec))

    # -- expansion -----------------------------------------------------------

    def expand(self, topology) -> Tuple[FaultEvent, ...]:
        """Bind the schedule to ``topology``, resolving router and drip
        targets into concrete link sets and validating the timeline.

        Raises ``ValueError`` on semantic errors: unknown links,
        double-fails, recovery of live links, or a drip that cannot
        fail a link without partitioning the live router graph.
        """
        ordered = sorted(enumerate(self._entries), key=lambda e: (e[1].time, e[0]))
        rngs = [random.Random(seed) for (_, _, _, seed) in self._drip_params]
        failed: set = set()
        events: List[FaultEvent] = []
        for _, entry in ordered:
            kind, links = self._resolve(entry, topology, failed, rngs)
            if kind == "fail":
                failed.update(links)
            else:
                failed.difference_update(links)
            events.append(FaultEvent(entry.time, kind, links, entry.spec))
        return tuple(events)

    def _resolve(self, entry: _Entry, topology, failed: set,
                 rngs: Sequence[random.Random]) -> Tuple[str, Tuple[Link, ...]]:
        spec = entry.spec
        if entry.kind == "drip":
            link = self._pick_drip_link(topology, failed,
                                        rngs[entry.target[1]], spec)
            return "fail", (link,)
        if isinstance(entry.target, tuple) and entry.target[0] == "router":
            rid = entry.target[1]
            if not 0 <= rid < topology.num_routers:
                raise ValueError(f"fault spec {spec!r}: router {rid} does not "
                                 f"exist (0..{topology.num_routers - 1})")
            incident = [_normalize(rid, nbr) for nbr in topology.neighbors(rid)]
            if entry.kind == "fail":
                links = tuple(sorted(l for l in incident if l not in failed))
                if not links:
                    raise ValueError(f"fault spec {spec!r}: router {rid} has "
                                     "no live links left to fail")
            else:
                links = tuple(sorted(l for l in incident if l in failed))
                if not links:
                    raise ValueError(f"fault spec {spec!r}: router {rid} has "
                                     "no failed links to recover")
            return entry.kind, links
        link = entry.target
        if not topology.is_edge(*link):
            raise ValueError(f"fault spec {spec!r}: {link[0]}-{link[1]} is "
                             "not a link of this topology")
        if entry.kind == "fail" and link in failed:
            raise ValueError(f"fault spec {spec!r}: link {link[0]}-{link[1]} "
                             "is already failed at that time")
        if entry.kind == "recover" and link not in failed:
            raise ValueError(f"fault spec {spec!r}: link {link[0]}-{link[1]} "
                             "is not failed at that time")
        return entry.kind, (link,)

    def _pick_drip_link(self, topology, failed: set, rng: random.Random,
                        spec: str) -> Link:
        live = [l for l in (_normalize(*e) for e in topology.edges())
                if l not in failed]
        order = list(range(len(live)))
        rng.shuffle(order)
        for i in order:
            candidate = live[i]
            if _connected_without(topology, failed, candidate):
                return candidate
        raise ValueError(f"fault spec {spec!r}: no live link can fail "
                         "without partitioning the router graph")


def _connected_without(topology, failed: set, candidate: Link) -> bool:
    """True if the live router graph stays connected after removing
    ``candidate`` (BFS from router 0 over live edges)."""
    num = topology.num_routers
    seen = [False] * num
    seen[0] = True
    frontier = [0]
    count = 1
    while frontier:
        nxt = []
        for u in frontier:
            for v in topology.neighbors(u):
                if seen[v]:
                    continue
                link = _normalize(u, v)
                if link in failed or link == candidate:
                    continue
                seen[v] = True
                count += 1
                nxt.append(v)
        frontier = nxt
    return count == num
