"""Runtime fault injection: apply a FaultSchedule to a live Network.

The manager arms the schedule as ordinary engine events (so fault
instants occupy the same ``(time, seq)`` keys on both backends), and
implements the two halves of in-flight handling:

**Fail time** (``_apply_fail``): mark both directed ports of each
failed link dead, invalidate the crossing rows of the shared
RouteCache, then *drain* the dead ports' output queues -- packets
already past the crossbar would otherwise sit on a link that never
transmits again.  Drained packets are rerouted (minimal on the degraded
adjacency, one seeded RNG draw when several candidates survive) into a
sibling output queue, or counted dropped, per ``SimConfig.fault_policy``.
Freed slots re-admit inputs parked on the dead port, so upstream
head-of-line blocking resolves by *flowing through* the dead port's
crossbar into the divert path below.

**Divert** (``divert_enter`` / ``divert_tail``): everything else is
lazy.  Packets in input buffers, on wires, or mid-crossbar keep their
(now stale) routes until the moment they would enter a dead port's
output queue -- the ``_enter_oq`` seam in the object switch, the
``_ENTER`` opcode in the batched loop -- and are rerouted or dropped
*there*, at their current router, against the fault state current at
that instant.  This makes fail/recover races inherently correct: a
packet whose target link recovered before its crossbar traversal
finished simply proceeds.

Rerouted packets keep their original VC labels up to the divert hop and
continue hop-indexed (capped at the provisioned VC count) afterwards;
arrival-VC consistency is preserved because labels before the divert
hop are untouched.  Mid-flight packets always complete the hop already
being transmitted: the model is fail-stop at the transmitter, matching
credit-based hardware where an in-flight flit still lands.

Determinism: fail-time work iterates links, ports and VCs in sorted
order; every event scheduled mirrors the object engine's sequence
consumption exactly (the batched side uses the engine's cold-path
transfer mirrors), and reroute draws come from one schedule-seeded RNG.
The fault-schedule golden (tests/golden/fault_conformance.json) holds
both backends to the same delivery fingerprint.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.resilience.schedule import FaultEvent, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network
    from repro.sim.packet import Packet
    from repro.sim.switch import OutputPort, Router

__all__ = ["FaultManager"]

_PWAKE = 2  # repro.sim.vec.engine opcode (kept in sync by conformance tests)


class FaultManager:
    """Applies a :class:`FaultSchedule` to one :class:`Network` run."""

    def __init__(self, net: "Network", schedule: FaultSchedule,
                 policy: str = "reroute"):
        if policy not in ("reroute", "drop"):
            raise ValueError(f"unknown fault policy {policy!r}")
        self.net = net
        self.schedule = schedule
        self.policy = policy
        self.failed: set = set()
        self.fired = 0
        self.reroutes = 0
        self.dropped = 0
        self.first_fault_ns: Optional[float] = None
        self._sent_at_fault: Optional[List[int]] = None
        self._events: Tuple[FaultEvent, ...] = ()
        self.cache = None
        # Reroute selection draws; seeded from the schedule text so a
        # given schedule reproduces exactly, independent of traffic.
        self.rng = random.Random("resilience:" + ";".join(schedule.specs))

    # -- arming ---------------------------------------------------------------

    def arm(self) -> None:
        """Expand the schedule against the topology and schedule one
        engine event per fault instant.  Called by
        ``Network._claim_experiment`` before any traffic is scheduled,
        so fault events consume the same leading sequence numbers on
        both backends."""
        net = self.net
        routing = net.routing
        cache = getattr(routing, "cache", None)
        if cache is None or not getattr(routing, "compiled", False):
            raise ValueError(
                "fault injection requires a compiled routing algorithm "
                "sharing a RouteCache (compiled=True); legacy "
                "compiled=False routing cannot be made fault-aware")
        self.cache = cache
        cache.runtime_vcs = net.num_vcs
        self._events = self.schedule.expand(net.topology)
        for i, ev in enumerate(self._events):
            net.engine.schedule_at(ev.time, self._fire, i)

    def _fire(self, i: int) -> None:
        ev = self._events[i]
        self.fired += 1
        if ev.kind == "fail":
            self._apply_fail(ev.links)
        else:
            self._apply_recover(ev.links)

    # -- fail / recover -------------------------------------------------------

    def _apply_fail(self, links: Tuple[Tuple[int, int], ...]) -> None:
        net = self.net
        vec = net._vec
        if self.first_fault_ns is None:
            self.first_fault_ns = net.engine.now
            self._sent_at_fault = self._snapshot_sent()
        cache = self.cache
        topo = net.topology
        port_of = topo.port
        dead_ports: List[Tuple[int, "OutputPort"]] = []
        for u, v in sorted(links):
            self.failed.add((u, v))
            cache.fail_link(u, v)
            for a, b in ((u, v), (v, u)):
                out_idx = port_of(a, b)
                out = net.routers[a].out[out_idx]
                out.dead = True
                dead_ports.append((a, out))
                if vec is not None:
                    vec.st.p_dead[vec.st.p_off[a] + out_idx] = True
        if vec is None:
            self._drain_object(dead_ports)
        else:
            self._drain_batched(vec, dead_ports)

    def _apply_recover(self, links: Tuple[Tuple[int, int], ...]) -> None:
        """Undo the markings.  Dead output queues are empty by
        construction (drained at fail time, shielded by the divert
        since), so recovery needs no packet handling, no sequence
        numbers and no RNG -- in-flight crossbar traversals toward the
        recovered port proceed normally when they land."""
        net = self.net
        vec = net._vec
        cache = self.cache
        port_of = net.topology.port
        for u, v in sorted(links):
            self.failed.discard((u, v))
            cache.restore_link(u, v)
            for a, b in ((u, v), (v, u)):
                out_idx = port_of(a, b)
                net.routers[a].out[out_idx].dead = False
                if vec is not None:
                    vec.st.p_dead[vec.st.p_off[a] + out_idx] = False

    # -- fail-time drain ------------------------------------------------------

    def _drain_object(self, dead_ports) -> None:
        net = self.net
        engine = net.engine
        checker = net.checker
        drop = self.policy == "drop"
        V = net.num_vcs
        for rid, out in dead_ports:
            router = net.routers[rid]
            moved: set = set()
            for ovc in range(V):
                q = out.oq[ovc]
                while q:
                    pkt = q.popleft()
                    out.oq_occ[ovc] -= 1
                    out.queued -= 1
                    if drop:
                        self.dropped += 1
                        if checker is not None:
                            checker.on_fault_drop(pkt)
                    else:
                        h = pkt.hop
                        self._rewrite(pkt, h)
                        nout = router.out[pkt.ports[h]]
                        nvc = pkt.vcs[h]
                        nout.oq[nvc].append(pkt)
                        nout.oq_occ[nvc] += 1
                        nout.queued += 1
                        self.reroutes += 1
                        moved.add(nout.out_idx)
                        if checker is not None:
                            checker.on_fault_move(pkt, rid, nout.out_idx, nvc)
            for ovc in range(V):
                router._admit_pending(out, ovc)
            for out_idx in sorted(moved):
                # One seq each, mirrored by the batched _PWAKE push;
                # _try_transmit self-guards on a busy port.
                engine.schedule(0.0, router._try_transmit, router.out[out_idx])

    def _drain_batched(self, vec, dead_ports) -> None:
        st = vec.st
        V = st.V
        drop = self.policy == "drop"
        t = vec.now
        s = vec._cs
        for rid, out in dead_ports:
            gid = st.p_off[rid] + out.out_idx
            moved: set = set()
            for ovc in range(V):
                pv = gid * V + ovc
                q = st.pv_oq[pv]
                while q:
                    pid = q.popleft()
                    st.pv_occ[pv] -= 1
                    st.p_oqtot[gid] -= 1
                    st.p_queued[gid] -= 1
                    if drop:
                        self.dropped += 1
                    else:
                        pkt = st.k_obj[pid]
                        h = st.k_hop[pid]
                        self._rewrite(pkt, h)
                        st.k_ports[pid] = pkt.ports
                        st.k_vcs[pid] = pkt.vcs + (0,)
                        ngid = st.p_off[rid] + pkt.ports[h]
                        nvc = pkt.vcs[h]
                        st.pv_oq[ngid * V + nvc].append(pid)
                        st.pv_occ[ngid * V + nvc] += 1
                        st.p_oqtot[ngid] += 1
                        st.p_queued[ngid] += 1
                        self.reroutes += 1
                        moved.add(ngid)
            for ovc in range(V):
                vec._admit_pending_cold(gid, ovc, t, s)
            for ngid in sorted(moved):
                vec._seq += 1
                vec._push(t, vec._seq, _PWAKE, ngid, 0, 0)

    # -- divert (lazy in-flight handling) -------------------------------------

    def divert_enter(self, router: "Router", out: "OutputPort", out_vc: int,
                     pkt: "Packet"):
        """Object-backend divert, called from ``Router._enter_oq`` when
        the target port is dead.  Returns ``None`` (dropped) or the
        ``(port, vc)`` to enter instead."""
        checker = self.net.checker
        if self.policy == "drop":
            out.oq_occ[out_vc] -= 1
            out.queued -= 1
            self.dropped += 1
            if checker is not None:
                checker.on_fault_drop(pkt)
            router._admit_pending(out, out_vc)
            return None
        h = pkt.hop
        self._rewrite(pkt, h)
        out.oq_occ[out_vc] -= 1
        out.queued -= 1
        nout = router.out[pkt.ports[h]]
        nvc = pkt.vcs[h]
        # Transient over-occupancy on the new VC is fine: oq_cap only
        # gates crossbar admission, and the slot drains by transmission.
        nout.oq_occ[nvc] += 1
        nout.queued += 1
        self.reroutes += 1
        if checker is not None:
            checker.on_fault_move(pkt, router.rid, nout.out_idx, nvc)
        router._admit_pending(out, out_vc)
        return nout, nvc

    def divert_tail(self, pv: int, pid: int, gid: int):
        """Batched-backend divert, called from the ``_ENTER`` dead
        branch.  Returns ``None`` (dropped) or the ``(pv, gid)`` to
        enter instead; the caller re-admits parked inputs and performs
        the append/wake for the returned port."""
        st = self.net._vec.st
        if self.policy == "drop":
            st.pv_occ[pv] -= 1
            st.p_queued[gid] -= 1
            self.dropped += 1
            return None
        pkt = st.k_obj[pid]
        h = st.k_hop[pid]
        self._rewrite(pkt, h)
        st.k_ports[pid] = pkt.ports
        st.k_vcs[pid] = pkt.vcs + (0,)
        st.pv_occ[pv] -= 1
        st.p_queued[gid] -= 1
        rid = pkt.routers[h]
        ngid = st.p_off[rid] + pkt.ports[h]
        npv = ngid * st.V + pkt.vcs[h]
        st.pv_occ[npv] += 1
        st.p_queued[ngid] += 1
        self.reroutes += 1
        return npv, ngid

    # -- route rewriting ------------------------------------------------------

    def _live_candidates(self, origin: int, dst: int):
        cache = self.cache
        row = cache.minimal_rows[origin]
        cands = row[dst] if row is not None else None
        if cands is None:
            cands = cache.minimal_fill(origin, dst)
        return cands

    def _rewrite(self, pkt: "Packet", j: int) -> None:
        """Replace the route tail from hop *j* (the packet's current
        router) with a live minimal route to its destination router.
        Labels before hop *j* are preserved (arrival-VC consistency);
        the new tail continues hop-indexed, capped at the provisioned
        VC count.  ``pkt.kind`` is unchanged so delivery fingerprints
        classify packets by their *intended* route kind."""
        routers = pkt.routers
        dst = routers[-1]
        origin = routers[j]
        if origin == dst:
            new_routers = routers[:j] + (dst,)
            new_ports = pkt.ports[:j] + (pkt.ports[-1],)
            new_vcs = pkt.vcs[:j]
        else:
            cands = self._live_candidates(origin, dst)
            route = (cands[self.rng.randrange(len(cands))]
                     if len(cands) > 1 else cands[0])
            tail = route.routers
            vmax = self.net.num_vcs - 1
            new_routers = routers[:j] + tail
            new_ports = pkt.ports[:j] + route.ports + (pkt.ports[-1],)
            new_vcs = pkt.vcs[:j] + tuple(
                min(j + i, vmax) for i in range(len(tail) - 1)
            )
        pkt.routers = new_routers
        pkt.ports = new_ports
        pkt.vcs = new_vcs

    # -- reporting ------------------------------------------------------------

    def _snapshot_sent(self) -> List[int]:
        net = self.net
        if net._vec is not None:
            return list(net._vec.st.p_sent)
        return [out.sent_packets for r in net.routers for out in r.out]

    def post_fault_skew(self, until_ns: float) -> Optional[Dict[str, float]]:
        """Fabric-link utilization max/mean/skew over the window from
        the first failure to *until_ns* (None before any failure)."""
        if self._sent_at_fault is None or self.first_fault_ns is None:
            return None
        window = until_ns - self.first_fault_ns
        if window <= 0:
            return None
        now_sent = self._snapshot_sent()
        before = self._sent_at_fault
        ser = self.net.config.packet_time_ns
        utils = []
        gid = 0
        for router in self.net.routers:
            for out in router.out:
                if out.downstream is not None:
                    utils.append((now_sent[gid] - before[gid]) * ser / window)
                gid += 1
        if not utils:
            return None
        peak = max(utils)
        mean = sum(utils) / len(utils)
        return {
            "max": peak,
            "mean": mean,
            "skew": peak / mean if mean > 0 else 0.0,
        }

    def summary(self) -> Dict[str, object]:
        """Counters for CLI/experiment reporting."""
        return {
            "events_fired": self.fired,
            "reroutes": self.reroutes,
            "dropped": self.dropped,
            "first_fault_ns": self.first_fault_ns,
            "links_down": len(self.failed),
        }
