"""Dynamic fault injection and fault-adaptive routing.

The static degradation analysis (:mod:`repro.analysis.faults`) answers
"how much path diversity survives k failures?"; this package answers
the operational question: what happens to traffic *in flight* when a
link dies mid-run, and how quickly does adaptive routing steer around
it?

- :class:`FaultSchedule` -- a declarative, seeded timeline of link and
  router failures/recoveries (``fail@T:U-V``, ``recover@T:U-V``,
  ``fail@T:rR``, ``drip@T:n=N,every=E``), expanded and validated
  against a concrete topology;
- :class:`FaultManager` -- injects the schedule as simulator events on
  both backends, flips ports dead/alive, incrementally invalidates the
  shared :class:`~repro.routing.cache.RouteCache` through its
  link->routes reverse index, and reroutes (or drops) packets headed
  into a dead link at their current router.

Wired in by :class:`repro.sim.network.Network` when
``SimConfig.faults`` is non-empty; fault-free runs never touch any of
this (the golden conformance fingerprints are unchanged).
"""

from repro.resilience.manager import FaultManager
from repro.resilience.schedule import FaultEvent, FaultSchedule

__all__ = ["FaultEvent", "FaultSchedule", "FaultManager"]
