"""Cost metrics (links and ports per end-node) -- Fig. 3's table.

Provides both instance-level measurements (from a built topology) and
the asymptotic formulas the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.base import Topology

__all__ = ["CostMetrics", "cost_metrics", "COST_TABLE"]


@dataclass
class CostMetrics:
    """Measured cost of one topology instance."""

    topology: str
    num_nodes: int
    num_routers: int
    max_radix: int
    links_per_node: float
    ports_per_node: float
    diameter: Optional[int] = None


def cost_metrics(topology: Topology, with_diameter: bool = False) -> CostMetrics:
    """Measure the paper's cost metrics on a concrete instance."""
    return CostMetrics(
        topology=topology.name,
        num_nodes=topology.num_nodes,
        num_routers=topology.num_routers,
        max_radix=topology.max_radix(),
        links_per_node=topology.links_per_node(),
        ports_per_node=topology.ports_per_node(),
        diameter=topology.endpoint_diameter() if with_diameter else None,
    )


#: The asymptotic comparison table of Fig. 3:
#: family -> (diameter, scale formula, links/node, ports/node).
COST_TABLE = {
    "2D HyperX": {"diameter": 2, "scale": "~ r^3/27", "links_per_node": 2, "ports_per_node": 3},
    "Slim Fly": {"diameter": 2, "scale": "~ r^3/8", "links_per_node": 2, "ports_per_node": 3},
    "2-lvl Fat-Tree": {"diameter": 2, "scale": "r^2/2", "links_per_node": 2, "ports_per_node": 3},
    "3-lvl Fat-Tree": {"diameter": 4, "scale": "r^3/4", "links_per_node": 3, "ports_per_node": 5},
    "MLFM": {"diameter": 2, "scale": "~ r^3/8", "links_per_node": 2, "ports_per_node": 3},
    "OFT": {"diameter": 2, "scale": "~ r^3/4", "links_per_node": 2, "ports_per_node": 3},
}
