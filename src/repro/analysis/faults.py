"""Link-failure resilience analysis (extension beyond the paper).

The paper's diameter-two designs trade path diversity for scalability
(Sec. 2.3.3), which raises an obvious operational question the paper
leaves open: how gracefully do they degrade when links fail?  This
module answers it statically:

- :func:`degrade` builds a copy of a topology with a chosen set (or
  random fraction) of router-router links removed, preserving the
  original's link-class / Valiant structure so routing and deadlock
  machinery keep working;
- :func:`fault_resilience` sweeps failure fractions and reports
  connectivity, endpoint diameter and mean path diversity over random
  trials -- the degradation curves of each design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.routing.paths import MinimalPaths
from repro.topology.base import Topology

__all__ = [
    "DegradedTopology",
    "degrade",
    "FaultTrial",
    "fault_resilience",
    "safe_vc_policy",
]


class DegradedTopology(Topology):
    """A topology with some router-router links removed.

    Delegates :meth:`link_class` and :meth:`valiant_intermediates` to
    the intact original so SSPT up/down structure (and therefore VC
    policies and CDG analysis) remain meaningful.
    """

    def __init__(self, base: Topology, failed_links: Sequence[Tuple[int, int]]):
        failed = {(min(a, b), max(a, b)) for a, b in failed_links}
        for a, b in failed:
            if not base.is_edge(a, b):
                raise ValueError(f"cannot fail non-existent link ({a}, {b})")
        adjacency = [
            [n for n in base.neighbors(r) if (min(r, n), max(r, n)) not in failed]
            for r in range(base.num_routers)
        ]
        super().__init__(
            name=f"{base.name}-deg{len(failed)}",
            adjacency=adjacency,
            nodes_per_router=[base.nodes_attached(r) for r in range(base.num_routers)],
            params=dict(base.params, failed_links=len(failed)),
        )
        self.base = base
        self.failed_links = sorted(failed)

    def link_class(self, u: int, v: int) -> int:
        return self.base.link_class(u, v)

    def valiant_intermediates(self) -> List[int]:
        return self.base.valiant_intermediates()


def degrade(
    topology: Topology,
    fraction: Optional[float] = None,
    links: Optional[Sequence[Tuple[int, int]]] = None,
    seed: int = 0,
) -> DegradedTopology:
    """Remove an explicit link list or a random *fraction* of links."""
    if (fraction is None) == (links is None):
        raise ValueError("degrade: give exactly one of fraction= or links=")
    if links is None:
        if not (0.0 <= fraction < 1.0):
            raise ValueError(f"degrade: fraction {fraction} must be in [0, 1)")
        all_links = list(topology.edges())
        count = int(round(fraction * len(all_links)))
        rng = random.Random(seed)
        links = rng.sample(all_links, count)
    return DegradedTopology(topology, links)


@dataclass
class FaultTrial:
    """Aggregated outcome of failure trials at one failure fraction."""

    fraction: float
    trials: int
    connected_fraction: float  # trials where all endpoint routers stay connected
    mean_endpoint_diameter: float  # over connected trials
    worst_endpoint_diameter: int
    mean_diversity: float  # mean minimal-path count over sampled pairs


def _endpoint_connected_and_diameter(topo: Topology) -> Optional[int]:
    """Endpoint diameter, or ``None`` if endpoint routers are disconnected."""
    try:
        return topo.endpoint_diameter()
    except ValueError:
        return None


def safe_vc_policy(topology: Topology, uses_indirect: bool = False):
    """A VC policy sized for a (possibly degraded) flat topology.

    The paper's hop-indexed scheme assumes diameter 2; after failures,
    minimal paths can be longer.  This helper measures the endpoint
    diameter and returns a :class:`repro.routing.vc.HopIndexVC` with a
    matching budget (indirect routes being two minimal legs).  Only for
    flat topologies: degraded SSPTs with >2-hop minimal routes are no
    longer inherently deadlock-free on one VC, so simulate those with a
    hop-indexed policy too (which this returns for any topology).
    """
    from repro.routing.vc import HopIndexVC

    diameter = topology.endpoint_diameter()
    minimal = max(2, diameter)
    indirect = max(4, 2 * diameter)
    return HopIndexVC(minimal_vcs=minimal if not uses_indirect else indirect,
                      indirect_vcs=indirect)


def fault_resilience(
    topology: Topology,
    fractions: Sequence[float] = (0.01, 0.05, 0.10),
    trials: int = 5,
    seed: int = 0,
    diversity_samples: int = 100,
) -> List[FaultTrial]:
    """Random-link-failure degradation sweep.

    For each failure fraction runs *trials* random failure patterns and
    aggregates endpoint-level connectivity, diameter and sampled path
    diversity.
    """
    rng = random.Random(seed)
    results: List[FaultTrial] = []
    endpoints = topology.endpoint_routers()
    for fraction in fractions:
        connected = 0
        diameters: List[int] = []
        diversity_sum = 0.0
        diversity_count = 0
        for t in range(trials):
            degraded = degrade(topology, fraction=fraction, seed=rng.getrandbits(32))
            diameter = _endpoint_connected_and_diameter(degraded)
            if diameter is None:
                continue
            connected += 1
            diameters.append(diameter)
            paths = MinimalPaths(degraded)
            pair_rng = random.Random(seed * 1000 + t)
            for _ in range(diversity_samples):
                s = endpoints[pair_rng.randrange(len(endpoints))]
                d = endpoints[pair_rng.randrange(len(endpoints))]
                if s == d:
                    continue
                diversity_sum += paths.diversity(s, d)
                diversity_count += 1
        results.append(
            FaultTrial(
                fraction=fraction,
                trials=trials,
                connected_fraction=connected / trials,
                mean_endpoint_diameter=(
                    sum(diameters) / len(diameters) if diameters else float("inf")
                ),
                worst_endpoint_diameter=max(diameters) if diameters else -1,
                mean_diversity=(
                    diversity_sum / diversity_count if diversity_count else 0.0
                ),
            )
        )
    return results
