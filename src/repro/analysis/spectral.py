"""Spectral analysis of router graphs.

Why do the diameter-two topologies sustain near-full uniform
throughput?  Spectrally: their router graphs are excellent expanders.
This module computes

- the adjacency spectrum and **spectral gap** ``d - lambda_2`` of a
  regular router graph,
- the **Cheeger (isoperimetric) bounds** on edge expansion implied by
  the gap, and
- the distance to the **Ramanujan bound** ``lambda_2 <= 2 sqrt(d-1)``
  (MMS graphs -- the Slim Fly -- are known to be near-Ramanujan, which
  is the structural reason behind their Moore-bound proximity and flat
  uniform-traffic behaviour).

Dense ``eigvalsh`` is fine for the instance sizes in play (hundreds of
routers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.topology.base import Topology

__all__ = ["SpectralStats", "spectral_stats"]


@dataclass
class SpectralStats:
    """Spectral summary of a (preferably regular) router graph."""

    topology: str
    degree: float  # max eigenvalue (= degree for regular connected graphs)
    lambda2: float  # second-largest adjacency eigenvalue
    lambda_min: float
    spectral_gap: float  # degree - lambda2
    ramanujan_bound: float  # 2 sqrt(d - 1)
    is_ramanujan: bool  # max(|lambda2|, |lambda_min|) <= bound (+eps)
    cheeger_lower: float  # gap / 2 <= h(G)
    cheeger_upper: float  # h(G) <= sqrt(2 d gap)
    bipartite: bool  # lambda_min == -degree


def spectral_stats(topology: Topology, tol: float = 1e-8) -> SpectralStats:
    """Compute the adjacency spectrum summary of the router graph.

    For irregular graphs the "degree" reported is the Perron eigenvalue
    and the Ramanujan test uses the maximum degree.
    """
    mat = topology.adjacency_matrix().astype(np.float64)
    eigenvalues = np.linalg.eigvalsh(mat)
    eigenvalues.sort()
    perron = float(eigenvalues[-1])
    lambda2 = float(eigenvalues[-2]) if len(eigenvalues) > 1 else perron
    lambda_min = float(eigenvalues[0])
    max_degree = max(topology.degree(r) for r in range(topology.num_routers))
    gap = perron - lambda2
    bound = 2.0 * math.sqrt(max(max_degree - 1, 0))
    bipartite = abs(lambda_min + perron) < tol
    # For bipartite graphs lambda_min = -d necessarily; Ramanujan-ness
    # is then judged on the nontrivial spectrum.
    nontrivial = abs(lambda2)
    if not bipartite:
        nontrivial = max(nontrivial, abs(lambda_min))
    return SpectralStats(
        topology=topology.name,
        degree=perron,
        lambda2=lambda2,
        lambda_min=lambda_min,
        spectral_gap=gap,
        ramanujan_bound=bound,
        is_ramanujan=nontrivial <= bound + tol,
        cheeger_lower=gap / 2.0,
        cheeger_upper=math.sqrt(max(2.0 * perron * gap, 0.0)),
        bipartite=bipartite,
    )
