"""Approximate bisection bandwidth (paper Sec. 2.3.2, Fig. 4).

The routers are bisected into two halves of (approximately) equal
*end-node* weight using the multilevel partitioner; the bisection
bandwidth per end-node is then

.. math:: B = \\frac{\\text{cut links} \\cdot b}{N / 2}

with ``b`` the link bandwidth.  The paper's reference values: ~0.89 b
for the OFT (~0.81 at small scale), ~0.71 b / ~0.67 b for the SF with
``p = floor/ceil(r'/2)``, and ~0.5 b for the MLFM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.partition import Graph, bisect
from repro.topology.base import Topology

__all__ = ["bisection_bandwidth", "BisectionBandwidth"]


@dataclass
class BisectionBandwidth:
    """Result of :func:`bisection_bandwidth`."""

    topology: str
    cut_links: float
    per_node: float  # fraction of link bandwidth b per end-node
    node_split: Tuple[float, float]
    imbalance: float


def bisection_bandwidth(
    topology: Topology,
    restarts: int = 8,
    max_imbalance: float = 0.05,
    seed: int = 0,
) -> BisectionBandwidth:
    """Estimate the per-end-node bisection bandwidth of *topology*.

    An upper-bound estimate in the same sense as the paper's: the
    partitioner minimises the cut, so the reported value approximates
    (from above, for a heuristic partitioner) the true bisection.
    """
    graph = Graph.from_topology(topology, weight_by_nodes=True)
    result = bisect(graph, max_imbalance=max_imbalance, restarts=restarts, seed=seed)
    per_node = result.cut / (topology.num_nodes / 2.0)
    return BisectionBandwidth(
        topology=topology.name,
        cut_links=result.cut,
        per_node=per_node,
        node_split=result.part_weights,
        imbalance=result.imbalance,
    )
