"""Analytical tools: cost, scalability, bisection, diversity, link load.

These implement the paper's Sec. 2.3 analyses (and the Fig. 3 / Fig. 4
artefacts) without simulation, plus the static link-load analyzer used
to cross-check simulated saturation points.
"""

from repro.analysis.bisection import BisectionBandwidth, bisection_bandwidth
from repro.analysis.cost import COST_TABLE, CostMetrics, cost_metrics
from repro.analysis.diversity import DiversityStats, path_diversity_stats
from repro.analysis.faults import DegradedTopology, FaultTrial, degrade, fault_resilience
from repro.analysis.linkload import (
    channel_loads_indirect,
    channel_loads_minimal,
    load_skew,
    permutation_flows,
    saturation_throughput,
    uniform_flows,
    workload_flows,
)
from repro.analysis.partition import BisectionResult, Graph, bisect, cut_weight
from repro.analysis.queueing import md1_wait_ns, mean_minimal_hops, uniform_latency_model
from repro.analysis.spectral import SpectralStats, spectral_stats
from repro.analysis.scalability import (
    FAMILIES,
    nodes_at_radix,
    scalability_points,
    scalability_table,
)

__all__ = [
    "bisection_bandwidth",
    "BisectionBandwidth",
    "cost_metrics",
    "CostMetrics",
    "COST_TABLE",
    "path_diversity_stats",
    "DiversityStats",
    "degrade",
    "DegradedTopology",
    "fault_resilience",
    "FaultTrial",
    "channel_loads_minimal",
    "channel_loads_indirect",
    "uniform_flows",
    "permutation_flows",
    "workload_flows",
    "load_skew",
    "saturation_throughput",
    "Graph",
    "bisect",
    "cut_weight",
    "BisectionResult",
    "md1_wait_ns",
    "mean_minimal_hops",
    "uniform_latency_model",
    "spectral_stats",
    "SpectralStats",
    "scalability_points",
    "scalability_table",
    "nodes_at_radix",
    "FAMILIES",
]
