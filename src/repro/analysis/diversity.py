"""Shortest-path diversity statistics (paper Sec. 2.3.3).

Quantifies how many minimal paths exist between router pairs:

- Slim Fly: no diversity between adjacent routers; sparse diversity
  between distance-2 pairs (q = 23: average ~1.1, maximum 8);
- MLFM: ``h`` minimal paths between same-column local routers, exactly
  one otherwise;
- OFT: ``k`` minimal paths between symmetric counterpart routers,
  exactly one otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.routing.paths import MinimalPaths
from repro.topology.base import Topology

__all__ = ["DiversityStats", "path_diversity_stats"]


@dataclass
class DiversityStats:
    """Distribution of minimal-path counts over router pairs."""

    topology: str
    num_pairs: int
    mean: float
    max: int
    min: int
    histogram: Dict[int, int]
    mean_distance2: Optional[float] = None  # over non-adjacent pairs only
    max_distance2: Optional[int] = None


def path_diversity_stats(
    topology: Topology,
    pairs: Optional[Sequence] = None,
) -> DiversityStats:
    """Diversity statistics over ordered endpoint-router pairs.

    ``pairs`` may restrict the enumeration; by default all ordered
    pairs of distinct endpoint routers are measured.  Distance-2
    restricted aggregates (the paper's SF numbers) are reported
    separately.
    """
    paths = MinimalPaths(topology)
    endpoints = topology.endpoint_routers()
    if pairs is None:
        pairs = [(s, d) for s in endpoints for d in endpoints if s != d]

    histogram: Dict[int, int] = {}
    total = 0
    count = 0
    d2_total = 0
    d2_count = 0
    d2_max = 0
    for s, d in pairs:
        diversity = paths.diversity(s, d)
        histogram[diversity] = histogram.get(diversity, 0) + 1
        total += diversity
        count += 1
        if not topology.is_edge(s, d):
            d2_total += diversity
            d2_count += 1
            d2_max = max(d2_max, diversity)
    if count == 0:
        raise ValueError(f"{topology.name}: no pairs to measure")
    return DiversityStats(
        topology=topology.name,
        num_pairs=count,
        mean=total / count,
        max=max(histogram),
        min=min(histogram),
        histogram=dict(sorted(histogram.items())),
        mean_distance2=d2_total / d2_count if d2_count else None,
        max_distance2=d2_max if d2_count else None,
    )
