"""Scalability analysis: end-nodes vs router radix (Fig. 3).

For every topology family this module enumerates the feasible
configurations up to a radix bound and reports ``(radix, N)`` points,
plus closed-form scale evaluation.  The paper's headline numbers (with
radix-64 routers: OFT ~63.5 K, MLFM ~36 K, SF ~33.7 K end-nodes) fall
out of :func:`scalability_points` / :func:`nodes_at_radix`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.maths.primes import is_prime
from repro.topology.ml3b import valid_oft_k
from repro.topology.slimfly import slim_fly_delta, valid_slim_fly_q

__all__ = ["scalability_points", "nodes_at_radix", "FAMILIES"]

FAMILIES = ("SF", "SF-ceil", "MLFM", "OFT", "HyperX2D", "FT2", "FT3")


def _sf_radix_nodes(q: int, ceil_p: bool) -> Tuple[int, int]:
    delta = slim_fly_delta(q)
    network_radix = (3 * q - delta) // 2
    p = math.ceil(network_radix / 2) if ceil_p else network_radix // 2
    return network_radix + p, 2 * q * q * p


def scalability_points(family: str, max_radix: int) -> List[Tuple[int, int]]:
    """Feasible ``(router radix, N)`` points of *family* with radix <= bound.

    Families: ``"SF"`` (p = floor(r'/2)), ``"SF-ceil"``, ``"MLFM"``
    (h-MLFM, radix 2h), ``"OFT"`` (radix 2k, k-1 a prime power), ``"HyperX2D"``
    (balanced, radix divisible by 3), ``"FT2"`` and ``"FT3"`` (even
    radix).
    """
    points: List[Tuple[int, int]] = []
    if family in ("SF", "SF-ceil"):
        ceil_p = family == "SF-ceil"
        q = 4
        while True:
            if valid_slim_fly_q(q):
                radix, nodes = _sf_radix_nodes(q, ceil_p)
                if radix > max_radix:
                    break
                points.append((radix, nodes))
            q += 1
            if q > 4 * max_radix:  # pragma: no cover - safety
                break
    elif family == "MLFM":
        for h in range(1, max_radix // 2 + 1):
            points.append((2 * h, h**3 + h**2))
    elif family == "OFT":
        for k in range(3, max_radix // 2 + 1):
            if valid_oft_k(k):
                points.append((2 * k, 2 * k**3 - 2 * k**2 + 2 * k))
    elif family == "HyperX2D":
        for r in range(3, max_radix + 1, 3):
            third = r // 3
            points.append((r, third * (third + 1) ** 2))
    elif family == "FT2":
        for r in range(2, max_radix + 1, 2):
            points.append((r, r * r // 2))
    elif family == "FT3":
        for r in range(2, max_radix + 1, 2):
            points.append((r, r**3 // 4))
    else:
        raise ValueError(f"unknown family {family!r} (choose from {FAMILIES})")
    return points


def nodes_at_radix(family: str, radix: int) -> int:
    """Largest N achievable by *family* using routers of radix <= *radix*."""
    points = scalability_points(family, radix)
    if not points:
        raise ValueError(f"{family}: no feasible configuration with radix <= {radix}")
    return max(n for _, n in points)


def scalability_table(max_radix: int = 64) -> Dict[str, int]:
    """Fig. 3 summary: best N per family at the given radix budget."""
    return {family: nodes_at_radix(family, max_radix) for family in FAMILIES}
