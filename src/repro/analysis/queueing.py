"""Analytic latency model (M/D/1 queueing approximation).

A lightweight cross-check for the simulator's uniform-traffic latency
curves: with Poisson packet generation and deterministic (fixed-size)
service, each traversed link behaves approximately like an M/D/1 queue
with utilisation equal to the offered load, whose mean waiting time is

.. math:: W = \\frac{\\rho}{2 (1 - \\rho)} \\cdot T_s

(Pollaczek-Khinchine for deterministic service, ``T_s`` = packet
serialization time).  Summing the zero-load pipeline latency and one
waiting term per serialising stage (injection link, each router output
and the ejection link) gives a closed-form latency-vs-load curve that
tracks the simulated one until the approximation's independence
assumptions break near saturation.

This is deliberately a *model*, not a second simulator: tests assert
agreement at low/medium loads and divergence-in-the-right-direction
near saturation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.routing.paths import MinimalPaths
from repro.sim.config import PAPER_CONFIG, SimConfig
from repro.topology.base import Topology

__all__ = ["md1_wait_ns", "uniform_latency_model", "mean_minimal_hops"]


def md1_wait_ns(load: float, service_ns: float) -> float:
    """Mean M/D/1 waiting time at utilisation *load*."""
    if not (0.0 <= load < 1.0):
        raise ValueError(f"md1_wait_ns: utilisation {load} must be in [0, 1)")
    return load / (2.0 * (1.0 - load)) * service_ns


def mean_minimal_hops(topology: Topology, samples: Optional[int] = None, seed: int = 0) -> float:
    """Average minimal router-hop count over uniform node pairs.

    Counts intra-router pairs as 0 hops, weighting by node population
    (exactly what uniform traffic samples).  ``samples`` bounds the
    router-pair enumeration for very large instances.
    """
    import random

    paths = MinimalPaths(topology)
    endpoints = topology.endpoint_routers()
    weights = {r: topology.nodes_attached(r) for r in endpoints}
    n = topology.num_nodes

    pair_iter: Sequence = [(s, d) for s in endpoints for d in endpoints]
    if samples is not None and samples < len(pair_iter):
        rng = random.Random(seed)
        pair_iter = rng.sample(pair_iter, samples)

    total_w = 0.0
    total_hops = 0.0
    for s, d in pair_iter:
        if s == d:
            # Intra-router pairs: p * (p - 1) ordered node pairs, 0 hops.
            w = weights[s] * (weights[s] - 1)
            hops = 0
        else:
            w = weights[s] * weights[d]
            hops = paths.distance(s, d)
        total_w += w
        total_hops += w * hops
    if total_w == 0:
        raise ValueError(f"{topology.name}: no node pairs")
    return total_hops / total_w


def uniform_latency_model(
    topology: Topology,
    load: float,
    config: SimConfig = PAPER_CONFIG,
    hops: Optional[float] = None,
) -> Dict[str, float]:
    """Closed-form mean latency under uniform traffic at *load*.

    Returns the decomposition: ``zero_load``, ``queueing`` and
    ``total`` (ns).  ``hops`` overrides the measured mean minimal hop
    count (useful for non-minimal routing).
    """
    if not (0.0 <= load < 1.0):
        raise ValueError(f"uniform_latency_model: load {load} must be in [0, 1)")
    mean_hops = mean_minimal_hops(topology) if hops is None else hops
    ser = config.packet_time_ns
    link = config.link_latency_ns
    switch = config.switch_latency_ns

    # Pipeline: injection (ser+link), per-router (switch+ser+link) for
    # each router traversal (mean_hops router-router links plus the
    # ejection leg).
    zero_load = (ser + link) + (mean_hops + 1) * (switch + ser + link)
    # Serialising stages: injection link, one output per traversed
    # router (mean_hops + 1 including ejection).  Each approximated as
    # an independent M/D/1 at utilisation = load.
    stages = 1.0 + (mean_hops + 1.0)
    queueing = stages * md1_wait_ns(load, ser)
    return {
        "zero_load": zero_load,
        "queueing": queueing,
        "total": zero_load + queueing,
        "mean_hops": mean_hops,
    }
