"""Static (fluid) link-load analysis.

Computes the expected per-channel load induced by a traffic pattern
under minimal or indirect-random routing, assuming each flow injects at
rate 1 and splits uniformly over its candidate paths.  The reciprocal of
the maximum channel load is the theoretical saturation throughput --
the analytic counterpart of the simulator's measured saturation points
(paper Sec. 4.2: ``1/(2p)`` for SF, ``1/h`` for MLFM, ``1/k`` for OFT
under worst-case traffic, and ~1 under uniform traffic).

Loads are expressed in units of one node's injection bandwidth, so a
channel load of ``2p`` means ``2p`` node-flows share that link.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.routing.paths import MinimalPaths
from repro.topology.base import Topology

__all__ = [
    "channel_loads_minimal",
    "channel_loads_indirect",
    "saturation_throughput",
    "uniform_flows",
    "permutation_flows",
    "workload_flows",
    "load_skew",
]

Channel = Tuple[int, int]


def uniform_flows(topology: Topology) -> Iterable[Tuple[int, int, float]]:
    """Node-flow triples ``(src, dst, weight)`` for uniform traffic.

    Each node spreads one unit of injection over the ``N - 1`` other
    nodes.
    """
    n = topology.num_nodes
    w = 1.0 / (n - 1)
    for s in range(n):
        for d in range(n):
            if s != d:
                yield (s, d, w)


def permutation_flows(destinations: Sequence[int]) -> Iterable[Tuple[int, int, float]]:
    """Node-flow triples for a (partial) permutation pattern."""
    for s, d in enumerate(destinations):
        if d >= 0:
            yield (s, int(d), 1.0)


def workload_flows(
    workload, phase: Optional[str] = None
) -> Iterable[Tuple[int, int, float]]:
    """Node-flow triples for a :class:`repro.workload.Workload` DAG.

    Each (src, dst) pair is weighted by its share of the workload's
    total bytes (restricted to *phase* when given), so the resulting
    channel loads predict *where* a collective schedule concentrates
    traffic -- the static counterpart of the driver's measured
    link-load skew.  Control-only messages carry no bytes and are
    skipped.
    """
    volume: Dict[Tuple[int, int], int] = {}
    total = 0
    for m in workload:
        if m.is_local or (phase is not None and m.phase != phase):
            continue
        volume[(m.src, m.dst)] = volume.get((m.src, m.dst), 0) + m.size
        total += m.size
    if total == 0:
        raise ValueError(
            f"workload {workload.name!r} moves no bytes"
            + (f" in phase {phase!r}" if phase is not None else "")
        )
    for (s, d), b in volume.items():
        yield (s, d, b / total)


def load_skew(loads: Dict[Channel, float]) -> float:
    """Max/mean ratio of channel loads (1.0 = perfectly balanced)."""
    if not loads:
        raise ValueError("no channel loads")
    values = list(loads.values())
    mean = sum(values) / len(values)
    if mean <= 0:
        raise ValueError("degenerate channel loads (mean <= 0)")
    return max(values) / mean


def _add_path(loads: Dict[Channel, float], path: Tuple[int, ...], weight: float) -> None:
    for i in range(len(path) - 1):
        ch = (path[i], path[i + 1])
        loads[ch] = loads.get(ch, 0.0) + weight


def channel_loads_minimal(
    topology: Topology,
    flows: Iterable[Tuple[int, int, float]],
    paths: Optional[MinimalPaths] = None,
) -> Dict[Channel, float]:
    """Expected channel loads under minimal routing with uniform path split.

    Router-level flows are aggregated first, so the cost is
    O(router-pairs x diversity) rather than O(node-pairs).
    """
    paths = paths if paths is not None else MinimalPaths(topology)
    router_flow: Dict[Channel, float] = {}
    node_router = topology.node_router
    for s, d, w in flows:
        rs, rd = int(node_router[s]), int(node_router[d])
        if rs == rd:
            continue
        router_flow[(rs, rd)] = router_flow.get((rs, rd), 0.0) + w

    loads: Dict[Channel, float] = {}
    for (rs, rd), w in router_flow.items():
        candidates = paths.paths(rs, rd)
        share = w / len(candidates)
        for path in candidates:
            _add_path(loads, path, share)
    return loads


def channel_loads_indirect(
    topology: Topology,
    flows: Iterable[Tuple[int, int, float]],
    paths: Optional[MinimalPaths] = None,
    intermediates: Optional[Sequence[int]] = None,
) -> Dict[Channel, float]:
    """Expected channel loads under indirect random (Valiant) routing.

    Each router-level flow spreads uniformly over the eligible
    intermediates (excluding its endpoints), each leg splitting
    uniformly over its minimal paths.  Intra-router traffic never enters
    the fabric (mirroring :class:`repro.routing.IndirectRandomRouting`).
    """
    paths = paths if paths is not None else MinimalPaths(topology)
    pool = list(intermediates) if intermediates is not None else topology.valiant_intermediates()

    router_flow: Dict[Channel, float] = {}
    node_router = topology.node_router
    for s, d, w in flows:
        rs, rd = int(node_router[s]), int(node_router[d])
        if rs == rd:
            continue
        router_flow[(rs, rd)] = router_flow.get((rs, rd), 0.0) + w

    # Precompute, for every (endpoint, intermediate) ordered pair, the
    # per-channel split of one unit of flow on the minimal legs.
    loads: Dict[Channel, float] = {}
    for (rs, rd), w in router_flow.items():
        eligible = [i for i in pool if i != rs and i != rd]
        if not eligible:
            raise ValueError(f"{topology.name}: no eligible intermediate for {rs}->{rd}")
        w_i = w / len(eligible)
        for i in eligible:
            for leg in ((rs, i), (i, rd)):
                candidates = paths.paths(*leg)
                share = w_i / len(candidates)
                for path in candidates:
                    _add_path(loads, path, share)
    return loads


def saturation_throughput(loads: Dict[Channel, float]) -> float:
    """Theoretical saturation injection fraction: ``1 / max channel load``."""
    if not loads:
        return 1.0
    worst = max(loads.values())
    return 1.0 if worst <= 1.0 else 1.0 / worst
