"""Multilevel graph bisection (METIS substitute for Fig. 4).

The paper approximates bisection bandwidth with a graph-partitioning
tool [Karypis & Kumar].  This module implements the same multilevel
scheme from scratch:

1. **Coarsening** -- heavy-edge matching merges matched vertex pairs
   (summing vertex and parallel-edge weights) until the graph is small.
2. **Initial partition** -- greedy BFS region growing from random seeds
   to half the total vertex weight, multiple restarts.
3. **Refinement** -- Fiduccia-Mattheyses-style boundary passes with
   vertex moves chosen by gain, allowing a bounded imbalance, with
   hill-climbing (the best prefix of each pass is kept).
4. **Uncoarsening** -- project the partition up each level and refine.

Vertex weights let callers balance by *end-node count* (the quantity
that matters for bisection bandwidth) while hub routers float freely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Graph", "bisect", "cut_weight", "BisectionResult"]


class Graph:
    """Undirected weighted graph in adjacency-list form."""

    def __init__(self, num_vertices: int, vertex_weights: Optional[Sequence[float]] = None):
        self.n = num_vertices
        self.vwgt: List[float] = (
            list(vertex_weights) if vertex_weights is not None else [1.0] * num_vertices
        )
        if len(self.vwgt) != num_vertices:
            raise ValueError("vertex_weights length mismatch")
        # adj[u] -> {v: edge weight}
        self.adj: List[Dict[int, float]] = [dict() for _ in range(num_vertices)]

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or reinforce) an undirected edge."""
        if u == v:
            return
        self.adj[u][v] = self.adj[u].get(v, 0.0) + weight
        self.adj[v][u] = self.adj[v].get(u, 0.0) + weight

    @property
    def total_vertex_weight(self) -> float:
        return sum(self.vwgt)

    @classmethod
    def from_topology(cls, topology, weight_by_nodes: bool = True) -> "Graph":
        """Router graph of a topology; vertices weighted by end-node count."""
        weights = (
            [topology.nodes_attached(r) for r in range(topology.num_routers)]
            if weight_by_nodes
            else None
        )
        g = cls(topology.num_routers, weights)
        for a, b in topology.edges():
            g.add_edge(a, b, 1.0)
        return g


@dataclass
class BisectionResult:
    """Outcome of :func:`bisect`."""

    parts: List[int]  # 0/1 per vertex
    cut: float
    part_weights: Tuple[float, float]
    imbalance: float  # max part weight / ideal half


def cut_weight(graph: Graph, parts: Sequence[int]) -> float:
    """Total weight of edges crossing the partition."""
    cut = 0.0
    for u in range(graph.n):
        pu = parts[u]
        for v, w in graph.adj[u].items():
            if v > u and parts[v] != pu:
                cut += w
    return cut


def _coarsen(graph: Graph, rng: random.Random) -> Tuple[Graph, List[int]]:
    """One level of heavy-edge matching; returns (coarse graph, vertex map)."""
    order = list(range(graph.n))
    rng.shuffle(order)
    match = [-1] * graph.n
    for u in order:
        if match[u] >= 0:
            continue
        best, best_w = -1, -1.0
        for v, w in graph.adj[u].items():
            if match[v] < 0 and w > best_w:
                best, best_w = v, w
        if best >= 0:
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    cmap = [-1] * graph.n
    next_id = 0
    for u in range(graph.n):
        if cmap[u] >= 0:
            continue
        v = match[u]
        cmap[u] = next_id
        if v != u:
            cmap[v] = next_id
        next_id += 1
    coarse = Graph(next_id, [0.0] * next_id)
    for u in range(graph.n):
        coarse.vwgt[cmap[u]] += graph.vwgt[u]
    for u in range(graph.n):
        cu = cmap[u]
        for v, w in graph.adj[u].items():
            if v > u:
                cv = cmap[v]
                if cu != cv:
                    coarse.add_edge(cu, cv, w)
    return coarse, cmap


def _grow_initial(graph: Graph, rng: random.Random) -> List[int]:
    """Greedy BFS region growing to half the total vertex weight."""
    target = graph.total_vertex_weight / 2.0
    seed = rng.randrange(graph.n)
    parts = [1] * graph.n
    weight = 0.0
    frontier = [seed]
    seen = {seed}
    while frontier and weight < target:
        u = frontier.pop(rng.randrange(len(frontier)))
        if weight + graph.vwgt[u] > target and weight > 0:
            continue
        parts[u] = 0
        weight += graph.vwgt[u]
        for v in graph.adj[u]:
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return parts


def _refine(graph: Graph, parts: List[int], max_imbalance: float, passes: int = 8) -> None:
    """FM-style boundary refinement with hill climbing (in place).

    Within a pass, moves may transiently exceed the balance bound by up
    to one vertex weight (so that swap-like sequences are reachable);
    only *balanced* prefixes are accepted as checkpoints, and the pass
    rolls back to the best one.
    """
    total = graph.total_vertex_weight
    half = total / 2.0
    strict = half * max_imbalance
    max_vw = max(graph.vwgt) if graph.n else 0.0
    relaxed = max(strict, max_vw)
    pw = [0.0, 0.0]
    for u in range(graph.n):
        pw[parts[u]] += graph.vwgt[u]

    def gain(u: int) -> float:
        g = 0.0
        pu = parts[u]
        for v, w in graph.adj[u].items():
            g += w if parts[v] != pu else -w
        return g

    def balanced() -> bool:
        return max(pw) <= half + strict + 1e-9

    for _ in range(passes):
        moved: List[Tuple[int, float]] = []
        locked = [False] * graph.n
        improved_any = False
        cum = 0.0
        best_cum = 0.0
        best_prefix = 0
        for _step in range(graph.n):
            best_u = -1
            best_score = float("-inf")
            best_raw = 0.0
            is_balanced = balanced()
            for u in range(graph.n):
                if locked[u]:
                    continue
                pu = parts[u]
                # Relaxed in-pass balance: allow overshoot by one vertex.
                if pw[1 - pu] + graph.vwgt[u] > half + relaxed:
                    continue
                # Only consider boundary vertices (fast reject); when the
                # state is imbalanced any vertex may move so balance can
                # always be restored.
                if is_balanced and not any(parts[v] != pu for v in graph.adj[u]):
                    continue
                raw = gain(u)
                score = raw
                # When imbalanced, prioritise moves off the heavy side.
                if not is_balanced and pw[pu] < pw[1 - pu]:
                    score -= total
                if score > best_score:
                    best_u, best_score, best_raw = u, score, raw
            if best_u < 0:
                break
            pu = parts[best_u]
            parts[best_u] = 1 - pu
            pw[pu] -= graph.vwgt[best_u]
            pw[1 - pu] += graph.vwgt[best_u]
            locked[best_u] = True
            moved.append((best_u, best_raw))
            cum += best_raw
            if balanced() and cum > best_cum + 1e-12:
                best_cum = cum
                best_prefix = len(moved)
                improved_any = True
        # Roll back moves beyond the best balanced prefix.
        for u, _g in reversed(moved[best_prefix:]):
            pu = parts[u]
            parts[u] = 1 - pu
            pw[pu] -= graph.vwgt[u]
            pw[1 - pu] += graph.vwgt[u]
        if not improved_any:
            break


def bisect(
    graph: Graph,
    max_imbalance: float = 0.05,
    restarts: int = 8,
    seed: int = 0,
    coarsen_to: int = 48,
) -> BisectionResult:
    """Multilevel weighted bisection of *graph*.

    ``max_imbalance`` is the allowed deviation of each side from half
    the total vertex weight (0.05 = 5%).  Returns the best of
    *restarts* runs.
    """
    if graph.n < 2:
        raise ValueError("bisect: graph must have at least 2 vertices")
    rng = random.Random(seed)
    best: Optional[BisectionResult] = None

    for _ in range(restarts):
        # Coarsening phase.
        levels: List[Tuple[Graph, List[int]]] = []
        g = graph
        while g.n > coarsen_to:
            coarse, cmap = _coarsen(g, rng)
            if coarse.n >= g.n:  # no progress (e.g. star graphs)
                break
            levels.append((g, cmap))
            g = coarse

        parts = _grow_initial(g, rng)
        _refine(g, parts, max_imbalance)

        # Uncoarsening with refinement at each level.
        for fine, cmap in reversed(levels):
            fine_parts = [parts[cmap[u]] for u in range(fine.n)]
            parts = fine_parts
            _refine(fine, parts, max_imbalance)
            g = fine

        cut = cut_weight(graph, parts)
        pw0 = sum(graph.vwgt[u] for u in range(graph.n) if parts[u] == 0)
        pw1 = graph.total_vertex_weight - pw0
        imbalance = max(pw0, pw1) / (graph.total_vertex_weight / 2.0)
        result = BisectionResult(parts=parts, cut=cut, part_weights=(pw0, pw1), imbalance=imbalance)
        if best is None or result.cut < best.cut:
            best = result
    assert best is not None
    return best
