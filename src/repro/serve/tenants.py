"""Per-tenant accounting: quotas and usage counters.

A *tenant* is whatever the ``X-Tenant`` request header says (missing
header → the shared ``public`` bucket).  Quotas bound the two resources
a tenant can hold: queued executions (admission control — breach is an
HTTP 429) and running executions (dispatch control — excess work stays
queued while other tenants proceed; see the round-robin pick in
:mod:`repro.serve.queue`).

Coalesced attachments deliberately cost nothing: a request that
piggybacks on an in-flight execution consumes no queue slot and no
worker, which is the whole economic point of coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["TenantQuota", "TenantState", "TenantRegistry"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant ceilings (uniform across tenants for now)."""

    max_queued: int = 16
    max_running: int = 4


@dataclass
class TenantState:
    """Live usage and lifetime counters for one tenant."""

    name: str
    queued: int = 0  # executions owned and waiting
    running: int = 0  # executions owned and executing
    submitted: int = 0  # records ever accepted (incl. cached/coalesced)
    done: int = 0
    failed: int = 0
    rejected: int = 0  # 429s
    cache_hits: int = 0
    coalesced: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "queued": self.queued,
            "running": self.running,
            "submitted": self.submitted,
            "done": self.done,
            "failed": self.failed,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
        }


@dataclass
class TenantRegistry:
    """Lazy name → :class:`TenantState` map with a snapshot view."""

    quota: TenantQuota = field(default_factory=TenantQuota)
    _tenants: Dict[str, TenantState] = field(default_factory=dict)

    def get(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = TenantState(name=name)
        return state

    def can_enqueue(self, name: str) -> bool:
        return self.get(name).queued < self.quota.max_queued

    def can_dispatch(self, name: str) -> bool:
        return self.get(name).running < self.quota.max_running

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {name: t.snapshot() for name, t in sorted(self._tenants.items())}
