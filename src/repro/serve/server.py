"""The asyncio service: endpoints, worker pool, autoscaling, drain.

One event loop owns all queue state; simulations execute in a thread
pool where each worker thread runs one execution at a time through the
existing orchestrate scheduler (by default a one-worker
:class:`~repro.orchestrate.scheduler.ProcessPoolScheduler`, so job
crashes stay isolated in a child process and the retry/timeout contract
carries over unchanged).  Telemetry for each execution goes to its own
JSONL file under the spool directory, which is what the ``/events``
endpoint tails.

Endpoints::

    POST /v1/jobs            submit one job object or a list (campaign)
    GET  /v1/jobs/{id}       record status + result
    GET  /v1/jobs/{id}/events  NDJSON live progress stream
    GET  /v1/results/{hash}  raw ResultStore entry by content hash
    GET  /v1/stats           queue/worker/tenant/latency metrics
    GET  /v1/healthz         liveness + drain state

SIGTERM/SIGINT start a graceful drain: submissions get 503, running
executions finish, the still-queued remainder is persisted and restored
on the next start.  A second signal forces immediate shutdown.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import os
import pathlib
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, AsyncIterator, Callable, Dict, List, Optional, Tuple, Union

from repro.orchestrate.job import Job, JobResult
from repro.orchestrate.scheduler import ProcessPoolScheduler, SerialScheduler
from repro.orchestrate.store import ResultStore
from repro.orchestrate.telemetry import Telemetry
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    LengthRequired,
    PayloadTooLarge,
    ProtocolError,
    StreamingResponse,
    error_response,
    json_response,
    read_request,
    write_response,
    write_streaming,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.models import (
    QuotaExceeded,
    ServeError,
    ValidationError,
    is_content_hash,
    job_from_request,
    tenant_from_headers,
)
from repro.serve.queue import JobQueue
from repro.serve.router import MethodNotAllowed, Router
from repro.serve.tenants import TenantQuota

__all__ = ["Autoscaler", "ServeApp", "serve", "parse_workers"]

PathLike = Union[str, pathlib.Path]


class Autoscaler:
    """Queue-depth driven worker-count decisions, with hysteresis.

    Scale *up* one worker after ``up_after`` consecutive observations
    of queued work with every current worker busy; scale *down* one
    after ``down_after`` consecutive observations of an empty queue
    with idle capacity.  Any mixed observation resets both streaks, so
    the pool never oscillates on a bursty queue.
    """

    def __init__(
        self,
        min_workers: int,
        max_workers: int,
        up_after: int = 2,
        down_after: int = 8,
    ):
        if not 1 <= min_workers <= max_workers:
            raise ValueError(
                f"need 1 <= min ({min_workers}) <= max ({max_workers})"
            )
        self.min = min_workers
        self.max = max_workers
        self.current = min_workers
        self.up_after = up_after
        self.down_after = down_after
        self._hi = 0
        self._lo = 0

    def observe(self, queued: int, running: int) -> int:
        """Feed one (queue depth, busy workers) sample; returns the target."""
        if queued > 0 and running >= self.current:
            self._hi += 1
            self._lo = 0
        elif queued == 0 and running < self.current:
            self._lo += 1
            self._hi = 0
        else:
            self._hi = self._lo = 0
        if self._hi >= self.up_after and self.current < self.max:
            self.current += 1
            self._hi = 0
        elif self._lo >= self.down_after and self.current > self.min:
            self.current -= 1
            self._lo = 0
        return self.current

    def snapshot(self) -> Dict[str, int]:
        return {"current": self.current, "min": self.min, "max": self.max}


def parse_workers(spec: str) -> Tuple[int, int]:
    """``--workers`` grammar: ``auto`` | ``N`` (fixed) | ``MIN:MAX``."""
    spec = str(spec).strip().lower()
    if spec == "auto":
        return 1, min(os.cpu_count() or 1, 8)
    if ":" in spec:
        lo, _, hi = spec.partition(":")
        return int(lo), int(hi)
    fixed = int(spec)
    return fixed, fixed


def default_scheduler_factory(
    inline: bool = False,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
) -> Callable[[], object]:
    """Scheduler each execution runs through.

    ``inline=False`` (default): a one-worker process pool per execution
    — crash isolation and per-job timeout, true parallelism across the
    service's worker threads.  ``inline=True``: the serial in-process
    scheduler, for tests and environments where forking is unwanted.
    """
    if inline:
        return lambda: SerialScheduler(max_retries=max_retries)
    return lambda: ProcessPoolScheduler(
        num_workers=1, timeout_s=timeout_s, max_retries=max_retries
    )


class ServeApp:
    """All service state; owned and mutated by one event loop thread."""

    def __init__(
        self,
        store: ResultStore,
        spool_dir: PathLike,
        quota: Optional[TenantQuota] = None,
        min_workers: int = 1,
        max_workers: int = 2,
        scheduler_factory: Optional[Callable[[], object]] = None,
        autoscale_interval_s: float = 0.25,
        store_gc_age_s: Optional[float] = None,
        store_gc_interval_s: float = 60.0,
        tail_interval_s: float = 0.05,
        flush_every: int = 1,
    ):
        self.store = store
        self.spool = pathlib.Path(spool_dir)
        self.events_dir = self.spool / "events"
        self.state_path = self.spool / "queue_state.json"
        self.metrics = ServeMetrics()
        self.queue = JobQueue(quota=quota, metrics=self.metrics)
        self.autoscaler = Autoscaler(min_workers, max_workers)
        self._scheduler_factory = scheduler_factory or default_scheduler_factory()
        self._autoscale_interval_s = autoscale_interval_s
        self._store_gc_age_s = store_gc_age_s
        self._store_gc_interval_s = store_gc_interval_s
        self._tail_interval_s = tail_interval_s
        self._flush_every = flush_every

        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._drain_event = threading.Event()  # handed to scheduler runs
        self._draining = False
        self._restored = 0
        self.saved_on_drain = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._tasks: List[asyncio.Task] = []

        self.router = Router()
        self.router.add("POST", "/v1/jobs", self.handle_submit)
        self.router.add("GET", "/v1/jobs/{id}", self.handle_job)
        self.router.add("GET", "/v1/jobs/{id}/events", self.handle_events)
        self.router.add("GET", "/v1/results/{hash}", self.handle_result)
        self.router.add("GET", "/v1/stats", self.handle_stats)
        self.router.add("GET", "/v1/healthz", self.handle_health)

    # -- lifecycle ---------------------------------------------------------

    async def run(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        ready: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Serve until drained; installs SIGTERM/SIGINT handlers if it can."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self.spool.mkdir(parents=True, exist_ok=True)
        self.events_dir.mkdir(parents=True, exist_ok=True)

        self._restored = self.queue.load_state(self.state_path)
        if self._restored:
            try:
                self.state_path.unlink()
            except OSError:
                pass

        server = await asyncio.start_server(self._connection, host, port)
        bound_port = server.sockets[0].getsockname()[1]

        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            # Only possible on the main thread of the main interpreter;
            # in-process test servers skip signal wiring and call
            # begin_drain() directly.
            self._loop.add_signal_handler(signal.SIGTERM, self.begin_drain)
            self._loop.add_signal_handler(signal.SIGINT, self.begin_drain)

        self._tasks.append(self._loop.create_task(self._autoscale_loop()))
        if self._store_gc_age_s is not None:
            self._tasks.append(self._loop.create_task(self._store_gc_loop()))

        if ready is not None:
            ready(host, bound_port)
        self._dispatch()

        try:
            async with server:
                await self._shutdown.wait()
        finally:
            for task in self._tasks:
                task.cancel()
            for task in self._tasks:
                with contextlib.suppress(asyncio.CancelledError):
                    await task
            self._tasks.clear()
            self._executor.shutdown(wait=True)
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                self._loop.remove_signal_handler(signal.SIGTERM)
                self._loop.remove_signal_handler(signal.SIGINT)

    def begin_drain(self) -> None:
        """First call: graceful drain.  Second call: stop immediately."""
        if self._draining:
            if self._shutdown is not None:
                self.queue.save_state(self.state_path)
                self._shutdown.set()
            return
        self._draining = True
        self._drain_event.set()
        self._maybe_finish_drain()

    def _maybe_finish_drain(self) -> None:
        if not self._draining or self._shutdown is None:
            return
        if self.queue.running_count() == 0:
            self.saved_on_drain = self.queue.save_state(self.state_path)
            self._shutdown.set()

    # -- dispatch / execution ---------------------------------------------

    def _dispatch(self) -> None:
        """Launch queued executions up to the autoscaler's target."""
        if self._draining:
            return
        while self.queue.running_count() < self.autoscaler.current:
            execution = self.queue.next_dispatch()
            if execution is None:
                return
            execution.events_path = str(self._events_path(execution.id))
            future = self._loop.run_in_executor(
                self._executor, self._execute, execution
            )
            future.add_done_callback(functools.partial(self._finish, execution))

    def _events_path(self, execution_id: str) -> pathlib.Path:
        return self.events_dir / f"{execution_id}.jsonl"

    def _execute(self, execution):
        """Worker thread: run one job through a fresh scheduler."""
        tele = Telemetry(
            jsonl_path=execution.events_path,
            live=False,
            flush_every=self._flush_every,
        )
        try:
            tele.emit(
                "execution_start",
                execution=execution.id,
                job_hash=execution.key,
                tenant=execution.owner,
                kind=execution.job.kind,
            )
            scheduler = self._scheduler_factory()
            outcomes = scheduler.run(
                [(execution.id, execution.job)],
                on_event=tele.emit,
                stop_event=self._drain_event,
            )
        finally:
            tele.close()
        return outcomes.get(execution.id)

    def _finish(self, execution, future) -> None:
        """Loop-thread completion callback for one execution."""
        error: Optional[str] = None
        outcome = None
        try:
            outcome = future.result()
        except Exception as exc:  # executor infrastructure failure
            error = f"{type(exc).__name__}: {exc}"

        if outcome is None and error is None and self._draining:
            # Drain won the race before the scheduler dispatched the
            # job: put it back so it persists with the queue state.
            self.queue.requeue(execution)
        else:
            if outcome is not None and outcome.ok:
                result: JobResult = outcome.result
                try:
                    self.store.put(execution.job, result)
                except OSError:
                    pass  # cache write failure must not fail the job
                self.queue.complete(execution, result)
            else:
                detail = error or (
                    outcome.error if outcome is not None else "job was not executed"
                )
                self.queue.complete(execution, None, error=detail)
        self._dispatch()
        self._maybe_finish_drain()

    # -- background tasks --------------------------------------------------

    async def _autoscale_loop(self) -> None:
        while True:
            await asyncio.sleep(self._autoscale_interval_s)
            before = self.autoscaler.current
            target = self.autoscaler.observe(
                self.queue.depth(), self.queue.running_count()
            )
            if target > before:
                self._dispatch()

    async def _store_gc_loop(self) -> None:
        while True:
            await asyncio.sleep(self._store_gc_interval_s)
            await self._loop.run_in_executor(
                None, self.store.prune, self._store_gc_age_s
            )

    # -- connection handling -----------------------------------------------

    async def _connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except LengthRequired as exc:
                    await write_response(writer, error_response(411, str(exc)), False)
                    break
                except PayloadTooLarge as exc:
                    await write_response(writer, error_response(413, str(exc)), False)
                    break
                except ProtocolError as exc:
                    await write_response(writer, error_response(400, str(exc)), False)
                    break
                if request is None:
                    break
                self.metrics.requests += 1
                response = await self._handle(request)
                if isinstance(response, StreamingResponse):
                    await write_streaming(writer, response)
                    break  # stream responses close the connection
                await write_response(writer, response, request.keep_alive)
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle(self, request: HttpRequest):
        try:
            handler, params = self.router.match(request.method, request.path)
            return await handler(request, params)
        except MethodNotAllowed as exc:
            self.metrics.http_errors += 1
            response = error_response(exc.status, str(exc))
            response.headers["Allow"] = ", ".join(exc.allowed)
            return response
        except ServeError as exc:
            self.metrics.http_errors += 1
            return error_response(exc.status, str(exc))
        except Exception as exc:  # never leak a traceback as a hung socket
            self.metrics.http_errors += 1
            return error_response(500, f"{type(exc).__name__}: {exc}")

    # -- endpoints ---------------------------------------------------------

    async def handle_submit(self, request: HttpRequest, params) -> HttpResponse:
        if self._draining:
            raise ServeError("service is draining; not accepting jobs", 503)
        tenant = tenant_from_headers(request.headers)
        body = request.json()
        if isinstance(body, dict) and set(body) == {"jobs"}:
            body = body["jobs"]
        if isinstance(body, list):
            if not body:
                raise ValidationError("empty job list")
            jobs = [job_from_request(item) for item in body]
            items: List[Dict[str, Any]] = []
            accepted = 0
            for job in jobs:
                try:
                    record = self._admit(job, tenant)
                except QuotaExceeded as exc:
                    self.metrics.http_errors += 1
                    items.append(
                        {"status": "rejected", "code": 429, "error": str(exc)}
                    )
                else:
                    accepted += 1
                    items.append(record.public(include_result=False))
            self._dispatch()
            return json_response(
                {"jobs": items, "accepted": accepted, "rejected": len(items) - accepted}
            )
        job = job_from_request(body)
        record = self._admit(job, tenant)
        self._dispatch()
        status = 200 if record.terminal else 202
        return json_response(record.public(), status=status)

    def _admit(self, job: Job, tenant: str):
        """One job through the admission ladder: cache → coalesce → queue."""
        cached = self.store.get(job)
        if cached is not None:
            return self.queue.record_cache_hit(job, tenant, cached)
        return self.queue.submit(job, tenant)

    async def handle_job(self, request: HttpRequest, params) -> HttpResponse:
        record = self.queue.records.get(params["id"])
        if record is None:
            raise ServeError(f"no such job: {params['id']}", 404)
        include_result = request.query.get("result", "1") not in ("0", "false")
        return json_response(record.public(include_result=include_result))

    async def handle_events(self, request: HttpRequest, params) -> StreamingResponse:
        record_id = params["id"]
        if record_id not in self.queue.records:
            raise ServeError(f"no such job: {record_id}", 404)
        return StreamingResponse(lines=self._event_lines(record_id))

    async def handle_result(self, request: HttpRequest, params) -> HttpResponse:
        key = params["hash"]
        if not is_content_hash(key):
            raise ValidationError("malformed content hash")
        entry = await self._loop.run_in_executor(None, self.store.read_entry, key)
        if entry is None:
            raise ServeError(f"no cached result for {key[:10]}…", 404)
        return json_response(entry)

    async def handle_stats(self, request: HttpRequest, params) -> HttpResponse:
        return json_response(self.stats())

    async def handle_health(self, request: HttpRequest, params) -> HttpResponse:
        return json_response(
            {"status": "draining" if self._draining else "ok"}
        )

    def stats(self) -> Dict[str, Any]:
        return {
            "queue": self.queue.snapshot(),
            "workers": dict(
                self.autoscaler.snapshot(), busy=self.queue.running_count()
            ),
            "metrics": self.metrics.snapshot(),
            "draining": self._draining,
            "restored": self._restored,
            "store": {"root": str(self.store.root)},
        }

    # -- event streaming ---------------------------------------------------

    async def _event_lines(self, record_id: str) -> AsyncIterator[str]:
        """NDJSON lines for one record: a header, the execution's JSONL
        telemetry tailed live, and a terminal ``record_done`` line."""
        record = self.queue.records[record_id]
        yield json.dumps(
            {
                "type": "record",
                "id": record.id,
                "status": record.status,
                "hash": record.key,
                "cached": record.cached,
                "coalesced": record.coalesced,
            },
            sort_keys=True,
        )
        pos = 0
        while True:
            record = self.queue.records[record_id]
            path = (
                self._events_path(record.execution_id)
                if record.execution_id is not None
                else None
            )
            if path is not None:
                pos, lines = _read_new_lines(path, pos)
                for line in lines:
                    yield line
            if record.terminal:
                if path is not None:  # final catch-up read
                    pos, lines = _read_new_lines(path, pos)
                    for line in lines:
                        yield line
                yield json.dumps(
                    {
                        "type": "record_done",
                        "id": record.id,
                        "status": record.status,
                        "cached": record.cached,
                        "coalesced": record.coalesced,
                    },
                    sort_keys=True,
                )
                return
            await asyncio.sleep(self._tail_interval_s)


def _read_new_lines(path: PathLike, pos: int) -> Tuple[int, List[str]]:
    """Complete lines appended to *path* since byte offset *pos*.

    Only advances past whole lines, so a line mid-write is picked up
    on the next poll instead of being emitted truncated.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(pos)
            data = fh.read()
    except OSError:
        return pos, []
    end = data.rfind(b"\n")
    if end < 0:
        return pos, []
    return pos + end + 1, data[:end].decode("utf-8", "replace").split("\n")


# --------------------------------------------------------------------------
# Blocking entry point (CLI).
# --------------------------------------------------------------------------


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: str = "auto",
    store_dir: PathLike = ".repro-cache",
    spool_dir: Optional[PathLike] = None,
    max_queued: int = 16,
    max_running: int = 4,
    job_timeout_s: Optional[float] = None,
    max_retries: int = 1,
    inline: bool = False,
    store_gc_age_s: Optional[float] = None,
    ready: Optional[Callable[[str, int], None]] = None,
) -> int:
    """Run the service until drained; returns a process exit code."""
    min_workers, max_workers = parse_workers(workers)
    store = ResultStore(store_dir)
    app = ServeApp(
        store=store,
        spool_dir=spool_dir if spool_dir is not None else store.root / "serve",
        quota=TenantQuota(max_queued=max_queued, max_running=max_running),
        min_workers=min_workers,
        max_workers=max_workers,
        scheduler_factory=default_scheduler_factory(
            inline=inline, timeout_s=job_timeout_s, max_retries=max_retries
        ),
        store_gc_age_s=store_gc_age_s,
    )
    asyncio.run(app.run(host=host, port=port, ready=ready))
    return 0
