"""Minimal HTTP/1.1 over asyncio streams — no dependencies, no magic.

The service needs exactly four HTTP behaviours: parse a request with an
optional JSON body, send a JSON response with Content-Length, stream an
unbounded NDJSON body with chunked transfer encoding, and keep-alive
between requests on one connection.  That is small enough that a
hand-rolled reader/writer beats dragging in a framework, and it keeps
the whole service importable on a bare CPython.

Limits are explicit: header block ≤ 64 KiB, body ≤ 8 MiB (campaign
submissions are job-spec JSON, not bulk data), and malformed framing
answers 400 and closes rather than guessing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.serve.models import ValidationError

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "StreamingResponse",
    "ProtocolError",
    "LengthRequired",
    "PayloadTooLarge",
    "json_response",
    "error_response",
    "read_request",
    "write_response",
    "write_streaming",
]

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed request framing; the connection answers 400 and closes."""


class LengthRequired(ProtocolError):
    """Body-bearing request without Content-Length (HTTP 411)."""


class PayloadTooLarge(ProtocolError):
    """Declared body larger than the service accepts (HTTP 413)."""


@dataclass
class HttpRequest:
    method: str
    path: str  # decoded, query stripped
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""

    def json(self) -> Any:
        if not self.body:
            raise ValidationError("request body is empty (expected JSON)")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class HttpResponse:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class StreamingResponse:
    """A chunked NDJSON body produced by an async line iterator."""

    lines: AsyncIterator[str]
    status: int = 200
    content_type: str = "application/x-ndjson"


def json_response(payload: Any, status: int = 200) -> HttpResponse:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return HttpResponse(status=status, body=body)


def error_response(status: int, message: str) -> HttpResponse:
    return json_response({"error": message, "status": status}, status=status)


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request; None on clean EOF before a request line.

    Raises :class:`ProtocolError` (→ 400) on malformed framing, or its
    subclasses :class:`LengthRequired` (→ 411) and
    :class:`PayloadTooLarge` (→ 413).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ProtocolError("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request head exceeds limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head exceeds limit")

    request_line, _, header_block = head.partition(b"\r\n")
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {request_line!r}")
    method, target, _version = parts

    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))

    headers: Dict[str, str] = {}
    for raw in header_block.split(b"\r\n"):
        if not raw:
            continue
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError("non-numeric Content-Length") from exc
        if length < 0:
            raise ProtocolError("negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise PayloadTooLarge(f"body of {length} bytes exceeds limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError("truncated request body") from exc
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise ProtocolError("chunked request bodies are not supported")
    elif method in ("POST", "PUT", "PATCH"):
        raise LengthRequired("POST requires Content-Length")

    return HttpRequest(method=method, path=path, query=query, headers=headers, body=body)


def _head_bytes(
    status: int, content_type: str, extra: Dict[str, str], framing: Tuple[str, str]
) -> bytes:
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}", f"Content-Type: {content_type}"]
    lines.append(f"{framing[0]}: {framing[1]}")
    for name, value in extra.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter, response: HttpResponse, keep_alive: bool = True
) -> None:
    extra = dict(response.headers)
    extra["Connection"] = "keep-alive" if keep_alive else "close"
    writer.write(
        _head_bytes(
            response.status,
            response.content_type,
            extra,
            ("Content-Length", str(len(response.body))),
        )
    )
    writer.write(response.body)
    await writer.drain()


async def write_streaming(
    writer: asyncio.StreamWriter, response: StreamingResponse
) -> None:
    """Send a chunked body, one chunk per NDJSON line; closes framing."""
    writer.write(
        _head_bytes(
            response.status,
            response.content_type,
            {"Connection": "close", "Cache-Control": "no-store"},
            ("Transfer-Encoding", "chunked"),
        )
    )
    await writer.drain()
    async for line in response.lines:
        data = (line.rstrip("\n") + "\n").encode()
        writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()
