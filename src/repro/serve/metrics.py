"""Service metrics: counters plus bounded latency windows.

Everything ``GET /v1/stats`` reports is aggregated here.  Wait and run
times keep the most recent ``window`` samples (a ring buffer) so the
percentiles track current behaviour instead of averaging over the whole
process lifetime; with the default window the memory cost is a few KiB.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Any, Dict, Optional

__all__ = ["LatencyWindow", "ServeMetrics"]


class LatencyWindow:
    """Ring buffer of recent durations with nearest-rank percentiles."""

    def __init__(self, window: int = 512):
        self._samples: deque = deque(maxlen=window)
        self.count = 0  # lifetime total, survives window eviction

    def add(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.count += 1

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the window; None when empty."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(math.ceil(p / 100.0 * len(ordered)), 1)
        return ordered[rank - 1]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "p50_s": self.percentile(50),
            "p99_s": self.percentile(99),
            "max_s": max(self._samples) if self._samples else None,
        }


class ServeMetrics:
    """Counters for the admission ladder and HTTP front door."""

    def __init__(self, window: int = 512, clock=time.monotonic):
        self._clock = clock
        self._started = clock()
        # Admission ladder: every accepted record lands in exactly one
        # of cache_hits / coalesced / misses (miss = new execution).
        self.submitted = 0  # records accepted (any rung)
        self.cache_hits = 0
        self.coalesced = 0
        self.misses = 0
        self.rejected = 0  # 429s
        # Execution outcomes (per execution, not per record).
        self.completed = 0
        self.failed = 0
        # HTTP front door.
        self.requests = 0
        self.http_errors = 0
        self.wait = LatencyWindow(window)  # enqueue → dispatch
        self.run = LatencyWindow(window)  # dispatch → completion

    def snapshot(self) -> Dict[str, Any]:
        return {
            "uptime_s": self._clock() - self._started,
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "misses": self.misses,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "requests": self.requests,
            "http_errors": self.http_errors,
            "wait": self.wait.snapshot(),
            "run": self.run.snapshot(),
        }
