"""Wire-level models for the service front-end.

Everything the HTTP layer exchanges with clients is defined here as
plain data: the typed error that maps onto an HTTP status code, the
validation of request bodies against the existing
:class:`repro.orchestrate.Job` schema (the service adds *no* second job
schema — a body is valid iff it builds a ``Job``), and the
:class:`JobRecord` that tracks one accepted request through
``queued → running → done | failed``.

Records are deliberately decoupled from executions: N coalesced
requests are N records attached to one
:class:`~repro.serve.coalesce.Execution`.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.orchestrate.job import Job

__all__ = [
    "ServeError",
    "ValidationError",
    "QuotaExceeded",
    "JobRecord",
    "QueuedState",
    "job_from_request",
    "tenant_from_headers",
    "DEFAULT_TENANT",
    "TENANT_HEADER",
    "is_content_hash",
]

#: Requests without an ``X-Tenant`` header share this bucket.
DEFAULT_TENANT = "public"

#: Header naming the quota bucket a request is accounted against.
TENANT_HEADER = "x-tenant"

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")
_HASH_RE = re.compile(r"^[0-9a-f]{64}$")

_VALID_KINDS = ("sweep", "exchange", "workload", "probe")


class ServeError(Exception):
    """An error with an HTTP status; the handler layer renders it as JSON."""

    status = 500

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        if status is not None:
            self.status = status


class ValidationError(ServeError):
    status = 400


class QuotaExceeded(ServeError):
    status = 429


def is_content_hash(text: str) -> bool:
    """True iff *text* is a well-formed content hash (guards path lookups)."""
    return bool(_HASH_RE.match(text))


def tenant_from_headers(headers: Dict[str, str]) -> str:
    """The quota bucket for a request; malformed names are rejected."""
    tenant = headers.get(TENANT_HEADER, DEFAULT_TENANT).strip() or DEFAULT_TENANT
    if not _TENANT_RE.match(tenant):
        raise ValidationError(
            f"invalid {TENANT_HEADER} value {tenant!r} "
            "(1-64 chars from [A-Za-z0-9._-])"
        )
    return tenant


# --------------------------------------------------------------------------
# Request body -> Job validation.
# --------------------------------------------------------------------------

#: Job field -> accepted JSON types.  bool is excluded from the numeric
#: fields explicitly (json booleans are ints in Python).
_FIELD_TYPES: Dict[str, tuple] = {
    "kind": (str,),
    "topology": (str,),
    "routing": (str,),
    "routing_kwargs": (dict,),
    "pattern": (str,),
    "pattern_kwargs": (dict,),
    "load": (int, float),
    "seed": (int,),
    "warmup_ns": (int, float),
    "measure_ns": (int, float),
    "arrival": (str,),
    "config": (dict,),
    "params": (dict,),
    "tag": (str,),
}


def job_from_request(body: Any) -> Job:
    """Validate one JSON job object against the ``Job`` schema.

    Raises :class:`ValidationError` (HTTP 400) with a message naming
    the first offending field; unknown fields are rejected rather than
    dropped so client typos fail loudly instead of silently changing
    the content hash.
    """
    if not isinstance(body, dict):
        raise ValidationError("job must be a JSON object")
    known = {f.name for f in dataclasses.fields(Job)}
    unknown = sorted(set(body) - known)
    if unknown:
        raise ValidationError(f"unknown job field(s): {', '.join(unknown)}")
    for name, value in body.items():
        types = _FIELD_TYPES[name]
        if isinstance(value, bool) and bool not in types:
            raise ValidationError(f"field {name!r} must be {types[0].__name__}")
        if not isinstance(value, types):
            raise ValidationError(
                f"field {name!r} must be {' or '.join(t.__name__ for t in types)}"
            )
    kind = body.get("kind", "sweep")
    if kind not in _VALID_KINDS:
        raise ValidationError(
            f"unknown job kind {kind!r} (expected one of {', '.join(_VALID_KINDS)})"
        )
    if kind != "probe" and not body.get("topology"):
        raise ValidationError(f"{kind} jobs require a non-empty 'topology' spec")
    return Job.from_dict(dict(body))


# --------------------------------------------------------------------------
# Per-request record.
# --------------------------------------------------------------------------


@dataclass
class JobRecord:
    """One accepted request's lifecycle, addressable at ``/v1/jobs/{id}``."""

    id: str
    tenant: str
    key: str  # job content hash
    status: str = "queued"  # "queued" | "running" | "done" | "failed"
    submitted: float = 0.0  # wall-clock timestamps (time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    cached: bool = False  # served straight from the ResultStore
    coalesced: bool = False  # attached to another request's execution
    execution_id: Optional[str] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None  # JobResult.to_dict()

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")

    def public(self, include_result: bool = True) -> Dict[str, Any]:
        """The JSON shape handed to clients."""
        out: Dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "hash": self.key,
            "status": self.status,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "href": f"/v1/jobs/{self.id}",
            "events": f"/v1/jobs/{self.id}/events",
        }
        if self.error is not None:
            out["error"] = self.error
        if include_result:
            out["result"] = self.result
        return out


@dataclass
class QueuedState:
    """Snapshot of one not-yet-started execution, for drain persistence."""

    job: Dict[str, Any]
    owner: str
    records: List[Dict[str, str]] = field(default_factory=list)
