"""Path-template routing for the service endpoints.

Templates look like ``/v1/jobs/{id}/events``; each ``{name}`` segment
captures one path component (no slashes).  Matching distinguishes an
unknown path (404) from a known path with the wrong method (405, with
an ``Allow`` header), which clients probing the API deserve.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple

from repro.serve.models import ServeError

__all__ = ["Router", "NotFound", "MethodNotAllowed"]


class NotFound(ServeError):
    status = 404


class MethodNotAllowed(ServeError):
    status = 405

    def __init__(self, message: str, allowed: List[str]):
        super().__init__(message)
        self.allowed = sorted(allowed)


_SEGMENT = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile(template: str) -> re.Pattern:
    pattern = _SEGMENT.sub(lambda m: f"(?P<{m.group(1)}>[^/]+)", re.escape(template)
                           .replace(r"\{", "{").replace(r"\}", "}"))
    return re.compile(f"^{pattern}$")


class Router:
    """Ordered (method, template) → handler table."""

    def __init__(self):
        self._routes: List[Tuple[str, re.Pattern, str, Callable]] = []

    def add(self, method: str, template: str, handler: Callable) -> None:
        self._routes.append((method.upper(), _compile(template), template, handler))

    def match(self, method: str, path: str) -> Tuple[Callable, Dict[str, str]]:
        """The handler and path params for *method path*.

        Raises :class:`NotFound` or :class:`MethodNotAllowed`.
        """
        allowed: List[str] = []
        for route_method, pattern, _template, handler in self._routes:
            m = pattern.match(path)
            if m is None:
                continue
            if route_method != method.upper():
                allowed.append(route_method)
                continue
            return handler, m.groupdict()
        if allowed:
            raise MethodNotAllowed(
                f"{method} not allowed on {path}", allowed=allowed
            )
        raise NotFound(f"no such endpoint: {path}")

    def templates(self) -> List[Tuple[str, str]]:
        return [(method, template) for method, _p, template, _h in self._routes]
