"""Simulation-as-a-service: an async HTTP front-end on ``repro.orchestrate``.

The paper's evaluation methodology is a family of topology × routing ×
load campaigns; this package serves that methodology to many concurrent
clients instead of one CLI invocation at a time (ROADMAP:
"Simulation-as-a-service").  Stdlib only — ``asyncio`` plus hand-rolled
HTTP/1.1 over asyncio streams:

- :mod:`~repro.serve.models` — request validation against the ``Job``
  schema, per-request :class:`JobRecord` lifecycle, typed HTTP errors;
- :mod:`~repro.serve.http` — HTTP/1.1 parse/respond/stream primitives;
- :mod:`~repro.serve.router` — path-template routing (404 vs 405);
- :mod:`~repro.serve.tenants` — per-``X-Tenant`` quotas and usage;
- :mod:`~repro.serve.coalesce` — one in-flight execution per job
  content hash, shared by all identical concurrent requests;
- :mod:`~repro.serve.metrics` — counters and p50/p99 latency windows
  for ``GET /v1/stats``;
- :mod:`~repro.serve.queue` — the tenant-fair queue state machine with
  drain persistence;
- :mod:`~repro.serve.server` — the asyncio app: endpoints, worker
  pool with autoscaling, graceful SIGTERM drain, store GC.

Start one with ``python -m repro serve`` (see docs/USAGE.md, "Run the
toolkit as a service").
"""

from repro.serve.coalesce import Coalescer, Execution
from repro.serve.metrics import LatencyWindow, ServeMetrics
from repro.serve.models import (
    DEFAULT_TENANT,
    TENANT_HEADER,
    JobRecord,
    QuotaExceeded,
    ServeError,
    ValidationError,
    job_from_request,
    tenant_from_headers,
)
from repro.serve.queue import JobQueue
from repro.serve.router import MethodNotAllowed, NotFound, Router
from repro.serve.server import Autoscaler, ServeApp, parse_workers, serve
from repro.serve.tenants import TenantQuota, TenantRegistry, TenantState

__all__ = [
    "Coalescer",
    "Execution",
    "LatencyWindow",
    "ServeMetrics",
    "DEFAULT_TENANT",
    "TENANT_HEADER",
    "JobRecord",
    "QuotaExceeded",
    "ServeError",
    "ValidationError",
    "job_from_request",
    "tenant_from_headers",
    "JobQueue",
    "MethodNotAllowed",
    "NotFound",
    "Router",
    "Autoscaler",
    "ServeApp",
    "parse_workers",
    "serve",
    "TenantQuota",
    "TenantRegistry",
    "TenantState",
]
