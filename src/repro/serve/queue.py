"""Multi-tenant job queue: admission, fair dispatch, completion, drain.

This is the service's synchronous core — a plain state machine with no
asyncio in it, which is what makes it unit-testable without a running
server.  The event loop (``repro.serve.server``) is the only caller and
always touches it from one thread, so there is no locking here.

Admission ladder for one submitted job (after the store lookup, which
the server does because it owns the store):

1. an execution for the same content hash is queued or running →
   **coalesce**: attach a new record, consume no quota;
2. tenant already holds ``max_queued`` queued executions → **429**;
3. otherwise → new execution on the tenant's FIFO.

Dispatch is round-robin across tenants with queued work, skipping
tenants at their ``max_running`` ceiling — one greedy tenant can fill
its own lane but never starve the others.

Drain persistence: every still-queued execution (job spec plus its
attached record ids) serialises to JSON on shutdown and is re-enqueued
on restart with the same record ids, so clients can keep polling the
URLs they were given across a restart.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.orchestrate.job import Job, JobResult
from repro.serve.coalesce import Coalescer, Execution
from repro.serve.metrics import ServeMetrics
from repro.serve.models import JobRecord, QuotaExceeded
from repro.serve.tenants import TenantQuota, TenantRegistry

__all__ = ["JobQueue"]

PathLike = Union[str, pathlib.Path]

STATE_VERSION = 1


class JobQueue:
    """Tenant-fair, coalescing queue of :class:`Execution` objects."""

    def __init__(
        self,
        quota: Optional[TenantQuota] = None,
        metrics: Optional[ServeMetrics] = None,
        clock=time.monotonic,
        wallclock=time.time,
    ):
        self.tenants = TenantRegistry(quota=quota or TenantQuota())
        self.metrics = metrics or ServeMetrics()
        self.coalescer = Coalescer()
        self.records: Dict[str, JobRecord] = {}
        self.executions: Dict[str, Execution] = {}  # in-flight, by execution id
        self._queues: Dict[str, deque] = {}  # tenant → deque[Execution]
        self._rr: deque = deque()  # tenant round-robin order
        self._running: Dict[str, Execution] = {}
        self._clock = clock
        self._wallclock = wallclock
        self._record_seq = 0
        self._execution_seq = 0

    # -- identifiers -------------------------------------------------------

    def _next_record_id(self) -> str:
        self._record_seq += 1
        return f"r-{self._record_seq:06d}"

    def _next_execution_id(self, key: str) -> str:
        self._execution_seq += 1
        return f"x-{self._execution_seq:06d}-{key[:10]}"

    # -- admission ---------------------------------------------------------

    def _new_record(self, tenant: str, key: str) -> JobRecord:
        record = JobRecord(
            id=self._next_record_id(),
            tenant=tenant,
            key=key,
            submitted=self._wallclock(),
        )
        self.records[record.id] = record
        return record

    def record_cache_hit(self, job: Job, tenant: str, result: JobResult) -> JobRecord:
        """Admit a request satisfied straight from the result store."""
        record = self._new_record(tenant, job.content_hash())
        now = self._wallclock()
        record.status = "done"
        record.cached = True
        record.started = record.finished = now
        record.result = result.to_dict()
        state = self.tenants.get(tenant)
        state.submitted += 1
        state.cache_hits += 1
        state.done += 1
        self.metrics.submitted += 1
        self.metrics.cache_hits += 1
        return record

    def submit(self, job: Job, tenant: str) -> JobRecord:
        """Admit one job: coalesce onto in-flight work or enqueue it.

        Raises :class:`QuotaExceeded` (HTTP 429) when the tenant's
        queued-execution quota is exhausted and no coalesce applies.
        """
        key = job.content_hash()
        state = self.tenants.get(tenant)

        inflight = self.coalescer.lookup(key)
        if inflight is not None:
            record = self._new_record(tenant, key)
            record.coalesced = True
            record.execution_id = inflight.id
            record.status = inflight.state  # "queued" or "running"
            if inflight.state == "running":
                record.started = self._wallclock()
            inflight.record_ids.append(record.id)
            state.submitted += 1
            state.coalesced += 1
            self.metrics.submitted += 1
            self.metrics.coalesced += 1
            return record

        if not self.tenants.can_enqueue(tenant):
            state.rejected += 1
            self.metrics.rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} has {state.queued} queued job(s), "
                f"quota is {self.tenants.quota.max_queued}"
            )

        record = self._new_record(tenant, key)
        execution = Execution(
            id=self._next_execution_id(key),
            job=job,
            key=key,
            owner=tenant,
            record_ids=[record.id],
            enqueued_at=self._clock(),
        )
        record.execution_id = execution.id
        self.coalescer.register(execution)
        self.executions[execution.id] = execution
        self._enqueue(execution)
        state.submitted += 1
        state.queued += 1
        self.metrics.submitted += 1
        self.metrics.misses += 1
        return record

    def _enqueue(self, execution: Execution) -> None:
        queue = self._queues.get(execution.owner)
        if queue is None:
            queue = self._queues[execution.owner] = deque()
        if execution.owner not in self._rr:
            self._rr.append(execution.owner)
        queue.append(execution)

    # -- dispatch ----------------------------------------------------------

    def next_dispatch(self) -> Optional[Execution]:
        """Pop the next execution, fair round-robin across tenants.

        Tenants at their ``max_running`` ceiling keep their place in
        line but are skipped this round.  Returns None when nothing is
        dispatchable.  The returned execution is marked running and its
        records flipped to ``running``.
        """
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(tenant)
            if not queue:
                # Lazily drop tenants with no queued work from the ring.
                self._rr.remove(tenant)
                self._queues.pop(tenant, None)
                continue
            if not self.tenants.can_dispatch(tenant):
                continue
            execution = queue.popleft()
            self._mark_running(execution)
            return execution
        return None

    def _mark_running(self, execution: Execution) -> None:
        now_wall = self._wallclock()
        execution.state = "running"
        execution.started_at = self._clock()
        self._running[execution.id] = execution
        state = self.tenants.get(execution.owner)
        state.queued = max(0, state.queued - 1)
        state.running += 1
        self.metrics.wait.add(execution.started_at - execution.enqueued_at)
        for record_id in execution.record_ids:
            record = self.records[record_id]
            record.status = "running"
            record.started = now_wall

    def requeue(self, execution: Execution) -> None:
        """Return a dispatched-but-never-run execution to its queue.

        Happens in exactly one race: drain began between dispatch and
        the scheduler picking the job up.  The execution must persist
        with the queue state, so it goes back to ``queued``.
        """
        self._running.pop(execution.id, None)
        execution.state = "queued"
        execution.started_at = None
        state = self.tenants.get(execution.owner)
        state.running = max(0, state.running - 1)
        state.queued += 1
        for record_id in execution.record_ids:
            record = self.records[record_id]
            record.status = "queued"
            record.started = None
        self._enqueue(execution)

    # -- completion --------------------------------------------------------

    def complete(
        self,
        execution: Execution,
        result: Optional[JobResult],
        error: Optional[str] = None,
    ) -> List[JobRecord]:
        """Resolve an execution; every attached record gets the outcome."""
        ok = result is not None and error is None
        now_wall = self._wallclock()
        self._running.pop(execution.id, None)
        self.executions.pop(execution.id, None)
        self.coalescer.resolve(execution.key)
        owner = self.tenants.get(execution.owner)
        owner.running = max(0, owner.running - 1)
        if execution.started_at is not None:
            self.metrics.run.add(self._clock() - execution.started_at)
        if ok:
            self.metrics.completed += 1
        else:
            self.metrics.failed += 1

        resolved: List[JobRecord] = []
        result_dict = result.to_dict() if result is not None else None
        for record_id in execution.record_ids:
            record = self.records[record_id]
            record.finished = now_wall
            if record.started is None:
                record.started = now_wall
            if ok:
                record.status = "done"
                record.result = result_dict
                self.tenants.get(record.tenant).done += 1
            else:
                record.status = "failed"
                record.error = error or "execution failed"
                self.tenants.get(record.tenant).failed += 1
            resolved.append(record)
        return resolved

    # -- introspection -----------------------------------------------------

    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def running_count(self) -> int:
        return len(self._running)

    def queued_executions(self) -> Iterator[Execution]:
        for queue in self._queues.values():
            yield from queue

    def snapshot(self) -> Dict[str, Any]:
        return {
            "depth": self.depth(),
            "running": self.running_count(),
            "inflight_keys": len(self.coalescer),
            "records": len(self.records),
            "tenants": self.tenants.snapshot(),
        }

    # -- drain persistence -------------------------------------------------

    def save_state(self, path: PathLike) -> int:
        """Atomically persist every queued execution; returns the count.

        Running executions are *not* saved — drain lets them finish.
        With nothing queued any stale state file is removed so a
        restart cannot resurrect work that already ran.
        """
        path = pathlib.Path(path)
        entries = []
        for execution in self.queued_executions():
            entries.append(
                {
                    "job": execution.job.to_dict(),
                    "owner": execution.owner,
                    "records": [
                        {"id": rid, "tenant": self.records[rid].tenant,
                         "submitted": self.records[rid].submitted}
                        for rid in execution.record_ids
                    ],
                }
            )
        if not entries:
            try:
                path.unlink()
            except OSError:
                pass
            return 0
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": STATE_VERSION, "saved": self._wallclock(),
                   "entries": entries}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(entries)

    def load_state(self, path: PathLike) -> int:
        """Re-enqueue executions saved by :meth:`save_state`.

        Record ids are preserved so clients polling ``/v1/jobs/{id}``
        across the restart keep working.  Returns the number of
        executions restored; a missing or unreadable file restores
        nothing (the service starts empty rather than refusing to
        start).
        """
        path = pathlib.Path(path)
        try:
            with path.open() as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return 0
        if payload.get("version") != STATE_VERSION:
            return 0
        restored = 0
        for entry in payload.get("entries", []):
            try:
                job = Job.from_dict(entry["job"])
                owner = str(entry["owner"])
                saved_records = entry["records"] or []
            except (KeyError, TypeError):
                continue
            key = job.content_hash()
            if key in self.coalescer:
                continue  # identical work already re-submitted
            execution = Execution(
                id=self._next_execution_id(key),
                job=job,
                key=key,
                owner=owner,
                enqueued_at=self._clock(),
            )
            for saved in saved_records:
                record_id = str(saved.get("id", "")) or self._next_record_id()
                record = JobRecord(
                    id=record_id,
                    tenant=str(saved.get("tenant", owner)),
                    key=key,
                    submitted=float(saved.get("submitted", self._wallclock())),
                    execution_id=execution.id,
                    coalesced=len(execution.record_ids) > 0,
                )
                self.records[record.id] = record
                execution.record_ids.append(record.id)
                self._bump_record_seq(record_id)
            if not execution.record_ids:
                continue
            self.coalescer.register(execution)
            self.executions[execution.id] = execution
            self._enqueue(execution)
            state = self.tenants.get(owner)
            state.queued += 1
            restored += 1
        return restored

    def _bump_record_seq(self, record_id: str) -> None:
        """Keep the id sequence ahead of restored ids to avoid collisions."""
        if record_id.startswith("r-"):
            try:
                self._record_seq = max(self._record_seq, int(record_id[2:]))
            except ValueError:
                pass
