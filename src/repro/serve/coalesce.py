"""Request coalescing: one execution per distinct content hash.

The :class:`~repro.orchestrate.job.Job` content hash already defines
"the same computation" for the result cache; the coalescer extends that
identity to *in-flight* work.  While an execution for hash H is queued
or running, every new request for H attaches to it instead of spawning
a second execution, and all attached records resolve together from the
single result.  Combined with the store lookup at admission this gives
the full ladder: cache hit → coalesce → execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.orchestrate.job import Job

__all__ = ["Execution", "Coalescer"]


@dataclass
class Execution:
    """One scheduled run of a job, shared by all coalesced records."""

    id: str
    job: Job
    key: str  # job.content_hash(), precomputed
    owner: str  # tenant whose quota the execution occupies
    state: str = "queued"  # "queued" | "running"
    record_ids: List[str] = field(default_factory=list)
    enqueued_at: float = 0.0  # monotonic clock
    started_at: Optional[float] = None
    events_path: Optional[str] = None  # JSONL telemetry tail target


class Coalescer:
    """Map of in-flight executions keyed by job content hash."""

    def __init__(self):
        self._inflight: Dict[str, Execution] = {}

    def lookup(self, key: str) -> Optional[Execution]:
        return self._inflight.get(key)

    def register(self, execution: Execution) -> None:
        if execution.key in self._inflight:
            raise ValueError(f"execution for {execution.key[:10]} already in flight")
        self._inflight[execution.key] = execution

    def resolve(self, key: str) -> Optional[Execution]:
        """Remove and return the in-flight execution for *key*, if any."""
        return self._inflight.pop(key, None)

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: str) -> bool:
        return key in self._inflight
