"""Collective-communication workload engine (closed-loop evaluation).

The paper evaluates topologies under open-loop synthetic traffic
(Sec. 6); real HPC/ML jobs are closed-loop -- ranks send the *next*
message only when its dependencies complete.  This package expresses
such workloads as dependency DAGs of messages and drives them through
the flit-level simulator:

- :mod:`~repro.workload.dag` -- :class:`Workload` / :class:`Message`
  (nodes = sends with src/dst/size, edges = happens-after), validation
  and critical-path analysis;
- :mod:`~repro.workload.collectives` -- schedule generators: ring and
  recursive-doubling all-reduce, ring all-gather, 3D-stencil halo
  exchange, and the paper's phased linear-shift all-to-all;
- :mod:`~repro.workload.driver` -- the closed-loop driver releasing
  messages via ``NIC.submit`` as predecessor deliveries are observed
  through :meth:`repro.sim.Network.add_delivery_listener`.

Typical use::

    from repro.sim import Network
    from repro.workload import ring_allreduce

    w = ring_allreduce(ranks=topo.num_nodes, message_bytes=65536)
    result = Network(topo, routing).run_workload(w)
    print(result["completion_ns"], result["link_load_skew"])
"""

from repro.workload.collectives import (
    WORKLOAD_GENERATORS,
    build_workload,
    halo_exchange_3d,
    largest_power_of_two,
    phased_alltoall,
    recursive_doubling_allreduce,
    ring_allgather,
    ring_allreduce,
)
from repro.workload.dag import CriticalPath, Message, Workload
from repro.workload.driver import WorkloadDriver, run_workload

__all__ = [
    "Message",
    "Workload",
    "CriticalPath",
    "ring_allreduce",
    "recursive_doubling_allreduce",
    "ring_allgather",
    "halo_exchange_3d",
    "phased_alltoall",
    "WORKLOAD_GENERATORS",
    "build_workload",
    "largest_power_of_two",
    "WorkloadDriver",
    "run_workload",
]
