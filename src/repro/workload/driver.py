"""Closed-loop workload execution through the flit-level simulator.

:class:`WorkloadDriver` releases a :class:`~repro.workload.dag.Workload`
into a :class:`~repro.sim.Network`: root messages are submitted at time
zero, and every subsequent message enters its source NIC the moment the
last packet of its last dependency is ejected at the destination --
observed through the network's delivery-notification hook
(:meth:`Network.add_delivery_listener`).  This is the closed-loop dual
of ``run_synthetic``/``run_exchange``: injection is gated by delivery,
so the measured quantity is *schedule completion time*, not sustained
rate.

The driver reports, per phase and overall:

- completion time (ns) and effective throughput,
- the DAG critical path (length, bytes, zero-contention bound) and the
  resulting *contention stretch* (measured / bound),
- per-route-kind packet counts (how much of each phase went minimal
  vs. indirect under adaptive routing),
- link-load skew (max / mean router-link utilization over the run).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.sim.network import Network
from repro.workload.dag import Message, Workload

__all__ = ["WorkloadDriver", "run_workload"]


class WorkloadDriver:
    """Drives one workload through one (fresh) network instance."""

    def __init__(self, net: Network, workload: Workload):
        workload.validate(num_nodes=net.topology.num_nodes)
        self.net = net
        self.workload = workload
        self._pkt_bytes = net.config.packet_bytes
        # Mutable DAG execution state.
        self._deps_left: Dict[int, int] = {}
        self._packets_left: Dict[int, int] = {}
        self._dependents = workload.dependents()
        self._complete_ns: Dict[int, float] = {}
        self._released = 0
        self._delivered_packets = 0
        self._expected_packets = 0
        # Per-phase accounting.
        self._phase_kinds: Dict[str, Dict[str, int]] = {}
        self._phase_done_ns: Dict[str, float] = {}
        self._phase_msgs_left: Dict[str, int] = {}

    # -- release / completion machinery -------------------------------------

    def _release(self, msg: Message) -> None:
        """Submit all packets of *msg* (or complete it instantly if local)."""
        self._released += 1
        if msg.is_local:
            # Control-only edge: completes at release time, but via the
            # event queue so dependents observe a consistent clock.
            self.net.engine.schedule(0.0, self._complete, msg)
            return
        nic = self.net.nics[msg.src]
        remaining = msg.size
        while remaining > 0:
            chunk = min(self._pkt_bytes, remaining)
            nic.submit(msg.dst, chunk, msg_id=msg.mid)
            remaining -= chunk

    def _on_delivery(self, pkt) -> None:
        """Network delivery hook: count down the packet's message."""
        mid = pkt.msg_id
        if mid is None:
            return
        left = self._packets_left.get(mid)
        if left is None:
            return
        self._delivered_packets += 1
        msg = self.workload.messages[mid]
        kinds = self._phase_kinds.setdefault(msg.phase, {})
        kinds[pkt.kind] = kinds.get(pkt.kind, 0) + 1
        if left == 1:
            self._complete(msg)
        else:
            self._packets_left[mid] = left - 1

    def _complete(self, msg: Message) -> None:
        now = self.net.engine.now
        self._packets_left[msg.mid] = 0
        self._complete_ns[msg.mid] = now
        self._phase_msgs_left[msg.phase] -= 1
        if self._phase_msgs_left[msg.phase] == 0:
            self._phase_done_ns[msg.phase] = now
        for dep_mid in self._dependents[msg.mid]:
            self._deps_left[dep_mid] -= 1
            if self._deps_left[dep_mid] == 0:
                self._release(self.workload.messages[dep_mid])

    # -- the experiment ------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> Dict[str, Any]:
        """Execute to completion; returns a plain-data result dict."""
        net = self.net
        net._claim_experiment()
        net.stats.set_window(0.0, None)
        wall_start = time.perf_counter()

        pkt_bytes = self._pkt_bytes
        roots: List[Message] = []
        for msg in self.workload:
            self._deps_left[msg.mid] = len(msg.deps)
            packets = 0 if msg.is_local else -(-msg.size // pkt_bytes)
            self._packets_left[msg.mid] = packets
            self._expected_packets += packets
            self._phase_msgs_left[msg.phase] = (
                self._phase_msgs_left.get(msg.phase, 0) + 1
            )
            if not msg.deps:
                roots.append(msg)

        net.add_delivery_listener(self._on_delivery)
        for msg in roots:
            self._release(msg)
        events = net.engine.run(max_events=max_events)
        wall_s = time.perf_counter() - wall_start

        if len(self._complete_ns) != self.workload.num_messages:
            done = len(self._complete_ns)
            fm = getattr(net, "fault_manager", None)
            dropped = fm.dropped if fm is not None else 0
            why = (
                f"{dropped} packets dropped at failed links "
                f"(fault_policy='drop' cannot complete a closed-loop "
                f"workload: lost packets are never retransmitted)"
                if dropped
                else "possible deadlock or event-budget exhaustion"
            )
            raise RuntimeError(
                f"workload {self.workload.name!r} incomplete: {done}/"
                f"{self.workload.num_messages} messages finished, "
                f"{self._released - done} in flight ({why})"
            )

        completion = max(self._complete_ns.values())
        # Finite runs measure utilization over the whole schedule, so
        # net.channel_utilization() works without an explicit window.
        if completion > 0:
            net.clock.utilization_window = completion
        cp = self.workload.critical_path()
        ideal = cp.ideal_ns(net.config)
        total_bytes = self.workload.total_bytes
        rate = net.config.link_bandwidth_gbps / 8.0  # bytes per ns
        n = net.topology.num_nodes
        skew = self._link_skew(completion)
        phases = {
            phase: {
                "messages": count_total,
                "done_ns": self._phase_done_ns[phase],
                "kind_counts": dict(self._phase_kinds.get(phase, {})),
            }
            for phase, count_total in _phase_sizes(self.workload).items()
        }
        result = {
            "workload": self.workload.name,
            "completion_ns": completion,
            "messages": self.workload.num_messages,
            "packets": self._delivered_packets,
            "total_bytes": float(total_bytes),
            "effective_throughput": (
                total_bytes / (completion * n * rate) if completion > 0 else 0.0
            ),
            "critical_path_messages": cp.length,
            "critical_path_bytes": cp.bytes,
            "critical_path_ideal_ns": ideal,
            "contention_stretch": completion / ideal if ideal > 0 else 0.0,
            "link_load_max": skew["max"],
            "link_load_mean": skew["mean"],
            "link_load_skew": skew["skew"],
            "phases": phases,
            "events": events,
            "driver_wall_s": wall_s,
        }
        fm = net.fault_manager
        if fm is not None:
            # Degradation metrics (repro.resilience): how the schedule
            # absorbed the injected faults.  Post-fault skew covers the
            # window from the first failure to schedule completion.
            result["fault_events"] = fm.fired
            result["fault_reroutes"] = fm.reroutes
            result["fault_dropped"] = fm.dropped
            result["first_fault_ns"] = fm.first_fault_ns
            post = fm.post_fault_skew(completion)
            if post is not None:
                result["post_fault_link_load_max"] = post["max"]
                result["post_fault_link_load_mean"] = post["mean"]
                result["post_fault_link_load_skew"] = post["skew"]
        return result

    def _link_skew(self, completion_ns: float) -> Dict[str, float]:
        """Max/mean utilization over router-router links for the run."""
        if completion_ns <= 0:
            return {"max": 0.0, "mean": 0.0, "skew": 0.0}
        util = self.net.channel_utilization(window_ns=completion_ns)
        fabric = [v for k, v in util.items() if k[0] != "eject"]
        if not fabric:
            return {"max": 0.0, "mean": 0.0, "skew": 0.0}
        peak = max(fabric)
        mean = sum(fabric) / len(fabric)
        return {
            "max": peak,
            "mean": mean,
            "skew": peak / mean if mean > 0 else 0.0,
        }


def _phase_sizes(workload: Workload) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for msg in workload:
        out[msg.phase] = out.get(msg.phase, 0) + 1
    return out


def run_workload(
    net: Network, workload: Workload, max_events: Optional[int] = None
) -> Dict[str, Any]:
    """Convenience wrapper: drive *workload* through *net* to completion."""
    return WorkloadDriver(net, workload).run(max_events=max_events)
