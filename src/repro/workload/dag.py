"""Dependency-DAG representation of a communication workload.

A workload is a set of point-to-point messages with *happens-after*
edges: a message may enter the network only once every one of its
dependencies has been fully delivered.  This is the closed-loop dual of
the open-loop synthetic patterns of :mod:`repro.traffic` -- the thing
that actually separates topologies on real applications is how fast a
*schedule* completes, not the steady-state rate a pattern sustains
(cf. the Slim Fly deployment study, arXiv:2310.03742).

:class:`Workload` is pure data plus graph algorithms (validation,
critical path); driving it through the simulator is the job of
:class:`repro.workload.driver.WorkloadDriver`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Message", "Workload", "CriticalPath"]


@dataclass(frozen=True)
class Message:
    """One send: *src* node transmits *size* bytes to *dst* node.

    ``deps`` lists message ids that must be fully delivered before this
    message may be released.  ``phase`` is a presentation label (e.g.
    ``"reduce-scatter"`` or ``"step3"``) used for per-phase statistics.
    A message with ``src == dst`` or ``size == 0`` is a pure control
    dependency: it completes the moment it is released, without
    touching the network.
    """

    mid: int
    src: int
    dst: int
    size: int
    deps: Tuple[int, ...] = ()
    phase: str = ""

    @property
    def is_local(self) -> bool:
        return self.src == self.dst or self.size == 0


@dataclass
class CriticalPath:
    """Longest happens-after chain through the DAG."""

    #: Number of messages on the chain (DAG depth).
    length: int
    #: Total bytes serialized along the chain.
    bytes: int
    #: Message ids on the chain, in dependency order.
    messages: List[int] = field(default_factory=list)

    #: Bytes of each chain message (0 for control-only), in chain order.
    chain_bytes: List[int] = field(default_factory=list)

    def ideal_ns(self, config) -> float:
        """Zero-contention lower bound on the chain's completion time.

        Each message on the chain must at least serialize through its
        source NIC and traverse one switch: ``packets * packet_time +
        switch + 2 links`` per message.  Real completion times include
        queueing and contention on top of this bound.
        """
        pkt = config.packet_bytes
        per_msg = config.switch_latency_ns + 2 * config.link_latency_ns
        total = 0.0
        for size in self.chain_bytes:
            if size > 0:  # control-only chain links are instantaneous
                total += per_msg + -(-size // pkt) * config.packet_time_ns
        return total


class Workload:
    """A named DAG of :class:`Message` nodes.

    Build one with the generators in
    :mod:`repro.workload.collectives`, or incrementally::

        w = Workload("pipeline")
        a = w.add(src=0, dst=1, size=4096)
        b = w.add(src=1, dst=2, size=4096, deps=[a])

    The class maintains insertion order (message ids are dense,
    starting at 0) and validates dependency references eagerly;
    :meth:`validate` additionally proves acyclicity.
    """

    def __init__(self, name: str = "workload"):
        self.name = name
        self.messages: Dict[int, Message] = {}

    # -- construction -------------------------------------------------------

    def add(
        self,
        src: int,
        dst: int,
        size: int,
        deps: Iterable[int] = (),
        phase: str = "",
    ) -> int:
        """Append one message; returns its id."""
        if size < 0:
            raise ValueError(f"message size {size} must be >= 0")
        if src < 0 or dst < 0:
            raise ValueError(f"bad endpoints ({src}, {dst})")
        mid = len(self.messages)
        dep_tuple = tuple(dict.fromkeys(int(d) for d in deps))
        for d in dep_tuple:
            if d not in self.messages:
                raise ValueError(f"message {mid}: unknown dependency {d}")
            if d == mid:
                raise ValueError(f"message {mid} depends on itself")
        self.messages[mid] = Message(mid, src, dst, size, dep_tuple, phase)
        return mid

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages.values())

    @property
    def num_messages(self) -> int:
        return len(self.messages)

    @property
    def total_bytes(self) -> int:
        return sum(m.size for m in self.messages.values() if not m.is_local)

    @property
    def phases(self) -> List[str]:
        """Distinct phase labels, in first-appearance order."""
        seen = dict.fromkeys(m.phase for m in self.messages.values())
        return list(seen)

    def endpoints(self) -> Tuple[int, ...]:
        """Every node that sends or receives, ascending."""
        nodes = set()
        for m in self.messages.values():
            nodes.add(m.src)
            nodes.add(m.dst)
        return tuple(sorted(nodes))

    def dependents(self) -> Dict[int, List[int]]:
        """Forward adjacency: ``{mid: [messages depending on mid]}``."""
        out: Dict[int, List[int]] = {mid: [] for mid in self.messages}
        for m in self.messages.values():
            for d in m.deps:
                out[d].append(m.mid)
        return out

    # -- graph algorithms ---------------------------------------------------

    def topological_order(self) -> List[int]:
        """Kahn's algorithm; raises ``ValueError`` on a cycle."""
        indeg = {mid: len(m.deps) for mid, m in self.messages.items()}
        fwd = self.dependents()
        ready = deque(mid for mid, d in indeg.items() if d == 0)
        order: List[int] = []
        while ready:
            mid = ready.popleft()
            order.append(mid)
            for nxt in fwd[mid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.messages):
            stuck = sorted(mid for mid, d in indeg.items() if d > 0)
            raise ValueError(
                f"workload {self.name!r}: dependency cycle involving "
                f"messages {stuck[:8]}{'...' if len(stuck) > 8 else ''}"
            )
        return order

    def validate(self, num_nodes: Optional[int] = None) -> None:
        """Full structural check: endpoints in range, DAG acyclic."""
        if not self.messages:
            raise ValueError(f"workload {self.name!r} has no messages")
        if num_nodes is not None:
            for m in self.messages.values():
                if m.src >= num_nodes or m.dst >= num_nodes:
                    raise ValueError(
                        f"workload {self.name!r}: message {m.mid} endpoints "
                        f"({m.src}, {m.dst}) exceed node count {num_nodes}"
                    )
        self.topological_order()

    def critical_path(self) -> CriticalPath:
        """Longest chain by serialized bytes (ties broken by length).

        Local (control-only) messages contribute zero bytes but still
        count toward the chain length, so a barrier-heavy schedule shows
        a deep critical path even when it moves few bytes.
        """
        order = self.topological_order()
        best_bytes: Dict[int, int] = {}
        best_len: Dict[int, int] = {}
        prev: Dict[int, Optional[int]] = {}
        for mid in order:
            m = self.messages[mid]
            contrib = 0 if m.is_local else m.size
            b, ln, p = contrib, 1, None
            for d in m.deps:
                cand_b = best_bytes[d] + contrib
                cand_ln = best_len[d] + 1
                if (cand_b, cand_ln) > (b, ln):
                    b, ln, p = cand_b, cand_ln, d
            best_bytes[mid], best_len[mid], prev[mid] = b, ln, p
        tail = max(order, key=lambda mid: (best_bytes[mid], best_len[mid]))
        chain: List[int] = []
        cur: Optional[int] = tail
        while cur is not None:
            chain.append(cur)
            cur = prev[cur]
        chain.reverse()
        return CriticalPath(
            length=best_len[tail],
            bytes=best_bytes[tail],
            messages=chain,
            chain_bytes=[
                0 if self.messages[mid].is_local else self.messages[mid].size
                for mid in chain
            ],
        )

    def remap(self, node_map: Sequence[int]) -> "Workload":
        """A copy with rank ``r`` placed on node ``node_map[r]``.

        The default generators use the paper's contiguous mapping
        (rank == node); remapping lets placement studies reuse the same
        schedule.
        """
        table = list(node_map)
        out = Workload(self.name)
        for m in self.messages.values():
            out.add(table[m.src], table[m.dst], m.size, m.deps, m.phase)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Workload {self.name!r}: {self.num_messages} messages, "
            f"{self.total_bytes} bytes>"
        )
