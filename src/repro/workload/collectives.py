"""Collective-communication schedule generators.

Each generator lays a standard collective algorithm out as a
:class:`~repro.workload.dag.Workload` over *ranks* ``0..R-1``.  Ranks
map contiguously onto nodes (the paper's Sec. 4.4 placement); pass the
result through :meth:`Workload.remap` for other placements.

Implemented schedules:

- :func:`ring_allreduce` -- reduce-scatter ring followed by an
  all-gather ring, ``2(R-1)`` steps of ``size/R``-byte chunks (the
  bandwidth-optimal schedule used by NCCL/Horovod-style frameworks);
- :func:`recursive_doubling_allreduce` -- ``log2 R`` butterfly rounds
  of full-vector exchanges (latency-optimal for small messages);
- :func:`ring_allgather` -- ``R-1`` steps circulating each rank's
  contribution;
- :func:`halo_exchange_3d` -- iterated six-direction stencil exchange
  on the same torus geometry as
  :class:`repro.traffic.NearestNeighbor3D`;
- :func:`phased_alltoall` -- the linear-shift phase schedule of the
  paper's all-to-all exchange (Sec. 4.4), optionally with global
  barriers between phases.

``build_workload`` is the string registry used by the CLI and by
:mod:`repro.orchestrate` job specs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.traffic.mapping import best_torus_dims, torus_coords, torus_rank
from repro.workload.dag import Workload

__all__ = [
    "ring_allreduce",
    "recursive_doubling_allreduce",
    "ring_allgather",
    "halo_exchange_3d",
    "phased_alltoall",
    "WORKLOAD_GENERATORS",
    "build_workload",
    "largest_power_of_two",
]


def _check_ranks(ranks: int, minimum: int = 2) -> None:
    if ranks < minimum:
        raise ValueError(f"collective needs >= {minimum} ranks, got {ranks}")


def _check_bytes(message_bytes: int) -> None:
    if message_bytes < 1:
        raise ValueError(f"message_bytes={message_bytes} must be >= 1")


def largest_power_of_two(n: int) -> int:
    """The largest ``2**m <= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return 1 << (n.bit_length() - 1)


def ring_allreduce(ranks: int, message_bytes: int) -> Workload:
    """Ring all-reduce: reduce-scatter then all-gather (2(R-1) steps).

    The *message_bytes* vector is split into ``R`` chunks.  At
    reduce-scatter step ``s``, rank ``i`` sends to ``i+1`` the chunk it
    finished combining at step ``s-1`` -- hence a send depends on the
    send that delivered that chunk to it.  The all-gather half
    circulates the fully reduced chunks the rest of the way around.
    """
    _check_ranks(ranks)
    _check_bytes(message_bytes)
    chunk = max(1, -(-message_bytes // ranks))
    w = Workload(f"ring-allreduce[R={ranks},B={message_bytes}]")
    prev_step: Dict[int, int] = {}  # rank -> mid of the send it last received
    for half, label, steps in (
        (0, "reduce-scatter", ranks - 1),
        (1, "all-gather", ranks - 1),
    ):
        for s in range(steps):
            step_mids: Dict[int, int] = {}
            for i in range(ranks):
                deps = []
                # The chunk rank i forwards now is the one delivered to
                # it by rank i-1 in the previous step.
                if half > 0 or s > 0:
                    deps.append(prev_step[(i - 1) % ranks])
                step_mids[i] = w.add(
                    src=i, dst=(i + 1) % ranks, size=chunk, deps=deps, phase=label
                )
            prev_step = step_mids
    return w


def recursive_doubling_allreduce(ranks: int, message_bytes: int) -> Workload:
    """Recursive-doubling all-reduce: ``log2 R`` pairwise exchange rounds.

    Requires a power-of-two rank count (use
    :func:`largest_power_of_two` to trim).  In round ``r`` every rank
    exchanges the full vector with its partner ``i XOR 2^r``; a round
    ``r`` send waits on both the rank's own round ``r-1`` send and the
    delivery it needed from its previous partner (the butterfly
    synchronization pattern).
    """
    _check_ranks(ranks)
    _check_bytes(message_bytes)
    if ranks & (ranks - 1):
        raise ValueError(
            f"recursive doubling needs a power-of-two rank count, got {ranks} "
            f"(largest fitting power of two: {largest_power_of_two(ranks)})"
        )
    w = Workload(f"rd-allreduce[R={ranks},B={message_bytes}]")
    rounds = ranks.bit_length() - 1
    prev: Dict[int, int] = {}
    for r in range(rounds):
        label = f"round{r}"
        cur: Dict[int, int] = {}
        for i in range(ranks):
            partner = i ^ (1 << r)
            deps = []
            if r > 0:
                prev_partner = i ^ (1 << (r - 1))
                deps = [prev[i], prev[prev_partner]]
            cur[i] = w.add(
                src=i, dst=partner, size=message_bytes, deps=deps, phase=label
            )
        prev = cur
    return w


def ring_allgather(ranks: int, message_bytes: int) -> Workload:
    """Ring all-gather: R-1 steps circulating each rank's block.

    *message_bytes* is the per-rank contribution; every rank forwards
    at step ``s`` the block it received at step ``s-1``.
    """
    _check_ranks(ranks)
    _check_bytes(message_bytes)
    w = Workload(f"ring-allgather[R={ranks},B={message_bytes}]")
    prev_step: Dict[int, int] = {}
    for s in range(ranks - 1):
        label = f"step{s}"
        cur: Dict[int, int] = {}
        for i in range(ranks):
            deps = [prev_step[(i - 1) % ranks]] if s > 0 else []
            cur[i] = w.add(
                src=i, dst=(i + 1) % ranks, size=message_bytes, deps=deps, phase=label
            )
        prev_step = cur
    return w


def halo_exchange_3d(
    ranks: int,
    message_bytes: int,
    iterations: int = 1,
    dims: Optional[Tuple[int, int, int]] = None,
) -> Workload:
    """Iterated 3D-stencil halo exchange on a periodic torus.

    Geometry mirrors :class:`repro.traffic.NearestNeighbor3D`: the
    largest torus fitting *ranks* (or explicit *dims*), six-direction
    neighbourhoods with duplicate/self targets elided on degenerate
    dimensions.  Iteration ``t`` models the next stencil sweep: a rank
    may send only after *all* its iteration ``t-1`` halos arrived
    (every neighbour's send toward it completed).
    """
    _check_bytes(message_bytes)
    if iterations < 1:
        raise ValueError(f"iterations={iterations} must be >= 1")
    dims = dims if dims is not None else best_torus_dims(ranks)
    dx, dy, dz = dims
    volume = dx * dy * dz
    if volume > ranks:
        raise ValueError(f"torus {dims} larger than rank count {ranks}")

    def neighbors(rank: int):
        x, y, z = torus_coords(rank, dims)
        seen = set()
        for cand in (
            torus_rank(((x + 1) % dx, y, z), dims),
            torus_rank(((x - 1) % dx, y, z), dims),
            torus_rank((x, (y + 1) % dy, z), dims),
            torus_rank((x, (y - 1) % dy, z), dims),
            torus_rank((x, y, (z + 1) % dz), dims),
            torus_rank((x, y, (z - 1) % dz), dims),
        ):
            if cand != rank and cand not in seen:
                seen.add(cand)
                yield cand

    w = Workload(f"halo3d[{dx}x{dy}x{dz},B={message_bytes},T={iterations}]")
    nbrs = {rank: tuple(neighbors(rank)) for rank in range(volume)}
    if all(not n for n in nbrs.values()):
        raise ValueError(f"degenerate torus {dims}: no exchange partners")
    # inbound[i] = mids of the previous iteration's sends arriving at i.
    inbound: Dict[int, list] = {i: [] for i in range(volume)}
    for t in range(iterations):
        label = f"iter{t}"
        nxt: Dict[int, list] = {i: [] for i in range(volume)}
        for i in range(volume):
            deps = inbound[i]
            for j in nbrs[i]:
                mid = w.add(src=i, dst=j, size=message_bytes, deps=deps, phase=label)
                nxt[j].append(mid)
        inbound = nxt
    return w


def phased_alltoall(
    ranks: int, message_bytes: int, barrier: bool = False
) -> Workload:
    """Linear-shift all-to-all: phase ``ph`` sends ``i -> i+ph``.

    This is the staged schedule of the paper's Sec. 4.4 exchange
    (Kumar et al. [12]): in any phase no destination is targeted twice.
    By default each rank pipelines through its own phases (a send waits
    only on that rank's previous send) -- the paper's staggered,
    barrier-free NIC behaviour.  With ``barrier=True`` a phase starts
    only after *every* phase ``ph-1`` message delivered, modelling a
    bulk-synchronous implementation.
    """
    _check_ranks(ranks)
    _check_bytes(message_bytes)
    w = Workload(
        f"phased-a2a[R={ranks},B={message_bytes}{',barrier' if barrier else ''}]"
    )
    prev_per_rank: Dict[int, int] = {}
    prev_all: list = []
    for ph in range(1, ranks):
        label = f"phase{ph}"
        cur_all: list = []
        for i in range(ranks):
            if barrier:
                deps = prev_all
            else:
                deps = [prev_per_rank[i]] if ph > 1 else []
            mid = w.add(
                src=i, dst=(i + ph) % ranks, size=message_bytes, deps=deps, phase=label
            )
            prev_per_rank[i] = mid
            cur_all.append(mid)
        prev_all = cur_all
    return w


# --------------------------------------------------------------------------
# String registry (CLI / orchestrate job specs).
# --------------------------------------------------------------------------

WORKLOAD_GENERATORS = {
    "ring-allreduce": ring_allreduce,
    "rd-allreduce": recursive_doubling_allreduce,
    "allgather": ring_allgather,
    "halo3d": halo_exchange_3d,
    "phased-a2a": phased_alltoall,
}


def build_workload(
    name: str,
    num_nodes: int,
    message_bytes: int,
    ranks: Optional[int] = None,
    **kwargs,
) -> Workload:
    """Build a registered collective sized for a *num_nodes* machine.

    ``ranks`` defaults to every node (trimmed to the largest power of
    two for ``rd-allreduce``, and to the largest fitting torus for
    ``halo3d`` -- mirroring how real jobs size themselves to the
    allocation).  Extra keyword arguments are forwarded to the
    generator (e.g. ``iterations`` for ``halo3d``, ``barrier`` for
    ``phased-a2a``).
    """
    name = name.lower()
    gen = WORKLOAD_GENERATORS.get(name)
    if gen is None:
        raise ValueError(
            f"unknown workload {name!r} (choose from "
            f"{', '.join(sorted(WORKLOAD_GENERATORS))})"
        )
    r = int(ranks) if ranks is not None else num_nodes
    if r > num_nodes:
        raise ValueError(f"ranks={r} exceeds node count {num_nodes}")
    if name == "rd-allreduce" and r & (r - 1):
        r = largest_power_of_two(r)
    w = gen(r, int(message_bytes), **kwargs)
    w.validate(num_nodes=num_nodes)
    return w
