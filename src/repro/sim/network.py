"""Network assembly and experiment drivers.

:class:`Network` wires a :class:`~repro.topology.base.Topology` and a
:class:`~repro.routing.base.RoutingAlgorithm` into a simulated system of
switches and NICs, implements the UGAL-L congestion interface over live
switch state, and offers the two measurement modes of the paper:

- :meth:`Network.run_synthetic` -- rate-driven open-loop traffic with a
  warm-up then a measurement window (Sec. 4.3),
- :meth:`Network.run_exchange` -- a finite exchange simulated to
  completion, reporting effective throughput (Sec. 4.4).
"""

from __future__ import annotations

import random
import warnings
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.routing.base import RoutingAlgorithm
from repro.sim.clock import SimClock
from repro.sim.config import PAPER_CONFIG, SimConfig
from repro.sim.engine import Engine
from repro.sim.nic import NIC
from repro.sim.packet import Packet
from repro.sim.stats import StatsCollector, WindowStats
from repro.sim.switch import OutputPort, Router
from repro.topology.base import Topology

__all__ = ["Network"]


class Network:
    """A simulated instance of (topology, routing, configuration)."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        config: SimConfig = PAPER_CONFIG,
    ):
        self.topology = topology
        self.routing = routing
        self.config = config
        self.engine = Engine()
        self.num_vcs = routing.num_vcs
        self.stats = StatsCollector(topology.num_nodes, config)
        self.checker = None  # InvariantChecker when config.check is set
        self.fault_manager = None  # FaultManager when config.faults is set
        self._pid = 0
        # Port-tuple fallback for routes without precompiled ports
        # (legacy ``compiled=False`` algorithms, ad-hoc Route objects);
        # compiled routes carry their hop ports and never touch it.
        self._route_port_cache: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        self.tracer = None  # optional PacketTracer (see enable_trace)
        self._vec = None  # BatchedEngine/KernelEngine for vec backends
        self._msg_track: Optional[Dict] = None  # per-message tracking (exchanges)
        self._delivery_listeners: list = []  # see add_delivery_listener
        self._experiment_ran = False  # one experiment per Network instance

        vc_capacity = config.buffer_packets_per_vc(self.num_vcs)

        # With checking enabled, routers and NICs are built as Checked*
        # subclasses that notify the invariant checker around every
        # transition; the unchecked hot path pays nothing for this.
        # The batched backend has no per-transition callbacks to hook,
        # so its checker (repro.sim.vec.check) audits state instead and
        # the plain classes suffice as the wiring template.
        if config.check and config.backend == "object":
            from repro.sim.invariants import CheckedNIC, CheckedRouter

            router_cls, nic_cls = CheckedRouter, CheckedNIC
        else:
            router_cls, nic_cls = Router, NIC

        # Build switches.
        self.routers = []
        for r in range(topology.num_routers):
            deg = topology.degree(r)
            p = topology.nodes_attached(r)
            self.routers.append(router_cls(r, self, deg + p, self.num_vcs))

        # Wire router-to-router channels and ejection ports.  Output
        # queues get the same 100 KB/port/direction provisioning as the
        # input buffers (the "input-output-buffered" architecture).
        for r, router in enumerate(self.routers):
            deg = topology.degree(r)
            for out_idx, neighbor in enumerate(topology.neighbors(r)):
                ds_router = self.routers[neighbor]
                ds_in_idx = topology.port(neighbor, r)
                router.out.append(
                    OutputPort(
                        out_idx, self.num_vcs, vc_capacity, vc_capacity, ds_router, ds_in_idx
                    )
                )
            for local, node in enumerate(topology.nodes_of(r)):
                router.out.append(
                    OutputPort(
                        deg + local, self.num_vcs, vc_capacity, 0, None, -1, eject_node=node
                    )
                )

        # Upstream credit sinks for router inputs, plus the directed
        # channel -> OutputPort table behind the UGAL-L congestion
        # signal (queue_len is called ~nI+1 times per packet; a
        # row-indexed list lookup replaces a topology.port() resolution
        # -- and the tuple-key hashing a dict would pay -- per call).
        n_routers = topology.num_routers
        self._channel_rows: List[List[Optional[OutputPort]]] = [
            [None] * n_routers for _ in range(n_routers)
        ]
        for r, router in enumerate(self.routers):
            row = self._channel_rows[r]
            for out_idx, neighbor in enumerate(topology.neighbors(r)):
                ds_router = self.routers[neighbor]
                ds_in_idx = topology.port(neighbor, r)
                ds_router.in_upstream[ds_in_idx] = router.make_credit_sink(out_idx)
                row[neighbor] = router.out[out_idx]

        # NICs (and their credit sinks at the injection inputs).  The
        # ejection port of each node is fixed by the wiring, so it is
        # precomputed here: make_packet then does one list lookup
        # instead of a degree() + nodes_of().index() scan per packet.
        self.nics = []
        self._eject_ports = []
        for node in range(topology.num_nodes):
            r = topology.router_of(node)
            router = self.routers[r]
            deg = topology.degree(r)
            local = topology.nodes_of(r).index(node)
            nic = nic_cls(node, self, router, deg + local)
            router.in_upstream[deg + local] = nic
            self.nics.append(nic)
            self._eject_ports.append(deg + local)

        if config.check and config.backend == "object":
            from repro.sim.invariants import InvariantChecker

            self.checker = InvariantChecker(self)
            self.checker.attach()

        #: Which engine actually runs: ``config.backend`` unless the
        #: compiled kernel was requested but unavailable, in which case
        #: this records the ``"batched"`` fallback.
        self.backend_in_use = config.backend

        if config.backend in ("batched", "kernel"):
            # Swap in the struct-of-arrays engine.  The object routers
            # and NICs built above stay the wiring's single source of
            # truth (the SoA state is flattened *from* them), but all
            # event execution moves to the batched loop: the NIC list
            # becomes driver-facing shims over the arrays and UGAL-L's
            # congestion signal reads the flat per-port counters
            # (instance attribute shadows the class method).  The
            # kernel backend is the same loop compiled to C; since it
            # shares the SoA state and the escape contract, the checker
            # and fault machinery below apply to it unchanged.
            from repro.sim.vec import BatchedEngine
            from repro.sim.vec.state import make_queue_len

            self._vec = None
            if config.backend == "kernel":
                from repro.sim.vec import kernel as _kernel_mod

                if _kernel_mod.load_kernel() is not None:
                    self._vec = _kernel_mod.KernelEngine(self)
                else:
                    warnings.warn(
                        "backend='kernel' requested but the compiled "
                        f"kernel is unavailable ({_kernel_mod.load_error}); "
                        "falling back to the pure-Python batched backend",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self.backend_in_use = "batched"
            if self._vec is None:
                self._vec = BatchedEngine(self)
            self.engine = self._vec
            self.nics = self._vec.nic_shims
            self.queue_len = make_queue_len(self._vec.st)
            if config.check:
                from repro.sim.vec.check import BatchedChecker

                self.checker = BatchedChecker(self)
                self.checker.attach()

        if config.faults:
            from repro.resilience import FaultManager, FaultSchedule

            self.fault_manager = FaultManager(
                self, FaultSchedule(config.faults), config.fault_policy
            )

        #: Backend-neutral time source; stats code reads ``clock.now``
        #: and the utilization window rather than engine internals.
        self.clock = SimClock(self.engine)

    @property
    def _utilization_window(self) -> Optional[float]:
        """Measurement window behind ``channel_utilization`` -- kept as
        a compatibility alias; the value lives on :class:`SimClock`."""
        return self.clock.utilization_window

    @_utilization_window.setter
    def _utilization_window(self, value: Optional[float]) -> None:
        self.clock.utilization_window = value

    # -- CongestionContext (UGAL-L's local signal) -----------------------------

    def queue_len(self, router: int, neighbor: int) -> int:
        """Packets queued at *router* for the output toward *neighbor*."""
        return self._channel_rows[router][neighbor].queued

    def queue_capacity(self) -> int:
        """Port buffer capacity in packets (threshold reference)."""
        return self.config.buffer_packets_per_port

    # -- packet construction -------------------------------------------------

    def make_packet(
        self,
        src_node: int,
        dst_node: int,
        size: int,
        msg_id: Optional[int],
        gen_time: float,
    ) -> Packet:
        """Route and materialise one packet (called by the NIC at send time).

        The kernel backend mirrors this method in C for the compiled
        routing implementations (``fast_nic_send`` in
        ``repro/sim/vec/_kernel.c``, golden- and fuzz-gated); changes
        to routing dispatch, packet construction or inject accounting
        here must be reflected there.
        """
        topo = self.topology
        node_router = topo.router_of
        route = self.routing.route(node_router(src_node), node_router(dst_node), self)

        routers = route.routers
        hop_ports = route.ports
        if hop_ports is None:
            hop_ports = self._route_port_cache.get(routers)
            if hop_ports is None:
                hop_ports = tuple(
                    topo.port(routers[i], routers[i + 1]) for i in range(len(routers) - 1)
                )
                self._route_port_cache[routers] = hop_ports

        self._pid += 1
        return Packet(
            pid=self._pid,
            src_node=src_node,
            dst_node=dst_node,
            size=size,
            routers=routers,
            ports=hop_ports + (self._eject_ports[dst_node],),
            vcs=route.vcs,
            kind=route.kind,
            gen_time=gen_time,
            msg_id=msg_id,
        )

    def _claim_experiment(self) -> None:
        """Guard against reusing a Network across experiments.

        Warmed-up buffers, advanced clocks and mixed statistics make a
        second run silently wrong; build a fresh :class:`Network` per
        experiment instead (topologies and configs are reusable).
        """
        if self._experiment_ran:
            raise RuntimeError(
                "this Network already ran an experiment; build a fresh "
                "Network(topology, routing) for the next one"
            )
        self._experiment_ran = True
        if self.fault_manager is not None:
            # Arm before any traffic is scheduled so fault events take
            # the earliest sequence numbers -- identically on both
            # backends (every driver claims before submitting work).
            self.fault_manager.arm()

    def reset_utilization(self) -> None:
        """Zero the per-port transmission counters (called at warm-up end)."""
        if self._vec is not None:
            self._vec.st.reset_sent()
            return
        for router in self.routers:
            for out in router.out:
                out.sent_packets = 0

    def channel_utilization(self, window_ns: Optional[float] = None) -> Dict:
        """Link-utilization fractions measured since the last reset.

        Returns ``{(u, v): fraction}`` for router-router channels and
        ``{("eject", node): fraction}`` for ejection links.  With
        fixed-size packets the busy time is exactly
        ``sent_packets * serialization``.  ``window_ns`` defaults to the
        last synthetic run's measurement window.
        """
        window = window_ns if window_ns is not None else self.clock.utilization_window
        if window is None or window <= 0:
            raise ValueError("channel_utilization: no measurement window available")
        if self._vec is not None:
            # Cold path: surface the flat counters through the object
            # ports so one loop below serves both backends.
            self._vec.st.sync_ports()
        ser = self.config.packet_time_ns
        out_map: Dict = {}
        topo = self.topology
        for r, router in enumerate(self.routers):
            neighbors = topo.neighbors(r)
            for idx, out in enumerate(router.out):
                key = (r, neighbors[idx]) if idx < len(neighbors) else ("eject", out.eject_node)
                out_map[key] = out.sent_packets * ser / window
        return out_map

    def enable_trace(self, capacity: int = 10_000, start_ns: float = 0.0):
        """Attach a :class:`repro.sim.trace.PacketTracer`; returns it."""
        from repro.sim.trace import PacketTracer

        self.tracer = PacketTracer(capacity=capacity, start_ns=start_ns)
        return self.tracer

    def add_delivery_listener(self, fn) -> None:
        """Register ``fn(pkt)`` to run on every packet delivery.

        This is the closed-loop hook: a listener observes each ejection
        (with its ``msg_id``) and may submit new traffic in response --
        :class:`repro.workload.driver.WorkloadDriver` uses it to release
        DAG successors the moment their dependencies complete.
        Listeners run after statistics/trace recording, in registration
        order, and must not raise.
        """
        if not callable(fn):
            raise TypeError(f"delivery listener {fn!r} is not callable")
        self._delivery_listeners.append(fn)

    def deliver(self, pkt: Packet) -> None:
        """Final hop: the packet reaches its destination node.

        The kernel backend mirrors the stats accounting in C when no
        observer (tracer, listener, message tracker, checker) is
        attached (``do_deliver`` in ``repro/sim/vec/_kernel.c``,
        flushed via :meth:`StatsCollector.absorb_kernel`); changes
        here must be reflected there.
        """
        pkt.eject_time = self.clock.now
        self.stats.record_eject(pkt)
        if self.tracer is not None:
            self.tracer.record(pkt)
        for listener in self._delivery_listeners:
            listener(pkt)
        if self._msg_track is not None and pkt.msg_id is not None:
            key = (pkt.src_node, pkt.msg_id)
            entry = self._msg_track.get(key)
            if entry is None:
                self._msg_track[key] = [pkt.send_time, pkt.eject_time]
            else:
                if pkt.send_time < entry[0]:
                    entry[0] = pkt.send_time
                if pkt.eject_time > entry[1]:
                    entry[1] = pkt.eject_time

    # -- synthetic (rate-driven) experiments -----------------------------------

    def run_synthetic(
        self,
        pattern,
        load: float,
        warmup_ns: float = 2_000.0,
        measure_ns: float = 10_000.0,
        arrival: str = "poisson",
        seed: int = 0,
        drain: bool = False,
    ) -> WindowStats:
        """Open-loop synthetic traffic experiment (paper Sec. 4.3).

        Every node generates ``packet_bytes`` packets at fraction *load*
        of the link rate with destinations drawn from *pattern*
        (:meth:`pick_destination`), for ``warmup + measure`` ns;
        statistics are computed over the measurement window.

        Set ``drain=True`` to additionally run the network empty after
        generation stops (used by conservation tests).
        """
        if not (0.0 < load <= 1.0):
            raise ValueError(f"load {load} must be in (0, 1]")
        if arrival not in ("poisson", "deterministic"):
            raise ValueError(f"unknown arrival process {arrival!r}")
        self._claim_experiment()
        cfg = self.config
        horizon = warmup_ns + measure_ns
        mean_ia = cfg.packet_time_ns / load
        self.stats.set_window(warmup_ns, horizon)

        if self._vec is not None:
            # Batched backend: pregenerate every node's injection
            # stream in one pass (identical per-node RNG draws; see
            # BatchedEngine.setup_synthetic for the exactness argument).
            self._vec.setup_synthetic(
                pattern, mean_ia, horizon, seed, arrival, cfg.packet_bytes
            )
        else:
            master = random.Random(seed)
            for node in range(self.topology.num_nodes):
                rng = random.Random(master.getrandbits(64))
                phase = rng.uniform(0.0, mean_ia)
                self.engine.schedule_at(
                    phase, self._generate, node, pattern, mean_ia, horizon, rng, arrival
                )
        # Utilization counters measure the post-warm-up window only.
        self.engine.schedule_at(warmup_ns, self.reset_utilization)

        self.engine.run(until=horizon)
        self.clock.utilization_window = measure_ns
        if drain:
            self.engine.run()
        if self.checker is not None:
            if drain:
                self.checker.verify_quiescent()
            else:
                self.checker.audit()
        return self.stats.window_stats()

    def _generate(
        self,
        node: int,
        pattern,
        mean_ia: float,
        until: float,
        rng: random.Random,
        arrival: str,
    ) -> None:
        now = self.engine.now
        if now >= until:
            return
        dst = pattern.pick_destination(node, rng)
        if dst is not None:
            if dst == node:
                raise ValueError(f"pattern sent node {node} traffic to itself")
            self.nics[node].submit(dst, self.config.packet_bytes)
        delay = rng.expovariate(1.0 / mean_ia) if arrival == "poisson" else mean_ia
        self.engine.schedule(delay, self._generate, node, pattern, mean_ia, until, rng, arrival)

    # -- closed-loop workloads -------------------------------------------------

    def run_workload(self, workload, max_events: Optional[int] = None) -> Dict:
        """Drive a dependency-DAG workload to completion (closed loop).

        *workload* is a :class:`repro.workload.Workload`; messages are
        released into the NICs as their dependencies' deliveries are
        observed.  Returns the driver's result dict (completion time,
        critical path, per-phase route kinds, link-load skew); see
        :mod:`repro.workload.driver`.
        """
        from repro.workload.driver import WorkloadDriver  # lazy: avoids cycle

        result = WorkloadDriver(self, workload).run(max_events=max_events)
        if self.checker is not None:
            self.checker.verify_quiescent()
        return result

    # -- finite exchanges ----------------------------------------------------------

    def run_exchange(
        self,
        exchange,
        max_events: Optional[int] = None,
        track_messages: bool = False,
    ) -> Dict[str, float]:
        """Simulate a finite exchange to completion (paper Sec. 4.4).

        *exchange* provides ``node_messages(node) -> iterable of
        (dst_node, size_bytes)`` message descriptors, packetised into
        ``packet_bytes`` units.  If the exchange sets ``interleave =
        True`` (e.g. the nearest-neighbour exchange, which models
        concurrent non-blocking sends to all six neighbours) packets are
        drawn round-robin across the node's messages; otherwise messages
        are sent strictly in order.

        Returns a dict with ``completion_ns``, ``effective_throughput``
        (fraction of injection bandwidth per node), ``total_bytes`` and
        packet counts.  With ``track_messages=True`` it also includes
        per-message completion statistics under ``"messages"`` (count,
        mean/max latency from first packet transmitted to last packet
        delivered).
        """
        self._claim_experiment()
        self.stats.set_window(0.0, None)
        self._msg_track: Optional[Dict] = {} if track_messages else None
        total_bytes = 0
        expected_packets = 0
        pkt_size = self.config.packet_bytes
        interleave = bool(getattr(exchange, "interleave", False))
        for node in range(self.topology.num_nodes):
            messages = list(exchange.node_messages(node))
            for dst, size in messages:
                total_bytes += size
                expected_packets += -(-size // pkt_size)
            if messages:
                source = (
                    _packetize_interleaved(messages, pkt_size)
                    if interleave
                    else _packetize(messages, pkt_size)
                )
                self.nics[node].set_source(source)
        if total_bytes == 0:
            raise ValueError("exchange generated no traffic")

        self.engine.run(max_events=max_events)
        if self.stats.ejected_total != expected_packets:
            raise RuntimeError(
                f"exchange incomplete: {self.stats.ejected_total}/{expected_packets} "
                f"packets delivered (possible deadlock or event-budget exhaustion)"
            )
        if self.checker is not None:
            self.checker.verify_quiescent()
        completion = self.stats.last_eject - self.stats.first_inject
        # Finite runs measure utilization over the whole exchange, so
        # channel_utilization() works without an explicit window --
        # previously it raised after run_exchange/run_workload.
        if completion > 0:
            self.clock.utilization_window = completion
        result: Dict[str, object] = {
            "completion_ns": completion,
            "effective_throughput": self.stats.effective_throughput(total_bytes),
            "total_bytes": float(total_bytes),
            "packets": float(expected_packets),
        }
        if self._msg_track is not None:
            latencies = sorted(
                last_eject - first_send
                for first_send, last_eject in self._msg_track.values()
            )
            count = len(latencies)
            result["messages"] = {
                "count": count,
                "mean_latency_ns": sum(latencies) / count if count else 0.0,
                "p50_latency_ns": latencies[count // 2] if count else 0.0,
                "p99_latency_ns": latencies[min(count - 1, int(count * 0.99))]
                if count
                else 0.0,
                "max_latency_ns": latencies[-1] if count else 0.0,
            }
            self._msg_track = None
        return result


def _packetize(
    messages: Iterable[Tuple[int, int]], packet_bytes: int
) -> Iterator[Tuple[int, int, Optional[int]]]:
    """Split (dst, size) messages into packet descriptors, in order."""
    for msg_id, (dst, size) in enumerate(messages):
        remaining = size
        while remaining > 0:
            chunk = min(packet_bytes, remaining)
            yield (dst, chunk, msg_id)
            remaining -= chunk


def _packetize_interleaved(
    messages: Iterable[Tuple[int, int]], packet_bytes: int
) -> Iterator[Tuple[int, int, Optional[int]]]:
    """Round-robin packets across concurrent messages (non-blocking sends)."""
    remaining = [
        (msg_id, dst, size)
        for msg_id, (dst, size) in enumerate(messages)
        if size > 0  # zero-byte messages emit no packets (matches _packetize)
    ]
    while remaining:
        nxt = []
        for msg_id, dst, size in remaining:
            chunk = min(packet_bytes, size)
            yield (dst, chunk, msg_id)
            if size > chunk:
                nxt.append((msg_id, dst, size - chunk))
        remaining = nxt
