"""Flit/packet-level event-driven network simulator (paper Sec. 4.1).

The open substitute for the proprietary simulator used by the paper:
virtual-channel input-buffered switches, credit-based flow control,
round-robin arbitration, serializing links and NICs.  See DESIGN.md §4
for the packet-granularity substitution argument.

Typical use::

    from repro.sim import Network, SimConfig
    from repro.topology import SlimFly
    from repro.routing import MinimalRouting
    from repro.traffic import UniformRandom

    topo = SlimFly(5)
    net = Network(topo, MinimalRouting(topo))
    stats = net.run_synthetic(UniformRandom(topo.num_nodes), load=0.5)
    print(stats.throughput, stats.mean_latency_ns)
"""

from repro.sim.config import PAPER_CONFIG, SimConfig
from repro.sim.engine import Engine
from repro.sim.invariants import InvariantChecker, InvariantViolation
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.stats import StatsCollector, WindowStats

__all__ = [
    "SimConfig",
    "PAPER_CONFIG",
    "Engine",
    "Network",
    "Packet",
    "StatsCollector",
    "WindowStats",
    "InvariantChecker",
    "InvariantViolation",
]
