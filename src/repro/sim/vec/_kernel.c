/* Compiled event kernel for the batched backend (repro.sim.vec.kernel).
 *
 * This extension owns the pending-event set (a C binary heap of typed
 * event structs) and runs the hot opcode handlers -- RECV/ENTER,
 * PWAKE/NWAKE elided-event retries, VC round-robin arbitration and the
 * queue-length updates -- as straight C over the *existing*
 * ``SoAState`` Python lists and deques.  It escapes to the interpreter
 * only for the boundary events the Python loop also treats as escapes:
 * NIC sends (``make_packet`` routing + RNG), deliver callbacks, CALL
 * events and fault diverts.
 *
 * Exactness contract (see repro/sim/vec/engine.py for the full model):
 * every handler below is a line-for-line port of the corresponding
 * closure in ``BatchedEngine.run`` -- same sequence-reservation
 * increments in the same order, same lazy busy/credit comparisons,
 * same float additions producing timestamps.  The binary heap pops in
 * the identical global ``(time, seq)`` order as the calendar queue:
 * pushes are never at or before the currently executing key, and the
 * only same-key collisions are duplicate wake records whose relative
 * order is immaterial (a spurious wake re-checks state and no-ops).
 *
 * Around every escape the engine attributes the Python side reads
 * (``now``, ``_cs``, ``_seq``) are written out, and ``_seq`` is read
 * back afterwards, mirroring the nonlocal sync in the Python loop.
 * ``KernelEngine._push`` routes cold-path pushes (schedule/schedule_at,
 * NIC sends, fault drains) into this heap, so re-entrant scheduling
 * from inside an escape lands in the same queue.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <time.h>

/* Event opcodes -- must match repro/sim/vec/engine.py. */
enum {
    OP_RECV = 0,
    OP_ENTER = 1,
    OP_PWAKE = 2,
    OP_DELIVER = 3,
    OP_NWAKE = 4,
    OP_GEN = 5,
    OP_CALL = 6,
    OP_COUNT = 7
};

/* Python-escape slots for the --profile split. */
enum { ESC_MAKE = 0, ESC_DELIVER = 1, ESC_CALL = 2, ESC_DIVERT = 3, ESC_N = 4 };

typedef struct {
    double t;
    long long seq;
    int op;
    long a, b, c;
    PyObject *fn;   /* OP_CALL only: callable (owned) */
    PyObject *args; /* OP_CALL only: argument tuple (owned) */
} Event;

typedef struct {
    PyObject_HEAD
    Event *heap;
    Py_ssize_t size, cap;
    /* --profile accounting (escape split vs in-kernel events) */
    unsigned long long op_counts[OP_COUNT];
    unsigned long long esc_counts[ESC_N];
    double esc_ns[ESC_N];
    double run_ns;
    unsigned long long runs;
} Kernel;

/* Interned attribute names / deque method descriptors (module init). */
static PyObject *str_now, *str_cs, *str_seq, *str_events_executed;
static PyObject *str_st, *str_net, *str_deliver, *str_nic_try_send;
static PyObject *str_fault_manager, *str_divert_tail;
static PyObject *m_popleft, *m_append, *m_rotate; /* deque unbound methods */

static double
mono_ns(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec * 1e9 + (double)ts.tv_nsec;
}

/* -- binary heap ---------------------------------------------------------- */

static inline int
ev_lt(const Event *x, const Event *y)
{
    return x->t < y->t || (x->t == y->t && x->seq < y->seq);
}

static int
heap_push_ev(Kernel *k, Event ev)
{
    if (k->size >= k->cap) {
        Py_ssize_t ncap = k->cap ? k->cap * 2 : 1024;
        Event *nh = (Event *)PyMem_Realloc(k->heap, (size_t)ncap * sizeof(Event));
        if (nh == NULL) {
            Py_XDECREF(ev.fn);
            Py_XDECREF(ev.args);
            PyErr_NoMemory();
            return -1;
        }
        k->heap = nh;
        k->cap = ncap;
    }
    Event *h = k->heap;
    Py_ssize_t i = k->size++;
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (ev_lt(&ev, &h[p])) {
            h[i] = h[p];
            i = p;
        } else {
            break;
        }
    }
    h[i] = ev;
    return 0;
}

static Event
heap_pop_ev(Kernel *k)
{
    Event *h = k->heap;
    Event top = h[0];
    Event last = h[--k->size];
    Py_ssize_t n = k->size;
    Py_ssize_t i = 0;
    for (;;) {
        Py_ssize_t l = 2 * i + 1;
        if (l >= n)
            break;
        if (l + 1 < n && ev_lt(&h[l + 1], &h[l]))
            l += 1;
        if (ev_lt(&h[l], &last)) {
            h[i] = h[l];
            i = l;
        } else {
            break;
        }
    }
    if (n > 0)
        h[i] = last;
    return top;
}

static int
kpush(Kernel *k, double t, long long seq, int op, long a, long b, long c)
{
    Event ev = {t, seq, op, a, b, c, NULL, NULL};
    return heap_push_ev(k, ev);
}

/* -- SoA list / deque accessors ------------------------------------------- */

static inline long
ivald(PyObject *list, long i)
{
    return PyLong_AsLong(PyList_GET_ITEM(list, (Py_ssize_t)i));
}

static inline long long
llval(PyObject *list, long i)
{
    return PyLong_AsLongLong(PyList_GET_ITEM(list, (Py_ssize_t)i));
}

static inline double
fval(PyObject *list, long i)
{
    return PyFloat_AsDouble(PyList_GET_ITEM(list, (Py_ssize_t)i));
}

static inline int
iset(PyObject *list, long i, long v)
{
    PyObject *o = PyLong_FromLong(v);
    if (o == NULL)
        return -1;
    PyObject *old = PyList_GET_ITEM(list, (Py_ssize_t)i);
    PyList_SET_ITEM(list, (Py_ssize_t)i, o);
    Py_DECREF(old);
    return 0;
}

static inline int
llset(PyObject *list, long i, long long v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (o == NULL)
        return -1;
    PyObject *old = PyList_GET_ITEM(list, (Py_ssize_t)i);
    PyList_SET_ITEM(list, (Py_ssize_t)i, o);
    Py_DECREF(old);
    return 0;
}

static inline int
fset(PyObject *list, long i, double v)
{
    PyObject *o = PyFloat_FromDouble(v);
    if (o == NULL)
        return -1;
    PyObject *old = PyList_GET_ITEM(list, (Py_ssize_t)i);
    PyList_SET_ITEM(list, (Py_ssize_t)i, o);
    Py_DECREF(old);
    return 0;
}

static inline void
bset(PyObject *list, long i, int v)
{
    PyObject *o = v ? Py_True : Py_False;
    Py_INCREF(o);
    PyObject *old = PyList_GET_ITEM(list, (Py_ssize_t)i);
    PyList_SET_ITEM(list, (Py_ssize_t)i, o);
    Py_DECREF(old);
}

static inline Py_ssize_t
dq_len(PyObject *dq)
{
    return PyObject_Size(dq);
}

static inline PyObject *
dq_popleft(PyObject *dq)
{
    return PyObject_CallOneArg(m_popleft, dq);
}

/* Append *item* (stealing the reference; item may be NULL to propagate
 * an allocation error). */
static inline int
dq_append_steal(PyObject *dq, PyObject *item)
{
    if (item == NULL)
        return -1;
    PyObject *argv[2] = {dq, item};
    PyObject *r = PyObject_Vectorcall(m_append, argv, 2, NULL);
    Py_DECREF(item);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* First element of a deque of (float, int) key tuples. */
static inline int
dq_first_key(PyObject *dq, double *t, long long *s)
{
    PyObject *it = PySequence_GetItem(dq, 0);
    if (it == NULL)
        return -1;
    *t = PyFloat_AsDouble(PyTuple_GET_ITEM(it, 0));
    *s = PyLong_AsLongLong(PyTuple_GET_ITEM(it, 1));
    Py_DECREF(it);
    return 0;
}

/* -- run context ---------------------------------------------------------- */

/* SoAState lists the handlers touch, in declaration order. */
#define CTX_LISTS(X)                                                      \
    X(in_pbase) X(in_up_port) X(in_up_node)                               \
    X(p_busy_t) X(p_busy_s) X(p_wake) X(p_queued) X(p_rr) X(p_sent)       \
    X(p_oqtot) X(p_pend) X(p_dest_in) X(p_has_cred) X(p_dead)             \
    X(pv_oq) X(pv_occ) X(pv_cred) X(pv_arr) X(iv_q)                       \
    X(n_q) X(n_src) X(n_cred) X(n_arr) X(n_busy_t) X(n_busy_s)            \
    X(n_wake) X(n_qp)                                                     \
    X(k_ports) X(k_vcs) X(k_hop) X(k_obj)                                 \
    X(g_t) X(g_d) X(g_i)

typedef struct {
    Kernel *k;
    PyObject *eng;
    PyObject *nic_send;  /* bound eng._nic_try_send */
    PyObject *deliver;   /* bound net.deliver (checker-wrapped if any) */
    PyObject *fm_divert; /* bound fault_manager.divert_tail, or NULL */
#define X(name) PyObject *name;
    CTX_LISTS(X)
#undef X
    long V, OQ_CAP, PKTB;
    double SER, LINK, SWITCH, SL;
    long long seq;
} Ctx;

/* Write eng.now / eng._cs (optional) / eng._seq before an escape. */
static int
sync_out(Ctx *c, double t, long long s, int set_cs)
{
    PyObject *v = PyFloat_FromDouble(t);
    if (v == NULL || PyObject_SetAttr(c->eng, str_now, v) < 0) {
        Py_XDECREF(v);
        return -1;
    }
    Py_DECREF(v);
    if (set_cs) {
        v = PyLong_FromLongLong(s);
        if (v == NULL || PyObject_SetAttr(c->eng, str_cs, v) < 0) {
            Py_XDECREF(v);
            return -1;
        }
        Py_DECREF(v);
    }
    v = PyLong_FromLongLong(c->seq);
    if (v == NULL || PyObject_SetAttr(c->eng, str_seq, v) < 0) {
        Py_XDECREF(v);
        return -1;
    }
    Py_DECREF(v);
    return 0;
}

/* Read eng._seq back after an escape (the callback may have scheduled). */
static int
sync_in(Ctx *c)
{
    PyObject *v = PyObject_GetAttr(c->eng, str_seq);
    if (v == NULL)
        return -1;
    c->seq = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (c->seq == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Escape: eng._nic_try_send(node, t, s).  Mirrors the GEN/NWAKE escape
 * in the Python loop, which syncs now/_seq (not _cs) around the call. */
static int
escape_nic_send(Ctx *c, long node, double t, long long s)
{
    if (sync_out(c, t, s, 0) < 0)
        return -1;
    double t0 = mono_ns();
    PyObject *r = PyObject_CallFunction(c->nic_send, "ldL", node, t, s);
    c->k->esc_ns[ESC_MAKE] += mono_ns() - t0;
    c->k->esc_counts[ESC_MAKE] += 1;
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return sync_in(c);
}

/* -- handler helpers (ports of the BatchedEngine.run closures) ------------ */

static int try_transfer(Ctx *c, long in_gid, long vc, double t, long long s);

static int
transfer_one(Ctx *c, long in_gid, long vc, long gid, long pid,
             double t, long long s)
{
    long upp = ivald(c->in_up_port, in_gid);
    if (upp >= 0) {
        c->seq += 1;
        double at = t + c->LINK;
        long upv = upp * c->V + vc;
        PyObject *key = Py_BuildValue("(dL)", at, c->seq);
        if (dq_append_steal(PyList_GET_ITEM(c->pv_arr, upv), key) < 0)
            return -1;
        if (ivald(c->pv_cred, upv) == 0 &&
            dq_len(PyList_GET_ITEM(c->pv_oq, upv)) > 0) {
            double bt = fval(c->p_busy_t, upp);
            long long bs = llval(c->p_busy_s, upp);
            if (!(t < bt || (t == bt && s < bs))) {
                if (kpush(c->k, at, c->seq, OP_PWAKE, upp, 0, 0) < 0)
                    return -1;
            }
        }
    } else {
        long upn = ivald(c->in_up_node, in_gid);
        if (upn >= 0) {
            c->seq += 1;
            double at = t + c->LINK;
            PyObject *key = Py_BuildValue("(dL)", at, c->seq);
            if (dq_append_steal(PyList_GET_ITEM(c->n_arr, upn), key) < 0)
                return -1;
            if (ivald(c->n_cred, upn) == 0 &&
                (dq_len(PyList_GET_ITEM(c->n_q, upn)) > 0 ||
                 PyList_GET_ITEM(c->n_src, upn) != Py_None)) {
                if (kpush(c->k, at, c->seq, OP_NWAKE, upn, 0, 0) < 0)
                    return -1;
            }
        }
    }
    c->seq += 1;
    long hop = ivald(c->k_hop, pid);
    long ovc = PyLong_AsLong(
        PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_vcs, pid), hop));
    long pv = gid * c->V + ovc;
    return kpush(c->k, t + c->SWITCH, c->seq, OP_ENTER, pv, pid, gid);
}

static int
try_transfer(Ctx *c, long in_gid, long vc, double t, long long s)
{
    PyObject *q = PyList_GET_ITEM(c->iv_q, in_gid * c->V + vc);
    long base = ivald(c->in_pbase, in_gid);
    while (dq_len(q) > 0) {
        PyObject *head = PySequence_GetItem(q, 0);
        if (head == NULL)
            return -1;
        long pid = PyLong_AsLong(head);
        Py_DECREF(head);
        long hop = ivald(c->k_hop, pid);
        long gid = base + PyLong_AsLong(
            PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_ports, pid), hop));
        long ovc = PyLong_AsLong(
            PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_vcs, pid), hop));
        long pv = gid * c->V + ovc;
        if (ivald(c->pv_occ, pv) >= c->OQ_CAP) {
            PyObject *pr = Py_BuildValue("(ll)", in_gid, vc);
            return dq_append_steal(PyList_GET_ITEM(c->p_pend, gid), pr);
        }
        if (iset(c->pv_occ, pv, ivald(c->pv_occ, pv) + 1) < 0)
            return -1;
        PyObject *popped = dq_popleft(q);
        if (popped == NULL)
            return -1;
        Py_DECREF(popped);
        if (transfer_one(c, in_gid, vc, gid, pid, t, s) < 0)
            return -1;
    }
    return 0;
}

static int
admit_pending(Ctx *c, long gid, long freed_vc, double t, long long s)
{
    PyObject *pending = PyList_GET_ITEM(c->p_pend, gid);
    PyObject *it = PyObject_GetIter(pending);
    if (it == NULL)
        return -1;
    long i = 0;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        long in_gid = PyLong_AsLong(PyTuple_GET_ITEM(item, 0));
        long vc = PyLong_AsLong(PyTuple_GET_ITEM(item, 1));
        Py_DECREF(item);
        PyObject *q = PyList_GET_ITEM(c->iv_q, in_gid * c->V + vc);
        PyObject *head = PySequence_GetItem(q, 0);
        if (head == NULL) {
            Py_DECREF(it);
            return -1;
        }
        long pid = PyLong_AsLong(head);
        Py_DECREF(head);
        long hop = ivald(c->k_hop, pid);
        long pvc = PyLong_AsLong(
            PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_vcs, pid), hop));
        if (pvc == freed_vc) {
            Py_DECREF(it);
            if (i) {
                PyObject *narg = PyLong_FromLong(-i);
                if (narg == NULL)
                    return -1;
                PyObject *argv[2] = {pending, narg};
                PyObject *r = PyObject_Vectorcall(m_rotate, argv, 2, NULL);
                Py_DECREF(narg);
                if (r == NULL)
                    return -1;
                Py_DECREF(r);
            }
            PyObject *popped = dq_popleft(pending);
            if (popped == NULL)
                return -1;
            Py_DECREF(popped);
            return try_transfer(c, in_gid, vc, t, s);
        }
        i += 1;
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
}

static int
try_transmit(Ctx *c, long gid, double t, long long s)
{
    long V = c->V;
    long vc = ivald(c->p_rr, gid);
    long base = gid * V;
    int has_cred = ivald(c->p_has_cred, gid) != 0;
    double best_t = 0.0;
    long long best_s = 0;
    int have_best = 0;
    for (long n = 0; n < V; n++) {
        if (vc >= V)
            vc -= V;
        long pv = base + vc;
        PyObject *oq = PyList_GET_ITEM(c->pv_oq, pv);
        if (dq_len(oq) == 0) {
            vc += 1;
            continue;
        }
        if (has_cred) {
            long cr = ivald(c->pv_cred, pv);
            if (cr <= 0) {
                PyObject *arr = PyList_GET_ITEM(c->pv_arr, pv);
                if (dq_len(arr) > 0) {
                    while (dq_len(arr) > 0) {
                        double at;
                        long long as;
                        if (dq_first_key(arr, &at, &as) < 0)
                            return -1;
                        if (at < t || (at == t && as <= s)) {
                            PyObject *p = dq_popleft(arr);
                            if (p == NULL)
                                return -1;
                            Py_DECREF(p);
                            cr += 1;
                        } else {
                            break;
                        }
                    }
                    if (iset(c->pv_cred, pv, cr) < 0)
                        return -1;
                }
                if (cr <= 0) {
                    /* Blocked on credits: remember the earliest
                     * in-flight arrival as a wake candidate. */
                    if (dq_len(arr) > 0) {
                        double at;
                        long long as;
                        if (dq_first_key(arr, &at, &as) < 0)
                            return -1;
                        if (!have_best || at < best_t ||
                            (at == best_t && as < best_s)) {
                            best_t = at;
                            best_s = as;
                            have_best = 1;
                        }
                    }
                    vc += 1;
                    continue;
                }
            }
            if (iset(c->pv_cred, pv, cr - 1) < 0)
                return -1;
        }
        PyObject *pp = dq_popleft(oq);
        if (pp == NULL)
            return -1;
        long pid = PyLong_AsLong(pp);
        Py_DECREF(pp);
        if (iset(c->p_oqtot, gid, ivald(c->p_oqtot, gid) - 1) < 0 ||
            iset(c->pv_occ, pv, ivald(c->pv_occ, pv) - 1) < 0 ||
            iset(c->p_queued, gid, ivald(c->p_queued, gid) - 1) < 0 ||
            iset(c->p_sent, gid, ivald(c->p_sent, gid) + 1) < 0)
            return -1;
        long nvc = vc + 1;
        if (iset(c->p_rr, gid, nvc < V ? nvc : 0) < 0)
            return -1;
        c->seq += 1; /* reserved: the elided port link-free event */
        double bt = t + c->SER;
        long long bs = c->seq;
        if (fset(c->p_busy_t, gid, bt) < 0 ||
            llset(c->p_busy_s, gid, bs) < 0)
            return -1;
        c->seq += 1;
        long din = ivald(c->p_dest_in, gid);
        if (din < 0) {
            if (kpush(c->k, t + c->SL, c->seq, OP_DELIVER, 0, 0, pid) < 0)
                return -1;
        } else {
            long hop = ivald(c->k_hop, pid);
            if (iset(c->k_hop, pid, hop + 1) < 0)
                return -1;
            if (kpush(c->k, t + c->SL, c->seq, OP_RECV, din, vc, pid) < 0)
                return -1;
        }
        if (ivald(c->p_oqtot, gid) > 0) {
            if (kpush(c->k, bt, bs, OP_PWAKE, gid, 0, 0) < 0)
                return -1;
            bset(c->p_wake, gid, 1);
        } else {
            bset(c->p_wake, gid, 0);
        }
        return admit_pending(c, gid, vc, t, s);
    }
    if (have_best)
        return kpush(c->k, best_t, best_s, OP_PWAKE, gid, 0, 0);
    return 0;
}

/* -- opcode handlers ------------------------------------------------------ */

static int
do_recv(Ctx *c, double t, long long s, long a, long b, long pid)
{
    long hop = ivald(c->k_hop, pid);
    long gid = ivald(c->in_pbase, a) + PyLong_AsLong(
        PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_ports, pid), hop));
    if (iset(c->p_queued, gid, ivald(c->p_queued, gid) + 1) < 0)
        return -1;
    PyObject *q = PyList_GET_ITEM(c->iv_q, a * c->V + b);
    if (dq_len(q) > 0) {
        /* Behind others: no transfer attempt. */
        return dq_append_steal(q, PyLong_FromLong(pid));
    }
    /* Head-of-queue fast path: state-identical to append +
     * try_transfer on a one-element queue. */
    long ovc = PyLong_AsLong(
        PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_vcs, pid), hop));
    long pv = gid * c->V + ovc;
    if (ivald(c->pv_occ, pv) >= c->OQ_CAP) {
        if (dq_append_steal(q, PyLong_FromLong(pid)) < 0)
            return -1;
        PyObject *pr = Py_BuildValue("(ll)", a, b);
        return dq_append_steal(PyList_GET_ITEM(c->p_pend, gid), pr);
    }
    if (iset(c->pv_occ, pv, ivald(c->pv_occ, pv) + 1) < 0)
        return -1;
    return transfer_one(c, a, b, gid, pid, t, s);
}

static int
do_enter(Ctx *c, double t, long long s, long pvid, long pid, long gid)
{
    if (ivald(c->p_dead, gid)) {
        /* Failed link: divert (reroute or drop) at this router,
         * mirroring the object backend's _enter_oq dead branch. */
        if (c->fm_divert == NULL) {
            PyErr_SetString(PyExc_RuntimeError,
                            "dead port entered with no fault manager");
            return -1;
        }
        if (sync_out(c, t, s, 1) < 0)
            return -1;
        double t0 = mono_ns();
        PyObject *res = PyObject_CallFunction(c->fm_divert, "lll",
                                              pvid, pid, gid);
        c->k->esc_ns[ESC_DIVERT] += mono_ns() - t0;
        c->k->esc_counts[ESC_DIVERT] += 1;
        if (res == NULL)
            return -1;
        if (sync_in(c) < 0) {
            Py_DECREF(res);
            return -1;
        }
        if (admit_pending(c, gid, pvid - gid * c->V, t, s) < 0) {
            Py_DECREF(res);
            return -1;
        }
        if (res == Py_None) {
            Py_DECREF(res); /* dropped */
            return 0;
        }
        pvid = PyLong_AsLong(PyTuple_GET_ITEM(res, 0));
        gid = PyLong_AsLong(PyTuple_GET_ITEM(res, 1));
        Py_DECREF(res);
    }
    if (dq_append_steal(PyList_GET_ITEM(c->pv_oq, pvid),
                        PyLong_FromLong(pid)) < 0)
        return -1;
    if (iset(c->p_oqtot, gid, ivald(c->p_oqtot, gid) + 1) < 0)
        return -1;
    double bt = fval(c->p_busy_t, gid);
    long long bs = llval(c->p_busy_s, gid);
    if (t < bt || (t == bt && s < bs)) {
        if (!ivald(c->p_wake, gid)) {
            if (kpush(c->k, bt, bs, OP_PWAKE, gid, 0, 0) < 0)
                return -1;
            bset(c->p_wake, gid, 1);
        }
        return 0;
    }
    return try_transmit(c, gid, t, s);
}

static int
do_gen(Ctx *c, double t, long long s, long node)
{
    long i = ivald(c->g_i, node);
    if (iset(c->g_i, node, i + 1) < 0)
        return -1;
    long dst = ivald(PyList_GET_ITEM(c->g_d, node), i);
    if (dst == -2) /* past-horizon sentinel */
        return 0;
    if (dst >= 0) {
        /* Inlined NIC.submit(dst, packet_bytes). */
        PyObject *rec = Py_BuildValue("(llOd)", dst, c->PKTB, Py_None, t);
        if (dq_append_steal(PyList_GET_ITEM(c->n_q, node), rec) < 0)
            return -1;
        if (iset(c->n_qp, node, ivald(c->n_qp, node) + 1) < 0)
            return -1;
        double bt = fval(c->n_busy_t, node);
        long long bs = llval(c->n_busy_s, node);
        if (t < bt || (t == bt && s < bs)) {
            if (!ivald(c->n_wake, node)) {
                if (kpush(c->k, bt, bs, OP_NWAKE, node, 0, 0) < 0)
                    return -1;
                bset(c->n_wake, node, 1);
            }
        } else {
            if (escape_nic_send(c, node, t, s) < 0)
                return -1;
        }
    }
    c->seq += 1;
    double nt = fval(PyList_GET_ITEM(c->g_t, node), i + 1);
    return kpush(c->k, nt, c->seq, OP_GEN, node, 0, 0);
}

static int
do_pwake(Ctx *c, double t, long long s, long gid)
{
    double bt = fval(c->p_busy_t, gid);
    long long bs = llval(c->p_busy_s, gid);
    if (!(t < bt || (t == bt && s < bs)))
        return try_transmit(c, gid, t, s);
    return 0;
}

static int
do_nwake(Ctx *c, double t, long long s, long node)
{
    double bt = fval(c->n_busy_t, node);
    long long bs = llval(c->n_busy_s, node);
    if (!(t < bt || (t == bt && s < bs)))
        return escape_nic_send(c, node, t, s);
    return 0;
}

static int
do_deliver(Ctx *c, double t, long long s, long pid)
{
    if (sync_out(c, t, s, 1) < 0)
        return -1;
    double t0 = mono_ns();
    PyObject *r = PyObject_CallOneArg(c->deliver,
                                      PyList_GET_ITEM(c->k_obj, pid));
    c->k->esc_ns[ESC_DELIVER] += mono_ns() - t0;
    c->k->esc_counts[ESC_DELIVER] += 1;
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return sync_in(c);
}

static int
do_call(Ctx *c, double t, long long s, PyObject *fn, PyObject *args)
{
    /* Caller owns fn/args and decrefs them after we return. */
    if (sync_out(c, t, s, 1) < 0)
        return -1;
    double t0 = mono_ns();
    PyObject *r = PyObject_Call(fn, args, NULL);
    c->k->esc_ns[ESC_CALL] += mono_ns() - t0;
    c->k->esc_counts[ESC_CALL] += 1;
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return sync_in(c);
}

/* -- Kernel methods ------------------------------------------------------- */

static PyObject *
Kernel_push(Kernel *k, PyObject *args)
{
    double t;
    long long seq;
    int op;
    PyObject *a, *b, *cc;
    if (!PyArg_ParseTuple(args, "dLiOOO", &t, &seq, &op, &a, &b, &cc))
        return NULL;
    Event ev = {t, seq, op, 0, 0, 0, NULL, NULL};
    if (op == OP_CALL) {
        Py_INCREF(a);
        Py_INCREF(b);
        ev.fn = a;
        ev.args = b;
    } else {
        ev.a = PyLong_AsLong(a);
        ev.b = PyLong_AsLong(b);
        ev.c = PyLong_AsLong(cc);
        if (PyErr_Occurred())
            return NULL;
    }
    if (heap_push_ev(k, ev) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_run(Kernel *k, PyObject *args)
{
    PyObject *eng, *until_o = Py_None, *maxev_o = Py_None;
    if (!PyArg_ParseTuple(args, "O|OO", &eng, &until_o, &maxev_o))
        return NULL;
    double cap = Py_HUGE_VAL;
    if (until_o != Py_None) {
        cap = PyFloat_AsDouble(until_o);
        if (cap == -1.0 && PyErr_Occurred())
            return NULL;
    }
    long long rem = -1;
    if (maxev_o != Py_None) {
        rem = PyLong_AsLongLong(maxev_o);
        if (rem == -1 && PyErr_Occurred())
            return NULL;
    }

    Ctx c;
    memset(&c, 0, sizeof(c));
    c.k = k;
    c.eng = eng;

    PyObject *st = NULL, *net = NULL, *fm = NULL;
    long long executed = 0;
    int failed = 0;
    double t = 0.0;

    st = PyObject_GetAttr(eng, str_st);
    if (st == NULL)
        goto fail;
    net = PyObject_GetAttr(eng, str_net);
    if (net == NULL)
        goto fail;
    c.deliver = PyObject_GetAttr(net, str_deliver);
    if (c.deliver == NULL)
        goto fail;
    c.nic_send = PyObject_GetAttr(eng, str_nic_try_send);
    if (c.nic_send == NULL)
        goto fail;
    fm = PyObject_GetAttr(net, str_fault_manager);
    if (fm == NULL) {
        PyErr_Clear();
        fm = Py_None;
        Py_INCREF(fm);
    }
    if (fm != Py_None) {
        c.fm_divert = PyObject_GetAttr(fm, str_divert_tail);
        if (c.fm_divert == NULL)
            goto fail;
    }

#define X(name)                                                           \
    c.name = PyObject_GetAttrString(st, #name);                           \
    if (c.name == NULL)                                                   \
        goto fail;
    CTX_LISTS(X)
#undef X

    {
        PyObject *v;
#define GETL(dst, name)                                                   \
        v = PyObject_GetAttrString(st, name);                             \
        if (v == NULL)                                                    \
            goto fail;                                                    \
        dst = PyLong_AsLong(v);                                           \
        Py_DECREF(v);                                                     \
        if (dst == -1 && PyErr_Occurred())                                \
            goto fail;
#define GETD(dst, name)                                                   \
        v = PyObject_GetAttrString(st, name);                             \
        if (v == NULL)                                                    \
            goto fail;                                                    \
        dst = PyFloat_AsDouble(v);                                        \
        Py_DECREF(v);                                                     \
        if (dst == -1.0 && PyErr_Occurred())                              \
            goto fail;
        GETL(c.V, "V")
        GETL(c.OQ_CAP, "OQ_CAP")
        GETD(c.SER, "SER")
        GETD(c.LINK, "LINK")
        GETD(c.SWITCH, "SWITCH")
        GETD(c.SL, "SL")
        v = PyObject_GetAttrString(st, "g_pkt_bytes");
        if (v == NULL)
            goto fail;
        c.PKTB = (v == Py_None) ? 0 : PyLong_AsLong(v);
        Py_DECREF(v);
        if (c.PKTB == -1 && PyErr_Occurred())
            goto fail;
#undef GETL
#undef GETD

        v = PyObject_GetAttr(eng, str_now);
        if (v == NULL)
            goto fail;
        t = PyFloat_AsDouble(v);
        Py_DECREF(v);
        if (t == -1.0 && PyErr_Occurred())
            goto fail;
        v = PyObject_GetAttr(eng, str_seq);
        if (v == NULL)
            goto fail;
        c.seq = PyLong_AsLongLong(v);
        Py_DECREF(v);
        if (c.seq == -1 && PyErr_Occurred())
            goto fail;
    }

    {
        double t_run0 = mono_ns();
        while (k->size) {
            Event *top = &k->heap[0];
            if (top->t > cap || rem == 0)
                break;
            Event ev = heap_pop_ev(k);
            t = ev.t;
            rem -= 1;
            executed += 1;
            k->op_counts[ev.op] += 1;
            if ((executed & 0x3FFF) == 0 && PyErr_CheckSignals() < 0) {
                failed = 1;
                break;
            }
            int rc;
            switch (ev.op) {
            case OP_RECV:
                rc = do_recv(&c, t, ev.seq, ev.a, ev.b, ev.c);
                break;
            case OP_ENTER:
                rc = do_enter(&c, t, ev.seq, ev.a, ev.b, ev.c);
                break;
            case OP_PWAKE:
                rc = do_pwake(&c, t, ev.seq, ev.a);
                break;
            case OP_DELIVER:
                rc = do_deliver(&c, t, ev.seq, ev.c);
                break;
            case OP_NWAKE:
                rc = do_nwake(&c, t, ev.seq, ev.a);
                break;
            case OP_GEN:
                rc = do_gen(&c, t, ev.seq, ev.a);
                break;
            case OP_CALL:
                rc = do_call(&c, t, ev.seq, ev.fn, ev.args);
                Py_DECREF(ev.fn);
                Py_DECREF(ev.args);
                break;
            default:
                PyErr_Format(PyExc_RuntimeError,
                             "kernel: unknown opcode %d", ev.op);
                rc = -1;
                break;
            }
            if (rc < 0) {
                failed = 1;
                break;
            }
        }
        k->run_ns += mono_ns() - t_run0;
        k->runs += 1;
    }

    goto sync;

fail:
    failed = 1;

sync:
    /* Mirror the Python loop's ``finally``: write back clock, sequence
     * counter and the executed-event total even on error. */
    {
        PyObject *exc_type = NULL, *exc_val = NULL, *exc_tb = NULL;
        if (failed)
            PyErr_Fetch(&exc_type, &exc_val, &exc_tb);
        PyObject *v = PyFloat_FromDouble(t);
        if (v != NULL) {
            if (PyObject_SetAttr(eng, str_now, v) < 0)
                failed = 1;
            Py_DECREF(v);
        } else {
            failed = 1;
        }
        v = PyLong_FromLongLong(c.seq);
        if (v != NULL) {
            if (PyObject_SetAttr(eng, str_seq, v) < 0)
                failed = 1;
            Py_DECREF(v);
        } else {
            failed = 1;
        }
        PyObject *ee = PyObject_GetAttr(eng, str_events_executed);
        if (ee != NULL) {
            long long e0 = PyLong_AsLongLong(ee);
            Py_DECREF(ee);
            if (!(e0 == -1 && PyErr_Occurred())) {
                v = PyLong_FromLongLong(e0 + executed);
                if (v != NULL) {
                    if (PyObject_SetAttr(eng, str_events_executed, v) < 0)
                        failed = 1;
                    Py_DECREF(v);
                } else {
                    failed = 1;
                }
            } else {
                failed = 1;
            }
        } else {
            failed = 1;
        }
        if (exc_type != NULL)
            PyErr_Restore(exc_type, exc_val, exc_tb);
        else if (failed && !PyErr_Occurred())
            PyErr_SetString(PyExc_RuntimeError,
                            "kernel: engine sync failed after run");
    }

#define X(name) Py_XDECREF(c.name);
    CTX_LISTS(X)
#undef X
    Py_XDECREF(c.deliver);
    Py_XDECREF(c.nic_send);
    Py_XDECREF(c.fm_divert);
    Py_XDECREF(fm);
    Py_XDECREF(net);
    Py_XDECREF(st);

    if (failed)
        return NULL;
    return PyLong_FromLongLong(executed);
}

static void
kernel_drop_events(Kernel *k)
{
    for (Py_ssize_t i = 0; i < k->size; i++) {
        Py_XDECREF(k->heap[i].fn);
        Py_XDECREF(k->heap[i].args);
    }
    k->size = 0;
}

static PyObject *
Kernel_clear(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    kernel_drop_events(k);
    memset(k->op_counts, 0, sizeof(k->op_counts));
    memset(k->esc_counts, 0, sizeof(k->esc_counts));
    memset(k->esc_ns, 0, sizeof(k->esc_ns));
    k->run_ns = 0.0;
    k->runs = 0;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_pending(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(k->size);
}

static PyObject *
Kernel_peek_time(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    if (k->size == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(k->heap[0].t);
}

static PyObject *
Kernel_events(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    /* All queued event records as engine-format tuples, in no
     * particular order (audits; mirrors BatchedEngine.iter_pending). */
    PyObject *out = PyList_New(k->size);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < k->size; i++) {
        Event *ev = &k->heap[i];
        PyObject *rec;
        if (ev->op == OP_CALL)
            rec = Py_BuildValue("(dLiOOl)", ev->t, ev->seq, ev->op,
                                ev->fn, ev->args, (long)0);
        else
            rec = Py_BuildValue("(dLilll)", ev->t, ev->seq, ev->op,
                                ev->a, ev->b, ev->c);
        if (rec == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, rec);
    }
    return out;
}

static PyObject *
Kernel_stats(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    static const char *op_names[OP_COUNT] = {
        "RECV", "ENTER", "PWAKE", "DELIVER", "NWAKE", "GEN", "CALL"};
    static const char *esc_names[ESC_N] = {
        "make_packet", "deliver", "call", "fault_divert"};
    PyObject *ops = PyDict_New();
    PyObject *escs = PyDict_New();
    if (ops == NULL || escs == NULL)
        goto fail;
    unsigned long long total = 0;
    for (int i = 0; i < OP_COUNT; i++) {
        total += k->op_counts[i];
        PyObject *v = PyLong_FromUnsignedLongLong(k->op_counts[i]);
        if (v == NULL || PyDict_SetItemString(ops, op_names[i], v) < 0) {
            Py_XDECREF(v);
            goto fail;
        }
        Py_DECREF(v);
    }
    double esc_total_ns = 0.0;
    for (int i = 0; i < ESC_N; i++) {
        esc_total_ns += k->esc_ns[i];
        PyObject *e = Py_BuildValue("{s:K,s:d}", "count", k->esc_counts[i],
                                    "ns", k->esc_ns[i]);
        if (e == NULL || PyDict_SetItemString(escs, esc_names[i], e) < 0) {
            Py_XDECREF(e);
            goto fail;
        }
        Py_DECREF(e);
    }
    {
        PyObject *out = Py_BuildValue(
            "{s:K,s:N,s:N,s:d,s:d,s:K}",
            "events", total,
            "op_counts", ops,
            "escapes", escs,
            "run_ns", k->run_ns,
            "escape_ns", esc_total_ns,
            "runs", k->runs);
        return out; /* ops/escs references stolen by N */
    }
fail:
    Py_XDECREF(ops);
    Py_XDECREF(escs);
    return NULL;
}

/* -- type plumbing -------------------------------------------------------- */

static int
Kernel_traverse(Kernel *k, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < k->size; i++) {
        Py_VISIT(k->heap[i].fn);
        Py_VISIT(k->heap[i].args);
    }
    return 0;
}

static int
Kernel_tp_clear(Kernel *k)
{
    kernel_drop_events(k);
    return 0;
}

static void
Kernel_dealloc(Kernel *k)
{
    PyObject_GC_UnTrack(k);
    kernel_drop_events(k);
    PyMem_Free(k->heap);
    Py_TYPE(k)->tp_free((PyObject *)k);
}

static PyMethodDef Kernel_methods[] = {
    {"push", (PyCFunction)Kernel_push, METH_VARARGS,
     "push(t, seq, op, a, b, c): queue one event record."},
    {"run", (PyCFunction)Kernel_run, METH_VARARGS,
     "run(engine, until=None, max_events=None) -> executed count."},
    {"clear", (PyCFunction)Kernel_clear, METH_NOARGS,
     "Drop all queued events and reset profile counters."},
    {"pending", (PyCFunction)Kernel_pending, METH_NOARGS,
     "Number of queued events."},
    {"peek_time", (PyCFunction)Kernel_peek_time, METH_NOARGS,
     "Timestamp of the earliest queued event, or None."},
    {"events", (PyCFunction)Kernel_events, METH_NOARGS,
     "All queued event records as tuples (audits)."},
    {"stats", (PyCFunction)Kernel_stats, METH_NOARGS,
     "In-kernel event counts and Python-escape time split."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject KernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim.vec._kernel.Kernel",
    .tp_basicsize = sizeof(Kernel),
    .tp_dealloc = (destructor)Kernel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled event heap + dispatch core for the batched backend.",
    .tp_traverse = (traverseproc)Kernel_traverse,
    .tp_clear = (inquiry)Kernel_tp_clear,
    .tp_methods = Kernel_methods,
    .tp_new = PyType_GenericNew,
};

static struct PyModuleDef kernelmodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_kernel",
    .m_doc = "Compiled event kernel for the batched simulator backend.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    if ((str_now = PyUnicode_InternFromString("now")) == NULL ||
        (str_cs = PyUnicode_InternFromString("_cs")) == NULL ||
        (str_seq = PyUnicode_InternFromString("_seq")) == NULL ||
        (str_events_executed =
             PyUnicode_InternFromString("events_executed")) == NULL ||
        (str_st = PyUnicode_InternFromString("st")) == NULL ||
        (str_net = PyUnicode_InternFromString("net")) == NULL ||
        (str_deliver = PyUnicode_InternFromString("deliver")) == NULL ||
        (str_nic_try_send =
             PyUnicode_InternFromString("_nic_try_send")) == NULL ||
        (str_fault_manager =
             PyUnicode_InternFromString("fault_manager")) == NULL ||
        (str_divert_tail = PyUnicode_InternFromString("divert_tail")) == NULL)
        return NULL;

    PyObject *collections = PyImport_ImportModule("collections");
    if (collections == NULL)
        return NULL;
    PyObject *deque = PyObject_GetAttrString(collections, "deque");
    Py_DECREF(collections);
    if (deque == NULL)
        return NULL;
    m_popleft = PyObject_GetAttrString(deque, "popleft");
    m_append = PyObject_GetAttrString(deque, "append");
    m_rotate = PyObject_GetAttrString(deque, "rotate");
    Py_DECREF(deque);
    if (m_popleft == NULL || m_append == NULL || m_rotate == NULL)
        return NULL;

    if (PyType_Ready(&KernelType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&kernelmodule);
    if (m == NULL)
        return NULL;
    Py_INCREF(&KernelType);
    if (PyModule_AddObject(m, "Kernel", (PyObject *)&KernelType) < 0) {
        Py_DECREF(&KernelType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
