/* Compiled event kernel for the batched backend (repro.sim.vec.kernel).
 *
 * This extension owns the pending-event set (a C binary heap of typed
 * event structs) and runs the hot opcode handlers -- RECV/ENTER,
 * PWAKE/NWAKE elided-event retries, VC round-robin arbitration and the
 * queue-length updates -- as straight C over the *existing*
 * ``SoAState`` Python lists and deques.  It escapes to the interpreter
 * only for the boundary events the Python loop also treats as escapes:
 * NIC sends (``make_packet`` routing + RNG), deliver callbacks, CALL
 * events and fault diverts.
 *
 * Exactness contract (see repro/sim/vec/engine.py for the full model):
 * every handler below is a line-for-line port of the corresponding
 * closure in ``BatchedEngine.run`` -- same sequence-reservation
 * increments in the same order, same lazy busy/credit comparisons,
 * same float additions producing timestamps.  The binary heap pops in
 * the identical global ``(time, seq)`` order as the calendar queue:
 * pushes are never at or before the currently executing key, and the
 * only same-key collisions are duplicate wake records whose relative
 * order is immaterial (a spurious wake re-checks state and no-ops).
 *
 * Around every escape the engine attributes the Python side reads
 * (``now``, ``_cs``, ``_seq``) are written out, and ``_seq`` is read
 * back afterwards, mirroring the nonlocal sync in the Python loop.
 * ``KernelEngine._push`` routes cold-path pushes (schedule/schedule_at,
 * NIC sends, fault drains) into this heap, so re-entrant scheduling
 * from inside an escape lands in the same queue.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <time.h>

/* Event opcodes -- must match repro/sim/vec/engine.py. */
enum {
    OP_RECV = 0,
    OP_ENTER = 1,
    OP_PWAKE = 2,
    OP_DELIVER = 3,
    OP_NWAKE = 4,
    OP_GEN = 5,
    OP_CALL = 6,
    OP_COUNT = 7
};

/* Python-escape slots for the --profile split. */
enum { ESC_MAKE = 0, ESC_DELIVER = 1, ESC_CALL = 2, ESC_DIVERT = 3,
       ESC_FLUSH = 4, ESC_N = 5 };

/* Fast-path counters (per-packet work kept fully in C). */
enum { FAST_MAKE = 0, FAST_DELIVER = 1, FAST_N = 2 };

typedef struct {
    double t;
    long long seq;
    int op;
    long a, b, c;
    PyObject *fn;   /* OP_CALL only: callable (owned) */
    PyObject *args; /* OP_CALL only: argument tuple (owned) */
} Event;

/* -- MT19937: a bit-exact replica of CPython's random.Random core ---------
 *
 * The route fast path must consume the *same* draw stream as the
 * routing algorithms' ``random.Random`` instances: the engines'
 * bit-identity contract pins every selection to the shared seeded
 * stream, and escapes (scheduled CALLs that submit traffic) keep
 * drawing from the Python objects mid-run.  So the generator state is
 * *imported* from ``Random.getstate()`` at run start, advanced here
 * with the reference Mersenne Twister recurrence and CPython's exact
 * ``getrandbits``/``_randbelow`` derivations, and *exported* back via
 * ``Random.setstate()`` at run end and around every escape that can
 * reach the Python RNG (see ``KernelEngine._nic_try_send``).  The
 * tempering constants and the rejection loop below must match
 * Modules/_randommodule.c and Lib/random.py draw for draw --
 * tests/test_kernel_rng_parity.py asserts it per draw site.
 */

#define MT_N 624
#define MT_M 397
#define MT_MATRIX_A 0x9908b0dfUL
#define MT_UPPER_MASK 0x80000000UL
#define MT_LOWER_MASK 0x7fffffffUL

typedef struct {
    uint32_t mt[MT_N];
    int mti;
    PyObject *obj;   /* the random.Random instance (owned while imported) */
    PyObject *gauss; /* getstate()'s third element, round-tripped (owned) */
} CRng;

static uint32_t
mt_next(CRng *r)
{
    uint32_t y;
    static const uint32_t mag01[2] = {0x0UL, MT_MATRIX_A};
    uint32_t *mt = r->mt;
    if (r->mti >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ mag01[y & 0x1UL];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag01[y & 0x1UL];
        }
        y = (mt[MT_N - 1] & MT_UPPER_MASK) | (mt[0] & MT_LOWER_MASK);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ mag01[y & 0x1UL];
        r->mti = 0;
    }
    y = mt[r->mti++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680UL;
    y ^= (y << 15) & 0xefc60000UL;
    y ^= (y >> 18);
    return y;
}

/* random.getrandbits(k) for 0 < k <= 32. */
static inline uint32_t
mt_getrandbits(CRng *r, int k)
{
    return mt_next(r) >> (32 - k);
}

/* Random._randbelow_with_getrandbits(n): k = n.bit_length() bits,
 * rejection-sampled.  Same draw count as the Python wrapper, including
 * the (never hot) n == 1 case that still consumes draws. */
static long
mt_randbelow(CRng *r, long n)
{
    if (n <= 0)
        return 0; /* matches `if not n: return 0` (no draw) */
    int k = 0;
    unsigned long un = (unsigned long)n;
    while (un) {
        un >>= 1;
        k += 1;
    }
    uint32_t v = mt_getrandbits(r, k);
    while ((long)v >= n)
        v = mt_getrandbits(r, k);
    return (long)v;
}

typedef struct {
    PyObject_HEAD
    Event *heap;
    Py_ssize_t size, cap;
    /* --profile accounting (escape split vs in-kernel events) */
    unsigned long long op_counts[OP_COUNT];
    unsigned long long esc_counts[ESC_N];
    double esc_ns[ESC_N];
    unsigned long long fast_counts[FAST_N];
    double run_ns;
    unsigned long long runs;
    /* Route-fast-path residency: while a run with in-C routing is
     * active, the routing RNG streams and the packet-id counter live
     * here; ``handoff_out``/``handoff_in`` (called by the engine's
     * ``_nic_try_send`` wrapper around mid-run Python sends) and the
     * run-end sync keep the Python objects coherent. */
    CRng rng[2];
    int rng_n;
    int resident;
    long long pid;      /* C-resident Network._pid */
    PyObject *net;      /* owned while resident (for _pid handoff) */
} Kernel;

/* Interned attribute names / deque method descriptors (module init). */
static PyObject *str_now, *str_cs, *str_seq, *str_events_executed;
static PyObject *str_st, *str_net, *str_deliver, *str_nic_try_send;
static PyObject *str_fault_manager, *str_divert_tail;
static PyObject *str_fp, *str_pid, *str_tracer, *str_msg_track;
static PyObject *str_delivery_listeners;
static PyObject *str_routers, *str_ports, *str_vcs, *str_kind;
static PyObject *str_send_time, *str_eject_time, *str_dst_node;
static PyObject *str_size, *str_gen_time;
static PyObject *m_popleft, *m_append, *m_rotate; /* deque unbound methods */

static double
mono_ns(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec * 1e9 + (double)ts.tv_nsec;
}

/* -- random.Random state handoff ------------------------------------------ */

/* Pull the MT state out of ``r->obj`` (a random.Random) so the fast
 * path can continue its draw stream in C.  ``r->obj`` must already be
 * set (owned); fills mt/mti and stashes the gauss element verbatim. */
static int
crng_import(CRng *r)
{
    PyObject *state = PyObject_CallMethod(r->obj, "getstate", NULL);
    if (state == NULL)
        return -1;
    PyObject *inner = NULL;
    int ok = 0;
    if (PyTuple_Check(state) && PyTuple_GET_SIZE(state) == 3) {
        long version = PyLong_AsLong(PyTuple_GET_ITEM(state, 0));
        if (version == -1 && PyErr_Occurred())
            PyErr_Clear();
        inner = PyTuple_GET_ITEM(state, 1);
        if (version == 3 && PyTuple_Check(inner) &&
            PyTuple_GET_SIZE(inner) == MT_N + 1)
            ok = 1;
    }
    if (!ok) {
        Py_DECREF(state);
        PyErr_SetString(PyExc_RuntimeError,
                        "kernel: unsupported random.Random state format");
        return -1;
    }
    for (int i = 0; i < MT_N; i++) {
        unsigned long w = PyLong_AsUnsignedLong(PyTuple_GET_ITEM(inner, i));
        if (w == (unsigned long)-1 && PyErr_Occurred()) {
            Py_DECREF(state);
            return -1;
        }
        r->mt[i] = (uint32_t)w;
    }
    long mti = PyLong_AsLong(PyTuple_GET_ITEM(inner, MT_N));
    if (mti == -1 && PyErr_Occurred()) {
        Py_DECREF(state);
        return -1;
    }
    r->mti = (int)mti;
    Py_XDECREF(r->gauss);
    r->gauss = PyTuple_GET_ITEM(state, 2);
    Py_INCREF(r->gauss);
    Py_DECREF(state);
    return 0;
}

/* Push the (possibly advanced) MT state back into ``r->obj`` via
 * setstate, so Python-side draws resume exactly where C stopped. */
static int
crng_export(CRng *r)
{
    PyObject *inner = PyTuple_New(MT_N + 1);
    if (inner == NULL)
        return -1;
    for (int i = 0; i < MT_N; i++) {
        PyObject *w = PyLong_FromUnsignedLong((unsigned long)r->mt[i]);
        if (w == NULL) {
            Py_DECREF(inner);
            return -1;
        }
        PyTuple_SET_ITEM(inner, i, w);
    }
    PyObject *w = PyLong_FromLong((long)r->mti);
    if (w == NULL) {
        Py_DECREF(inner);
        return -1;
    }
    PyTuple_SET_ITEM(inner, MT_N, w);
    PyObject *state = Py_BuildValue("(lNO)", 3L, inner,
                                    r->gauss ? r->gauss : Py_None);
    if (state == NULL)
        return -1;
    /* "(O)": a bare "O" would splat the state tuple as the arg list. */
    PyObject *res = PyObject_CallMethod(r->obj, "setstate", "(O)", state);
    Py_DECREF(state);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static void
crng_drop(CRng *r)
{
    Py_CLEAR(r->obj);
    Py_CLEAR(r->gauss);
}

/* -- binary heap ---------------------------------------------------------- */

static inline int
ev_lt(const Event *x, const Event *y)
{
    return x->t < y->t || (x->t == y->t && x->seq < y->seq);
}

static int
heap_push_ev(Kernel *k, Event ev)
{
    if (k->size >= k->cap) {
        Py_ssize_t ncap = k->cap ? k->cap * 2 : 1024;
        Event *nh = (Event *)PyMem_Realloc(k->heap, (size_t)ncap * sizeof(Event));
        if (nh == NULL) {
            Py_XDECREF(ev.fn);
            Py_XDECREF(ev.args);
            PyErr_NoMemory();
            return -1;
        }
        k->heap = nh;
        k->cap = ncap;
    }
    Event *h = k->heap;
    Py_ssize_t i = k->size++;
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (ev_lt(&ev, &h[p])) {
            h[i] = h[p];
            i = p;
        } else {
            break;
        }
    }
    h[i] = ev;
    return 0;
}

static Event
heap_pop_ev(Kernel *k)
{
    Event *h = k->heap;
    Event top = h[0];
    Event last = h[--k->size];
    Py_ssize_t n = k->size;
    Py_ssize_t i = 0;
    for (;;) {
        Py_ssize_t l = 2 * i + 1;
        if (l >= n)
            break;
        if (l + 1 < n && ev_lt(&h[l + 1], &h[l]))
            l += 1;
        if (ev_lt(&h[l], &last)) {
            h[i] = h[l];
            i = l;
        } else {
            break;
        }
    }
    if (n > 0)
        h[i] = last;
    return top;
}

static int
kpush(Kernel *k, double t, long long seq, int op, long a, long b, long c)
{
    Event ev = {t, seq, op, a, b, c, NULL, NULL};
    return heap_push_ev(k, ev);
}

/* -- SoA list / deque accessors ------------------------------------------- */

static inline long
ivald(PyObject *list, long i)
{
    return PyLong_AsLong(PyList_GET_ITEM(list, (Py_ssize_t)i));
}

static inline long long
llval(PyObject *list, long i)
{
    return PyLong_AsLongLong(PyList_GET_ITEM(list, (Py_ssize_t)i));
}

static inline double
fval(PyObject *list, long i)
{
    return PyFloat_AsDouble(PyList_GET_ITEM(list, (Py_ssize_t)i));
}

static inline int
iset(PyObject *list, long i, long v)
{
    PyObject *o = PyLong_FromLong(v);
    if (o == NULL)
        return -1;
    PyObject *old = PyList_GET_ITEM(list, (Py_ssize_t)i);
    PyList_SET_ITEM(list, (Py_ssize_t)i, o);
    Py_DECREF(old);
    return 0;
}

static inline int
llset(PyObject *list, long i, long long v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (o == NULL)
        return -1;
    PyObject *old = PyList_GET_ITEM(list, (Py_ssize_t)i);
    PyList_SET_ITEM(list, (Py_ssize_t)i, o);
    Py_DECREF(old);
    return 0;
}

static inline int
fset(PyObject *list, long i, double v)
{
    PyObject *o = PyFloat_FromDouble(v);
    if (o == NULL)
        return -1;
    PyObject *old = PyList_GET_ITEM(list, (Py_ssize_t)i);
    PyList_SET_ITEM(list, (Py_ssize_t)i, o);
    Py_DECREF(old);
    return 0;
}

static inline void
bset(PyObject *list, long i, int v)
{
    PyObject *o = v ? Py_True : Py_False;
    Py_INCREF(o);
    PyObject *old = PyList_GET_ITEM(list, (Py_ssize_t)i);
    PyList_SET_ITEM(list, (Py_ssize_t)i, o);
    Py_DECREF(old);
}

static inline Py_ssize_t
dq_len(PyObject *dq)
{
    return PyObject_Size(dq);
}

static inline PyObject *
dq_popleft(PyObject *dq)
{
    return PyObject_CallOneArg(m_popleft, dq);
}

/* Append *item* (stealing the reference; item may be NULL to propagate
 * an allocation error). */
static inline int
dq_append_steal(PyObject *dq, PyObject *item)
{
    if (item == NULL)
        return -1;
    PyObject *argv[2] = {dq, item};
    PyObject *r = PyObject_Vectorcall(m_append, argv, 2, NULL);
    Py_DECREF(item);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* First element of a deque of (float, int) key tuples. */
static inline int
dq_first_key(PyObject *dq, double *t, long long *s)
{
    PyObject *it = PySequence_GetItem(dq, 0);
    if (it == NULL)
        return -1;
    *t = PyFloat_AsDouble(PyTuple_GET_ITEM(it, 0));
    *s = PyLong_AsLongLong(PyTuple_GET_ITEM(it, 1));
    Py_DECREF(it);
    return 0;
}

/* -- run context ---------------------------------------------------------- */

/* SoAState lists the handlers touch, in declaration order. */
#define CTX_LISTS(X)                                                      \
    X(in_pbase) X(in_up_port) X(in_up_node)                               \
    X(p_busy_t) X(p_busy_s) X(p_wake) X(p_queued) X(p_rr) X(p_sent)       \
    X(p_oqtot) X(p_pend) X(p_dest_in) X(p_has_cred) X(p_dead)             \
    X(pv_oq) X(pv_occ) X(pv_cred) X(pv_arr) X(iv_q)                       \
    X(n_q) X(n_src) X(n_cred) X(n_arr) X(n_busy_t) X(n_busy_s)            \
    X(n_wake) X(n_qp) X(n_in) X(n_rid) X(n_stalls)                        \
    X(k_ports) X(k_vcs) X(k_hop) X(k_obj)                                 \
    X(g_t) X(g_d) X(g_i) X(row_port)

typedef struct {
    Kernel *k;
    PyObject *eng;
    PyObject *nic_send;  /* bound eng._nic_try_send */
    PyObject *deliver;   /* bound net.deliver (checker-wrapped if any) */
    PyObject *fm_divert; /* bound fault_manager.divert_tail, or NULL */
#define X(name) PyObject *name;
    CTX_LISTS(X)
#undef X
    long V, OQ_CAP, PKTB;
    double SER, LINK, SWITCH, SL;
    long long seq;

    /* -- fast-path bindings (from eng._fp; see KernelEngine) -------------- */
    int route_mode;       /* -1 off, 0 min-rand, 1 min-best, 2 INR, 3 UGAL */
    int deliver_fast;     /* 1 = accumulate delivery stats in C */
    long NR, NN;
    PyObject *net;        /* borrowed from Kernel_run locals */
    CRng *rng0, *rng1;    /* resident draw streams (into k->rng) */
    /* route selection */
    PyObject *packet_cls; /* Packet class */
    PyObject *eject_ports;
    PyObject *min_rows, *leg_rows, *composed, *selfs;
    PyObject *minimal_fill, *leg_fill, *compose, *compose_or_none;
    PyObject *self_route;
    PyObject *pool;
    long npool, nI;
    int sf_mode, has_thr;
    double cc, c_sf, thr_cap;
    /* delivery accounting */
    PyObject *stats_absorb; /* bound StatsCollector.absorb_kernel */
    double win_start, win_end;
    int win_has_end;
    int stats_dirty;
    long long a_inj, a_inj_w, a_ej, a_ej_w, a_bytes, a_hops;
    double a_first, a_last;
    int a_has_first, a_has_last;
    double *a_lat;
    Py_ssize_t a_lat_n, a_lat_cap;
    long long *a_ejcnt;   /* length NN, or NULL when deliver fast is off */
    PyObject *a_kinds;    /* str -> int counter dict */
} Ctx;

/* Write eng.now / eng._cs (optional) / eng._seq before an escape. */
static int
sync_out(Ctx *c, double t, long long s, int set_cs)
{
    PyObject *v = PyFloat_FromDouble(t);
    if (v == NULL || PyObject_SetAttr(c->eng, str_now, v) < 0) {
        Py_XDECREF(v);
        return -1;
    }
    Py_DECREF(v);
    if (set_cs) {
        v = PyLong_FromLongLong(s);
        if (v == NULL || PyObject_SetAttr(c->eng, str_cs, v) < 0) {
            Py_XDECREF(v);
            return -1;
        }
        Py_DECREF(v);
    }
    v = PyLong_FromLongLong(c->seq);
    if (v == NULL || PyObject_SetAttr(c->eng, str_seq, v) < 0) {
        Py_XDECREF(v);
        return -1;
    }
    Py_DECREF(v);
    return 0;
}

/* Read eng._seq back after an escape (the callback may have scheduled). */
static int
sync_in(Ctx *c)
{
    PyObject *v = PyObject_GetAttr(c->eng, str_seq);
    if (v == NULL)
        return -1;
    c->seq = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (c->seq == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Escape: eng._nic_try_send(node, t, s).  Mirrors the GEN/NWAKE escape
 * in the Python loop, which syncs now/_seq (not _cs) around the call. */
static int
escape_nic_send(Ctx *c, long node, double t, long long s)
{
    if (sync_out(c, t, s, 0) < 0)
        return -1;
    double t0 = mono_ns();
    PyObject *r = PyObject_CallFunction(c->nic_send, "ldL", node, t, s);
    c->k->esc_ns[ESC_MAKE] += mono_ns() - t0;
    c->k->esc_counts[ESC_MAKE] += 1;
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return sync_in(c);
}

/* -- fast-path: stats accumulation ---------------------------------------- */

/* Flush the C-side inject/eject accumulators into the Python
 * StatsCollector (absorb_kernel).  Called lazily: before any escape
 * that could observe the collector mid-run (deliver/CALL/divert) and
 * at run end.  Resets the accumulators on success. */
static int
stats_flush(Ctx *c)
{
    if (!c->stats_dirty)
        return 0;
    double t0 = mono_ns();
    PyObject *lat = NULL, *first = NULL, *last = NULL, *ejcnt = NULL;
    PyObject *res = NULL;
    int rc = -1;

    lat = PyList_New(c->a_lat_n);
    if (lat == NULL)
        goto done;
    for (Py_ssize_t i = 0; i < c->a_lat_n; i++) {
        PyObject *f = PyFloat_FromDouble(c->a_lat[i]);
        if (f == NULL)
            goto done;
        PyList_SET_ITEM(lat, i, f);
    }
    if (c->a_has_first) {
        first = PyFloat_FromDouble(c->a_first);
    } else {
        first = Py_None;
        Py_INCREF(first);
    }
    if (first == NULL)
        goto done;
    if (c->a_has_last) {
        last = PyFloat_FromDouble(c->a_last);
    } else {
        last = Py_None;
        Py_INCREF(last);
    }
    if (last == NULL)
        goto done;
    if (c->a_ej > 0 && c->a_ejcnt != NULL) {
        ejcnt = PyList_New((Py_ssize_t)c->NN);
        if (ejcnt == NULL)
            goto done;
        for (long i = 0; i < c->NN; i++) {
            PyObject *v = PyLong_FromLongLong(c->a_ejcnt[i]);
            if (v == NULL)
                goto done;
            PyList_SET_ITEM(ejcnt, (Py_ssize_t)i, v);
        }
    } else {
        ejcnt = Py_None;
        Py_INCREF(ejcnt);
    }
    res = PyObject_CallFunction(
        c->stats_absorb, "LLOLLLLOOOO",
        c->a_inj, c->a_inj_w, first, c->a_ej, c->a_ej_w, c->a_bytes,
        c->a_hops, last, lat, c->a_kinds ? c->a_kinds : Py_None, ejcnt);
    if (res == NULL)
        goto done;
    c->a_inj = c->a_inj_w = c->a_ej = c->a_ej_w = 0;
    c->a_bytes = c->a_hops = 0;
    c->a_has_first = c->a_has_last = 0;
    c->a_lat_n = 0;
    if (c->a_kinds != NULL)
        PyDict_Clear(c->a_kinds);
    if (c->a_ejcnt != NULL)
        memset(c->a_ejcnt, 0, (size_t)c->NN * sizeof(long long));
    c->stats_dirty = 0;
    rc = 0;
done:
    Py_XDECREF(res);
    Py_XDECREF(ejcnt);
    Py_XDECREF(last);
    Py_XDECREF(first);
    Py_XDECREF(lat);
    c->k->esc_ns[ESC_FLUSH] += mono_ns() - t0;
    c->k->esc_counts[ESC_FLUSH] += 1;
    return rc;
}

static int
lat_push(Ctx *c, double v)
{
    if (c->a_lat_n >= c->a_lat_cap) {
        Py_ssize_t ncap = c->a_lat_cap ? c->a_lat_cap * 2 : 4096;
        double *nl = (double *)PyMem_Realloc(c->a_lat,
                                             (size_t)ncap * sizeof(double));
        if (nl == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        c->a_lat = nl;
        c->a_lat_cap = ncap;
    }
    c->a_lat[c->a_lat_n++] = v;
    return 0;
}

static int
kind_incr(Ctx *c, PyObject *kind)
{
    PyObject *cur = PyDict_GetItemWithError(c->a_kinds, kind);
    if (cur == NULL && PyErr_Occurred())
        return -1;
    PyObject *nv = PyLong_FromLong(cur ? PyLong_AsLong(cur) + 1 : 1);
    if (nv == NULL)
        return -1;
    int rc = PyDict_SetItem(c->a_kinds, kind, nv);
    Py_DECREF(nv);
    return rc;
}

/* Re-check the deliver-fast preconditions after an escape that ran
 * arbitrary Python (CALL, divert): a callback may have attached a
 * tracer / delivery listener / message tracker mid-run.  Disable-only:
 * once off it stays off for the rest of the run (re-enabling would
 * need a flush fence for no measurable gain). */
static int
refresh_deliver_fast(Ctx *c)
{
    if (!c->deliver_fast)
        return 0;
    int ok = 1;
    PyObject *v = PyObject_GetAttr(c->net, str_tracer);
    if (v == NULL)
        return -1;
    if (v != Py_None)
        ok = 0;
    Py_DECREF(v);
    if (ok) {
        v = PyObject_GetAttr(c->net, str_msg_track);
        if (v == NULL)
            return -1;
        if (v != Py_None)
            ok = 0;
        Py_DECREF(v);
    }
    if (ok) {
        v = PyObject_GetAttr(c->net, str_delivery_listeners);
        if (v == NULL)
            return -1;
        Py_ssize_t n = PyObject_Size(v);
        Py_DECREF(v);
        if (n < 0)
            return -1;
        if (n > 0)
            ok = 0;
    }
    if (!ok) {
        if (stats_flush(c) < 0)
            return -1;
        c->deliver_fast = 0;
    }
    return 0;
}

/* -- fast-path: route selection ------------------------------------------- */

/* Output-queue depth at router *u*'s port toward *v* (RouteCache's
 * flat row_port gid table + live p_queued), as queue_len() computes. */
static inline long
fp_qlen(Ctx *c, long u, long v)
{
    long gid = ivald(c->row_port, u * c->NR + v);
    return ivald(c->p_queued, gid);
}

/* Minimal candidate tuple for (sr, dr): memo row hit or cold
 * minimal_fill call (BFS refill under faults; no RNG draws).  New ref. */
static PyObject *
fp_min_candidates(Ctx *c, long sr, long dr)
{
    PyObject *row = PyList_GET_ITEM(c->min_rows, (Py_ssize_t)sr);
    if (row != Py_None) {
        PyObject *cands = PyList_GET_ITEM(row, (Py_ssize_t)dr);
        if (cands != Py_None) {
            Py_INCREF(cands);
            return cands;
        }
    }
    return PyObject_CallFunction(c->minimal_fill, "ll", sr, dr);
}

/* Same for the Valiant leg table. */
static PyObject *
fp_leg_candidates(Ctx *c, long a, long b)
{
    PyObject *row = PyList_GET_ITEM(c->leg_rows, (Py_ssize_t)a);
    if (row != Py_None) {
        PyObject *cands = PyList_GET_ITEM(row, (Py_ssize_t)b);
        if (cands != Py_None) {
            Py_INCREF(cands);
            return cands;
        }
    }
    return PyObject_CallFunction(c->leg_fill, "ll", a, b);
}

/* One leg pick: single candidate or a randbelow draw on *rng*. */
static PyObject *
fp_pick_leg(Ctx *c, long a, long b, CRng *rng)
{
    PyObject *cands = fp_leg_candidates(c, a, b);
    if (cands == NULL)
        return NULL;
    Py_ssize_t n = PyTuple_GET_SIZE(cands);
    PyObject *leg = PyTuple_GET_ITEM(
        cands, n == 1 ? 0 : (Py_ssize_t)mt_randbelow(rng, (long)n));
    Py_INCREF(leg);
    Py_DECREF(cands);
    return leg;
}

/* Rejection-sample an intermediate router != src, dst (the Python
 * loop in IndirectRandomRouting/UGALRouting._pick_intermediate). */
static inline long
fp_pick_intermediate(Ctx *c, long sr, long dr, CRng *rng)
{
    for (;;) {
        long i = mt_randbelow(rng, c->npool);
        long inter = PyLong_AsLong(PyList_GET_ITEM(c->pool, (Py_ssize_t)i));
        if (inter != sr && inter != dr)
            return inter;
    }
}

/* Composed-route memo probe.  *out gets a new ref on hit, NULL on
 * miss; returns -1 only on error. */
static int
fp_composed_lookup(Ctx *c, PyObject *first, PyObject *second, PyObject **out)
{
    PyObject *key = PyTuple_Pack(2, first, second);
    if (key == NULL)
        return -1;
    PyObject *r = PyDict_GetItemWithError(c->composed, key);
    Py_DECREF(key);
    if (r != NULL) {
        Py_INCREF(r);
        *out = r;
        return 0;
    }
    if (PyErr_Occurred())
        return -1;
    *out = NULL;
    return 0;
}

/* MinimalRouting.route (compiled): random selection draws on *rng*,
 * best selection scans for the first strict queue-length minimum. */
static PyObject *
fp_route_minimal(Ctx *c, long sr, long dr, CRng *rng, int best)
{
    PyObject *cands = fp_min_candidates(c, sr, dr);
    if (cands == NULL)
        return NULL;
    Py_ssize_t n = PyTuple_GET_SIZE(cands);
    PyObject *route = NULL;
    if (n == 1) {
        route = PyTuple_GET_ITEM(cands, 0);
        Py_INCREF(route);
    } else if (!best) {
        route = PyTuple_GET_ITEM(cands,
                                 (Py_ssize_t)mt_randbelow(rng, (long)n));
        Py_INCREF(route);
    } else {
        long best_q = 0;
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *cand = PyTuple_GET_ITEM(cands, i);
            PyObject *routers = PyObject_GetAttr(cand, str_routers);
            if (routers == NULL) {
                Py_XDECREF(route);
                Py_DECREF(cands);
                return NULL;
            }
            long q = 0;
            if (PyTuple_GET_SIZE(routers) > 1) {
                long r0 = PyLong_AsLong(PyTuple_GET_ITEM(routers, 0));
                long r1 = PyLong_AsLong(PyTuple_GET_ITEM(routers, 1));
                q = fp_qlen(c, r0, r1);
            }
            Py_DECREF(routers);
            if (route == NULL || q < best_q) {
                Py_XDECREF(route);
                route = cand;
                Py_INCREF(route);
                best_q = q;
            }
        }
    }
    Py_DECREF(cands);
    return route;
}

/* IndirectRandomRouting.route (compiled).  NoRouteError from compose
 * propagates, exactly as in Python. */
static PyObject *
fp_route_inr(Ctx *c, long sr, long dr)
{
    if (sr == dr) {
        PyObject *key = PyLong_FromLong(sr);
        if (key == NULL)
            return NULL;
        PyObject *r = PyDict_GetItemWithError(c->selfs, key);
        Py_DECREF(key);
        if (r != NULL) {
            Py_INCREF(r);
            return r;
        }
        if (PyErr_Occurred())
            return NULL;
        return PyObject_CallFunction(c->self_route, "l", sr);
    }
    long inter = fp_pick_intermediate(c, sr, dr, c->rng0);
    PyObject *first = fp_pick_leg(c, sr, inter, c->rng0);
    if (first == NULL)
        return NULL;
    PyObject *second = fp_pick_leg(c, inter, dr, c->rng0);
    if (second == NULL) {
        Py_DECREF(first);
        return NULL;
    }
    PyObject *route = NULL;
    if (fp_composed_lookup(c, first, second, &route) < 0) {
        Py_DECREF(first);
        Py_DECREF(second);
        return NULL;
    }
    if (route == NULL)
        route = PyObject_CallFunctionObjArgs(c->compose, first, second, NULL);
    Py_DECREF(first);
    Py_DECREF(second);
    return route;
}

/* UGALRouting.route, local variant with random minimal selection
 * (compiled): minimal pick on rng0, indirect scoring draws on rng1,
 * strict cost comparison (ties go minimal), VC-overflow on the winning
 * indirect pair falls back to minimal via compose_or_none. */
static PyObject *
fp_route_ugal(Ctx *c, long sr, long dr)
{
    PyObject *minimal = fp_route_minimal(c, sr, dr, c->rng0, 0);
    if (minimal == NULL)
        return NULL;
    PyObject *routers = PyObject_GetAttr(minimal, str_routers);
    if (routers == NULL) {
        Py_DECREF(minimal);
        return NULL;
    }
    long len_min = (long)PyTuple_GET_SIZE(routers) - 1;
    long q_min = 0;
    if (len_min > 0) {
        long r0 = PyLong_AsLong(PyTuple_GET_ITEM(routers, 0));
        long r1 = PyLong_AsLong(PyTuple_GET_ITEM(routers, 1));
        q_min = fp_qlen(c, r0, r1);
    }
    Py_DECREF(routers);
    if (len_min == 0)
        return minimal; /* self-pair: nothing to adapt */
    if (c->has_thr && (double)q_min < c->thr_cap)
        return minimal;
    double best_cost = (double)q_min;
    PyObject *best_first = NULL, *best_second = NULL;
    for (long it = 0; it < c->nI; it++) {
        long inter = fp_pick_intermediate(c, sr, dr, c->rng1);
        PyObject *first = fp_pick_leg(c, sr, inter, c->rng1);
        if (first == NULL)
            goto err;
        PyObject *second = fp_pick_leg(c, inter, dr, c->rng1);
        if (second == NULL) {
            Py_DECREF(first);
            goto err;
        }
        long f0 = PyLong_AsLong(PyTuple_GET_ITEM(first, 0));
        long f1 = PyLong_AsLong(PyTuple_GET_ITEM(first, 1));
        long q_ind = fp_qlen(c, f0, f1);
        double cost;
        if (c->sf_mode) {
            long hops = (long)(PyTuple_GET_SIZE(first) +
                               PyTuple_GET_SIZE(second)) - 2;
            /* Same association as the Python scoring expression so the
             * doubles are bit-identical. */
            cost = (((double)hops / (double)len_min) * c->c_sf) *
                   (double)q_ind;
        } else {
            cost = c->cc * (double)q_ind;
        }
        if (cost < best_cost) {
            best_cost = cost;
            Py_XDECREF(best_first);
            Py_XDECREF(best_second);
            best_first = first;
            best_second = second;
        } else {
            Py_DECREF(first);
            Py_DECREF(second);
        }
    }
    if (best_first == NULL)
        return minimal;
    {
        PyObject *route = NULL;
        if (fp_composed_lookup(c, best_first, best_second, &route) < 0)
            goto err;
        if (route == NULL) {
            route = PyObject_CallFunctionObjArgs(
                c->compose_or_none, best_first, best_second, NULL);
            if (route == NULL)
                goto err;
            if (route == Py_None) {
                Py_DECREF(route);
                route = NULL;
            }
        }
        Py_DECREF(best_first);
        Py_DECREF(best_second);
        if (route == NULL)
            return minimal; /* degraded pair: VC overflow -> minimal */
        Py_DECREF(minimal);
        return route;
    }
err:
    Py_XDECREF(best_first);
    Py_XDECREF(best_second);
    Py_DECREF(minimal);
    return NULL;
}

/* -- fast-path: in-C NIC send (BatchedEngine._nic_try_send port) ----------- */

static int
fast_nic_send(Ctx *c, long node, double t, long long s)
{
    Kernel *k = c->k;
    long cred = ivald(c->n_cred, node);
    PyObject *arr = PyList_GET_ITEM(c->n_arr, (Py_ssize_t)node);
    if (cred <= 0 && dq_len(arr) > 0) {
        while (dq_len(arr) > 0) {
            double at;
            long long as;
            if (dq_first_key(arr, &at, &as) < 0)
                return -1;
            if (at < t || (at == t && as <= s)) {
                PyObject *p = dq_popleft(arr);
                if (p == NULL)
                    return -1;
                Py_DECREF(p);
                cred += 1;
            } else {
                break;
            }
        }
        if (iset(c->n_cred, node, cred) < 0)
            return -1;
    }
    PyObject *q = PyList_GET_ITEM(c->n_q, (Py_ssize_t)node);
    if (cred <= 0) {
        if (dq_len(q) > 0 ||
            PyList_GET_ITEM(c->n_src, (Py_ssize_t)node) != Py_None) {
            if (iset(c->n_stalls, node, ivald(c->n_stalls, node) + 1) < 0)
                return -1;
            if (dq_len(arr) > 0) {
                double at;
                long long as;
                if (dq_first_key(arr, &at, &as) < 0)
                    return -1;
                if (kpush(k, at, as, OP_NWAKE, node, 0, 0) < 0)
                    return -1;
            }
        }
        return 0;
    }

    /* Next descriptor: queued record or pull from the source iterator. */
    PyObject *dsto = NULL, *sizeo = NULL, *mido = NULL, *geno = NULL;
    PyObject *route = NULL, *routers = NULL, *rports = NULL, *rvcs = NULL;
    PyObject *kind = NULL, *ports_full = NULL, *vcs_pad = NULL;
    PyObject *pkt = NULL;
    int rc = -1;

    if (dq_len(q) > 0) {
        PyObject *rec = dq_popleft(q);
        if (rec == NULL)
            return -1;
        if (!PyTuple_Check(rec) || PyTuple_GET_SIZE(rec) != 4) {
            Py_DECREF(rec);
            PyErr_SetString(PyExc_TypeError,
                            "kernel: NIC queue record is not a 4-tuple");
            return -1;
        }
        dsto = PyTuple_GET_ITEM(rec, 0);
        sizeo = PyTuple_GET_ITEM(rec, 1);
        mido = PyTuple_GET_ITEM(rec, 2);
        geno = PyTuple_GET_ITEM(rec, 3);
        Py_INCREF(dsto);
        Py_INCREF(sizeo);
        Py_INCREF(mido);
        Py_INCREF(geno);
        Py_DECREF(rec);
        if (iset(c->n_qp, node, ivald(c->n_qp, node) - 1) < 0)
            goto done;
    } else {
        PyObject *srco = PyList_GET_ITEM(c->n_src, (Py_ssize_t)node);
        if (srco == Py_None)
            return 0;
        PyObject *d = PyIter_Next(srco);
        if (d == NULL) {
            if (PyErr_Occurred())
                return -1;
            /* StopIteration: source exhausted. */
            Py_INCREF(Py_None);
            PyObject *old = PyList_GET_ITEM(c->n_src, (Py_ssize_t)node);
            PyList_SET_ITEM(c->n_src, (Py_ssize_t)node, Py_None);
            Py_DECREF(old);
            return 0;
        }
        PyObject *fast3 = PySequence_Fast(
            d, "kernel: NIC source yielded a non-sequence");
        Py_DECREF(d);
        if (fast3 == NULL)
            return -1;
        if (PySequence_Fast_GET_SIZE(fast3) != 3) {
            Py_DECREF(fast3);
            PyErr_SetString(PyExc_ValueError,
                            "kernel: NIC source descriptor is not a 3-tuple");
            return -1;
        }
        dsto = PySequence_Fast_GET_ITEM(fast3, 0);
        sizeo = PySequence_Fast_GET_ITEM(fast3, 1);
        mido = PySequence_Fast_GET_ITEM(fast3, 2);
        Py_INCREF(dsto);
        Py_INCREF(sizeo);
        Py_INCREF(mido);
        Py_DECREF(fast3);
        geno = PyFloat_FromDouble(t);
        if (geno == NULL)
            goto done;
    }

    {
        long dst_node = PyLong_AsLong(dsto);
        if (dst_node == -1 && PyErr_Occurred())
            goto done;
        long sr = ivald(c->n_rid, node);
        long dr = ivald(c->n_rid, dst_node);
        switch (c->route_mode) {
        case 0:
            route = fp_route_minimal(c, sr, dr, c->rng0, 0);
            break;
        case 1:
            route = fp_route_minimal(c, sr, dr, NULL, 1);
            break;
        case 2:
            route = fp_route_inr(c, sr, dr);
            break;
        default:
            route = fp_route_ugal(c, sr, dr);
            break;
        }
        if (route == NULL)
            goto done;
        routers = PyObject_GetAttr(route, str_routers);
        if (routers == NULL)
            goto done;
        rports = PyObject_GetAttr(route, str_ports);
        if (rports == NULL)
            goto done;
        rvcs = PyObject_GetAttr(route, str_vcs);
        if (rvcs == NULL)
            goto done;
        kind = PyObject_GetAttr(route, str_kind);
        if (kind == NULL)
            goto done;
        if (!PyTuple_Check(routers) || !PyTuple_Check(rports) ||
            !PyTuple_Check(rvcs)) {
            PyErr_SetString(PyExc_TypeError,
                            "kernel: route without compiled tuple "
                            "routers/ports/vcs");
            goto done;
        }

        /* ports + (eject,) and vcs + (0,) exactly as Network.make_packet
         * / the SoA append do. */
        Py_ssize_t nh = PyTuple_GET_SIZE(rports);
        ports_full = PyTuple_New(nh + 1);
        if (ports_full == NULL)
            goto done;
        for (Py_ssize_t i = 0; i < nh; i++) {
            PyObject *it = PyTuple_GET_ITEM(rports, i);
            Py_INCREF(it);
            PyTuple_SET_ITEM(ports_full, i, it);
        }
        {
            PyObject *ej = PyList_GET_ITEM(c->eject_ports,
                                           (Py_ssize_t)dst_node);
            Py_INCREF(ej);
            PyTuple_SET_ITEM(ports_full, nh, ej);
        }
        Py_ssize_t nv = PyTuple_GET_SIZE(rvcs);
        vcs_pad = PyTuple_New(nv + 1);
        if (vcs_pad == NULL)
            goto done;
        for (Py_ssize_t i = 0; i < nv; i++) {
            PyObject *it = PyTuple_GET_ITEM(rvcs, i);
            Py_INCREF(it);
            PyTuple_SET_ITEM(vcs_pad, i, it);
        }
        {
            PyObject *zero = PyLong_FromLong(0);
            if (zero == NULL)
                goto done;
            PyTuple_SET_ITEM(vcs_pad, nv, zero);
        }

        k->pid += 1;
        {
            PyObject *pido = PyLong_FromLongLong(k->pid);
            PyObject *srcn = pido ? PyLong_FromLong(node) : NULL;
            if (srcn == NULL) {
                Py_XDECREF(pido);
                goto done;
            }
            PyObject *argv[10] = {pido, srcn, dsto, sizeo, routers,
                                  ports_full, rvcs, kind, geno, mido};
            pkt = PyObject_Vectorcall(c->packet_cls, argv, 10, NULL);
            Py_DECREF(pido);
            Py_DECREF(srcn);
            if (pkt == NULL)
                goto done;
        }
        {
            PyObject *tf = PyFloat_FromDouble(t);
            if (tf == NULL)
                goto done;
            if (PyObject_SetAttr(pkt, str_send_time, tf) < 0) {
                Py_DECREF(tf);
                goto done;
            }
            Py_DECREF(tf);
        }

        /* StatsCollector.record_inject, accumulated C-side. */
        c->a_inj += 1;
        if (!c->a_has_first) {
            c->a_first = t;
            c->a_has_first = 1;
        }
        if (t >= c->win_start && (!c->win_has_end || t < c->win_end))
            c->a_inj_w += 1;
        c->stats_dirty = 1;

        if (PyList_Append(c->k_ports, ports_full) < 0 ||
            PyList_Append(c->k_vcs, vcs_pad) < 0 ||
            PyList_Append(c->k_obj, pkt) < 0)
            goto done;
        {
            PyObject *zero = PyLong_FromLong(0);
            if (zero == NULL)
                goto done;
            int ar = PyList_Append(c->k_hop, zero);
            Py_DECREF(zero);
            if (ar < 0)
                goto done;
        }

        if (iset(c->n_cred, node, cred - 1) < 0)
            goto done;
        c->seq += 1; /* reserved: the elided NIC link-free event */
        {
            double bt = t + c->SER;
            long long bs = c->seq;
            if (fset(c->n_busy_t, node, bt) < 0 ||
                llset(c->n_busy_s, node, bs) < 0)
                goto done;
            c->seq += 1;
            if (kpush(k, t + c->SL, c->seq, OP_RECV,
                      ivald(c->n_in, node), 0, (long)k->pid) < 0)
                goto done;
            if (dq_len(q) > 0 ||
                PyList_GET_ITEM(c->n_src, (Py_ssize_t)node) != Py_None) {
                if (kpush(k, bt, bs, OP_NWAKE, node, 0, 0) < 0)
                    goto done;
                bset(c->n_wake, node, 1);
            } else {
                bset(c->n_wake, node, 0);
            }
        }
        k->fast_counts[FAST_MAKE] += 1;
        rc = 0;
    }

done:
    Py_XDECREF(pkt);
    Py_XDECREF(vcs_pad);
    Py_XDECREF(ports_full);
    Py_XDECREF(kind);
    Py_XDECREF(rvcs);
    Py_XDECREF(rports);
    Py_XDECREF(routers);
    Py_XDECREF(route);
    Py_XDECREF(geno);
    Py_XDECREF(mido);
    Py_XDECREF(sizeo);
    Py_XDECREF(dsto);
    return rc;
}

/* Either NIC-send path, by fast-path residency. */
static inline int
nic_send(Ctx *c, long node, double t, long long s)
{
    if (c->route_mode >= 0)
        return fast_nic_send(c, node, t, s);
    return escape_nic_send(c, node, t, s);
}

/* -- handler helpers (ports of the BatchedEngine.run closures) ------------ */

static int try_transfer(Ctx *c, long in_gid, long vc, double t, long long s);

static int
transfer_one(Ctx *c, long in_gid, long vc, long gid, long pid,
             double t, long long s)
{
    long upp = ivald(c->in_up_port, in_gid);
    if (upp >= 0) {
        c->seq += 1;
        double at = t + c->LINK;
        long upv = upp * c->V + vc;
        PyObject *key = Py_BuildValue("(dL)", at, c->seq);
        if (dq_append_steal(PyList_GET_ITEM(c->pv_arr, upv), key) < 0)
            return -1;
        if (ivald(c->pv_cred, upv) == 0 &&
            dq_len(PyList_GET_ITEM(c->pv_oq, upv)) > 0) {
            double bt = fval(c->p_busy_t, upp);
            long long bs = llval(c->p_busy_s, upp);
            if (!(t < bt || (t == bt && s < bs))) {
                if (kpush(c->k, at, c->seq, OP_PWAKE, upp, 0, 0) < 0)
                    return -1;
            }
        }
    } else {
        long upn = ivald(c->in_up_node, in_gid);
        if (upn >= 0) {
            c->seq += 1;
            double at = t + c->LINK;
            PyObject *key = Py_BuildValue("(dL)", at, c->seq);
            if (dq_append_steal(PyList_GET_ITEM(c->n_arr, upn), key) < 0)
                return -1;
            if (ivald(c->n_cred, upn) == 0 &&
                (dq_len(PyList_GET_ITEM(c->n_q, upn)) > 0 ||
                 PyList_GET_ITEM(c->n_src, upn) != Py_None)) {
                if (kpush(c->k, at, c->seq, OP_NWAKE, upn, 0, 0) < 0)
                    return -1;
            }
        }
    }
    c->seq += 1;
    long hop = ivald(c->k_hop, pid);
    long ovc = PyLong_AsLong(
        PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_vcs, pid), hop));
    long pv = gid * c->V + ovc;
    return kpush(c->k, t + c->SWITCH, c->seq, OP_ENTER, pv, pid, gid);
}

static int
try_transfer(Ctx *c, long in_gid, long vc, double t, long long s)
{
    PyObject *q = PyList_GET_ITEM(c->iv_q, in_gid * c->V + vc);
    long base = ivald(c->in_pbase, in_gid);
    while (dq_len(q) > 0) {
        PyObject *head = PySequence_GetItem(q, 0);
        if (head == NULL)
            return -1;
        long pid = PyLong_AsLong(head);
        Py_DECREF(head);
        long hop = ivald(c->k_hop, pid);
        long gid = base + PyLong_AsLong(
            PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_ports, pid), hop));
        long ovc = PyLong_AsLong(
            PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_vcs, pid), hop));
        long pv = gid * c->V + ovc;
        if (ivald(c->pv_occ, pv) >= c->OQ_CAP) {
            PyObject *pr = Py_BuildValue("(ll)", in_gid, vc);
            return dq_append_steal(PyList_GET_ITEM(c->p_pend, gid), pr);
        }
        if (iset(c->pv_occ, pv, ivald(c->pv_occ, pv) + 1) < 0)
            return -1;
        PyObject *popped = dq_popleft(q);
        if (popped == NULL)
            return -1;
        Py_DECREF(popped);
        if (transfer_one(c, in_gid, vc, gid, pid, t, s) < 0)
            return -1;
    }
    return 0;
}

static int
admit_pending(Ctx *c, long gid, long freed_vc, double t, long long s)
{
    PyObject *pending = PyList_GET_ITEM(c->p_pend, gid);
    PyObject *it = PyObject_GetIter(pending);
    if (it == NULL)
        return -1;
    long i = 0;
    PyObject *item;
    while ((item = PyIter_Next(it)) != NULL) {
        long in_gid = PyLong_AsLong(PyTuple_GET_ITEM(item, 0));
        long vc = PyLong_AsLong(PyTuple_GET_ITEM(item, 1));
        Py_DECREF(item);
        PyObject *q = PyList_GET_ITEM(c->iv_q, in_gid * c->V + vc);
        PyObject *head = PySequence_GetItem(q, 0);
        if (head == NULL) {
            Py_DECREF(it);
            return -1;
        }
        long pid = PyLong_AsLong(head);
        Py_DECREF(head);
        long hop = ivald(c->k_hop, pid);
        long pvc = PyLong_AsLong(
            PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_vcs, pid), hop));
        if (pvc == freed_vc) {
            Py_DECREF(it);
            if (i) {
                PyObject *narg = PyLong_FromLong(-i);
                if (narg == NULL)
                    return -1;
                PyObject *argv[2] = {pending, narg};
                PyObject *r = PyObject_Vectorcall(m_rotate, argv, 2, NULL);
                Py_DECREF(narg);
                if (r == NULL)
                    return -1;
                Py_DECREF(r);
            }
            PyObject *popped = dq_popleft(pending);
            if (popped == NULL)
                return -1;
            Py_DECREF(popped);
            return try_transfer(c, in_gid, vc, t, s);
        }
        i += 1;
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
}

static int
try_transmit(Ctx *c, long gid, double t, long long s)
{
    long V = c->V;
    long vc = ivald(c->p_rr, gid);
    long base = gid * V;
    int has_cred = ivald(c->p_has_cred, gid) != 0;
    double best_t = 0.0;
    long long best_s = 0;
    int have_best = 0;
    for (long n = 0; n < V; n++) {
        if (vc >= V)
            vc -= V;
        long pv = base + vc;
        PyObject *oq = PyList_GET_ITEM(c->pv_oq, pv);
        if (dq_len(oq) == 0) {
            vc += 1;
            continue;
        }
        if (has_cred) {
            long cr = ivald(c->pv_cred, pv);
            if (cr <= 0) {
                PyObject *arr = PyList_GET_ITEM(c->pv_arr, pv);
                if (dq_len(arr) > 0) {
                    while (dq_len(arr) > 0) {
                        double at;
                        long long as;
                        if (dq_first_key(arr, &at, &as) < 0)
                            return -1;
                        if (at < t || (at == t && as <= s)) {
                            PyObject *p = dq_popleft(arr);
                            if (p == NULL)
                                return -1;
                            Py_DECREF(p);
                            cr += 1;
                        } else {
                            break;
                        }
                    }
                    if (iset(c->pv_cred, pv, cr) < 0)
                        return -1;
                }
                if (cr <= 0) {
                    /* Blocked on credits: remember the earliest
                     * in-flight arrival as a wake candidate. */
                    if (dq_len(arr) > 0) {
                        double at;
                        long long as;
                        if (dq_first_key(arr, &at, &as) < 0)
                            return -1;
                        if (!have_best || at < best_t ||
                            (at == best_t && as < best_s)) {
                            best_t = at;
                            best_s = as;
                            have_best = 1;
                        }
                    }
                    vc += 1;
                    continue;
                }
            }
            if (iset(c->pv_cred, pv, cr - 1) < 0)
                return -1;
        }
        PyObject *pp = dq_popleft(oq);
        if (pp == NULL)
            return -1;
        long pid = PyLong_AsLong(pp);
        Py_DECREF(pp);
        if (iset(c->p_oqtot, gid, ivald(c->p_oqtot, gid) - 1) < 0 ||
            iset(c->pv_occ, pv, ivald(c->pv_occ, pv) - 1) < 0 ||
            iset(c->p_queued, gid, ivald(c->p_queued, gid) - 1) < 0 ||
            iset(c->p_sent, gid, ivald(c->p_sent, gid) + 1) < 0)
            return -1;
        long nvc = vc + 1;
        if (iset(c->p_rr, gid, nvc < V ? nvc : 0) < 0)
            return -1;
        c->seq += 1; /* reserved: the elided port link-free event */
        double bt = t + c->SER;
        long long bs = c->seq;
        if (fset(c->p_busy_t, gid, bt) < 0 ||
            llset(c->p_busy_s, gid, bs) < 0)
            return -1;
        c->seq += 1;
        long din = ivald(c->p_dest_in, gid);
        if (din < 0) {
            if (kpush(c->k, t + c->SL, c->seq, OP_DELIVER, 0, 0, pid) < 0)
                return -1;
        } else {
            long hop = ivald(c->k_hop, pid);
            if (iset(c->k_hop, pid, hop + 1) < 0)
                return -1;
            if (kpush(c->k, t + c->SL, c->seq, OP_RECV, din, vc, pid) < 0)
                return -1;
        }
        if (ivald(c->p_oqtot, gid) > 0) {
            if (kpush(c->k, bt, bs, OP_PWAKE, gid, 0, 0) < 0)
                return -1;
            bset(c->p_wake, gid, 1);
        } else {
            bset(c->p_wake, gid, 0);
        }
        return admit_pending(c, gid, vc, t, s);
    }
    if (have_best)
        return kpush(c->k, best_t, best_s, OP_PWAKE, gid, 0, 0);
    return 0;
}

/* -- opcode handlers ------------------------------------------------------ */

static int
do_recv(Ctx *c, double t, long long s, long a, long b, long pid)
{
    long hop = ivald(c->k_hop, pid);
    long gid = ivald(c->in_pbase, a) + PyLong_AsLong(
        PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_ports, pid), hop));
    if (iset(c->p_queued, gid, ivald(c->p_queued, gid) + 1) < 0)
        return -1;
    PyObject *q = PyList_GET_ITEM(c->iv_q, a * c->V + b);
    if (dq_len(q) > 0) {
        /* Behind others: no transfer attempt. */
        return dq_append_steal(q, PyLong_FromLong(pid));
    }
    /* Head-of-queue fast path: state-identical to append +
     * try_transfer on a one-element queue. */
    long ovc = PyLong_AsLong(
        PyTuple_GET_ITEM(PyList_GET_ITEM(c->k_vcs, pid), hop));
    long pv = gid * c->V + ovc;
    if (ivald(c->pv_occ, pv) >= c->OQ_CAP) {
        if (dq_append_steal(q, PyLong_FromLong(pid)) < 0)
            return -1;
        PyObject *pr = Py_BuildValue("(ll)", a, b);
        return dq_append_steal(PyList_GET_ITEM(c->p_pend, gid), pr);
    }
    if (iset(c->pv_occ, pv, ivald(c->pv_occ, pv) + 1) < 0)
        return -1;
    return transfer_one(c, a, b, gid, pid, t, s);
}

static int
do_enter(Ctx *c, double t, long long s, long pvid, long pid, long gid)
{
    if (ivald(c->p_dead, gid)) {
        /* Failed link: divert (reroute or drop) at this router,
         * mirroring the object backend's _enter_oq dead branch. */
        if (c->fm_divert == NULL) {
            PyErr_SetString(PyExc_RuntimeError,
                            "dead port entered with no fault manager");
            return -1;
        }
        if (c->stats_dirty && stats_flush(c) < 0)
            return -1;
        if (sync_out(c, t, s, 1) < 0)
            return -1;
        double t0 = mono_ns();
        PyObject *res = PyObject_CallFunction(c->fm_divert, "lll",
                                              pvid, pid, gid);
        c->k->esc_ns[ESC_DIVERT] += mono_ns() - t0;
        c->k->esc_counts[ESC_DIVERT] += 1;
        if (res == NULL)
            return -1;
        if (sync_in(c) < 0 || refresh_deliver_fast(c) < 0) {
            Py_DECREF(res);
            return -1;
        }
        if (admit_pending(c, gid, pvid - gid * c->V, t, s) < 0) {
            Py_DECREF(res);
            return -1;
        }
        if (res == Py_None) {
            Py_DECREF(res); /* dropped */
            return 0;
        }
        pvid = PyLong_AsLong(PyTuple_GET_ITEM(res, 0));
        gid = PyLong_AsLong(PyTuple_GET_ITEM(res, 1));
        Py_DECREF(res);
    }
    if (dq_append_steal(PyList_GET_ITEM(c->pv_oq, pvid),
                        PyLong_FromLong(pid)) < 0)
        return -1;
    if (iset(c->p_oqtot, gid, ivald(c->p_oqtot, gid) + 1) < 0)
        return -1;
    double bt = fval(c->p_busy_t, gid);
    long long bs = llval(c->p_busy_s, gid);
    if (t < bt || (t == bt && s < bs)) {
        if (!ivald(c->p_wake, gid)) {
            if (kpush(c->k, bt, bs, OP_PWAKE, gid, 0, 0) < 0)
                return -1;
            bset(c->p_wake, gid, 1);
        }
        return 0;
    }
    return try_transmit(c, gid, t, s);
}

static int
do_gen(Ctx *c, double t, long long s, long node)
{
    long i = ivald(c->g_i, node);
    if (iset(c->g_i, node, i + 1) < 0)
        return -1;
    long dst = ivald(PyList_GET_ITEM(c->g_d, node), i);
    if (dst == -2) /* past-horizon sentinel */
        return 0;
    if (dst >= 0) {
        /* Inlined NIC.submit(dst, packet_bytes). */
        PyObject *rec = Py_BuildValue("(llOd)", dst, c->PKTB, Py_None, t);
        if (dq_append_steal(PyList_GET_ITEM(c->n_q, node), rec) < 0)
            return -1;
        if (iset(c->n_qp, node, ivald(c->n_qp, node) + 1) < 0)
            return -1;
        double bt = fval(c->n_busy_t, node);
        long long bs = llval(c->n_busy_s, node);
        if (t < bt || (t == bt && s < bs)) {
            if (!ivald(c->n_wake, node)) {
                if (kpush(c->k, bt, bs, OP_NWAKE, node, 0, 0) < 0)
                    return -1;
                bset(c->n_wake, node, 1);
            }
        } else {
            if (nic_send(c, node, t, s) < 0)
                return -1;
        }
    }
    c->seq += 1;
    double nt = fval(PyList_GET_ITEM(c->g_t, node), i + 1);
    return kpush(c->k, nt, c->seq, OP_GEN, node, 0, 0);
}

static int
do_pwake(Ctx *c, double t, long long s, long gid)
{
    double bt = fval(c->p_busy_t, gid);
    long long bs = llval(c->p_busy_s, gid);
    if (!(t < bt || (t == bt && s < bs)))
        return try_transmit(c, gid, t, s);
    return 0;
}

static int
do_nwake(Ctx *c, double t, long long s, long node)
{
    double bt = fval(c->n_busy_t, node);
    long long bs = llval(c->n_busy_s, node);
    if (!(t < bt || (t == bt && s < bs)))
        return nic_send(c, node, t, s);
    return 0;
}

static int
do_deliver(Ctx *c, double t, long long s, long pid)
{
    if (c->deliver_fast) {
        /* Network.deliver + StatsCollector.record_eject, fully in C:
         * stamp eject_time and fold the stats into the accumulators
         * (flushed via absorb_kernel). */
        PyObject *pkt = PyList_GET_ITEM(c->k_obj, pid); /* borrowed */
        PyObject *tf = PyFloat_FromDouble(t);
        if (tf == NULL)
            return -1;
        if (PyObject_SetAttr(pkt, str_eject_time, tf) < 0) {
            Py_DECREF(tf);
            return -1;
        }
        Py_DECREF(tf);
        c->a_ej += 1;
        c->a_last = t; /* event times are monotone: running max */
        c->a_has_last = 1;
        PyObject *v = PyObject_GetAttr(pkt, str_dst_node);
        if (v == NULL)
            return -1;
        long dst = PyLong_AsLong(v);
        Py_DECREF(v);
        if (dst == -1 && PyErr_Occurred())
            return -1;
        c->a_ejcnt[dst] += 1;
        if (t >= c->win_start && (!c->win_has_end || t < c->win_end)) {
            c->a_ej_w += 1;
            v = PyObject_GetAttr(pkt, str_size);
            if (v == NULL)
                return -1;
            long long sz = PyLong_AsLongLong(v);
            Py_DECREF(v);
            if (sz == -1 && PyErr_Occurred())
                return -1;
            c->a_bytes += sz;
            v = PyObject_GetAttr(pkt, str_gen_time);
            if (v == NULL)
                return -1;
            double gt = PyFloat_AsDouble(v);
            Py_DECREF(v);
            if (gt == -1.0 && PyErr_Occurred())
                return -1;
            if (lat_push(c, t - gt) < 0)
                return -1;
            v = PyObject_GetAttr(pkt, str_kind);
            if (v == NULL)
                return -1;
            int kr = kind_incr(c, v);
            Py_DECREF(v);
            if (kr < 0)
                return -1;
            v = PyObject_GetAttr(pkt, str_routers);
            if (v == NULL)
                return -1;
            c->a_hops += (long long)PyTuple_GET_SIZE(v) - 1;
            Py_DECREF(v);
        }
        c->stats_dirty = 1;
        c->k->fast_counts[FAST_DELIVER] += 1;
        return 0;
    }
    /* Escape path: flush the C accumulators first so listeners /
     * wrapped deliver callbacks observe a coherent StatsCollector. */
    if (c->stats_dirty && stats_flush(c) < 0)
        return -1;
    if (sync_out(c, t, s, 1) < 0)
        return -1;
    double t0 = mono_ns();
    PyObject *r = PyObject_CallOneArg(c->deliver,
                                      PyList_GET_ITEM(c->k_obj, pid));
    c->k->esc_ns[ESC_DELIVER] += mono_ns() - t0;
    c->k->esc_counts[ESC_DELIVER] += 1;
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return sync_in(c);
}

static int
do_call(Ctx *c, double t, long long s, PyObject *fn, PyObject *args)
{
    /* Caller owns fn/args and decrefs them after we return. */
    if (c->stats_dirty && stats_flush(c) < 0)
        return -1;
    if (sync_out(c, t, s, 1) < 0)
        return -1;
    double t0 = mono_ns();
    PyObject *r = PyObject_Call(fn, args, NULL);
    c->k->esc_ns[ESC_CALL] += mono_ns() - t0;
    c->k->esc_counts[ESC_CALL] += 1;
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    if (sync_in(c) < 0)
        return -1;
    return refresh_deliver_fast(c);
}

/* -- fast-path binding / residency ---------------------------------------- */

/* Bind the fast-path spec (eng._fp, a namespace KernelEngine.run
 * computes per run; None disables).  Fills the Ctx fast-path fields
 * and, for route mode, imports the routing RNG streams and Network
 * packet-id counter into the Kernel (residency).  On error the caller
 * runs the normal Ctx cleanup, which drops whatever was bound. */
static int
bind_fastpath(Ctx *c, PyObject *eng, PyObject *net)
{
    Kernel *k = c->k;
    c->route_mode = -1;
    c->deliver_fast = 0;
    c->net = net; /* borrowed; outlives the run ctx */
    PyObject *fp = PyObject_GetAttr(eng, str_fp);
    if (fp == NULL) {
        /* Engine without a spec (direct Kernel.run callers). */
        PyErr_Clear();
        return 0;
    }
    if (fp == Py_None) {
        Py_DECREF(fp);
        return 0;
    }
    int rc = -1;
    PyObject *v = NULL;
#define FPGETO(dst, name)                                                 \
    do {                                                                  \
        c->dst = PyObject_GetAttrString(fp, name);                        \
        if (c->dst == NULL)                                               \
            goto done;                                                    \
    } while (0)
#define FPGETL(dst, name)                                                 \
    do {                                                                  \
        v = PyObject_GetAttrString(fp, name);                             \
        if (v == NULL)                                                    \
            goto done;                                                    \
        dst = PyLong_AsLong(v);                                           \
        Py_CLEAR(v);                                                      \
        if (dst == -1 && PyErr_Occurred())                                \
            goto done;                                                    \
    } while (0)
#define FPGETD(dst, name)                                                 \
    do {                                                                  \
        v = PyObject_GetAttrString(fp, name);                             \
        if (v == NULL)                                                    \
            goto done;                                                    \
        dst = PyFloat_AsDouble(v);                                        \
        Py_CLEAR(v);                                                      \
        if (dst == -1.0 && PyErr_Occurred())                              \
            goto done;                                                    \
    } while (0)

    {
        long mode, dfast, sf;
        FPGETL(mode, "route_mode");
        FPGETL(dfast, "deliver_fast");
        c->route_mode = (int)mode;
        c->deliver_fast = dfast ? 1 : 0;
        if (c->route_mode < 0 && !c->deliver_fast) {
            rc = 0;
            goto done;
        }
        FPGETO(stats_absorb, "stats_absorb");
        FPGETD(c->win_start, "win_start");
        v = PyObject_GetAttrString(fp, "win_end");
        if (v == NULL)
            goto done;
        if (v == Py_None) {
            c->win_has_end = 0;
            c->win_end = 0.0;
        } else {
            c->win_has_end = 1;
            c->win_end = PyFloat_AsDouble(v);
            if (c->win_end == -1.0 && PyErr_Occurred()) {
                Py_CLEAR(v);
                goto done;
            }
        }
        Py_CLEAR(v);
        if (c->deliver_fast) {
            c->a_ejcnt = (long long *)PyMem_Calloc((size_t)c->NN,
                                                   sizeof(long long));
            if (c->a_ejcnt == NULL) {
                PyErr_NoMemory();
                goto done;
            }
            c->a_kinds = PyDict_New();
            if (c->a_kinds == NULL)
                goto done;
        }
        if (c->route_mode >= 0) {
            FPGETO(packet_cls, "packet_cls");
            FPGETO(eject_ports, "eject_ports");
            FPGETO(min_rows, "min_rows");
            FPGETO(leg_rows, "leg_rows");
            FPGETO(composed, "composed");
            FPGETO(selfs, "selfs");
            FPGETO(minimal_fill, "minimal_fill");
            FPGETO(leg_fill, "leg_fill");
            FPGETO(compose, "compose");
            FPGETO(compose_or_none, "compose_or_none");
            FPGETO(self_route, "self_route");
            FPGETO(pool, "pool");
            c->npool = (c->pool != Py_None) ? (long)PyList_Size(c->pool) : 0;
            FPGETL(c->nI, "n_indirect");
            FPGETL(sf, "sf_mode");
            c->sf_mode = (int)sf;
            FPGETD(c->cc, "c");
            FPGETD(c->c_sf, "c_sf");
            v = PyObject_GetAttrString(fp, "thr_cap");
            if (v == NULL)
                goto done;
            if (v == Py_None) {
                c->has_thr = 0;
                c->thr_cap = 0.0;
            } else {
                c->has_thr = 1;
                c->thr_cap = PyFloat_AsDouble(v);
                if (c->thr_cap == -1.0 && PyErr_Occurred()) {
                    Py_CLEAR(v);
                    goto done;
                }
            }
            Py_CLEAR(v);

            /* RNG + packet-id residency. */
            PyObject *rngs = PyObject_GetAttrString(fp, "rngs");
            if (rngs == NULL)
                goto done;
            Py_ssize_t nr = PyList_Size(rngs);
            if (nr < 0 || nr > 2) {
                Py_DECREF(rngs);
                if (nr > 2)
                    PyErr_SetString(PyExc_ValueError,
                                    "kernel: at most 2 fast-path RNGs");
                goto done;
            }
            for (Py_ssize_t i = 0; i < nr; i++) {
                PyObject *obj = PyList_GET_ITEM(rngs, i);
                Py_INCREF(obj);
                k->rng[i].obj = obj;
                k->rng[i].gauss = NULL;
                if (crng_import(&k->rng[i]) < 0) {
                    for (Py_ssize_t j = 0; j <= i; j++)
                        crng_drop(&k->rng[j]);
                    Py_DECREF(rngs);
                    goto done;
                }
            }
            Py_DECREF(rngs);
            k->rng_n = (int)nr;
            c->rng0 = &k->rng[0];
            c->rng1 = (nr > 1) ? &k->rng[1] : &k->rng[0];
            v = PyObject_GetAttr(net, str_pid);
            if (v == NULL)
                goto done;
            k->pid = PyLong_AsLongLong(v);
            Py_CLEAR(v);
            if (k->pid == -1 && PyErr_Occurred())
                goto done;
            Py_INCREF(net);
            k->net = net;
            k->resident = 1;
        }
    }
    rc = 0;
done:
#undef FPGETO
#undef FPGETL
#undef FPGETD
    Py_XDECREF(v);
    Py_DECREF(fp);
    return rc;
}

/* End residency: push RNG streams + packet-id counter back to Python.
 * Always drops the refs, even if an export step fails. */
static int
kernel_export_resident(Kernel *k)
{
    if (!k->resident)
        return 0;
    int rc = 0;
    for (int i = 0; i < k->rng_n; i++) {
        if (k->rng[i].obj != NULL && crng_export(&k->rng[i]) < 0)
            rc = -1;
        crng_drop(&k->rng[i]);
    }
    k->rng_n = 0;
    if (k->net != NULL) {
        PyObject *v = PyLong_FromLongLong(k->pid);
        if (v == NULL || PyObject_SetAttr(k->net, str_pid, v) < 0)
            rc = -1;
        Py_XDECREF(v);
    }
    Py_CLEAR(k->net);
    k->resident = 0;
    return rc;
}

/* -- Kernel methods ------------------------------------------------------- */

static PyObject *
Kernel_push(Kernel *k, PyObject *args)
{
    double t;
    long long seq;
    int op;
    PyObject *a, *b, *cc;
    if (!PyArg_ParseTuple(args, "dLiOOO", &t, &seq, &op, &a, &b, &cc))
        return NULL;
    Event ev = {t, seq, op, 0, 0, 0, NULL, NULL};
    if (op == OP_CALL) {
        Py_INCREF(a);
        Py_INCREF(b);
        ev.fn = a;
        ev.args = b;
    } else {
        ev.a = PyLong_AsLong(a);
        ev.b = PyLong_AsLong(b);
        ev.c = PyLong_AsLong(cc);
        if (PyErr_Occurred())
            return NULL;
    }
    if (heap_push_ev(k, ev) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_run(Kernel *k, PyObject *args)
{
    PyObject *eng, *until_o = Py_None, *maxev_o = Py_None;
    if (!PyArg_ParseTuple(args, "O|OO", &eng, &until_o, &maxev_o))
        return NULL;
    double cap = Py_HUGE_VAL;
    if (until_o != Py_None) {
        cap = PyFloat_AsDouble(until_o);
        if (cap == -1.0 && PyErr_Occurred())
            return NULL;
    }
    long long rem = -1;
    if (maxev_o != Py_None) {
        rem = PyLong_AsLongLong(maxev_o);
        if (rem == -1 && PyErr_Occurred())
            return NULL;
    }

    Ctx c;
    memset(&c, 0, sizeof(c));
    c.k = k;
    c.eng = eng;

    PyObject *st = NULL, *net = NULL, *fm = NULL;
    long long executed = 0;
    int failed = 0;
    double t = 0.0;

    st = PyObject_GetAttr(eng, str_st);
    if (st == NULL)
        goto fail;
    net = PyObject_GetAttr(eng, str_net);
    if (net == NULL)
        goto fail;
    c.deliver = PyObject_GetAttr(net, str_deliver);
    if (c.deliver == NULL)
        goto fail;
    c.nic_send = PyObject_GetAttr(eng, str_nic_try_send);
    if (c.nic_send == NULL)
        goto fail;
    fm = PyObject_GetAttr(net, str_fault_manager);
    if (fm == NULL) {
        PyErr_Clear();
        fm = Py_None;
        Py_INCREF(fm);
    }
    if (fm != Py_None) {
        c.fm_divert = PyObject_GetAttr(fm, str_divert_tail);
        if (c.fm_divert == NULL)
            goto fail;
    }

#define X(name)                                                           \
    c.name = PyObject_GetAttrString(st, #name);                           \
    if (c.name == NULL)                                                   \
        goto fail;
    CTX_LISTS(X)
#undef X

    {
        PyObject *v;
#define GETL(dst, name)                                                   \
        v = PyObject_GetAttrString(st, name);                             \
        if (v == NULL)                                                    \
            goto fail;                                                    \
        dst = PyLong_AsLong(v);                                           \
        Py_DECREF(v);                                                     \
        if (dst == -1 && PyErr_Occurred())                                \
            goto fail;
#define GETD(dst, name)                                                   \
        v = PyObject_GetAttrString(st, name);                             \
        if (v == NULL)                                                    \
            goto fail;                                                    \
        dst = PyFloat_AsDouble(v);                                        \
        Py_DECREF(v);                                                     \
        if (dst == -1.0 && PyErr_Occurred())                              \
            goto fail;
        GETL(c.V, "V")
        GETL(c.OQ_CAP, "OQ_CAP")
        GETL(c.NR, "NR")
        GETL(c.NN, "NN")
        GETD(c.SER, "SER")
        GETD(c.LINK, "LINK")
        GETD(c.SWITCH, "SWITCH")
        GETD(c.SL, "SL")
        v = PyObject_GetAttrString(st, "g_pkt_bytes");
        if (v == NULL)
            goto fail;
        c.PKTB = (v == Py_None) ? 0 : PyLong_AsLong(v);
        Py_DECREF(v);
        if (c.PKTB == -1 && PyErr_Occurred())
            goto fail;
#undef GETL
#undef GETD

        v = PyObject_GetAttr(eng, str_now);
        if (v == NULL)
            goto fail;
        t = PyFloat_AsDouble(v);
        Py_DECREF(v);
        if (t == -1.0 && PyErr_Occurred())
            goto fail;
        v = PyObject_GetAttr(eng, str_seq);
        if (v == NULL)
            goto fail;
        c.seq = PyLong_AsLongLong(v);
        Py_DECREF(v);
        if (c.seq == -1 && PyErr_Occurred())
            goto fail;
    }

    if (bind_fastpath(&c, eng, net) < 0)
        goto fail;

    {
        double t_run0 = mono_ns();
        while (k->size) {
            Event *top = &k->heap[0];
            if (top->t > cap || rem == 0)
                break;
            Event ev = heap_pop_ev(k);
            t = ev.t;
            rem -= 1;
            executed += 1;
            k->op_counts[ev.op] += 1;
            if ((executed & 0x3FFF) == 0 && PyErr_CheckSignals() < 0) {
                failed = 1;
                break;
            }
            int rc;
            switch (ev.op) {
            case OP_RECV:
                rc = do_recv(&c, t, ev.seq, ev.a, ev.b, ev.c);
                break;
            case OP_ENTER:
                rc = do_enter(&c, t, ev.seq, ev.a, ev.b, ev.c);
                break;
            case OP_PWAKE:
                rc = do_pwake(&c, t, ev.seq, ev.a);
                break;
            case OP_DELIVER:
                rc = do_deliver(&c, t, ev.seq, ev.c);
                break;
            case OP_NWAKE:
                rc = do_nwake(&c, t, ev.seq, ev.a);
                break;
            case OP_GEN:
                rc = do_gen(&c, t, ev.seq, ev.a);
                break;
            case OP_CALL:
                rc = do_call(&c, t, ev.seq, ev.fn, ev.args);
                Py_DECREF(ev.fn);
                Py_DECREF(ev.args);
                break;
            default:
                PyErr_Format(PyExc_RuntimeError,
                             "kernel: unknown opcode %d", ev.op);
                rc = -1;
                break;
            }
            if (rc < 0) {
                failed = 1;
                break;
            }
        }
        k->run_ns += mono_ns() - t_run0;
        k->runs += 1;
    }

    goto sync;

fail:
    failed = 1;

sync:
    /* Mirror the Python loop's ``finally``: write back clock, sequence
     * counter and the executed-event total even on error. */
    {
        PyObject *exc_type = NULL, *exc_val = NULL, *exc_tb = NULL;
        if (failed)
            PyErr_Fetch(&exc_type, &exc_val, &exc_tb);
        /* Drain the fast-path accumulators and end residency first so
         * the StatsCollector, routing RNGs and Network._pid are
         * coherent even when the run is aborting on an exception. */
        if (c.stats_dirty && stats_flush(&c) < 0)
            failed = 1;
        if (kernel_export_resident(k) < 0)
            failed = 1;
        PyObject *v = PyFloat_FromDouble(t);
        if (v != NULL) {
            if (PyObject_SetAttr(eng, str_now, v) < 0)
                failed = 1;
            Py_DECREF(v);
        } else {
            failed = 1;
        }
        v = PyLong_FromLongLong(c.seq);
        if (v != NULL) {
            if (PyObject_SetAttr(eng, str_seq, v) < 0)
                failed = 1;
            Py_DECREF(v);
        } else {
            failed = 1;
        }
        PyObject *ee = PyObject_GetAttr(eng, str_events_executed);
        if (ee != NULL) {
            long long e0 = PyLong_AsLongLong(ee);
            Py_DECREF(ee);
            if (!(e0 == -1 && PyErr_Occurred())) {
                v = PyLong_FromLongLong(e0 + executed);
                if (v != NULL) {
                    if (PyObject_SetAttr(eng, str_events_executed, v) < 0)
                        failed = 1;
                    Py_DECREF(v);
                } else {
                    failed = 1;
                }
            } else {
                failed = 1;
            }
        } else {
            failed = 1;
        }
        if (exc_type != NULL)
            PyErr_Restore(exc_type, exc_val, exc_tb);
        else if (failed && !PyErr_Occurred())
            PyErr_SetString(PyExc_RuntimeError,
                            "kernel: engine sync failed after run");
    }

#define X(name) Py_XDECREF(c.name);
    CTX_LISTS(X)
#undef X
    Py_XDECREF(c.deliver);
    Py_XDECREF(c.nic_send);
    Py_XDECREF(c.fm_divert);
    Py_XDECREF(c.packet_cls);
    Py_XDECREF(c.eject_ports);
    Py_XDECREF(c.min_rows);
    Py_XDECREF(c.leg_rows);
    Py_XDECREF(c.composed);
    Py_XDECREF(c.selfs);
    Py_XDECREF(c.minimal_fill);
    Py_XDECREF(c.leg_fill);
    Py_XDECREF(c.compose);
    Py_XDECREF(c.compose_or_none);
    Py_XDECREF(c.self_route);
    Py_XDECREF(c.pool);
    Py_XDECREF(c.stats_absorb);
    Py_XDECREF(c.a_kinds);
    PyMem_Free(c.a_lat);
    PyMem_Free(c.a_ejcnt);
    Py_XDECREF(fm);
    Py_XDECREF(net);
    Py_XDECREF(st);

    if (failed)
        return NULL;
    return PyLong_FromLongLong(executed);
}

static PyObject *
Kernel_resident(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    return PyBool_FromLong(k->resident);
}

/* Export the C-resident routing RNG states and packet-id counter to
 * their Python owners without ending residency: called by the engine's
 * ``_nic_try_send`` wrapper before a mid-run Python send so the
 * interpreter-side draws continue the shared streams. */
static PyObject *
Kernel_handoff_out(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    if (!k->resident)
        Py_RETURN_NONE;
    for (int i = 0; i < k->rng_n; i++) {
        if (crng_export(&k->rng[i]) < 0)
            return NULL;
    }
    PyObject *v = PyLong_FromLongLong(k->pid);
    if (v == NULL)
        return NULL;
    if (PyObject_SetAttr(k->net, str_pid, v) < 0) {
        Py_DECREF(v);
        return NULL;
    }
    Py_DECREF(v);
    Py_RETURN_NONE;
}

/* Inverse of handoff_out: re-import whatever the Python side consumed
 * or advanced while it held the streams. */
static PyObject *
Kernel_handoff_in(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    if (!k->resident)
        Py_RETURN_NONE;
    for (int i = 0; i < k->rng_n; i++) {
        if (crng_import(&k->rng[i]) < 0)
            return NULL;
    }
    PyObject *v = PyObject_GetAttr(k->net, str_pid);
    if (v == NULL)
        return NULL;
    long long pid = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (pid == -1 && PyErr_Occurred())
        return NULL;
    k->pid = pid;
    Py_RETURN_NONE;
}

static void
kernel_drop_events(Kernel *k)
{
    for (Py_ssize_t i = 0; i < k->size; i++) {
        Py_XDECREF(k->heap[i].fn);
        Py_XDECREF(k->heap[i].args);
    }
    k->size = 0;
}

static PyObject *
Kernel_clear(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    kernel_drop_events(k);
    memset(k->op_counts, 0, sizeof(k->op_counts));
    memset(k->esc_counts, 0, sizeof(k->esc_counts));
    memset(k->esc_ns, 0, sizeof(k->esc_ns));
    memset(k->fast_counts, 0, sizeof(k->fast_counts));
    k->run_ns = 0.0;
    k->runs = 0;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_pending(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(k->size);
}

static PyObject *
Kernel_peek_time(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    if (k->size == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(k->heap[0].t);
}

static PyObject *
Kernel_events(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    /* All queued event records as engine-format tuples, in no
     * particular order (audits; mirrors BatchedEngine.iter_pending). */
    PyObject *out = PyList_New(k->size);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < k->size; i++) {
        Event *ev = &k->heap[i];
        PyObject *rec;
        if (ev->op == OP_CALL)
            rec = Py_BuildValue("(dLiOOl)", ev->t, ev->seq, ev->op,
                                ev->fn, ev->args, (long)0);
        else
            rec = Py_BuildValue("(dLilll)", ev->t, ev->seq, ev->op,
                                ev->a, ev->b, ev->c);
        if (rec == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, rec);
    }
    return out;
}

static PyObject *
Kernel_stats(Kernel *k, PyObject *Py_UNUSED(ignored))
{
    static const char *op_names[OP_COUNT] = {
        "RECV", "ENTER", "PWAKE", "DELIVER", "NWAKE", "GEN", "CALL"};
    static const char *esc_names[ESC_N] = {
        "make_packet", "deliver", "call", "fault_divert", "stats_flush"};
    static const char *fast_names[FAST_N] = {"make_packet", "deliver"};
    PyObject *ops = PyDict_New();
    PyObject *escs = PyDict_New();
    PyObject *fasts = PyDict_New();
    if (ops == NULL || escs == NULL || fasts == NULL)
        goto fail;
    unsigned long long total = 0;
    for (int i = 0; i < OP_COUNT; i++) {
        total += k->op_counts[i];
        PyObject *v = PyLong_FromUnsignedLongLong(k->op_counts[i]);
        if (v == NULL || PyDict_SetItemString(ops, op_names[i], v) < 0) {
            Py_XDECREF(v);
            goto fail;
        }
        Py_DECREF(v);
    }
    double esc_total_ns = 0.0;
    for (int i = 0; i < ESC_N; i++) {
        esc_total_ns += k->esc_ns[i];
        PyObject *e = Py_BuildValue("{s:K,s:d}", "count", k->esc_counts[i],
                                    "ns", k->esc_ns[i]);
        if (e == NULL || PyDict_SetItemString(escs, esc_names[i], e) < 0) {
            Py_XDECREF(e);
            goto fail;
        }
        Py_DECREF(e);
    }
    for (int i = 0; i < FAST_N; i++) {
        PyObject *e = Py_BuildValue("{s:K}", "count", k->fast_counts[i]);
        if (e == NULL || PyDict_SetItemString(fasts, fast_names[i], e) < 0) {
            Py_XDECREF(e);
            goto fail;
        }
        Py_DECREF(e);
    }
    {
        PyObject *out = Py_BuildValue(
            "{s:K,s:N,s:N,s:N,s:d,s:d,s:K}",
            "events", total,
            "op_counts", ops,
            "escapes", escs,
            "fast_path", fasts,
            "run_ns", k->run_ns,
            "escape_ns", esc_total_ns,
            "runs", k->runs);
        return out; /* ops/escs/fasts references stolen by N */
    }
fail:
    Py_XDECREF(ops);
    Py_XDECREF(escs);
    Py_XDECREF(fasts);
    return NULL;
}

/* -- type plumbing -------------------------------------------------------- */

static int
Kernel_traverse(Kernel *k, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < k->size; i++) {
        Py_VISIT(k->heap[i].fn);
        Py_VISIT(k->heap[i].args);
    }
    for (int i = 0; i < k->rng_n; i++) {
        Py_VISIT(k->rng[i].obj);
        Py_VISIT(k->rng[i].gauss);
    }
    Py_VISIT(k->net);
    return 0;
}

static int
Kernel_tp_clear(Kernel *k)
{
    kernel_drop_events(k);
    return 0;
}

static void
Kernel_dealloc(Kernel *k)
{
    PyObject_GC_UnTrack(k);
    kernel_drop_events(k);
    for (int i = 0; i < k->rng_n; i++)
        crng_drop(&k->rng[i]);
    Py_CLEAR(k->net);
    PyMem_Free(k->heap);
    Py_TYPE(k)->tp_free((PyObject *)k);
}

static PyMethodDef Kernel_methods[] = {
    {"push", (PyCFunction)Kernel_push, METH_VARARGS,
     "push(t, seq, op, a, b, c): queue one event record."},
    {"run", (PyCFunction)Kernel_run, METH_VARARGS,
     "run(engine, until=None, max_events=None) -> executed count."},
    {"clear", (PyCFunction)Kernel_clear, METH_NOARGS,
     "Drop all queued events and reset profile counters."},
    {"pending", (PyCFunction)Kernel_pending, METH_NOARGS,
     "Number of queued events."},
    {"peek_time", (PyCFunction)Kernel_peek_time, METH_NOARGS,
     "Timestamp of the earliest queued event, or None."},
    {"events", (PyCFunction)Kernel_events, METH_NOARGS,
     "All queued event records as tuples (audits)."},
    {"stats", (PyCFunction)Kernel_stats, METH_NOARGS,
     "In-kernel event counts and Python-escape time split."},
    {"resident", (PyCFunction)Kernel_resident, METH_NOARGS,
     "True while routing RNG / packet-id state lives in the kernel."},
    {"handoff_out", (PyCFunction)Kernel_handoff_out, METH_NOARGS,
     "Sync resident RNG streams + Network._pid out to Python."},
    {"handoff_in", (PyCFunction)Kernel_handoff_in, METH_NOARGS,
     "Re-import RNG streams + Network._pid after a Python send."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject KernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim.vec._kernel.Kernel",
    .tp_basicsize = sizeof(Kernel),
    .tp_dealloc = (destructor)Kernel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled event heap + dispatch core for the batched backend.",
    .tp_traverse = (traverseproc)Kernel_traverse,
    .tp_clear = (inquiry)Kernel_tp_clear,
    .tp_methods = Kernel_methods,
    .tp_new = PyType_GenericNew,
};

/* Test hook (tests/test_kernel_rng_parity.py): import the state of a
 * random.Random, perform a scripted sequence of draws with the C
 * generator, export the advanced state back, and return the drawn
 * values.  Exercises exactly the import -> draw -> export path the
 * fast path uses, so draw-for-draw equality here is the parity proof. */
static PyObject *
mod_rng_parity(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *rng_obj, *ops;
    if (!PyArg_ParseTuple(args, "OO", &rng_obj, &ops))
        return NULL;
    CRng r;
    memset(&r, 0, sizeof(r));
    r.obj = rng_obj;
    Py_INCREF(r.obj);
    if (crng_import(&r) < 0) {
        crng_drop(&r);
        return NULL;
    }
    PyObject *out = PyList_New(0);
    PyObject *seq = out ? PySequence_Fast(ops, "ops must be a sequence")
                        : NULL;
    if (seq == NULL)
        goto fail;
    for (Py_ssize_t i = 0; i < PySequence_Fast_GET_SIZE(seq); i++) {
        PyObject *op = PySequence_Fast_GET_ITEM(seq, i);
        const char *kind;
        long arg;
        if (!PyArg_ParseTuple(op, "sl", &kind, &arg))
            goto fail;
        long val;
        if (strcmp(kind, "randbelow") == 0) {
            val = mt_randbelow(&r, arg);
        } else if (strcmp(kind, "getrandbits") == 0) {
            if (arg < 1 || arg > 32) {
                PyErr_SetString(PyExc_ValueError,
                                "getrandbits arg must be in [1, 32]");
                goto fail;
            }
            val = (long)mt_getrandbits(&r, (int)arg);
        } else {
            PyErr_Format(PyExc_ValueError, "unknown op %s", kind);
            goto fail;
        }
        PyObject *v = PyLong_FromLong(val);
        if (v == NULL)
            goto fail;
        int ar = PyList_Append(out, v);
        Py_DECREF(v);
        if (ar < 0)
            goto fail;
    }
    if (crng_export(&r) < 0)
        goto fail;
    Py_DECREF(seq);
    crng_drop(&r);
    return out;
fail:
    Py_XDECREF(seq);
    Py_XDECREF(out);
    crng_drop(&r);
    return NULL;
}

static PyMethodDef module_methods[] = {
    {"_rng_parity", mod_rng_parity, METH_VARARGS,
     "_rng_parity(rng, ops) -> list of draws; ops are "
     "('randbelow'|'getrandbits', n) pairs. Test-only."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernelmodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_kernel",
    .m_doc = "Compiled event kernel for the batched simulator backend.",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    if ((str_now = PyUnicode_InternFromString("now")) == NULL ||
        (str_cs = PyUnicode_InternFromString("_cs")) == NULL ||
        (str_seq = PyUnicode_InternFromString("_seq")) == NULL ||
        (str_events_executed =
             PyUnicode_InternFromString("events_executed")) == NULL ||
        (str_st = PyUnicode_InternFromString("st")) == NULL ||
        (str_net = PyUnicode_InternFromString("net")) == NULL ||
        (str_deliver = PyUnicode_InternFromString("deliver")) == NULL ||
        (str_nic_try_send =
             PyUnicode_InternFromString("_nic_try_send")) == NULL ||
        (str_fault_manager =
             PyUnicode_InternFromString("fault_manager")) == NULL ||
        (str_divert_tail = PyUnicode_InternFromString("divert_tail")) == NULL ||
        (str_fp = PyUnicode_InternFromString("_fp")) == NULL ||
        (str_pid = PyUnicode_InternFromString("_pid")) == NULL ||
        (str_tracer = PyUnicode_InternFromString("tracer")) == NULL ||
        (str_msg_track = PyUnicode_InternFromString("_msg_track")) == NULL ||
        (str_delivery_listeners =
             PyUnicode_InternFromString("_delivery_listeners")) == NULL ||
        (str_routers = PyUnicode_InternFromString("routers")) == NULL ||
        (str_ports = PyUnicode_InternFromString("ports")) == NULL ||
        (str_vcs = PyUnicode_InternFromString("vcs")) == NULL ||
        (str_kind = PyUnicode_InternFromString("kind")) == NULL ||
        (str_send_time = PyUnicode_InternFromString("send_time")) == NULL ||
        (str_eject_time = PyUnicode_InternFromString("eject_time")) == NULL ||
        (str_dst_node = PyUnicode_InternFromString("dst_node")) == NULL ||
        (str_size = PyUnicode_InternFromString("size")) == NULL ||
        (str_gen_time = PyUnicode_InternFromString("gen_time")) == NULL)
        return NULL;

    PyObject *collections = PyImport_ImportModule("collections");
    if (collections == NULL)
        return NULL;
    PyObject *deque = PyObject_GetAttrString(collections, "deque");
    Py_DECREF(collections);
    if (deque == NULL)
        return NULL;
    m_popleft = PyObject_GetAttrString(deque, "popleft");
    m_append = PyObject_GetAttrString(deque, "append");
    m_rotate = PyObject_GetAttrString(deque, "rotate");
    Py_DECREF(deque);
    if (m_popleft == NULL || m_append == NULL || m_rotate == NULL)
        return NULL;

    if (PyType_Ready(&KernelType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&kernelmodule);
    if (m == NULL)
        return NULL;
    Py_INCREF(&KernelType);
    if (PyModule_AddObject(m, "Kernel", (PyObject *)&KernelType) < 0) {
        Py_DECREF(&KernelType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
