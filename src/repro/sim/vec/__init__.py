"""Batched struct-of-arrays simulator backend (``SimConfig.backend``).

The object engine (:mod:`repro.sim.engine` + switch/NIC objects) pays a
Python callback dispatch, an argument tuple and several attribute hops
for *every* event -- about 13 heap events per delivered packet.  This
backend keeps the physics and the event *order* bit-identical while
flattening the simulated state into parallel arrays indexed by flat
``(router, port, vc)`` ids and replacing callback events with typed
integer records dispatched by one loop (:mod:`repro.sim.vec.engine`).

Roughly 40% of the object engine's events (link-free and credit-return
callbacks) exist only to flip one flag or bump one counter; the batched
backend elides them entirely and applies their effects lazily, while
*reserving their sequence numbers* so the surviving events execute in
exactly the object engine's order -- including the shared-RNG draw
order that UGAL/Valiant routing depends on.  The golden conformance
suite (``tests/golden/conformance.json``) is the gate: the backend is
only selectable because it reproduces every committed fingerprint.

The ``"kernel"`` backend (:mod:`repro.sim.vec.kernel`) is this loop
with the event queue and opcode dispatch compiled to C over the same
SoA state, escaping to Python only at the make_packet/deliver/CALL
boundaries; it degrades to ``"batched"`` with one warning when no
compiler is available.

Select with ``SimConfig(backend="batched")`` / ``backend="kernel"`` or
``--backend`` on the CLI; see docs/PERFORMANCE.md ("Choosing a
backend").
"""

from repro.sim.vec.engine import BatchedEngine
from repro.sim.vec.state import BatchedNIC, SoAState

__all__ = ["BatchedEngine", "BatchedNIC", "SoAState"]
