"""Flat typed-event loop for the batched backend.

:class:`BatchedEngine` is drop-in engine-compatible (``schedule``,
``schedule_at``, ``run``, ``now``, ``events_executed``, ``pending``,
``clear``) but dispatches *typed integer events* over the
struct-of-arrays state (:mod:`repro.sim.vec.state`) instead of Python
callbacks over router/NIC objects.  Events are
``(time, seq, op, a, b, c)`` tuples; ``seq`` is the same global
tie-breaker the object engine uses, which makes same-timestamp
execution order deterministic and -- crucially -- *identical* across
backends.

Exactness model
===============

The object engine executes ~13 heap events per delivered packet.  Five
of them (NIC/port link-free, NIC/port credit-return) only flip a flag
or bump a counter and then *maybe* re-attempt a send.  This loop elides
them: busyness is a stored ``(busy_t, busy_seq)`` key compared lazily,
credits are a count plus a deque of in-flight arrival keys drained on
demand.  Two invariants make the elision exact rather than merely
plausible:

1. **Sequence reservation.**  Every ``engine.schedule()`` call the
   object engine would make is mirrored -- in the same order inside
   each handler -- by incrementing the sequence counter, whether or not
   an event record is queued.  An elided event's reserved
   ``(time, seq)`` key is stored with the lazy state it represents.

2. **Reserved-key wake-ups.**  When an elided event *would* have done
   real work (the link-free retry that finds a queued packet, the
   credit arrival that unblocks a stalled VC), a wake event is pushed
   *at the reserved key*, so it executes exactly where the object
   engine's callback would have.  Wake rules are conservative: a
   spurious wake re-checks state and no-ops, exactly like the object
   handlers it replaces (``try_send``/``_try_transmit`` on a busy or
   credit-less port), so duplicates cannot change behaviour.

Because every surviving event carries the key it would have had in the
object engine, the global event order -- and with it the shared routing
RNG draw order, every float addition producing a timestamp, and every
round-robin/FIFO arbitration decision -- is reproduced bit-for-bit.
The golden conformance suite asserts exactly that.

The pending-event set is a **bucketed calendar queue**, not a binary
heap.  Simulated traffic is dense in time (tens of events per
nanosecond of simulated time at moderate load), so events are binned by
``int(time / packet_time)`` into append-only future buckets; a bucket
is sorted once -- by the identical ``(time, seq)`` key a heap would
order on -- when the clock enters it.  Appending is O(1) against
``heappush``'s O(log n) sift, and draining a sorted bucket is an index
walk against ``heappop``'s O(log n) re-sift, which is where the object
engine's queue spends most of its time.  The rare push *into* the
current bucket (a wake at an imminent reserved key, a sub-serialization
generator gap) bisects into the sorted remainder, preserving exact
order.

Packet generation for ``run_synthetic`` is pregenerated per node
(:meth:`BatchedEngine.setup_synthetic`): each node's traffic pattern
and inter-arrival draws come from a *private* per-node RNG, so playing
a node's draws forward at setup consumes the identical stream the
object engine draws one event at a time.

Arbitrary callbacks (``schedule(delay, fn, *args)``) remain supported
via a CALL op -- the workload driver's closed-loop completion events
and the warm-up utilization reset use it -- so the drivers in
:mod:`repro.sim.network` and :mod:`repro.workload.driver` run unchanged
on either backend.
"""

from __future__ import annotations

import gc
import random
from bisect import insort
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING

from repro.sim.vec.state import BatchedNIC, SoAState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network

__all__ = ["BatchedEngine"]

# Event opcodes.
_RECV = 0     # a=input gid, b=vc, c=pid   -- packet arrives at an input buffer
_ENTER = 1    # a=port-vc id, b=pid, c=port gid -- packet enters an output queue
_PWAKE = 2    # a=port gid                 -- elided link-free/credit retry
_DELIVER = 3  # c=pid                      -- packet reaches its NIC
_NWAKE = 4    # a=node                     -- elided NIC link-free/credit retry
_GEN = 5      # a=node                     -- pregenerated synthetic injection
_CALL = 6     # a=callable, b=args         -- generic scheduled callback

#: Consecutive empty calendar buckets scanned linearly before jumping
#: straight to the next populated one (sparse tails, e.g. drain runs).
_MISS_LIMIT = 64


class BatchedEngine:
    """Engine-compatible batched event loop (see module docstring)."""

    OP_NWAKE = _NWAKE

    def __init__(self, net: "Network") -> None:
        self.net = net
        self.now: float = 0.0
        self._seq: int = 0
        self._cs: int = 0  # seq of the event currently executing
        self.events_executed: int = 0
        self.st = SoAState.from_network(net)
        self.nic_shims = [BatchedNIC(self, node) for node in range(self.st.NN)]
        # Calendar queue: future buckets (unsorted append-only lists
        # keyed by bucket index) + the current bucket (sorted, drained
        # by index).  One bucket per serialization time.
        self._inv_w: float = 1.0 / self.st.SER
        self._buckets: dict = {}
        self._cur: list = []
        self._idx: int = 0
        self._curb: int = -1
        self._qsize: int = 0

    # -- engine API ----------------------------------------------------------

    def _push(self, t: float, s: int, op: int, a, b, c) -> None:
        """Queue one event record (cold-path sites; the run loop's
        closures inline the same binning)."""
        ev = (t, s, op, a, b, c)
        bi = int(t * self._inv_w)
        if bi > self._curb:
            bl = self._buckets.get(bi)
            if bl is None:
                self._buckets[bi] = [ev]
            else:
                bl.append(ev)
        else:
            # Into the sorted remainder of the current bucket; pushes
            # are never in the past, so lo bounds at the drain index.
            insort(self._cur, ev, self._idx)
        self._qsize += 1

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` *delay* ns after the current time."""
        self._seq += 1
        self._push(self.now + delay, self._seq, _CALL, fn, args, 0)

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute time *when* (>= now)."""
        if when < self.now:
            raise ValueError(
                f"schedule_at(when={when!r}) is in the past (now={self.now!r}); "
                f"events cannot be scheduled before the current simulated time"
            )
        self._seq += 1
        self._push(when, self._seq, _CALL, fn, args, 0)

    def clear(self) -> None:
        """Reset queue, clock and counters (SoA state is per-Network and
        rebuilt with it, so only event-loop state needs clearing)."""
        self.now = 0.0
        self._seq = 0
        self._cs = 0
        self.events_executed = 0
        self._buckets = {}
        self._cur = []
        self._idx = 0
        self._curb = -1
        self._qsize = 0

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return self._qsize

    def iter_pending(self) -> Iterator[tuple]:
        """All queued event records, in no particular order (audits)."""
        for i in range(self._idx, len(self._cur)):
            yield self._cur[i]
        for bl in self._buckets.values():
            yield from bl

    def _next_time(self) -> Optional[float]:
        """Timestamp of the earliest queued event (cold path)."""
        if self._idx < len(self._cur):
            return self._cur[self._idx][0]
        if self._buckets:
            return min(min(bl)[0] for bl in self._buckets.values())
        return None

    # -- synthetic-traffic pregeneration --------------------------------------

    def setup_synthetic(
        self,
        pattern,
        mean_ia: float,
        horizon: float,
        seed: int,
        arrival: str,
        packet_bytes: int,
    ) -> None:
        """Pregenerate every node's injection stream and seed GEN events.

        Exactness: the object engine draws, per node and per event,
        ``pick_destination(node, rng)`` then ``expovariate`` from a
        *private* per-node RNG seeded off one master stream.  Playing
        each node's draws forward here consumes the identical per-node
        stream (patterns are pure functions of ``(node, rng)``), and the
        per-node timestamps accumulate with the same float additions.
        The trailing entry is the object engine's final past-horizon
        generate event (which fires and does nothing); it is kept so
        event and sequence accounting stay aligned.
        """
        st = self.st
        master = random.Random(seed)
        poisson = arrival == "poisson"
        pick = pattern.pick_destination
        g_t = []
        g_d = []
        seq = self._seq
        for node in range(st.NN):
            rng = random.Random(master.getrandbits(64))
            t = rng.uniform(0.0, mean_ia)
            expo = rng.expovariate
            times = []
            dsts = []
            while t < horizon:
                dst = pick(node, rng)
                if dst is None:
                    dst = -1
                elif dst == node:
                    raise ValueError(f"pattern sent node {node} traffic to itself")
                times.append(t)
                dsts.append(dst)
                t = t + (expo(1.0 / mean_ia) if poisson else mean_ia)
            times.append(t)  # past-horizon sentinel event
            dsts.append(-2)
            g_t.append(times)
            g_d.append(dsts)
            seq += 1
            self._push(times[0], seq, _GEN, node, 0, 0)
        self._seq = seq
        st.g_t = g_t
        st.g_d = g_d
        st.g_i = [0] * st.NN
        st.g_pkt_bytes = packet_bytes

    # -- NIC send path ---------------------------------------------------------

    def _nic_try_send(self, node: int, t: float, s: int) -> None:
        """The object NIC's ``try_send`` over SoA state.

        Callers guarantee the NIC is idle at ``(t, s)``.  Credits drain
        lazily from the pending-arrival deque; a credit stall pushes a
        wake at the earliest in-flight arrival key (the elided
        ``credit_return`` event that resumes the object NIC).

        The kernel backend ports this method line-for-line to C for
        its route fast path (``fast_nic_send`` in ``_kernel.c``) and
        wraps it with an RNG/packet-id state handoff for mid-run
        Python sends (``KernelEngine._nic_try_send``); behavioural
        changes here must be mirrored there.
        """
        st = self.st
        c = st.n_cred[node]
        arr = st.n_arr[node]
        if c <= 0 and arr:
            k = (t, s)
            while arr and arr[0] <= k:
                arr.popleft()
                c += 1
            st.n_cred[node] = c
        q = st.n_q[node]
        if c <= 0:
            if q or st.n_src[node] is not None:
                st.n_stalls[node] += 1
                if arr:
                    at, aseq = arr[0]
                    self._push(at, aseq, _NWAKE, node, 0, 0)
            return
        if q:
            dst_node, size, msg_id, gen_time = q.popleft()
            st.n_qp[node] -= 1
        else:
            src = st.n_src[node]
            if src is None:
                return
            try:
                dst_node, size, msg_id = next(src)
            except StopIteration:
                st.n_src[node] = None
                return
            gen_time = t
        net = self.net
        pkt = net.make_packet(node, dst_node, size, msg_id, gen_time)
        pkt.send_time = t
        net.stats.record_inject(pkt)
        st.k_ports.append(pkt.ports)
        st.k_vcs.append(pkt.vcs + (0,))  # padded: hop h reads [h] unconditionally
        st.k_hop.append(0)
        st.k_obj.append(pkt)
        st.n_cred[node] = c - 1
        seq = self._seq + 1  # reserved: the elided NIC link-free event
        bt = t + st.SER
        st.n_busy_t[node] = bt
        st.n_busy_s[node] = seq
        seq += 1
        self._seq = seq
        self._push(t + st.SL, seq, _RECV, st.n_in[node], 0, pkt.pid)
        if q or st.n_src[node] is not None:
            # Work already waiting: the link-free retry would send, so
            # wake at its reserved key.
            self._push(bt, st.n_busy_s[node], _NWAKE, node, 0, 0)
            st.n_wake[node] = True
        else:
            st.n_wake[node] = False

    # -- cold-path transfer mirrors (fault handling) ---------------------------
    #
    # Exact method-form mirrors of the run loop's admit_pending /
    # try_transfer / transfer_one closures, for use from inside a CALL
    # escape (the fault manager's fail-time drain).  During an escape
    # self._seq/_qsize/_idx/_cur/_curb are synchronised, so these
    # consume sequence numbers and push events exactly as the closures
    # would -- keeping cross-backend event order identical.

    def _transfer_one_cold(self, in_gid: int, vc: int, gid: int, pid: int,
                           t: float, s: int) -> None:
        st = self.st
        V = st.V
        upp = st.in_up_port[in_gid]
        if upp >= 0:
            self._seq += 1
            at = t + st.LINK
            upv = upp * V + vc
            st.pv_arr[upv].append((at, self._seq))
            if st.pv_cred[upv] == 0 and st.pv_oq[upv]:
                bt = st.p_busy_t[upp]
                if not (t < bt or (t == bt and s < st.p_busy_s[upp])):
                    self._push(at, self._seq, _PWAKE, upp, 0, 0)
        else:
            upn = st.in_up_node[in_gid]
            if upn >= 0:
                self._seq += 1
                at = t + st.LINK
                st.n_arr[upn].append((at, self._seq))
                if st.n_cred[upn] == 0 and (
                    st.n_q[upn] or st.n_src[upn] is not None
                ):
                    self._push(at, self._seq, _NWAKE, upn, 0, 0)
        self._seq += 1
        pv = gid * V + st.k_vcs[pid][st.k_hop[pid]]
        self._push(t + st.SWITCH, self._seq, _ENTER, pv, pid, gid)

    def _try_transfer_cold(self, in_gid: int, vc: int, t: float, s: int) -> None:
        st = self.st
        V = st.V
        q = st.iv_q[in_gid * V + vc]
        base = st.in_pbase[in_gid]
        k_ports = st.k_ports
        k_vcs = st.k_vcs
        k_hop = st.k_hop
        while q:
            pid = q[0]
            gid = base + k_ports[pid][k_hop[pid]]
            ovc = k_vcs[pid][k_hop[pid]]
            pv = gid * V + ovc
            if st.pv_occ[pv] >= st.OQ_CAP:
                st.p_pend[gid].append((in_gid, vc))
                return
            st.pv_occ[pv] += 1
            q.popleft()
            self._transfer_one_cold(in_gid, vc, gid, pid, t, s)

    def _admit_pending_cold(self, gid: int, freed_vc: int, t: float, s: int) -> None:
        st = self.st
        V = st.V
        pending = st.p_pend[gid]
        iv_q = st.iv_q
        k_vcs = st.k_vcs
        k_hop = st.k_hop
        i = 0
        for in_gid, vc in pending:
            pid = iv_q[in_gid * V + vc][0]
            if k_vcs[pid][k_hop[pid]] == freed_vc:
                if i:
                    pending.rotate(-i)
                pending.popleft()
                self._try_transfer_cold(in_gid, vc, t, s)
                return
            i += 1

    # -- the event loop --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Execute events in ``(time, seq)`` order; same contract as
        :meth:`repro.sim.engine.Engine.run`.

        The loop hoists every array into a local and defines the
        transfer/transmit/arbitrate helpers as closures over shared
        ``seq``/queue cells, so the hot path touches no ``self``
        attributes.  Instance state is synchronised around every escape
        into Python callbacks (deliveries, CALL events, NIC sends that
        run routing), which may re-enter ``schedule``/``submit``.
        """
        st = self.st
        net = self.net
        seq = self._seq

        V = st.V
        OQ_CAP = st.OQ_CAP
        SER = st.SER
        LINK = st.LINK
        SWITCH = st.SWITCH
        SL = st.SL
        in_pbase = st.in_pbase
        in_up_port = st.in_up_port
        in_up_node = st.in_up_node
        p_busy_t = st.p_busy_t
        p_busy_s = st.p_busy_s
        p_wake = st.p_wake
        p_queued = st.p_queued
        p_rr = st.p_rr
        p_sent = st.p_sent
        p_oqtot = st.p_oqtot
        p_pend = st.p_pend
        p_dest_in = st.p_dest_in
        p_has_cred = st.p_has_cred
        p_dead = st.p_dead
        fault_mgr = getattr(net, "fault_manager", None)
        fm_divert = fault_mgr.divert_tail if fault_mgr is not None else None
        pv_oq = st.pv_oq
        pv_occ = st.pv_occ
        pv_cred = st.pv_cred
        pv_arr = st.pv_arr
        iv_q = st.iv_q
        n_q = st.n_q
        n_src = st.n_src
        n_cred = st.n_cred
        n_arr = st.n_arr
        n_busy_t = st.n_busy_t
        n_busy_s = st.n_busy_s
        n_wake = st.n_wake
        n_qp = st.n_qp
        k_ports = st.k_ports
        k_vcs = st.k_vcs
        k_hop = st.k_hop
        k_obj = st.k_obj
        g_t = st.g_t
        g_d = st.g_d
        g_i = st.g_i
        PKTB = st.g_pkt_bytes
        net_deliver = net.deliver
        nic_send = self._nic_try_send

        # Calendar-queue cells, shared with the push closure below.
        inv_w = self._inv_w
        buckets = self._buckets
        buckets_get = buckets.get
        buckets_pop = buckets.pop
        cur = self._cur
        idx = self._idx
        curb = self._curb
        qsize = self._qsize

        def push(ev) -> None:
            # The calendar insert; hot enough to matter, called with a
            # prebuilt record.  Never in the past (see _push).
            nonlocal qsize
            bi = int(ev[0] * inv_w)
            if bi > curb:
                bl = buckets_get(bi)
                if bl is None:
                    buckets[bi] = [ev]
                else:
                    bl.append(ev)
            else:
                insort(cur, ev, idx)
            qsize += 1

        def try_transmit(gid: int, t: float, s: int) -> None:
            # The object Router._try_transmit; callers guarantee the
            # port is idle at (t, s).  One packet per invocation.
            nonlocal seq
            vc = p_rr[gid]
            base = gid * V
            has_cred = p_has_cred[gid]
            best_at = None
            for _ in range(V):
                if vc >= V:
                    vc -= V
                pv = base + vc
                oq = pv_oq[pv]
                if not oq:
                    vc += 1
                    continue
                if has_cred:
                    cr = pv_cred[pv]
                    if cr <= 0:
                        arr = pv_arr[pv]
                        if arr:
                            k = (t, s)
                            while arr and arr[0] <= k:
                                arr.popleft()
                                cr += 1
                            pv_cred[pv] = cr
                        if cr <= 0:
                            # Blocked on credits: remember the earliest
                            # in-flight arrival as a wake candidate.
                            if arr:
                                a0 = arr[0]
                                if best_at is None or a0 < best_at:
                                    best_at = a0
                            vc += 1
                            continue
                    pv_cred[pv] = cr - 1
                pid = oq.popleft()
                p_oqtot[gid] -= 1
                pv_occ[pv] -= 1
                p_queued[gid] -= 1
                p_sent[gid] += 1
                nvc = vc + 1
                p_rr[gid] = nvc if nvc < V else 0
                seq += 1  # reserved: the elided port link-free event
                bt = t + SER
                bs = seq
                p_busy_t[gid] = bt
                p_busy_s[gid] = bs
                seq += 1
                din = p_dest_in[gid]
                if din < 0:
                    push((t + SL, seq, _DELIVER, 0, 0, pid))
                else:
                    k_hop[pid] += 1
                    push((t + SL, seq, _RECV, din, vc, pid))
                if p_oqtot[gid] > 0:
                    # More output-queue work: the link-free retry would
                    # transmit, so wake at its reserved key.
                    push((bt, bs, _PWAKE, gid, 0, 0))
                    p_wake[gid] = True
                else:
                    p_wake[gid] = False
                admit_pending(gid, vc, t, s)
                return
            if best_at is not None:
                # Idle with every queued VC credit-blocked: retry at the
                # first elided credit arrival.
                push((best_at[0], best_at[1], _PWAKE, gid, 0, 0))

        def transfer_one(in_gid: int, vc: int, gid: int, pid: int,
                         t: float, s: int) -> None:
            # One admitted input->output move: the credit upstream (a
            # reserved lazily-drained key) then the switch traversal.
            nonlocal seq
            upp = in_up_port[in_gid]
            if upp >= 0:
                seq += 1
                at = t + LINK
                upv = upp * V + vc
                pv_arr[upv].append((at, seq))
                if pv_cred[upv] == 0 and pv_oq[upv]:
                    bt = p_busy_t[upp]
                    if not (t < bt or (t == bt and s < p_busy_s[upp])):
                        # Idle upstream port blocked on this credit:
                        # its credit_return would transmit.
                        push((at, seq, _PWAKE, upp, 0, 0))
            else:
                upn = in_up_node[in_gid]
                if upn >= 0:
                    seq += 1
                    at = t + LINK
                    n_arr[upn].append((at, seq))
                    if n_cred[upn] == 0 and (n_q[upn] or n_src[upn] is not None):
                        push((at, seq, _NWAKE, upn, 0, 0))
            seq += 1
            pv = gid * V + k_vcs[pid][k_hop[pid]]
            push((t + SWITCH, seq, _ENTER, pv, pid, gid))

        def try_transfer(in_gid: int, vc: int, t: float, s: int) -> None:
            # The object Router._try_transfer: drain an input VC queue
            # into output queues while space lasts.
            q = iv_q[in_gid * V + vc]
            base = in_pbase[in_gid]
            while q:
                pid = q[0]
                gid = base + k_ports[pid][k_hop[pid]]
                ovc = k_vcs[pid][k_hop[pid]]
                pv = gid * V + ovc
                if pv_occ[pv] >= OQ_CAP:
                    p_pend[gid].append((in_gid, vc))
                    return
                pv_occ[pv] += 1
                q.popleft()
                transfer_one(in_gid, vc, gid, pid, t, s)

        def admit_pending(gid: int, freed_vc: int, t: float, s: int) -> None:
            # Single-pass scan with the object version's exact rotate
            # semantics (skipped entries move to the back on a match).
            pending = p_pend[gid]
            i = 0
            for in_gid, vc in pending:
                pid = iv_q[in_gid * V + vc][0]
                if k_vcs[pid][k_hop[pid]] == freed_vc:
                    if i:
                        pending.rotate(-i)
                    pending.popleft()
                    try_transfer(in_gid, vc, t, s)
                    return
                i += 1

        cap = until if until is not None else float("inf")
        rem = max_events if max_events is not None else -1
        executed = 0
        t = self.now
        # The loop allocates heavily (event records, credit-arrival
        # keys) but never creates reference cycles, so the cyclic GC
        # only burns time tracing the large young containers.  Disable
        # it for the duration; callbacks that do create cycles get them
        # collected after re-enable.
        gc_was = gc.isenabled()
        if gc_was:
            gc.disable()
        try:
            while qsize:
                while idx >= len(cur):
                    # Advance the calendar to the next populated bucket
                    # and sort it -- the only ordering work in the loop.
                    curb += 1
                    nxt = buckets_pop(curb, None)
                    if nxt is None:
                        if len(buckets) == 0:
                            raise RuntimeError(
                                "batched engine queue accounting broken: "
                                f"{qsize} events pending but no buckets"
                            )
                        if curb % _MISS_LIMIT == 0:
                            curb = min(buckets) - 1
                        continue
                    nxt.sort()
                    cur = nxt
                    idx = 0
                    self._cur = nxt
                    self._curb = curb
                ev = cur[idx]
                nt = ev[0]
                if nt > cap or rem == 0:
                    break
                t = nt
                rem -= 1
                idx += 1
                qsize -= 1
                executed += 1
                s = ev[1]
                op = ev[2]
                a = ev[3]
                if op == _RECV:
                    c = ev[5]
                    hop = k_hop[c]
                    gid = in_pbase[a] + k_ports[c][hop]
                    p_queued[gid] += 1
                    b = ev[4]
                    q = iv_q[a * V + b]
                    if q:
                        q.append(c)  # behind others: no transfer attempt
                    else:
                        # Head-of-queue fast path (the common case):
                        # attempt the transfer without touching the
                        # deque, falling back to queueing on a full
                        # output VC -- state-identical to append +
                        # _try_transfer on a one-element queue.
                        pv = gid * V + k_vcs[c][hop]
                        if pv_occ[pv] >= OQ_CAP:
                            q.append(c)
                            p_pend[gid].append((a, b))
                        else:
                            pv_occ[pv] += 1
                            transfer_one(a, b, gid, c, t, s)
                elif op == _ENTER:
                    gid = ev[5]
                    if p_dead[gid]:
                        # Failed link: divert (reroute or drop) at this
                        # router, mirroring the object backend's
                        # _enter_oq dead branch (repro.resilience).
                        self.now = t
                        self._cs = s
                        self._seq = seq
                        self._qsize = qsize
                        self._idx = idx
                        res = fm_divert(a, ev[4], gid)
                        seq = self._seq
                        qsize = self._qsize
                        admit_pending(gid, a - gid * V, t, s)
                        if res is None:
                            continue
                        a, gid = res
                    pv_oq[a].append(ev[4])
                    p_oqtot[gid] += 1
                    bt = p_busy_t[gid]
                    if t < bt or (t == bt and s < p_busy_s[gid]):
                        if not p_wake[gid]:
                            push((bt, p_busy_s[gid], _PWAKE, gid, 0, 0))
                            p_wake[gid] = True
                    else:
                        try_transmit(gid, t, s)
                elif op == _GEN:
                    i = g_i[a]
                    g_i[a] = i + 1
                    dst = g_d[a][i]
                    if dst != -2:
                        if dst >= 0:
                            # Inlined NIC.submit(dst, packet_bytes).
                            n_q[a].append((dst, PKTB, None, t))
                            n_qp[a] += 1
                            bt = n_busy_t[a]
                            if t < bt or (t == bt and s < n_busy_s[a]):
                                if not n_wake[a]:
                                    push((bt, n_busy_s[a], _NWAKE, a, 0, 0))
                                    n_wake[a] = True
                            else:
                                self.now = t
                                self._seq = seq
                                self._qsize = qsize
                                self._idx = idx
                                nic_send(a, t, s)
                                seq = self._seq
                                qsize = self._qsize
                        seq += 1
                        push((g_t[a][i + 1], seq, _GEN, a, 0, 0))
                elif op == _PWAKE:
                    bt = p_busy_t[a]
                    if not (t < bt or (t == bt and s < p_busy_s[a])):
                        try_transmit(a, t, s)
                elif op == _DELIVER:
                    self.now = t
                    self._cs = s
                    self._seq = seq
                    self._qsize = qsize
                    self._idx = idx
                    net_deliver(k_obj[ev[5]])
                    seq = self._seq
                    qsize = self._qsize
                elif op == _NWAKE:
                    bt = n_busy_t[a]
                    if not (t < bt or (t == bt and s < n_busy_s[a])):
                        self.now = t
                        self._seq = seq
                        self._qsize = qsize
                        self._idx = idx
                        nic_send(a, t, s)
                        seq = self._seq
                        qsize = self._qsize
                else:  # _CALL
                    self.now = t
                    self._cs = s
                    self._seq = seq
                    self._qsize = qsize
                    self._idx = idx
                    a(*ev[4])
                    seq = self._seq
                    qsize = self._qsize
        finally:
            if gc_was:
                gc.enable()
            self.now = t
            self._seq = seq
            self._qsize = qsize
            self._idx = idx
            self._curb = curb
            self._cur = cur
            self.events_executed += executed
        if until is not None and self.now < until:
            nt = self._next_time()
            if nt is None or nt > until:
                # Advance the clock to the horizon even if the queue ran
                # dry (but not when the event budget cut the run short).
                self.now = until
        return executed
