"""Invariant checking for the batched backend.

The object backend's :class:`~repro.sim.invariants.InvariantChecker`
shadows every router/NIC transition through Checked* subclasses; the
batched backend has no per-transition callbacks to hook, so its checker
works from the two seams both backends share -- packet creation and
delivery -- plus *full-state audits* that reconcile the SoA arrays, the
pending-event heap and the statistics counters against each other.

Checked invariants:

- **Route legality** (at ``make_packet``): route endpoints match the
  packet's source/destination routers, every hop uses an existing
  channel and the topology's port table, the ejection port is the
  destination node's, and VC labels are within budget and legal under
  the routing's VC policy.  Identical rules to the object checker.
- **Latency floor** (at ``deliver``): no packet arrives earlier than
  the zero-load latency of its hop count allows.
- **Conservation** (audits): ``injected - delivered`` equals the
  packets found in input queues, output queues and in-flight heap
  events; the per-port ``queued`` counter behind UGAL-L's congestion
  signal matches a recount; ``oq_occ`` matches queue contents plus
  in-switch packets.
- **Credit loops** (audits): for every channel VC,
  ``credits + pending credit arrivals + downstream buffered + on-link``
  sums to the VC capacity (pending arrivals are the batched engine's
  lazily-drained representation of the object engine's in-flight
  credits); NIC injection loops likewise sum to the port capacity.

Violations raise :class:`~repro.sim.invariants.InvariantViolation` with
a state snapshot.  Audits run every ``AUDIT_PERIOD`` deliveries and at
experiment end (``audit`` / ``verify_quiescent``, the same entry points
the object checker exposes); they walk live state only and schedule no
events, so checking cannot perturb event order -- a checked batched run
produces the same fingerprint as an unchecked one.

On the kernel backend, an attached checker also gates the C fast paths
off (``KernelEngine._fastpath_spec`` requires ``net.checker is None``
because the checker wraps both seams): checked kernel runs take the
per-packet make_packet/deliver escapes, and the goldens pin that both
routes produce identical fingerprints.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.sim.invariants import InvariantViolation
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network

__all__ = ["BatchedChecker"]

#: Deliveries between two full-state audits.
AUDIT_PERIOD = 256

# Opcodes of in-flight packet-carrying events (mirrors vec.engine).
_RECV, _ENTER, _DELIVER = 0, 1, 3


class _DeliveryLog:
    """Minimal stand-in for the object checker's transition history:
    counts observed packet events (the CLI summary reports it)."""

    __slots__ = ("appended",)

    def __init__(self) -> None:
        self.appended = 0


class BatchedChecker:
    """Audit-based invariant checker for ``backend="batched"``."""

    def __init__(self, net: "Network") -> None:
        self.net = net
        self.injected = 0
        self.delivered = 0
        self.audits = 0
        self.history = _DeliveryLog()
        self._since_audit = 0
        self._vc_capacity = net.config.buffer_packets_per_vc(net.num_vcs)
        self._nic_capacity = net.config.buffer_packets_per_port
        self._orig_make_packet = None
        self._orig_deliver = None

    # -- wiring ----------------------------------------------------------------

    def attach(self) -> None:
        """Hook packet creation/delivery; called once the engine is built."""
        net = self.net
        self._orig_make_packet = net.make_packet
        self._orig_deliver = net.deliver
        net.make_packet = self._checked_make_packet
        net.deliver = self._checked_deliver

    def fail(self, rule: str, message: str, **where) -> None:
        raise InvariantViolation(
            rule, message, time_ns=self.net.engine.now,
            snapshot={"backend": "batched"}, **where,
        )

    # -- packet creation -------------------------------------------------------

    def _checked_make_packet(self, src_node, dst_node, size, msg_id, gen_time):
        pkt = self._orig_make_packet(src_node, dst_node, size, msg_id, gen_time)
        st = self.net._vec.st
        if len(st.k_obj) != pkt.pid:
            self.fail("conservation", f"packet SoA holds {len(st.k_obj)} "
                      f"entries at injection of pid {pkt.pid} (arrays and "
                      f"pid allocation desynchronized)", pid=pkt.pid)
        self.validate_route(pkt)
        self.injected += 1
        self.history.appended += 1
        return pkt

    def validate_route(self, pkt: Packet) -> None:
        """Topology, port-table and VC-policy legality of one route
        (the object checker's rules, see its ``validate_route``)."""
        net = self.net
        topo = net.topology
        routers = pkt.routers
        hops = len(routers) - 1
        if routers[0] != topo.router_of(pkt.src_node):
            self.fail("route-legality", f"route starts at router {routers[0]}, "
                      f"but node {pkt.src_node} attaches to "
                      f"{topo.router_of(pkt.src_node)}", pid=pkt.pid)
        if routers[-1] != topo.router_of(pkt.dst_node):
            self.fail("route-legality", f"route ends at router {routers[-1]}, "
                      f"but node {pkt.dst_node} attaches to "
                      f"{topo.router_of(pkt.dst_node)}", pid=pkt.pid)
        if len(pkt.ports) != hops + 1 or len(pkt.vcs) != hops:
            self.fail("route-legality",
                      f"route of {hops} hops carries {len(pkt.ports)} ports "
                      f"and {len(pkt.vcs)} VC labels", pid=pkt.pid)
        for i in range(hops):
            u, v = routers[i], routers[i + 1]
            if not topo.is_edge(u, v):
                self.fail("route-legality", f"hop {i} uses non-existent "
                          f"channel ({u}, {v})", router=u, pid=pkt.pid)
            if pkt.ports[i] != topo.port(u, v):
                self.fail("route-legality", f"hop {i} ({u}->{v}) uses port "
                          f"{pkt.ports[i]}, expected {topo.port(u, v)}",
                          router=u, port=pkt.ports[i], pid=pkt.pid)
        if pkt.ports[-1] != net._eject_ports[pkt.dst_node]:
            self.fail("route-legality", f"ejection port {pkt.ports[-1]} is "
                      f"not node {pkt.dst_node}'s port "
                      f"{net._eject_ports[pkt.dst_node]}",
                      router=routers[-1], pid=pkt.pid)
        num_vcs = net.num_vcs
        for h, vc in enumerate(pkt.vcs):
            if not (0 <= vc < num_vcs):
                self.fail("vc-legality", f"hop {h} uses VC {vc}, outside the "
                          f"provisioned 0..{num_vcs - 1}", vc=vc, pid=pkt.pid)
        policy = getattr(net.routing, "vc_policy", None)
        if policy is not None:
            problem = policy.check_legal(pkt.vcs, pkt.kind)
            if problem is not None:
                self.fail("vc-legality", problem, pid=pkt.pid)

    # -- delivery --------------------------------------------------------------

    def _checked_deliver(self, pkt: Packet) -> None:
        now = self.net.engine.now
        floor = self.net.config.zero_load_latency_ns(len(pkt.routers) - 1)
        elapsed = now - pkt.send_time
        if elapsed < floor * (1.0 - 1e-9) - 1e-9:
            self.fail("latency-floor", f"packet {pkt.pid} delivered "
                      f"{elapsed:.3f}ns after transmission, below the "
                      f"{floor:.3f}ns zero-load floor for "
                      f"{len(pkt.routers) - 1} hops (time travel: lost "
                      f"serialization or switch delay)",
                      router=pkt.routers[-1], pid=pkt.pid)
        self.delivered += 1
        self.history.appended += 1
        if self.delivered > self.injected:
            self.fail("conservation", f"delivered {self.delivered} packets "
                      f"but only {self.injected} were injected", pid=pkt.pid)
        self._orig_deliver(pkt)
        self._since_audit += 1
        if self._since_audit >= AUDIT_PERIOD:
            self._since_audit = 0
            self.audit()

    # -- audits ----------------------------------------------------------------

    def audit(self) -> None:
        """Reconcile SoA arrays, the event heap and the stats counters."""
        self.audits += 1
        net = self.net
        eng = net._vec
        st = eng.st
        V = st.V
        if self.injected != net.stats.injected_total:
            self.fail("conservation", f"checker saw {self.injected} "
                      f"injections, StatsCollector recorded "
                      f"{net.stats.injected_total}")
        if self.delivered != net.stats.ejected_total:
            self.fail("conservation", f"checker saw {self.delivered} "
                      f"deliveries, StatsCollector recorded "
                      f"{net.stats.ejected_total}")

        # One pass over the pending event set: packet-carrying events
        # are in-flight packets; RECV events are additionally the
        # on-link population of their target input (credit-loop term).
        heap_pkts = 0
        enter_by_pv = {}
        enter_by_gid = {}
        recv_by_iv = {}
        for ev in eng.iter_pending():
            op = ev[2]
            if op == _RECV:
                heap_pkts += 1
                key = ev[3] * V + ev[4]
                recv_by_iv[key] = recv_by_iv.get(key, 0) + 1
            elif op == _ENTER:
                heap_pkts += 1
                enter_by_pv[ev[3]] = enter_by_pv.get(ev[3], 0) + 1
                enter_by_gid[ev[5]] = enter_by_gid.get(ev[5], 0) + 1
            elif op == _DELIVER:
                heap_pkts += 1

        buffered = sum(len(q) for q in st.iv_q)
        queued = sum(len(q) for q in st.pv_oq)
        in_flight = heap_pkts + buffered + queued
        fm = net.fault_manager
        dropped = fm.dropped if fm is not None else 0
        if self.injected != self.delivered + in_flight + dropped:
            self.fail("conservation", f"injected {self.injected} != "
                      f"delivered {self.delivered} + in-flight {in_flight} "
                      f"+ dropped {dropped} (on-link/in-switch {heap_pkts}, "
                      f"input-buffered {buffered}, output-queued {queued})")

        # Per-port occupancy counters vs. a recount.
        for gid in range(st.NP):
            base = gid * V
            occ_total = 0
            for vc in range(V):
                pv = base + vc
                expect = len(st.pv_oq[pv]) + enter_by_pv.get(pv, 0)
                if st.pv_occ[pv] != expect:
                    self.fail("conservation", f"oq_occ[{vc}] is "
                              f"{st.pv_occ[pv]}, recount holds {expect} "
                              f"packets in/entering that queue",
                              port=gid, vc=vc)
                occ_total += len(st.pv_oq[pv])
            occ_total += enter_by_gid.get(gid, 0)
            # p_queued additionally counts packets still in this
            # router's input buffers that route to this output.
            if st.p_queued[gid] < occ_total:
                self.fail("conservation", f"output `queued` counter "
                          f"{st.p_queued[gid]} is below its own queue "
                          f"population {occ_total} (UGAL congestion "
                          f"signal corrupt)", port=gid)

        # UGAL `queued` recount: every waiting packet charged to the
        # output it will take at its current router.
        queued_recount = [0] * st.NP
        for igid in range(st.NI):
            base_p = st.p_off[st.in_rid[igid]]
            for vc in range(V):
                for pid in st.iv_q[igid * V + vc]:
                    queued_recount[base_p + pid_port(st, pid)] += 1
        for gid, cnt in enter_by_gid.items():
            queued_recount[gid] += cnt
        for pv, q in enumerate(st.pv_oq):
            queued_recount[pv // V] += len(q)
        for gid in range(st.NP):
            if st.p_queued[gid] != queued_recount[gid]:
                self.fail("conservation", f"output `queued` counter is "
                          f"{st.p_queued[gid]}, recount holds "
                          f"{queued_recount[gid]} packets bound for it "
                          f"(UGAL congestion signal corrupt)", port=gid)

        # Credit loops: materialised credits + undrained arrivals +
        # downstream buffered + on-link == capacity, per channel VC.
        for gid in range(st.NP):
            if not st.p_has_cred[gid]:
                continue
            din = st.p_dest_in[gid]
            for vc in range(V):
                pv = gid * V + vc
                div = din * V + vc
                total = (st.pv_cred[pv] + len(st.pv_arr[pv])
                         + len(st.iv_q[div]) + recv_by_iv.get(div, 0))
                if total != self._vc_capacity:
                    self.fail("credit-loop", f"channel credit loop does not "
                              f"sum to capacity: credits {st.pv_cred[pv]} + "
                              f"in-flight {len(st.pv_arr[pv])} + buffered "
                              f"{len(st.iv_q[div])} + on-link "
                              f"{recv_by_iv.get(div, 0)} = {total}, "
                              f"expected {self._vc_capacity}",
                              port=gid, vc=vc)
        for node in range(st.NN):
            div = st.n_in[node] * V
            total = (st.n_cred[node] + len(st.n_arr[node])
                     + len(st.iv_q[div]) + recv_by_iv.get(div, 0))
            if total != self._nic_capacity:
                self.fail("credit-loop", f"NIC {node} injection loop does "
                          f"not sum to capacity: credits {st.n_cred[node]} "
                          f"+ in-flight {len(st.n_arr[node])} + buffered "
                          f"{len(st.iv_q[div])} + on-link "
                          f"{recv_by_iv.get(div, 0)} = {total}, expected "
                          f"{self._nic_capacity}")

    def verify_quiescent(self) -> None:
        """After a drained run: nothing in flight, every credit home."""
        self.audit()
        st = self.net._vec.st
        fm = self.net.fault_manager
        dropped = fm.dropped if fm is not None else 0
        in_flight = self.injected - self.delivered - dropped
        if in_flight:
            self.fail("conservation", f"{in_flight} packets still in "
                      f"flight after drain")
        for gid in range(st.NP):
            if st.p_pend[gid]:
                self.fail("starvation", f"inputs {list(st.p_pend[gid])} "
                          f"still pending on an idle output", port=gid)
            if not st.p_has_cred[gid]:
                continue
            for vc in range(st.V):
                pv = gid * st.V + vc
                home = st.pv_cred[pv] + len(st.pv_arr[pv])
                if home != self._vc_capacity:
                    self.fail("credit-loop", f"credits {home} not fully "
                              f"restored after drain (capacity "
                              f"{self._vc_capacity})", port=gid, vc=vc)
        for node in range(st.NN):
            home = st.n_cred[node] + len(st.n_arr[node])
            if home != self._nic_capacity:
                self.fail("credit-loop", f"NIC {node} ended with "
                          f"{home}/{self._nic_capacity} credits")


def pid_port(st, pid: int) -> int:
    """Output port index a buffered packet will request next."""
    return st.k_ports[pid][st.k_hop[pid]]
