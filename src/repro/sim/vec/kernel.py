"""Compiled event kernel for the batched backend.

:class:`KernelEngine` subclasses :class:`~repro.sim.vec.engine.BatchedEngine`
and replaces the pending-event calendar plus the CPython dispatch loop
with a C extension (``repro/sim/vec/_kernel.c``): a binary heap of typed
event structs and C opcode handlers over the *same* ``SoAState`` lists
and deques the Python loop uses.  Everything else -- the SoA flattening,
the NIC shims, synthetic pregeneration, the audit-based checker, the
fault manager's cold-path mirrors -- is inherited unchanged, which is
what keeps the kernel bit-identical to the other two backends (the
golden conformance suite asserts it).

Ordering equivalence
====================

The calendar queue and the heap pop in the same global ``(time, seq)``
order: every push the handlers make is strictly after the currently
executing key (sequence numbers only grow, timestamps are now + a
positive latency), so a global-min pop sequence is unique up to ties --
and the only same-key ties are duplicate wake records, which re-check
state and no-op regardless of which copy runs first.

Loading
=======

:func:`load_kernel` first tries a prebuilt ``repro.sim.vec._kernel``
module (``pip install`` with a compiler present), then falls back to
compiling the shipped C source at first use with ``cc -O2`` into a
source-hash-keyed cache directory (``REPRO_KERNEL_CACHE``, default
``~/.cache/repro-kernel``).  Set ``REPRO_NO_KERNEL=1`` to skip both and
force the pure-Python batched engine -- CI uses this to keep the
no-compiler fallback path green.  Any build/load failure is recorded in
:data:`load_error` and surfaces as a single ``RuntimeWarning`` from
:class:`~repro.sim.network.Network`, which then runs the batched
backend instead.
"""

from __future__ import annotations

import gc
import hashlib
import importlib
import importlib.machinery
import importlib.util
import os
import shlex
import subprocess
import sys
import sysconfig
from pathlib import Path
from typing import Iterator, Optional

from repro.sim.vec.engine import BatchedEngine

__all__ = ["KernelEngine", "load_kernel", "load_error"]

_SRC = Path(__file__).with_name("_kernel.c")

#: Why the kernel failed to load (None until an attempt fails).
load_error: Optional[str] = None

_mod = None
_attempted = False


def _jit_build_and_load():
    """Compile the shipped C source into a cached extension and load it."""
    source = _SRC.read_bytes()
    tag = hashlib.sha256(
        source + sys.implementation.cache_tag.encode()
    ).hexdigest()[:16]
    cache = Path(
        os.environ.get("REPRO_KERNEL_CACHE")
        or Path.home() / ".cache" / "repro-kernel"
    )
    ext = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    so = cache / f"_kernel-{tag}{ext}"
    if not so.exists():
        cache.mkdir(parents=True, exist_ok=True)
        cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
        cmd = shlex.split(cc)[:1] + [
            "-O2",
            "-fPIC",
            "-shared",
            f"-I{sysconfig.get_paths()['include']}",
            f"-I{sysconfig.get_paths()['platinclude']}",
        ]
        if sys.platform == "darwin":
            cmd += ["-undefined", "dynamic_lookup"]
        tmp = so.with_name(f".{so.name}.{os.getpid()}.tmp")
        cmd += [str(_SRC), "-o", str(tmp)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            raise RuntimeError(
                f"kernel build failed ({' '.join(cmd[:1])} exited "
                f"{proc.returncode}): {proc.stderr.strip()[-500:]}"
            )
        os.replace(tmp, so)  # atomic: concurrent builders race safely
    name = "repro.sim.vec._kernel"
    loader = importlib.machinery.ExtensionFileLoader(name, str(so))
    spec = importlib.util.spec_from_file_location(name, str(so), loader=loader)
    mod = importlib.util.module_from_spec(spec)
    loader.exec_module(mod)
    return mod


def load_kernel():
    """Return the compiled ``_kernel`` module, or None (see module doc).

    The first failure is cached: one process attempts one build.
    """
    global _mod, _attempted, load_error
    if _attempted:
        return _mod
    _attempted = True
    if os.environ.get("REPRO_NO_KERNEL"):
        load_error = "disabled by REPRO_NO_KERNEL"
        return None
    try:
        try:
            _mod = importlib.import_module("repro.sim.vec._kernel")
        except ImportError:
            _mod = _jit_build_and_load()
    except Exception as exc:  # noqa: BLE001 -- any failure means fallback
        load_error = f"{type(exc).__name__}: {exc}"
        _mod = None
    return _mod


def _reset_for_tests() -> None:
    """Forget a cached load attempt (test hook)."""
    global _mod, _attempted, load_error
    _mod = None
    _attempted = False
    load_error = None


class KernelEngine(BatchedEngine):
    """BatchedEngine with the event queue and dispatch loop in C."""

    backend_name = "kernel"

    def __init__(self, net) -> None:
        super().__init__(net)
        mod = load_kernel()
        if mod is None:
            raise RuntimeError(f"compiled kernel unavailable: {load_error}")
        self._k = mod.Kernel()

    # Cold-path pushes (schedule/schedule_at, _nic_try_send, the fault
    # manager's drain, setup_synthetic) all funnel through _push, so
    # overriding it routes every event into the C heap -- including
    # re-entrant scheduling from inside a Python escape.
    def _push(self, t, s, op, a, b, c) -> None:
        self._k.push(t, s, op, a, b, c)

    def clear(self) -> None:
        super().clear()
        self._k.clear()

    @property
    def pending(self) -> int:
        return self._k.pending()

    def iter_pending(self) -> Iterator[tuple]:
        return iter(self._k.events())

    def _next_time(self) -> Optional[float]:
        return self._k.peek_time()

    def kernel_stats(self) -> dict:
        """In-kernel event counts and the Python-escape time split."""
        return self._k.stats()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        # Same GC fencing as the Python loop: the kernel allocates event
        # keys and credit tuples heavily but never cycles.
        gc_was = gc.isenabled()
        if gc_was:
            gc.disable()
        try:
            executed = self._k.run(self, until, max_events)
        finally:
            if gc_was:
                gc.enable()
        if until is not None and self.now < until:
            nt = self._k.peek_time()
            if nt is None or nt > until:
                # Advance the clock to the horizon even if the queue ran
                # dry (but not when the event budget cut the run short).
                self.now = until
        return executed
