"""Compiled event kernel for the batched backend.

:class:`KernelEngine` subclasses :class:`~repro.sim.vec.engine.BatchedEngine`
and replaces the pending-event calendar plus the CPython dispatch loop
with a C extension (``repro/sim/vec/_kernel.c``): a binary heap of typed
event structs and C opcode handlers over the *same* ``SoAState`` lists
and deques the Python loop uses.  Everything else -- the SoA flattening,
the NIC shims, synthetic pregeneration, the audit-based checker, the
fault manager's cold-path mirrors -- is inherited unchanged, which is
what keeps the kernel bit-identical to the other two backends (the
golden conformance suite asserts it).

Ordering equivalence
====================

The calendar queue and the heap pop in the same global ``(time, seq)``
order: every push the handlers make is strictly after the currently
executing key (sequence numbers only grow, timestamps are now + a
positive latency), so a global-min pop sequence is unique up to ties --
and the only same-key ties are duplicate wake records, which re-check
state and no-op regardless of which copy runs first.

Loading
=======

:func:`load_kernel` first tries a prebuilt ``repro.sim.vec._kernel``
module (``pip install`` with a compiler present), then falls back to
compiling the shipped C source at first use with ``cc -O2`` into a
source-hash-keyed cache directory (``REPRO_KERNEL_CACHE``, default
``~/.cache/repro-kernel``).  Set ``REPRO_NO_KERNEL=1`` to skip both and
force the pure-Python batched engine -- CI uses this to keep the
no-compiler fallback path green.  Any build/load failure is recorded in
:data:`load_error` and surfaces as a single ``RuntimeWarning`` from
:class:`~repro.sim.network.Network`, which then runs the batched
backend instead.
"""

from __future__ import annotations

import gc
import hashlib
import importlib
import importlib.machinery
import importlib.util
import os
import shlex
import subprocess
import sys
import sysconfig
from pathlib import Path
from types import SimpleNamespace
from typing import Iterator, Optional

from repro.routing.minimal import MinimalRouting
from repro.routing.ugal import UGALRouting
from repro.routing.valiant import IndirectRandomRouting
from repro.sim.packet import Packet
from repro.sim.vec.engine import BatchedEngine

__all__ = ["KernelEngine", "load_kernel", "load_error"]

_SRC = Path(__file__).with_name("_kernel.c")

#: Why the kernel failed to load (None until an attempt fails).
load_error: Optional[str] = None

_mod = None
_attempted = False


def _jit_build_and_load():
    """Compile the shipped C source into a cached extension and load it."""
    source = _SRC.read_bytes()
    tag = hashlib.sha256(
        source + sys.implementation.cache_tag.encode()
    ).hexdigest()[:16]
    cache = Path(
        os.environ.get("REPRO_KERNEL_CACHE")
        or Path.home() / ".cache" / "repro-kernel"
    )
    ext = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    so = cache / f"_kernel-{tag}{ext}"
    if not so.exists():
        cache.mkdir(parents=True, exist_ok=True)
        cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
        cmd = shlex.split(cc)[:1] + [
            "-O2",
            "-fPIC",
            "-shared",
            f"-I{sysconfig.get_paths()['include']}",
            f"-I{sysconfig.get_paths()['platinclude']}",
        ]
        if sys.platform == "darwin":
            cmd += ["-undefined", "dynamic_lookup"]
        tmp = so.with_name(f".{so.name}.{os.getpid()}.tmp")
        cmd += [str(_SRC), "-o", str(tmp)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            raise RuntimeError(
                f"kernel build failed ({' '.join(cmd[:1])} exited "
                f"{proc.returncode}): {proc.stderr.strip()[-500:]}"
            )
        os.replace(tmp, so)  # atomic: concurrent builders race safely
    name = "repro.sim.vec._kernel"
    loader = importlib.machinery.ExtensionFileLoader(name, str(so))
    spec = importlib.util.spec_from_file_location(name, str(so), loader=loader)
    mod = importlib.util.module_from_spec(spec)
    loader.exec_module(mod)
    return mod


def load_kernel():
    """Return the compiled ``_kernel`` module, or None (see module doc).

    The first failure is cached: one process attempts one build.
    """
    global _mod, _attempted, load_error
    if _attempted:
        return _mod
    _attempted = True
    if os.environ.get("REPRO_NO_KERNEL"):
        load_error = "disabled by REPRO_NO_KERNEL"
        return None
    try:
        try:
            _mod = importlib.import_module("repro.sim.vec._kernel")
        except ImportError:
            _mod = _jit_build_and_load()
    except Exception as exc:  # noqa: BLE001 -- any failure means fallback
        load_error = f"{type(exc).__name__}: {exc}"
        _mod = None
    return _mod


def _reset_for_tests() -> None:
    """Forget a cached load attempt (test hook)."""
    global _mod, _attempted, load_error
    _mod = None
    _attempted = False
    load_error = None


class KernelEngine(BatchedEngine):
    """BatchedEngine with the event queue and dispatch loop in C."""

    backend_name = "kernel"

    def __init__(self, net) -> None:
        super().__init__(net)
        mod = load_kernel()
        if mod is None:
            raise RuntimeError(f"compiled kernel unavailable: {load_error}")
        self._k = mod.Kernel()
        #: Fast-path spec for the C side (recomputed per run; None = off).
        self._fp = None

    # -- fast-path spec --------------------------------------------------------

    def _fastpath_spec(self):
        """Bindings for the C fast paths, or ``None`` when ineligible.

        Two independently-gated tiers (the C side reads this via
        ``eng._fp`` at run start):

        * ``route_mode >= 0`` moves the entire NIC send -- routing
          candidate selection (with a C replica of the ``random.Random``
          draw stream), ``Packet`` construction and inject accounting --
          behind the C boundary.  Requires compiled routing of a known
          type and no checker (the checker wraps ``net.make_packet``).
        * ``deliver_fast`` accumulates the per-packet eject statistics
          in C arrays, flushed via ``StatsCollector.absorb_kernel``.
          Requires no checker/tracer/listener/message-tracking observer.

        Escapes remain for cold paths only: cache-row misses (BFS refill
        under faults) call back into ``RouteCache``, scheduled CALLs and
        fault diverts run in Python with the RNG/packet-id state handed
        off around them (see ``_nic_try_send``), and unknown routing
        setups keep the full Python escape.  Set
        ``REPRO_KERNEL_NO_FASTPATH=1`` to force escapes everywhere.
        """
        if os.environ.get("REPRO_KERNEL_NO_FASTPATH"):
            return None
        net = self.net
        if net.checker is not None:
            return None
        routing = net.routing
        cache = getattr(routing, "cache", None)
        route_mode = -1
        rngs = []
        if getattr(routing, "compiled", False) and cache is not None:
            # Strict type checks: a subclass could override route(), so
            # only the exact implementations ported to C are eligible.
            rtype = type(routing)
            if rtype is MinimalRouting:
                if routing.selection == "random":
                    route_mode, rngs = 0, [routing._rng]
                else:
                    route_mode = 1
            elif rtype is IndirectRandomRouting:
                route_mode, rngs = 2, [routing._rng]
            elif (
                rtype is UGALRouting
                and routing._local
                and routing._minimal_random
            ):
                route_mode = 3
                rngs = [routing._minimal._rng, routing._indirect._rng]
        deliver_fast = int(
            net.tracer is None
            and not net._delivery_listeners
            and net._msg_track is None
        )
        if route_mode < 0 and not deliver_fast:
            return None
        stats = net.stats
        threshold = getattr(routing, "threshold", None)
        pool = getattr(routing, "_pool", None)
        return SimpleNamespace(
            route_mode=route_mode,
            deliver_fast=deliver_fast,
            stats_absorb=stats.absorb_kernel,
            win_start=stats.window_start,
            win_end=stats.window_end,
            rngs=rngs,
            packet_cls=Packet,
            eject_ports=net._eject_ports,
            min_rows=cache.minimal_rows if cache is not None else None,
            leg_rows=cache.leg_rows if cache is not None else None,
            composed=cache._composed if cache is not None else None,
            selfs=cache._self if cache is not None else None,
            minimal_fill=cache.minimal_fill if cache is not None else None,
            leg_fill=cache.leg_fill if cache is not None else None,
            compose=cache.compose if cache is not None else None,
            compose_or_none=(
                cache.compose_or_none if cache is not None else None
            ),
            self_route=cache.self_route if cache is not None else None,
            pool=pool,
            n_indirect=getattr(routing, "num_indirect", 0),
            sf_mode=int(getattr(routing, "_sf_mode", False)),
            c=float(getattr(routing, "c", 0.0)),
            c_sf=float(getattr(routing, "c_sf", 0.0)),
            thr_cap=(
                threshold * net.queue_capacity()
                if threshold is not None
                else None
            ),
        )

    def _nic_try_send(self, node, t, s) -> None:
        # Mid-run Python sends (BatchedNIC.submit / set_source from
        # inside a CALL escape) draw from the routing RNGs and allocate
        # packet ids while those live in the kernel: hand the state out,
        # run the Python path, and pull it back so the C fast path
        # resumes the identical streams.
        k = self._k
        if k.resident():
            k.handoff_out()
            try:
                super()._nic_try_send(node, t, s)
            finally:
                k.handoff_in()
        else:
            super()._nic_try_send(node, t, s)

    # Cold-path pushes (schedule/schedule_at, _nic_try_send, the fault
    # manager's drain, setup_synthetic) all funnel through _push, so
    # overriding it routes every event into the C heap -- including
    # re-entrant scheduling from inside a Python escape.
    def _push(self, t, s, op, a, b, c) -> None:
        self._k.push(t, s, op, a, b, c)

    def clear(self) -> None:
        super().clear()
        self._k.clear()

    @property
    def pending(self) -> int:
        return self._k.pending()

    def iter_pending(self) -> Iterator[tuple]:
        return iter(self._k.events())

    def _next_time(self) -> Optional[float]:
        return self._k.peek_time()

    def kernel_stats(self) -> dict:
        """In-kernel event counts and the Python-escape time split."""
        return self._k.stats()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        # Same GC fencing as the Python loop: the kernel allocates event
        # keys and credit tuples heavily but never cycles.
        self._fp = self._fastpath_spec()
        gc_was = gc.isenabled()
        if gc_was:
            gc.disable()
        try:
            executed = self._k.run(self, until, max_events)
        finally:
            if gc_was:
                gc.enable()
        if until is not None and self.now < until:
            nt = self._k.peek_time()
            if nt is None or nt > until:
                # Advance the clock to the horizon even if the queue ran
                # dry (but not when the event budget cut the run short).
                self.now = until
        return executed
