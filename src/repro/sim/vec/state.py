"""Struct-of-arrays simulation state for the batched backend.

:class:`SoAState` flattens the object model (routers owning
``OutputPort``/input-queue objects, per-node ``NIC`` objects) into
parallel arrays indexed by dense integer ids:

- **ports** get a global id ``gid`` (``port_offset[router] + out_idx``);
  per-port scalars (busy key, round-robin pointer, UGAL ``queued``
  counter, sent counter, ...) live in one list each;
- **port x VC** state (output-queue deques, occupancy, credits, pending
  credit arrivals) is indexed by ``gid * num_vcs + vc``;
- **inputs** (router input ports, including injection inputs) get a
  global id with per-input-VC packet queues and upstream credit targets;
- **packets** are parallel arrays keyed by pid (route ports/VCs, hop
  cursor, and the :class:`~repro.sim.packet.Packet` object reused by
  stats/delivery so measurement code stays backend-neutral).

Arrays holding counters that the audit path reduces over (occupancy,
credits, sent counts) are plain Python lists in the hot loop --
per-element indexing is what the event loop does, and list indexing
beats numpy scalar indexing several-fold in CPython -- while the
invariant audits view them through numpy for whole-array reductions
(see :mod:`repro.sim.vec.check`).

The state is *built from* an assembled object-mode network, so the
wiring (neighbor ports, credit sinks, ejection ports) has exactly one
source of truth and cannot drift between backends.

Laziness contracts (shared with :mod:`repro.sim.vec.engine`):

- A port/NIC is **busy** at event key ``(t, seq)`` iff
  ``(t, seq) < (busy_t, busy_seq)`` -- the link-free callback the object
  engine would run *at* the busy key is elided, so busyness ends
  exactly at (and including) that reserved key.
- A credit count is ``credits[i]`` **plus** every entry of the pending
  arrival deque with key ``<= (t, seq)``; arrivals are drained on
  demand.  The deque entry *is* the elided credit-return event: its
  reserved ``(time, seq)`` key is allocated when the upstream transfer
  schedules it, keeping global event order exact.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.sim.nic import Descriptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network
    from repro.sim.vec.engine import BatchedEngine

__all__ = ["SoAState", "BatchedNIC", "make_queue_len"]


class SoAState:
    """Flat simulation state; see the module docstring for the layout."""

    __slots__ = (
        # dimensions / physics constants
        "V", "NN", "NR", "NP", "NI", "OQ_CAP", "SER", "LINK", "SWITCH", "SL",
        # router/port geometry
        "p_off", "in_off", "in_rid", "in_pbase", "in_up_port", "in_up_node",
        # per-port state (len NP)
        "p_busy_t", "p_busy_s", "p_wake", "p_queued", "p_rr", "p_sent",
        "p_oqtot", "p_pend", "p_dest_in", "p_eject", "p_has_cred", "p_dead",
        # per port-VC state (len NP*V)
        "pv_oq", "pv_occ", "pv_cred", "pv_arr",
        # per input-VC packet queues (len NI*V)
        "iv_q",
        # NIC state (len NN)
        "n_q", "n_src", "n_cred", "n_arr", "n_busy_t", "n_busy_s",
        "n_wake", "n_stalls", "n_qp", "n_in", "n_rid", "n_cred_cap",
        # packet SoA (index = pid; slot 0 is a placeholder)
        "k_ports", "k_vcs", "k_hop", "k_obj",
        # UGAL congestion row table (flat, stride NR):
        # row_port[r * NR + neighbor] -> port gid
        "row_port",
        # object-mode ports in gid order (for utilization sync/debug)
        "obj_ports",
        # pregenerated synthetic traffic (set by setup_synthetic)
        "g_t", "g_d", "g_i", "g_pkt_bytes",
    )

    @classmethod
    def from_network(cls, net: "Network") -> "SoAState":
        st = cls()
        topo = net.topology
        cfg = net.config
        V = st.V = net.num_vcs
        st.NN = topo.num_nodes
        NR = st.NR = topo.num_routers
        st.SER = cfg.packet_time_ns
        st.LINK = cfg.link_latency_ns
        st.SWITCH = cfg.switch_latency_ns
        st.SL = st.SER + st.LINK
        st.OQ_CAP = cfg.buffer_packets_per_vc(V)
        st.n_cred_cap = cfg.buffer_packets_per_port

        # Port and input id spaces.  Ports and inputs are congruent in
        # this model (every router has degree+p of each), but they are
        # flattened independently so the layout survives asymmetries.
        st.p_off = [0] * NR
        st.in_off = [0] * NR
        np_total = ni_total = 0
        for r, router in enumerate(net.routers):
            st.p_off[r] = np_total
            st.in_off[r] = ni_total
            np_total += len(router.out)
            ni_total += len(router.in_q)
        NP = st.NP = np_total
        NI = st.NI = ni_total

        st.in_rid = [0] * NI
        st.in_up_port = [-1] * NI
        st.in_up_node = [-1] * NI
        st.p_busy_t = [0.0] * NP
        st.p_busy_s = [-1] * NP  # (t, s) < (0.0, -1) is false for any event
        st.p_wake = [False] * NP
        st.p_queued = [0] * NP
        st.p_rr = [0] * NP
        st.p_sent = [0] * NP
        st.p_oqtot = [0] * NP
        st.p_pend = [deque() for _ in range(NP)]
        st.p_dest_in = [-1] * NP
        st.p_eject = [-1] * NP
        st.p_has_cred = [False] * NP
        st.p_dead = [False] * NP  # failed-link markers (repro.resilience)
        st.pv_oq = [deque() for _ in range(NP * V)]
        st.pv_occ = [0] * (NP * V)
        st.pv_cred = [0] * (NP * V)
        st.pv_arr = [deque() for _ in range(NP * V)]
        st.iv_q = [deque() for _ in range(NI * V)]
        st.obj_ports = []

        from repro.sim.nic import NIC
        from repro.sim.switch import _PortCreditSink

        for r, router in enumerate(net.routers):
            base = st.p_off[r]
            for out_idx, port in enumerate(router.out):
                gid = base + out_idx
                st.obj_ports.append(port)
                if port.downstream is None:
                    st.p_eject[gid] = port.eject_node
                else:
                    ds_rid = port.downstream.rid
                    st.p_dest_in[gid] = st.in_off[ds_rid] + port.downstream_in_idx
                if port.credits is not None:
                    st.p_has_cred[gid] = True
                    for vc in range(V):
                        st.pv_cred[gid * V + vc] = port.credits[vc]
            ibase = st.in_off[r]
            for in_idx, upstream in enumerate(router.in_upstream):
                igid = ibase + in_idx
                st.in_rid[igid] = r
                if isinstance(upstream, NIC):
                    st.in_up_node[igid] = upstream.node
                elif isinstance(upstream, _PortCreditSink):
                    st.in_up_port[igid] = (
                        st.p_off[upstream.router.rid] + upstream.port.out_idx
                    )

        # Hot-loop shortcut: input gid -> its router's port-id base.
        st.in_pbase = [st.p_off[st.in_rid[i]] for i in range(NI)]

        NN = st.NN
        st.n_q = [deque() for _ in range(NN)]
        st.n_src: List[Optional[Iterator[Descriptor]]] = [None] * NN
        st.n_cred = [st.n_cred_cap] * NN
        st.n_arr = [deque() for _ in range(NN)]
        st.n_busy_t = [0.0] * NN
        st.n_busy_s = [-1] * NN
        st.n_wake = [False] * NN
        st.n_stalls = [0] * NN
        st.n_qp = [0] * NN
        st.n_in = [0] * NN
        # Node -> router id, for the kernel's in-C route selection
        # (make_packet resolves both endpoints via topology.router_of;
        # the flat list is the array-friendly equivalent).
        st.n_rid = [0] * NN
        for node, nic in enumerate(net.nics):
            st.n_in[node] = st.in_off[nic.router_id] + nic.in_idx
            st.n_rid[node] = nic.router_id

        # Packet SoA; pids are 1-based (Network._pid pre-increments).
        st.k_ports = [()]
        st.k_vcs = [()]
        st.k_hop = [0]
        st.k_obj = [None]

        # Directed-channel row table behind UGAL-L's queue_len: the
        # route cache's flat array export rebased to global port ids
        # (row-major, stride NR -- one multiply-indexed load per probe).
        cache = getattr(net.routing, "cache", None)
        if cache is not None and cache.topology is topo:
            stride, flat = cache.flat_port_row()
        else:  # routing without a shared RouteCache: derive directly
            stride = NR
            flat = [-1] * (NR * NR)
            for r in range(NR):
                base = r * NR
                for out_idx, neighbor in enumerate(topo.neighbors(r)):
                    flat[base + neighbor] = out_idx
        st.row_port = [
            -1 if p < 0 else st.p_off[i // stride] + p
            for i, p in enumerate(flat)
        ]

        st.g_t = st.g_d = st.g_i = None
        st.g_pkt_bytes = 0
        return st

    # -- cold-path views -----------------------------------------------------

    def sync_ports(self) -> None:
        """Write live per-port counters back into the object-mode
        ``OutputPort`` instances, so cold-path readers (utilization
        maps, debugging) see one representation."""
        p_sent = self.p_sent
        p_queued = self.p_queued
        for gid, port in enumerate(self.obj_ports):
            port.sent_packets = p_sent[gid]
            port.queued = p_queued[gid]

    def reset_sent(self) -> None:
        """Zero transmission counters in place (warm-up boundary).

        In-place: the running event loop holds a reference to the list.
        """
        sent = self.p_sent
        for gid in range(len(sent)):
            sent[gid] = 0


def make_queue_len(st: SoAState):
    """A closure implementing the UGAL-L congestion signal over SoA
    state -- bound as ``Network.queue_len`` in batched mode (instance
    attributes shadow class methods, so object mode pays nothing)."""
    p_queued = st.p_queued
    row_port = st.row_port
    stride = st.NR

    def queue_len(router: int, neighbor: int) -> int:
        return p_queued[row_port[router * stride + neighbor]]

    return queue_len


class BatchedNIC:
    """Driver-facing NIC shim over SoA state.

    Implements the object :class:`~repro.sim.nic.NIC`'s driver interface
    (``submit`` / ``set_source`` plus the observability counters) so
    workload drivers, exchanges and tests address NICs identically under
    both backends.  Mutations go straight into the arrays; the busy test
    is the lazy key comparison documented in :mod:`repro.sim.vec.state`.
    """

    __slots__ = ("eng", "node")

    def __init__(self, eng: "BatchedEngine", node: int):
        self.eng = eng
        self.node = node

    def submit(self, dst_node: int, size: int, msg_id: Optional[int] = None) -> None:
        """Queue one packet for transmission (time-driven traffic)."""
        eng = self.eng
        st = eng.st
        node = self.node
        t = eng.now
        s = eng._cs
        st.n_q[node].append((dst_node, size, msg_id, t))
        st.n_qp[node] += 1
        bt = st.n_busy_t[node]
        if t < bt or (t == bt and s < st.n_busy_s[node]):
            if not st.n_wake[node]:
                eng._push(bt, st.n_busy_s[node], eng.OP_NWAKE, node, 0, 0)
                st.n_wake[node] = True
        else:
            eng._nic_try_send(node, t, s)

    def set_source(self, source: Iterator[Descriptor]) -> None:
        """Attach a pull-source of descriptors (finite exchanges)."""
        eng = self.eng
        st = eng.st
        node = self.node
        st.n_src[node] = source
        t = eng.now
        s = eng._cs
        bt = st.n_busy_t[node]
        if t < bt or (t == bt and s < st.n_busy_s[node]):
            if not st.n_wake[node]:
                eng._push(bt, st.n_busy_s[node], eng.OP_NWAKE, node, 0, 0)
                st.n_wake[node] = True
        else:
            eng._nic_try_send(node, t, s)

    # -- observability (mirrors the object NIC's counters) -------------------

    @property
    def queued_packets(self) -> int:
        return self.eng.st.n_qp[self.node]

    @property
    def credit_stalls(self) -> int:
        return self.eng.st.n_stalls[self.node]

    @property
    def credits(self) -> int:
        """Credits materialised so far (pending arrivals not drained)."""
        return self.eng.st.n_cred[self.node]

    @property
    def source(self):
        return self.eng.st.n_src[self.node]
