"""Packet representation.

A packet's route is fully resolved at injection time (source routing):
``routers`` is the router sequence, ``ports`` the output-port index used
at each router (the last entry being the ejection port at the
destination router), ``vcs`` the virtual channel used on each
router-to-router hop.  ``hop`` tracks the position: the packet currently
resides at ``routers[hop]`` (once it has entered the network).
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["Packet"]


class Packet:
    """One simulated packet (the credit/flow-control unit)."""

    __slots__ = (
        "pid",
        "src_node",
        "dst_node",
        "size",
        "routers",
        "ports",
        "vcs",
        "hop",
        "kind",
        "gen_time",
        "send_time",
        "eject_time",
        "msg_id",
    )

    def __init__(
        self,
        pid: int,
        src_node: int,
        dst_node: int,
        size: int,
        routers: Tuple[int, ...],
        ports: Tuple[int, ...],
        vcs: Tuple[int, ...],
        kind: str,
        gen_time: float,
        msg_id: Optional[int] = None,
    ):
        self.pid = pid
        self.src_node = src_node
        self.dst_node = dst_node
        self.size = size
        self.routers = routers
        self.ports = ports
        self.vcs = vcs
        self.hop = 0
        self.kind = kind
        self.gen_time = gen_time
        self.send_time = -1.0
        self.eject_time = -1.0
        self.msg_id = msg_id

    @property
    def num_hops(self) -> int:
        """Router-to-router links on the route."""
        return len(self.routers) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.pid} {self.src_node}->{self.dst_node} "
            f"{self.kind} hop={self.hop}/{self.num_hops}>"
        )
