"""Measurement collection for simulations.

Implements the paper's metrics:

- *throughput*: bytes ejected during the measurement window, normalised
  per node as a fraction of the injection bandwidth (Sec. 4.3);
- *average packet latency*: generation-to-ejection delay of packets
  ejected inside the window (includes source queueing, so it diverges
  beyond saturation as in the paper's delay plots);
- *effective throughput of an exchange*: total bytes divided by
  completion time -- first injection to last ejection -- normalised per
  node (Sec. 4.4).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.packet import Packet

__all__ = ["StatsCollector", "WindowStats"]


class WindowStats:
    """Aggregated results of one measurement window."""

    __slots__ = (
        "throughput",
        "mean_latency_ns",
        "p99_latency_ns",
        "ejected_packets",
        "ejected_bytes",
        "injected_packets",
        "window_ns",
        "kind_counts",
        "mean_hops",
    )

    def __init__(self, **kw: object) -> None:
        for name in self.__slots__:
            setattr(self, name, kw.get(name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lat = self.mean_latency_ns
        return (
            f"<WindowStats thr={self.throughput:.3f} "
            f"lat={lat if lat is None else round(lat, 1)}ns "
            f"ej={self.ejected_packets}>"
        )


class StatsCollector:
    """Records injections and ejections; computes windowed metrics."""

    def __init__(self, num_nodes: int, config: SimConfig):
        self.num_nodes = num_nodes
        self.config = config
        self.window_start = 0.0
        self.window_end: Optional[float] = None
        self.reset()

    def reset(self) -> None:
        """Clear all recorded state (window bounds are kept)."""
        self.injected_total = 0
        self.ejected_total = 0
        self.in_window_ejected = 0
        self.in_window_bytes = 0
        self.in_window_injected = 0
        self.latencies: list = []
        self.kind_counts: Dict[str, int] = {}
        self.hops_sum = 0
        self.first_inject: Optional[float] = None
        self.last_eject: Optional[float] = None
        self.eject_count_per_node = np.zeros(self.num_nodes, dtype=np.int64)

    def set_window(self, start: float, end: Optional[float]) -> None:
        """Restrict windowed metrics to ejections in ``[start, end)``."""
        self.window_start = start
        self.window_end = end

    # -- recording (called from the hot path) ---------------------------------

    def record_inject(self, pkt: Packet) -> None:
        self.injected_total += 1
        if self.first_inject is None:
            self.first_inject = pkt.send_time
        if pkt.send_time >= self.window_start and (
            self.window_end is None or pkt.send_time < self.window_end
        ):
            self.in_window_injected += 1

    def record_eject(self, pkt: Packet) -> None:
        self.ejected_total += 1
        t = pkt.eject_time
        self.last_eject = t
        self.eject_count_per_node[pkt.dst_node] += 1
        if t >= self.window_start and (self.window_end is None or t < self.window_end):
            self.in_window_ejected += 1
            self.in_window_bytes += pkt.size
            self.latencies.append(t - pkt.gen_time)
            self.kind_counts[pkt.kind] = self.kind_counts.get(pkt.kind, 0) + 1
            self.hops_sum += pkt.num_hops

    def absorb_kernel(
        self,
        injected: int,
        in_window_injected: int,
        first_inject: Optional[float],
        ejected: int,
        in_window_ejected: int,
        in_window_bytes: int,
        hops_sum: int,
        last_eject: Optional[float],
        latencies: list,
        kind_counts: Optional[Dict[str, int]],
        eject_counts: Optional[list],
    ) -> None:
        """Merge statistics accumulated C-side by the kernel fast paths.

        The compiled kernel (:mod:`repro.sim.vec.kernel`) batches the
        per-packet :meth:`record_inject`/:meth:`record_eject` work into
        plain C counters and arrays, flushing them here at run end and
        before any escape that could observe the collector mid-run.
        Every field merges exactly: counters are additive, the
        inject/eject timestamps combine by min/max (simulated time is
        monotone, so this reproduces the first/last semantics of the
        per-packet path), *latencies* arrive in exact ejection order so
        numpy's order-sensitive pairwise mean stays bit-identical, and
        the per-node eject counts add elementwise.
        """
        self.injected_total += injected
        self.in_window_injected += in_window_injected
        if first_inject is not None and (
            self.first_inject is None or first_inject < self.first_inject
        ):
            self.first_inject = first_inject
        self.ejected_total += ejected
        self.in_window_ejected += in_window_ejected
        self.in_window_bytes += in_window_bytes
        self.hops_sum += hops_sum
        if last_eject is not None and (
            self.last_eject is None or last_eject > self.last_eject
        ):
            self.last_eject = last_eject
        if latencies:
            self.latencies.extend(latencies)
        if kind_counts:
            for kind, count in kind_counts.items():
                self.kind_counts[kind] = self.kind_counts.get(kind, 0) + count
        if eject_counts is not None:
            self.eject_count_per_node += np.asarray(eject_counts, dtype=np.int64)

    # -- reductions ------------------------------------------------------------

    def window_stats(self) -> WindowStats:
        """Reduce the recorded window into a :class:`WindowStats`."""
        if self.window_end is None:
            raise ValueError("window_stats() requires a bounded window")
        window = self.window_end - self.window_start
        rate_bytes_per_ns = self.config.link_bandwidth_gbps / 8.0  # GB/s == B/ns
        capacity = self.num_nodes * window * rate_bytes_per_ns
        lat = np.asarray(self.latencies) if self.latencies else None
        return WindowStats(
            throughput=self.in_window_bytes / capacity if capacity > 0 else 0.0,
            mean_latency_ns=float(lat.mean()) if lat is not None else None,
            p99_latency_ns=float(np.percentile(lat, 99)) if lat is not None else None,
            ejected_packets=self.in_window_ejected,
            ejected_bytes=self.in_window_bytes,
            injected_packets=self.in_window_injected,
            window_ns=window,
            kind_counts=dict(self.kind_counts),
            mean_hops=self.hops_sum / self.in_window_ejected
            if self.in_window_ejected
            else None,
        )

    def fairness_index(self) -> float:
        """Jain's fairness index over per-node ejection counts.

        1.0 = perfectly even service; 1/N = one node receives
        everything.  Only meaningful for patterns that address all
        nodes symmetrically (uniform, full permutations).
        """
        counts = self.eject_count_per_node.astype(np.float64)
        total = counts.sum()
        if total == 0:
            raise ValueError("no traffic recorded")
        squared = float((counts**2).sum())
        return float(total * total / (len(counts) * squared))

    def effective_throughput(self, total_bytes: int) -> float:
        """Exchange metric: bytes / completion-time, per node, vs link rate."""
        if self.first_inject is None or self.last_eject is None:
            raise ValueError("no traffic recorded")
        duration = self.last_eject - self.first_inject
        if duration <= 0:
            raise ValueError("degenerate exchange duration")
        rate_bytes_per_ns = self.config.link_bandwidth_gbps / 8.0
        return total_bytes / (duration * self.num_nodes * rate_bytes_per_ns)
