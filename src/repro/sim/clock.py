"""Backend-neutral simulation time source.

Statistics code used to reach into ``net.engine.now`` and a private
``Network._utilization_window`` attribute -- both artifacts of the
object engine.  With two simulator backends (``repro.sim.engine.Engine``
and ``repro.sim.vec.BatchedEngine``) the clock and the measurement
window live behind one accessor, :class:`SimClock`, owned by the
:class:`~repro.sim.network.Network`:

- ``clock.now`` -- the current simulated time in nanoseconds, delegated
  to whichever engine is driving events;
- ``clock.utilization_window`` -- the window (ns) over which per-link
  utilization counters were accumulated, set by the experiment drivers
  (``run_synthetic`` uses the measurement window; finite runs use their
  completion time) and read by ``Network.channel_utilization``.

Both engines expose the same ``now`` attribute, so the accessor is a
thin delegation -- the point is that stats code names *one* time
source and never a backend-specific engine internal.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SimClock"]


class SimClock:
    """The single time source stats code reads (see module docstring)."""

    __slots__ = ("_engine", "utilization_window")

    def __init__(self, engine) -> None:
        self._engine = engine
        #: Measurement window (ns) behind ``channel_utilization()``;
        #: ``None`` until an experiment establishes one.
        self.utilization_window: Optional[float] = None

    @property
    def now(self) -> float:
        """Current simulated time (ns) of the active backend."""
        return self._engine.now
