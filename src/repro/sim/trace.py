"""Per-packet trace collection.

An optional, bounded recorder of completed-packet summaries (route,
kind, timestamps).  Kept out of the simulator hot path: the only cost
when enabled is one append per *delivered* packet.  Useful for
debugging routing decisions and for fine-grained latency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.packet import Packet

__all__ = ["PacketRecord", "PacketTracer"]


@dataclass(frozen=True)
class PacketRecord:
    """Summary of one delivered packet."""

    pid: int
    src_node: int
    dst_node: int
    kind: str
    routers: Tuple[int, ...]
    vcs: Tuple[int, ...]
    gen_time: float
    send_time: float
    eject_time: float

    @property
    def latency_ns(self) -> float:
        """Generation-to-ejection delay."""
        return self.eject_time - self.gen_time

    @property
    def queueing_ns(self) -> float:
        """Time spent waiting in the source NIC before transmission."""
        return self.send_time - self.gen_time

    @property
    def num_hops(self) -> int:
        return len(self.routers) - 1


class PacketTracer:
    """Bounded recorder of :class:`PacketRecord` entries.

    Records the first *capacity* delivered packets (optionally only
    those ejected at/after *start_ns*); further deliveries increment
    :attr:`dropped` so the truncation is visible rather than silent.
    """

    def __init__(self, capacity: int = 10_000, start_ns: float = 0.0):
        if capacity < 1:
            raise ValueError(f"PacketTracer: capacity {capacity} must be >= 1")
        self.capacity = capacity
        self.start_ns = start_ns
        self.records: List[PacketRecord] = []
        self.dropped = 0

    def record(self, pkt: Packet) -> None:
        """Called by the network on delivery (when tracing is enabled)."""
        if pkt.eject_time < self.start_ns:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(
            PacketRecord(
                pid=pkt.pid,
                src_node=pkt.src_node,
                dst_node=pkt.dst_node,
                kind=pkt.kind,
                routers=pkt.routers,
                vcs=pkt.vcs,
                gen_time=pkt.gen_time,
                send_time=pkt.send_time,
                eject_time=pkt.eject_time,
            )
        )

    def latencies(self) -> List[float]:
        """Latency of every recorded packet, in record order."""
        return [r.latency_ns for r in self.records]

    def by_kind(self) -> dict:
        """Record counts per route kind."""
        out: dict = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out
