"""Per-packet trace collection.

An optional, bounded recorder of completed-packet summaries (route,
kind, timestamps).  Kept out of the simulator hot path: the only cost
when enabled is one append per *delivered* packet.  Useful for
debugging routing decisions and for fine-grained latency analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.packet import Packet

__all__ = ["PacketRecord", "PacketTracer", "EventRing"]


@dataclass(frozen=True)
class PacketRecord:
    """Summary of one delivered packet."""

    pid: int
    src_node: int
    dst_node: int
    kind: str
    routers: Tuple[int, ...]
    vcs: Tuple[int, ...]
    gen_time: float
    send_time: float
    eject_time: float

    @property
    def latency_ns(self) -> float:
        """Generation-to-ejection delay."""
        return self.eject_time - self.gen_time

    @property
    def queueing_ns(self) -> float:
        """Time spent waiting in the source NIC before transmission."""
        return self.send_time - self.gen_time

    @property
    def num_hops(self) -> int:
        return len(self.routers) - 1


class PacketTracer:
    """Bounded recorder of :class:`PacketRecord` entries.

    Records the first *capacity* delivered packets (optionally only
    those ejected at/after *start_ns*); further deliveries increment
    :attr:`dropped` so the truncation is visible rather than silent.
    """

    def __init__(self, capacity: int = 10_000, start_ns: float = 0.0):
        if capacity < 1:
            raise ValueError(f"PacketTracer: capacity {capacity} must be >= 1")
        self.capacity = capacity
        self.start_ns = start_ns
        self.records: List[PacketRecord] = []
        self.dropped = 0

    def record(self, pkt: Packet) -> None:
        """Called by the network on delivery (when tracing is enabled)."""
        if pkt.eject_time < self.start_ns:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(
            PacketRecord(
                pid=pkt.pid,
                src_node=pkt.src_node,
                dst_node=pkt.dst_node,
                kind=pkt.kind,
                routers=pkt.routers,
                vcs=pkt.vcs,
                gen_time=pkt.gen_time,
                send_time=pkt.send_time,
                eject_time=pkt.eject_time,
            )
        )

    def latencies(self) -> List[float]:
        """Latency of every recorded packet, in record order."""
        return [r.latency_ns for r in self.records]

    def by_kind(self) -> dict:
        """Record counts per route kind."""
        out: dict = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out


class EventRing:
    """Bounded ring of recent simulator events (time, label) pairs.

    The invariant checker (:mod:`repro.sim.invariants`) appends one entry
    per hooked state transition; when a violation is raised the ring's
    tail becomes the "recent history" section of the report, giving the
    events that led up to the inconsistency without unbounded memory.

    Labels are %-style format strings whose arguments are kept raw and
    only interpolated by :meth:`tail` -- appends sit on the checker's
    per-transition hot path, rendering happens once per report.
    """

    __slots__ = ("_ring", "appended")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"EventRing: capacity {capacity} must be >= 1")
        self._ring: deque = deque(maxlen=capacity)
        self.appended = 0  # total appends, so truncation is visible

    def append(self, time_ns: float, label: str, *args) -> None:
        self._ring.append((time_ns, label, args))
        self.appended += 1

    def tail(self, count: int = 32) -> List[Tuple[float, str]]:
        """The most recent *count* entries, oldest first, rendered."""
        entries = list(self._ring)
        if count < len(entries):
            entries = entries[-count:]
        return [(t, label % args if args else label) for t, label, args in entries]

    def __len__(self) -> int:
        return len(self._ring)
