"""Runtime invariant checking for the flit-level simulator.

An opt-in verification layer (``SimConfig(check=True)`` / CLI
``--check``) that hooks every state transition of the simulated network
and continuously verifies the universal invariants the paper's results
rest on:

- **Packet conservation** -- every injected packet is in exactly one
  place (NIC link, input buffer, crossbar, output queue, link, ejection
  link) until delivered, and ``injected == delivered + in_flight +
  dropped`` at all times (``dropped`` is only ever non-zero under fault
  injection with the ``"drop"`` policy; see :mod:`repro.resilience`).
- **Credit-loop accounting** -- for every router-router channel and
  every VC, ``credits + occupied downstream input slots + packets on
  the link + credits in flight back upstream`` is constant (the per-VC
  buffer capacity); likewise for each NIC's injection loop.
- **Route and VC-order legality** -- routes are checked at injection
  time against the topology (consecutive routers adjacent, hop ports
  correct) and the VC policy (hop-indexed VCs strictly follow the hop
  index; phase VCs are 0/1 and non-decreasing), the deadlock-avoidance
  rules of :mod:`repro.routing.vc`.
- **Latency floors** -- no packet is delivered faster than the
  zero-load latency of its hop count allows.
- **No event starvation** -- a watchdog observes simulator progress and
  converts any stall (deadlock, lost wake-up) into a structured report
  with a full buffer/credit snapshot instead of a silent hang or an
  opaque "exchange incomplete".

On violation an :class:`InvariantViolation` is raised carrying the
offending router/port/VC, a state snapshot, and the recent event
history (a :class:`repro.sim.trace.EventRing`).

The checker is wired in by :class:`repro.sim.network.Network` when the
config enables it: routers and NICs are built as :class:`CheckedRouter`
/ :class:`CheckedNIC` subclasses whose overrides notify the checker
around each transition, so the default (unchecked) hot path pays
nothing.  The checker never perturbs simulation physics -- watchdog
events carry no RNG draws and same-timestamp event order among
simulation callbacks is preserved -- which the golden conformance suite
(:mod:`repro.experiments.conformance`) verifies by fingerprint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.nic import NIC
from repro.sim.packet import Packet
from repro.sim.switch import OutputPort, Router, _PortCreditSink
from repro.sim.trace import EventRing

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network

__all__ = [
    "InvariantViolation",
    "InvariantChecker",
    "CheckedRouter",
    "CheckedNIC",
]


class InvariantViolation(RuntimeError):
    """A simulator invariant was broken.

    Attributes identify the offending location (``router``, ``port``,
    ``vc``, ``pid`` -- any may be ``None``), ``snapshot`` holds the
    relevant buffer/credit state at violation time, and ``history`` the
    most recent hooked events (oldest first).
    """

    def __init__(
        self,
        rule: str,
        message: str,
        *,
        router: Optional[int] = None,
        port: Optional[int] = None,
        vc: Optional[int] = None,
        pid: Optional[int] = None,
        time_ns: Optional[float] = None,
        snapshot: Optional[dict] = None,
        history: Tuple[Tuple[float, str], ...] = (),
    ):
        self.rule = rule
        self.message = message
        self.router = router
        self.port = port
        self.vc = vc
        self.pid = pid
        self.time_ns = time_ns
        self.snapshot = snapshot or {}
        self.history = history
        super().__init__(self.report())

    def report(self) -> str:
        """Multi-line, human-actionable violation report."""
        where = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("router", self.router),
                ("port", self.port),
                ("vc", self.vc),
                ("pid", self.pid),
            )
            if value is not None
        )
        lines = [
            f"invariant violated: {self.rule}",
            f"  at t={self.time_ns}ns" + (f" ({where})" if where else ""),
            f"  {self.message}",
        ]
        for key, value in sorted(self.snapshot.items()):
            lines.append(f"  {key}: {value}")
        if self.history:
            lines.append(f"  last {len(self.history)} events:")
            for t, label in self.history:
                lines.append(f"    [{t:.1f}] {label}")
        return "\n".join(lines)


class InvariantChecker:
    """Tracks every in-flight packet and credit; verifies the invariants.

    One instance per :class:`~repro.sim.network.Network`; created and
    attached by the network's constructor when ``config.check`` is set.
    """

    #: Watchdog ticks with in-flight packets but zero progress before a
    #: starvation violation is raised.
    STALL_TICKS = 8

    def __init__(self, net: "Network", history_capacity: int = 256):
        self.net = net
        self.injected = 0
        self.delivered = 0
        self.dropped = 0  # fault-policy "drop" losses (repro.resilience)
        # pid -> (location, packet).  Locations:
        #   ("inj", node)                    on the injection link
        #   ("inq", rid, in_idx, vc)         in a router input buffer
        #   ("xbar", rid, out_idx, out_vc)   crossing the switch
        #   ("oq", rid, out_idx, out_vc)     in an output queue
        #   ("link", rid, out_idx, vc)       on a router-router link
        #   ("eject", rid, out_idx)          on an ejection link
        self.location: Dict[int, Tuple[tuple, Packet]] = {}
        self.link_in_flight: Dict[Tuple[int, int, int], int] = {}
        self.credit_in_flight: Dict[tuple, int] = {}
        self.inj_in_flight: Dict[int, int] = {}
        self.history = EventRing(history_capacity)
        self.progress = 0
        self.audits = 0
        self._watchdog_running = False
        self._stall_ticks = 0
        self._last_progress = -1
        # Filled by attach() once the network is fully wired.
        self._vc_capacity = 0
        self._nic_capacity = 0
        self._watchdog_period_ns = 0.0
        self._orig_make_packet = None
        self._orig_deliver = None

    # -- wiring ----------------------------------------------------------------

    def attach(self) -> None:
        """Hook packet creation/delivery; called once the network is built."""
        net = self.net
        cfg = net.config
        self._vc_capacity = cfg.buffer_packets_per_vc(net.num_vcs)
        self._nic_capacity = cfg.buffer_packets_per_port
        # A generous multiple of the slowest single step: long enough
        # that a healthy network always progresses between ticks, short
        # enough that a deadlock is reported promptly.
        step = cfg.switch_latency_ns + cfg.packet_time_ns + cfg.link_latency_ns
        self._watchdog_period_ns = max(step * 16.0, 1.0)
        # Wrapping both seams is also what gates the kernel backend's C
        # fast paths off (KernelEngine._fastpath_spec checks
        # net.checker): a checked run must see every packet in Python.
        self._orig_make_packet = net.make_packet
        self._orig_deliver = net.deliver
        net.make_packet = self._checked_make_packet
        net.deliver = self._checked_deliver

    # -- violation plumbing ----------------------------------------------------

    def fail(
        self,
        rule: str,
        message: str,
        *,
        router: Optional[int] = None,
        port: Optional[int] = None,
        vc: Optional[int] = None,
        pid: Optional[int] = None,
        snapshot: Optional[dict] = None,
    ) -> None:
        snap = dict(snapshot or {})
        if router is not None:
            snap.update(self.router_snapshot(router))
        raise InvariantViolation(
            rule,
            message,
            router=router,
            port=port,
            vc=vc,
            pid=pid,
            time_ns=self.net.engine.now,
            snapshot=snap,
            history=tuple(self.history.tail(24)),
        )

    def router_snapshot(self, rid: int) -> dict:
        """Buffer/credit state of one router, for violation reports."""
        router = self.net.routers[rid]
        snap: dict = {}
        snap[f"router[{rid}].inputs"] = [
            [len(q) for q in per_vc] for per_vc in router.in_q
        ]
        for out in router.out:
            key = f"router[{rid}].out[{out.out_idx}]"
            snap[key] = {
                "busy": out.busy,
                "queued": out.queued,
                "oq_occ": list(out.oq_occ),
                "oq_len": [len(q) for q in out.oq],
                "credits": None if out.credits is None else list(out.credits),
                "pending_inputs": list(out.pending_inputs),
                "eject_node": out.eject_node,
            }
        return snap

    def _note(self, label: str, *args) -> None:
        # Hot path: *args stay raw; the EventRing interpolates only when
        # a report is rendered.
        self.progress += 1
        self.history.append(self.net.engine.now, label, *args)

    # -- injection (route legality) --------------------------------------------

    def _checked_make_packet(self, src_node, dst_node, size, msg_id, gen_time):
        pkt = self._orig_make_packet(src_node, dst_node, size, msg_id, gen_time)
        self.on_inject(pkt)
        return pkt

    def on_inject(self, pkt: Packet) -> None:
        self.validate_route(pkt)
        self.injected += 1
        self.location[pkt.pid] = (("inj", pkt.src_node), pkt)
        self.inj_in_flight[pkt.src_node] = self.inj_in_flight.get(pkt.src_node, 0) + 1
        self._note("inject pid=%d %d->%d %s", pkt.pid, pkt.src_node, pkt.dst_node, pkt.kind)
        self.check_conservation()
        if not self._watchdog_running:
            self.start_watchdog()

    def validate_route(self, pkt: Packet) -> None:
        """Topology, port-table and VC-policy legality of one route."""
        net = self.net
        topo = net.topology
        routers = pkt.routers
        hops = len(routers) - 1
        if routers[0] != topo.router_of(pkt.src_node):
            self.fail("route-legality", f"route starts at router {routers[0]}, "
                      f"but node {pkt.src_node} attaches to "
                      f"{topo.router_of(pkt.src_node)}", pid=pkt.pid)
        if routers[-1] != topo.router_of(pkt.dst_node):
            self.fail("route-legality", f"route ends at router {routers[-1]}, "
                      f"but node {pkt.dst_node} attaches to "
                      f"{topo.router_of(pkt.dst_node)}", pid=pkt.pid)
        if len(pkt.ports) != hops + 1 or len(pkt.vcs) != hops:
            self.fail("route-legality",
                      f"route of {hops} hops carries {len(pkt.ports)} ports "
                      f"and {len(pkt.vcs)} VC labels", pid=pkt.pid)
        for i in range(hops):
            u, v = routers[i], routers[i + 1]
            if not topo.is_edge(u, v):
                self.fail("route-legality", f"hop {i} uses non-existent "
                          f"channel ({u}, {v})", router=u, pid=pkt.pid)
            if pkt.ports[i] != topo.port(u, v):
                self.fail("route-legality", f"hop {i} ({u}->{v}) uses port "
                          f"{pkt.ports[i]}, expected {topo.port(u, v)}",
                          router=u, port=pkt.ports[i], pid=pkt.pid)
        if pkt.ports[-1] != net._eject_ports[pkt.dst_node]:
            self.fail("route-legality", f"ejection port {pkt.ports[-1]} is not "
                      f"node {pkt.dst_node}'s port "
                      f"{net._eject_ports[pkt.dst_node]}",
                      router=routers[-1], port=pkt.ports[-1], pid=pkt.pid)
        self.validate_vcs(pkt)

    def validate_vcs(self, pkt: Packet) -> None:
        """VC labels within budget and legal under the routing's VC policy."""
        num_vcs = self.net.num_vcs
        for h, vc in enumerate(pkt.vcs):
            if not (0 <= vc < num_vcs):
                self.fail("vc-legality", f"hop {h} uses VC {vc}, outside the "
                          f"provisioned 0..{num_vcs - 1}", vc=vc, pid=pkt.pid)
        policy = getattr(self.net.routing, "vc_policy", None)
        if policy is not None:
            problem = policy.check_legal(pkt.vcs, pkt.kind)
            if problem is not None:
                self.fail("vc-legality", problem, pid=pkt.pid)

    # -- router transitions -----------------------------------------------------

    def expect_location(self, pkt: Packet, *kinds: str) -> tuple:
        entry = self.location.get(pkt.pid)
        if entry is None:
            self.fail("conservation", f"packet {pkt.pid} is not registered as "
                      f"in flight (duplicated, or delivered twice?)", pid=pkt.pid)
        loc = entry[0]
        if loc[0] not in kinds:
            self.fail("conservation", f"packet {pkt.pid} moved from {loc}, "
                      f"expected one of {kinds}", pid=pkt.pid,
                      snapshot={"location": loc})
        return loc

    def pre_receive(self, router: Router, in_idx: int, vc: int, pkt: Packet) -> None:
        rid = router.rid
        hop = pkt.hop
        if not (0 <= hop < len(pkt.routers)):
            self.fail("route-legality", f"packet {pkt.pid} arrived with hop "
                      f"index {hop} outside its {len(pkt.routers)}-router "
                      f"route", router=rid, pid=pkt.pid)
        if pkt.routers[hop] != rid:
            self.fail("route-legality", f"packet {pkt.pid} arrived at router "
                      f"{rid} but its route places hop {hop} at "
                      f"{pkt.routers[hop]}", router=rid, pid=pkt.pid)
        if hop == 0:
            if vc != 0:
                self.fail("vc-legality", f"injected packet {pkt.pid} arrived "
                          f"on VC {vc}, injection always uses VC 0",
                          router=rid, vc=vc, pid=pkt.pid)
            loc = self.expect_location(pkt, "inj")
            self.inj_in_flight[pkt.src_node] -= 1
        else:
            if vc != pkt.vcs[hop - 1]:
                self.fail("vc-legality", f"packet {pkt.pid} arrived on VC "
                          f"{vc}, its route assigns VC {pkt.vcs[hop - 1]} to "
                          f"hop {hop - 1}", router=rid, vc=vc, pid=pkt.pid)
            loc = self.expect_location(pkt, "link")
            key = (loc[1], loc[2], loc[3])
            self.link_in_flight[key] -= 1
            if self.link_in_flight[key] < 0:
                self.fail("credit-loop", f"more packets left channel "
                          f"{key[:2]} VC {key[2]} than entered it",
                          router=key[0], port=key[1], vc=key[2])
        capacity = (
            self._nic_capacity if isinstance(router.in_upstream[in_idx], NIC)
            else self._vc_capacity
        )
        if len(router.in_q[in_idx][vc]) >= capacity:
            self.fail("credit-loop", f"input buffer ({in_idx}, vc {vc}) "
                      f"overflowed its {capacity}-packet capacity on arrival "
                      f"of packet {pkt.pid} (credit protocol broken)",
                      router=rid, port=in_idx, vc=vc, pid=pkt.pid)
        self.location[pkt.pid] = (("inq", rid, in_idx, vc), pkt)
        self._note("recv pid=%d @r%d in=%d vc=%d", pkt.pid, rid, in_idx, vc)

    def post_receive(self, router: Router, in_idx: int, vc: int) -> None:
        upstream = router.in_upstream[in_idx]
        if isinstance(upstream, _PortCreditSink):
            self.check_credit_loop(upstream.router.rid, upstream.port.out_idx, vc)
        elif isinstance(upstream, NIC):
            self.check_nic_loop(upstream)

    def on_transfer(
        self, router: Router, in_idx: int, vc: int, moved: List[Packet]
    ) -> None:
        rid = router.rid
        upstream = router.in_upstream[in_idx]
        for pkt in moved:
            self.expect_location(pkt, "inq")
            hop = pkt.hop
            out_idx = pkt.ports[hop]
            out_vc = pkt.vcs[hop] if hop < len(pkt.vcs) else 0
            out = router.out[out_idx]
            if out.oq_occ[out_vc] > out.oq_cap:
                self.fail("credit-loop", f"output queue ({out_idx}, vc "
                          f"{out_vc}) exceeded its {out.oq_cap}-packet "
                          f"capacity", router=rid, port=out_idx, vc=out_vc)
            self.location[pkt.pid] = (("xbar", rid, out_idx, out_vc), pkt)
            if isinstance(upstream, _PortCreditSink):
                key = (upstream.router.rid, upstream.port.out_idx, vc)
                self.credit_in_flight[key] = self.credit_in_flight.get(key, 0) + 1
            elif isinstance(upstream, NIC):
                key = ("nic", upstream.node)
                self.credit_in_flight[key] = self.credit_in_flight.get(key, 0) + 1
            self._note("xfer pid=%d @r%d in=%d -> out=%d", pkt.pid, rid, in_idx, out_idx)

    def on_enter_oq(self, router: Router, out: OutputPort, out_vc: int, pkt: Packet) -> None:
        self.expect_location(pkt, "xbar")
        self.location[pkt.pid] = (("oq", router.rid, out.out_idx, out_vc), pkt)
        self._note("oq pid=%d @r%d out=%d vc=%d", pkt.pid, router.rid, out.out_idx, out_vc)

    # -- fault injection (repro.resilience) -------------------------------------

    def on_fault_drop(self, pkt: Packet) -> None:
        """A packet queued toward a dead link was discarded (policy
        ``"drop"``).  It leaves the registry and joins the ``dropped``
        term of the conservation equation."""
        self.expect_location(pkt, "oq")
        del self.location[pkt.pid]
        self.dropped += 1
        self._note("fault-drop pid=%d", pkt.pid)
        self.check_conservation()

    def on_fault_move(
        self, pkt: Packet, rid: int, out_idx: int, vc: int
    ) -> None:
        """A packet queued toward a dead link was rerouted onto a
        surviving output of the same router (policy ``"reroute"``)."""
        self.expect_location(pkt, "oq")
        self.location[pkt.pid] = (("oq", rid, out_idx, vc), pkt)
        self._note("fault-move pid=%d @r%d -> out=%d vc=%d", pkt.pid, rid, out_idx, vc)

    def on_transmit(self, router: Router, out: OutputPort, vc: int, pkt: Packet) -> None:
        rid = router.rid
        self.expect_location(pkt, "oq")
        if out.credits is not None:
            if out.credits[vc] < 0:
                self.fail("credit-loop", f"credits went negative after "
                          f"transmitting packet {pkt.pid}", router=rid,
                          port=out.out_idx, vc=vc, pid=pkt.pid)
            self.location[pkt.pid] = (("link", rid, out.out_idx, vc), pkt)
            key = (rid, out.out_idx, vc)
            self.link_in_flight[key] = self.link_in_flight.get(key, 0) + 1
            self._note("tx pid=%d @r%d out=%d vc=%d", pkt.pid, rid, out.out_idx, vc)
            self.check_credit_loop(rid, out.out_idx, vc)
        else:
            self.location[pkt.pid] = (("eject", rid, out.out_idx), pkt)
            self._note("eject-tx pid=%d @r%d out=%d", pkt.pid, rid, out.out_idx)

    # -- credit returns ---------------------------------------------------------

    def on_port_credit(self, router: Router, port: OutputPort, vc: int) -> None:
        key = (router.rid, port.out_idx, vc)
        self.credit_in_flight[key] = self.credit_in_flight.get(key, 0) - 1
        if self.credit_in_flight[key] < 0:
            self.fail("credit-loop", f"credit returned to port that has no "
                      f"credit outstanding", router=router.rid,
                      port=port.out_idx, vc=vc)
        self._note("credit @r%d out=%d vc=%d", router.rid, port.out_idx, vc)

    def post_port_credit(self, router: Router, port: OutputPort, vc: int) -> None:
        if port.credits is not None and port.credits[vc] > self._vc_capacity:
            self.fail("credit-loop", f"credits {port.credits[vc]} exceed the "
                      f"per-VC capacity {self._vc_capacity}",
                      router=router.rid, port=port.out_idx, vc=vc)
        self.check_credit_loop(router.rid, port.out_idx, vc)

    def on_nic_credit(self, nic: NIC) -> None:
        key = ("nic", nic.node)
        self.credit_in_flight[key] = self.credit_in_flight.get(key, 0) - 1
        if self.credit_in_flight[key] < 0:
            self.fail("credit-loop", f"injection credit returned to NIC "
                      f"{nic.node} with no credit outstanding",
                      router=nic.router_id, port=nic.in_idx)
        self._note("nic-credit node=%d", nic.node)

    def post_nic_credit(self, nic: NIC) -> None:
        if nic.credits > self._nic_capacity:
            self.fail("credit-loop", f"NIC {nic.node} credits {nic.credits} "
                      f"exceed the injection-buffer capacity "
                      f"{self._nic_capacity}", router=nic.router_id,
                      port=nic.in_idx)
        self.check_nic_loop(nic)

    # -- delivery ---------------------------------------------------------------

    def _checked_deliver(self, pkt: Packet) -> None:
        self.on_deliver(pkt)
        self._orig_deliver(pkt)

    def on_deliver(self, pkt: Packet) -> None:
        self.expect_location(pkt, "eject")
        now = self.net.engine.now
        floor = self.net.config.zero_load_latency_ns(len(pkt.routers) - 1)
        elapsed = now - pkt.send_time
        if elapsed < floor * (1.0 - 1e-9) - 1e-9:
            self.fail("latency-floor", f"packet {pkt.pid} delivered "
                      f"{elapsed:.3f}ns after transmission, below the "
                      f"{floor:.3f}ns zero-load floor for "
                      f"{len(pkt.routers) - 1} hops (time travel: lost "
                      f"serialization or switch delay)",
                      router=pkt.routers[-1], pid=pkt.pid)
        del self.location[pkt.pid]
        self.delivered += 1
        self._note("deliver pid=%d -> node %d", pkt.pid, pkt.dst_node)
        self.check_conservation()

    # -- invariant equations ----------------------------------------------------

    def check_conservation(self) -> None:
        in_flight = len(self.location)
        if self.injected != self.delivered + in_flight + self.dropped:
            self.fail("conservation", f"injected {self.injected} != delivered "
                      f"{self.delivered} + in-flight {in_flight} + dropped "
                      f"{self.dropped}")

    def check_credit_loop(
        self, rid: int, out_idx: int, only_vc: Optional[int] = None
    ) -> None:
        """Exact credit accounting for one router-router channel.

        Per-transition hooks pass ``only_vc`` (a transition can only
        disturb its own VC's loop); the periodic audit walks every VC.
        """
        out = self.net.routers[rid].out[out_idx]
        credits = out.credits
        if credits is None:
            return
        ds_q = out.downstream.in_q[out.downstream_in_idx]
        link_get = self.link_in_flight.get
        credit_get = self.credit_in_flight.get
        capacity = self._vc_capacity
        vcs = range(len(credits)) if only_vc is None else (only_vc,)
        for vc in vcs:
            key = (rid, out_idx, vc)
            total = credits[vc] + len(ds_q[vc]) + link_get(key, 0) + credit_get(key, 0)
            if total != capacity:
                self.fail("credit-loop", f"channel credit loop does not sum "
                          f"to capacity: credits {out.credits[vc]} + buffered "
                          f"{len(ds_q[vc])} + on-link "
                          f"{self.link_in_flight.get((rid, out_idx, vc), 0)} + "
                          f"credits-in-flight "
                          f"{self.credit_in_flight.get((rid, out_idx, vc), 0)} "
                          f"= {total}, expected {self._vc_capacity}",
                          router=rid, port=out_idx, vc=vc)

    def check_nic_loop(self, nic: NIC) -> None:
        """Exact credit accounting for one NIC injection loop."""
        total = (
            nic.credits
            + len(nic.router.in_q[nic.in_idx][0])
            + self.inj_in_flight.get(nic.node, 0)
            + self.credit_in_flight.get(("nic", nic.node), 0)
        )
        if total != self._nic_capacity:
            self.fail("credit-loop", f"NIC {nic.node} injection loop does not "
                      f"sum to capacity: credits {nic.credits} + buffered "
                      f"{len(nic.router.in_q[nic.in_idx][0])} + on-link "
                      f"{self.inj_in_flight.get(nic.node, 0)} + "
                      f"credits-in-flight "
                      f"{self.credit_in_flight.get(('nic', nic.node), 0)} = "
                      f"{total}, expected {self._nic_capacity}",
                      router=nic.router_id, port=nic.in_idx)

    # -- audits (periodic full walks) -------------------------------------------

    def audit(self) -> None:
        """Walk all live state and reconcile it with the registry."""
        self.audits += 1
        net = self.net
        self.check_conservation()
        if self.injected != net.stats.injected_total:
            self.fail("conservation", f"checker saw {self.injected} "
                      f"injections, StatsCollector recorded "
                      f"{net.stats.injected_total}")
        if self.delivered != net.stats.ejected_total:
            self.fail("conservation", f"checker saw {self.delivered} "
                      f"deliveries, StatsCollector recorded "
                      f"{net.stats.ejected_total}")
        # Aggregate registry counts per (router, container).
        in_counts: Dict[int, int] = {}
        queued_counts: Dict[Tuple[int, int], int] = {}
        oq_counts: Dict[Tuple[int, int, int], int] = {}
        for loc, pkt in self.location.values():
            kind = loc[0]
            if kind == "inq":
                in_counts[loc[1]] = in_counts.get(loc[1], 0) + 1
                tgt = (loc[1], pkt.ports[pkt.hop])
                queued_counts[tgt] = queued_counts.get(tgt, 0) + 1
            elif kind in ("xbar", "oq"):
                tgt = (loc[1], loc[2])
                queued_counts[tgt] = queued_counts.get(tgt, 0) + 1
                okey = (loc[1], loc[2], loc[3])
                oq_counts[okey] = oq_counts.get(okey, 0) + 1
        for rid, router in enumerate(net.routers):
            actual_in = sum(len(q) for per_vc in router.in_q for q in per_vc)
            if actual_in != in_counts.get(rid, 0):
                self.fail("conservation", f"router holds {actual_in} packets "
                          f"in input buffers, registry says "
                          f"{in_counts.get(rid, 0)}", router=rid)
            for out in router.out:
                expect_queued = queued_counts.get((rid, out.out_idx), 0)
                if out.queued != expect_queued:
                    self.fail("conservation", f"output `queued` counter is "
                              f"{out.queued}, registry holds {expect_queued} "
                              f"packets bound for it (UGAL congestion signal "
                              f"corrupt)", router=rid, port=out.out_idx)
                for vc in range(net.num_vcs):
                    expect_occ = oq_counts.get((rid, out.out_idx, vc), 0)
                    if out.oq_occ[vc] != expect_occ:
                        self.fail("conservation", f"oq_occ[{vc}] is "
                                  f"{out.oq_occ[vc]}, registry holds "
                                  f"{expect_occ} packets in/entering that "
                                  f"queue", router=rid, port=out.out_idx, vc=vc)
                    if len(out.oq[vc]) > out.oq_occ[vc]:
                        self.fail("credit-loop", f"output queue holds "
                                  f"{len(out.oq[vc])} packets but oq_occ is "
                                  f"{out.oq_occ[vc]}", router=rid,
                                  port=out.out_idx, vc=vc)
                if out.credits is not None:
                    self.check_credit_loop(rid, out.out_idx)
        for nic in net.nics:
            self.check_nic_loop(nic)

    def verify_quiescent(self) -> None:
        """After a drained run: nothing in flight, every credit home."""
        self.audit()
        if self.location:
            stuck = sorted(
                (pid, loc) for pid, (loc, _) in self.location.items()
            )[:10]
            self.fail("conservation", f"{len(self.location)} packets still in "
                      f"flight after drain; first stuck: {stuck}")
        for rid, router in enumerate(self.net.routers):
            for out in router.out:
                if out.credits is not None and any(
                    c != self._vc_capacity for c in out.credits
                ):
                    self.fail("credit-loop", f"credits {out.credits} not "
                              f"fully restored after drain (capacity "
                              f"{self._vc_capacity})", router=rid,
                              port=out.out_idx)
                if out.pending_inputs:
                    self.fail("starvation", f"inputs "
                              f"{list(out.pending_inputs)} still pending on "
                              f"an idle output", router=rid, port=out.out_idx)
        for nic in self.net.nics:
            if nic.credits != self._nic_capacity:
                self.fail("credit-loop", f"NIC {nic.node} ended with "
                          f"{nic.credits}/{self._nic_capacity} credits",
                          router=nic.router_id, port=nic.in_idx)

    # -- watchdog (starvation detection) ---------------------------------------

    def start_watchdog(self) -> None:
        """Begin periodic audits + stall detection (idempotent)."""
        if self._watchdog_running:
            return
        self._watchdog_running = True
        self._stall_ticks = 0
        self._last_progress = self.progress
        self.net.engine.schedule(self._watchdog_period_ns, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        engine = self.net.engine
        in_flight = len(self.location)
        self.audit()
        if self.progress == self._last_progress and in_flight > 0:
            self._stall_ticks += 1
            if self._stall_ticks >= self.STALL_TICKS or engine.pending == 0:
                self._report_stall(in_flight)
        else:
            self._stall_ticks = 0
        self._last_progress = self.progress
        if in_flight > 0 or engine.pending > 0:
            engine.schedule(self._watchdog_period_ns, self._watchdog_tick)
        else:
            self._watchdog_running = False

    def _report_stall(self, in_flight: int) -> None:
        by_router: Dict[int, int] = {}
        samples = []
        for pid, (loc, pkt) in self.location.items():
            if loc[0] != "inj":
                by_router[loc[1]] = by_router.get(loc[1], 0) + 1
            if len(samples) < 8:
                samples.append((pid, loc, f"{pkt.src_node}->{pkt.dst_node}",
                                f"hop {pkt.hop}/{len(pkt.routers) - 1}"))
        hottest = max(by_router, key=by_router.get) if by_router else None
        stalled_ns = self._stall_ticks * self._watchdog_period_ns
        self.fail(
            "starvation",
            f"{in_flight} packets in flight but no simulator progress for "
            f"{stalled_ns:.0f}ns (deadlock or lost wake-up); sample stuck "
            f"packets: {samples}",
            router=hottest,
            snapshot={"in_flight_by_router": by_router,
                      "pending_events": self.net.engine.pending},
        )


class CheckedRouter(Router):
    """A :class:`Router` that notifies the network's checker around every
    pipeline transition.  Behaviour-identical to the base class: every
    override calls ``super()`` for the actual state change."""

    __slots__ = ()

    def receive(self, in_idx: int, vc: int, pkt: Packet) -> None:
        checker = self.net.checker
        checker.pre_receive(self, in_idx, vc, pkt)
        super().receive(in_idx, vc, pkt)
        checker.post_receive(self, in_idx, vc)

    def _try_transfer(self, in_idx: int, vc: int) -> None:
        q = self.in_q[in_idx][vc]
        before = list(q)
        super()._try_transfer(in_idx, vc)
        moved = len(before) - len(q)
        if moved:
            self.net.checker.on_transfer(self, in_idx, vc, before[:moved])

    def _enter_oq(self, out: OutputPort, out_vc: int, pkt: Packet) -> None:
        self.net.checker.on_enter_oq(self, out, out_vc, pkt)
        super()._enter_oq(out, out_vc, pkt)

    def _try_transmit(self, out: OutputPort) -> None:
        heads = [q[0] if q else None for q in out.oq]
        sent_before = out.sent_packets
        super()._try_transmit(out)
        if out.sent_packets != sent_before:
            vc = (out.rr_vc - 1) % self.num_vcs
            self.net.checker.on_transmit(self, out, vc, heads[vc])

    def make_credit_sink(self, out_idx: int):
        return _CheckedPortCreditSink(self, self.out[out_idx])


class _CheckedPortCreditSink(_PortCreditSink):
    """Credit sink that verifies the loop on every returned credit."""

    __slots__ = ()

    def credit_return(self, vc: int) -> None:
        checker = self.router.net.checker
        checker.on_port_credit(self.router, self.port, vc)
        super().credit_return(vc)
        checker.post_port_credit(self.router, self.port, vc)


class CheckedNIC(NIC):
    """A :class:`NIC` that verifies its injection credit loop."""

    __slots__ = ()

    def credit_return(self, vc: int) -> None:
        checker = self.net.checker
        checker.on_nic_credit(self)
        super().credit_return(vc)
        checker.post_nic_credit(self)
