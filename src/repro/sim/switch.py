"""Virtual-channel input-output-buffered switch with credit flow control.

Models the paper's switch (Sec. 4.1): a VC-capable *input-output-
buffered* architecture with 100 KB of buffering per port per direction,
credit-based flow control, a 100 ns traversal latency and link-rate
serialization on every output.

Pipeline of one packet through a router:

1. ``receive(in_idx, vc, pkt)`` -- the packet lands in input buffer
   ``(in_idx, vc)``; the per-output ``queued`` counter (the UGAL-L
   congestion signal) is incremented.
2. *Crossbar transfer* -- the head of each input VC buffer moves into
   its target output's per-VC output queue as soon as that queue has
   space, paying the switch traversal latency.  Transfers do not
   contend with link transmission (the input-output-buffered design's
   internal speedup), so head-of-line blocking only occurs when an
   output buffer fills.  The input slot is freed at transfer time and
   the credit returned upstream after the reverse link latency.
3. *Link transmission* -- when the output link is free, the oldest
   output-queue packet whose next-hop VC holds a downstream credit is
   serialized onto the link (round-robin across VCs); it arrives at the
   downstream input (or the destination NIC) after
   ``serialization + link`` ns.  Ejection ports need no credits: the
   NIC sinks at link rate.

Credits mirror the *downstream input buffer*: decremented at link
transmission, returned when the packet later leaves that input buffer.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, TYPE_CHECKING

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.network import Network

__all__ = ["OutputPort", "Router"]


class OutputPort:
    """One router output: output queues, link state, downstream credits."""

    __slots__ = (
        "out_idx",
        "busy",
        "dead",
        "oq",
        "oq_occ",
        "oq_cap",
        "pending_inputs",
        "credits",
        "queued",
        "downstream",
        "downstream_in_idx",
        "eject_node",
        "rr_vc",
        "sent_packets",
    )

    def __init__(
        self,
        out_idx: int,
        num_vcs: int,
        oq_capacity: int,
        credit_capacity: int,
        downstream: Optional["Router"],
        downstream_in_idx: int,
        eject_node: int = -1,
    ):
        self.out_idx = out_idx
        self.busy = False
        # Failed-link marker (repro.resilience): a dead port accepts no
        # new output-queue entries -- packets headed into it are
        # diverted (rerouted or dropped) at _enter_oq time.
        self.dead = False
        self.oq: List[deque] = [deque() for _ in range(num_vcs)]
        self.oq_occ = [0] * num_vcs
        self.oq_cap = oq_capacity
        # Inputs whose head packet waits for output-buffer space.
        self.pending_inputs: deque = deque()
        # Ejection ports (downstream is a NIC) are not credit-limited: the
        # node sinks at link rate, which the serialization already models.
        self.credits: Optional[List[int]] = (
            None if downstream is None else [credit_capacity] * num_vcs
        )
        self.queued = 0
        self.downstream = downstream
        self.downstream_in_idx = downstream_in_idx
        self.eject_node = eject_node
        self.rr_vc = 0
        # Packets transmitted since the last utilization reset; with
        # fixed-size packets, busy time = sent_packets * serialization.
        self.sent_packets = 0


class Router:
    """One simulated switch."""

    __slots__ = (
        "rid",
        "net",
        "engine",
        "num_vcs",
        "in_q",
        "in_upstream",
        "out",
        "_ser",
        "_switch",
        "_link",
    )

    def __init__(self, rid: int, net: "Network", num_inputs: int, num_vcs: int):
        cfg = net.config
        self.rid = rid
        self.net = net
        self.engine: "Engine" = net.engine
        self.num_vcs = num_vcs
        # in_q[in_idx][vc] -> deque of packets.
        self.in_q: List[List[deque]] = [
            [deque() for _ in range(num_vcs)] for _ in range(num_inputs)
        ]
        # Upstream credit sinks: a router output-port sink for router
        # inputs, the NIC for injection inputs; wired by Network.
        self.in_upstream: List[object] = [None] * num_inputs
        self.out: List[OutputPort] = []
        self._ser = cfg.packet_time_ns
        self._switch = cfg.switch_latency_ns
        self._link = cfg.link_latency_ns

    # -- stage 1: arrival into the input buffer --------------------------------

    def receive(self, in_idx: int, vc: int, pkt: Packet) -> None:
        q = self.in_q[in_idx][vc]
        self.out[pkt.ports[pkt.hop]].queued += 1
        q.append(pkt)
        if len(q) == 1:
            self._try_transfer(in_idx, vc)

    # -- stage 2: crossbar transfer into the output queue -------------------------

    def _out_vc_of(self, pkt: Packet) -> int:
        """Output-queue VC of a packet: its next-hop VC (0 for ejection)."""
        hop = pkt.hop
        return pkt.vcs[hop] if hop < len(pkt.vcs) else 0

    def _try_transfer(self, in_idx: int, vc: int) -> None:
        q = self.in_q[in_idx][vc]
        engine = self.engine
        upstream = self.in_upstream[in_idx]
        while q:
            pkt = q[0]
            hop = pkt.hop
            out = self.out[pkt.ports[hop]]
            vcs = pkt.vcs
            out_vc = vcs[hop] if hop < len(vcs) else 0
            if out.oq_occ[out_vc] >= out.oq_cap:
                out.pending_inputs.append((in_idx, vc))
                return
            out.oq_occ[out_vc] += 1
            q.popleft()
            # Input slot freed: return the credit upstream.
            if upstream is not None:
                engine.schedule(self._link, upstream.credit_return, vc)
            engine.schedule(self._switch, self._enter_oq, out, out_vc, pkt)

    def _enter_oq(self, out: OutputPort, out_vc: int, pkt: Packet) -> None:
        if out.dead:
            res = self.net.fault_manager.divert_enter(self, out, out_vc, pkt)
            if res is None:
                return
            out, out_vc = res
        out.oq[out_vc].append(pkt)
        if not out.busy:
            self._try_transmit(out)

    # -- stage 3: link transmission --------------------------------------------

    def _try_transmit(self, out: OutputPort) -> None:
        if out.busy:
            return
        credits = out.credits
        num_vcs = self.num_vcs
        oqs = out.oq
        vc = out.rr_vc
        for _ in range(num_vcs):
            if vc >= num_vcs:
                vc -= num_vcs
            oq = oqs[vc]
            if not oq:
                vc += 1
                continue
            if credits is not None and credits[vc] <= 0:
                vc += 1
                continue
            pkt = oq.popleft()
            out.oq_occ[vc] -= 1
            out.queued -= 1
            out.sent_packets += 1
            out.rr_vc = (vc + 1) % num_vcs
            if credits is not None:
                credits[vc] -= 1
            out.busy = True
            engine = self.engine
            engine.schedule(self._ser, self._link_free, out)
            if out.downstream is None:
                engine.schedule(self._ser + self._link, self.net.deliver, pkt)
            else:
                pkt.hop += 1
                engine.schedule(
                    self._ser + self._link,
                    out.downstream.receive,
                    out.downstream_in_idx,
                    vc,
                    pkt,
                )
            # An output-buffer slot freed: admit a waiting input if any.
            self._admit_pending(out, vc)
            return

    def _admit_pending(self, out: OutputPort, freed_vc: int) -> None:
        # Single-pass scan: deque *iteration* is O(1) per element, whereas
        # the previous rotate(-1)-until-match loop paid an O(n) deque[0]
        # peek plus a rotate per miss.  The end state is bit-identical to
        # the rotate version: on a match at position i the deque is
        # rotated by -i and the match popped (so the elements that were
        # skipped move to the back, exactly as before); with no match the
        # deque is left untouched (a full rotation cycle is the identity).
        pending = out.pending_inputs
        in_q = self.in_q
        i = 0
        for in_idx, vc in pending:
            pkt = in_q[in_idx][vc][0]
            hop = pkt.hop
            vcs = pkt.vcs
            if (vcs[hop] if hop < len(vcs) else 0) == freed_vc:
                if i:
                    pending.rotate(-i)
                pending.popleft()
                self._try_transfer(in_idx, vc)
                return
            i += 1

    def _link_free(self, out: OutputPort) -> None:
        out.busy = False
        self._try_transmit(out)

    # -- credit sink for our own outputs ---------------------------------------

    def make_credit_sink(self, out_idx: int):
        """An object exposing ``credit_return(vc)`` for output *out_idx*;
        registered as ``in_upstream`` at the downstream router."""
        return _PortCreditSink(self, self.out[out_idx])


class _PortCreditSink:
    """Routes returned credits to the owning router's output port."""

    __slots__ = ("router", "port")

    def __init__(self, router: Router, port: OutputPort):
        self.router = router
        self.port = port

    def credit_return(self, vc: int) -> None:
        credits = self.port.credits
        assert credits is not None
        credits[vc] += 1
        if not self.port.busy:
            self.router._try_transmit(self.port)
