"""Discrete-event simulation kernel.

A minimal, fast event queue: events are ``(time, seq, fn, args)``
tuples in a binary heap.  ``seq`` is a monotonically increasing
tie-breaker that makes same-timestamp execution order deterministic
(FIFO) and keeps tuple comparison away from unorderable callables.

The hot loop avoids attribute lookups and allocation where possible --
this kernel executes tens of millions of events per experiment, so it
follows the optimisation guidance of keeping the per-event overhead
minimal rather than elegant.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

__all__ = ["Engine"]


class Engine:
    """Event queue with a simulated clock in nanoseconds."""

    __slots__ = ("now", "_heap", "_seq", "events_executed")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self.events_executed: int = 0

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` *delay* ns after the current time."""
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute time *when* (>= now)."""
        if when < self.now:
            raise ValueError(
                f"schedule_at(when={when!r}) is in the past (now={self.now!r}); "
                f"events cannot be scheduled before the current simulated time"
            )
        self._seq += 1
        heappush(self._heap, (when, self._seq, fn, args))

    def clear(self) -> None:
        """Reset to a pristine state: empty queue, clock at zero.

        Long-lived processes that reuse an engine across experiments
        (e.g. pooled orchestrator workers) call this between runs so no
        stale events or clock state leak from one simulation into the
        next.  All counters (including ``events_executed``) restart.
        """
        self.now = 0.0
        self._heap.clear()
        self._seq = 0
        self.events_executed = 0

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Execute events in timestamp order.

        Stops when the queue is empty, when the next event is later than
        *until*, or after *max_events* events (a runaway guard).
        Returns the number of events executed by this call.

        The three loop variants below keep the per-event overhead
        minimal: the event budget is an integer countdown (-1 for
        unlimited) instead of a ``float("inf")`` comparison, and the
        heap/pop references are hoisted out of the loops.
        """
        heap = self._heap
        pop = heappop
        executed = 0
        if until is None:
            if max_events is None:
                while heap:
                    now, _, fn, args = pop(heap)
                    self.now = now
                    fn(*args)
                    executed += 1
            else:
                remaining = max_events
                while heap and remaining > 0:
                    now, _, fn, args = pop(heap)
                    self.now = now
                    fn(*args)
                    executed += 1
                    remaining -= 1
        else:
            if max_events is None:
                while heap and heap[0][0] <= until:
                    now, _, fn, args = pop(heap)
                    self.now = now
                    fn(*args)
                    executed += 1
            else:
                remaining = max_events
                while heap and remaining > 0 and heap[0][0] <= until:
                    now, _, fn, args = pop(heap)
                    self.now = now
                    fn(*args)
                    executed += 1
                    remaining -= 1
            if not heap or heap[0][0] > until:
                # Advance the clock to the horizon even if the queue ran
                # dry (but not when the event budget cut the run short).
                if self.now < until:
                    self.now = until
        self.events_executed += executed
        return executed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)
