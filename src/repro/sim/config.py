"""Simulation parameters (paper Sec. 4.1).

Defaults reproduce the paper's framework configuration exactly:
virtual-channel capable input-output-buffered switches with 100 KB of
buffer space per port per direction, 100 ns switch traversal latency,
100 Gbps links with 50 ns latency, credit-based flow control and
256-byte packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["SimConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class SimConfig:
    """Physical parameters of the simulated network.

    All times are in nanoseconds; bandwidth in Gbit/s.
    """

    link_bandwidth_gbps: float = 100.0
    link_latency_ns: float = 50.0
    switch_latency_ns: float = 100.0
    buffer_bytes_per_port: int = 100_000
    packet_bytes: int = 256
    #: Enable the runtime invariant checker (repro.sim.invariants): the
    #: network is built with checked routers/NICs that verify packet
    #: conservation, credit loops, VC legality, latency floors and
    #: progress on every transition.  Off by default -- checking costs
    #: roughly 2x simulation time and does not change the physics.
    check: bool = False
    #: Simulator backend.  ``"object"`` is the reference implementation
    #: (one Python object per router/NIC/port, one callback per event);
    #: ``"batched"`` runs the same physics over struct-of-arrays state
    #: with a flat typed-event loop that elides the per-event callback
    #: machinery (repro.sim.vec); ``"kernel"`` is the batched backend
    #: with the event queue and dispatch loop compiled to C
    #: (repro.sim.vec.kernel), falling back to ``"batched"`` with one
    #: RuntimeWarning when no compiler/ABI is available.  All backends
    #: are bit-identical -- the golden conformance suite
    #: (tests/golden/conformance.json) is the gate -- so the choice is
    #: purely a speed/memory trade-off.
    backend: str = "object"
    #: Fault schedule specs (repro.resilience.schedule grammar, e.g.
    #: ``("fail@600:0-5", "recover@900:0-5")``).  Non-empty schedules
    #: attach a FaultManager to the network; the empty default costs
    #: the simulation nothing.
    faults: Tuple[str, ...] = field(default=())
    #: What happens to a packet queued toward a link that just died:
    #: ``"reroute"`` re-routes it at its current router (minimal on the
    #: degraded adjacency), ``"drop"`` counts it as lost.
    fault_policy: str = "reroute"

    def __post_init__(self) -> None:
        if self.backend not in ("object", "batched", "kernel"):
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected 'object', 'batched' or 'kernel')"
            )
        if not isinstance(self.faults, tuple):
            # Frozen dataclass: normalize list inputs (JSON round-trips
            # through orchestrate/serve produce lists) in place.
            object.__setattr__(self, "faults", tuple(self.faults))
        if self.fault_policy not in ("reroute", "drop"):
            raise ValueError(
                f"unknown fault_policy {self.fault_policy!r} "
                "(expected 'reroute' or 'drop')"
            )
        if self.faults:
            # Syntax-check the specs now so malformed schedules fail at
            # config construction, not mid-simulation.  Lazy import:
            # repro.resilience.schedule imports nothing from repro.sim.
            from repro.resilience.schedule import FaultSchedule

            FaultSchedule(self.faults)
        if self.link_bandwidth_gbps <= 0:
            raise ValueError("link_bandwidth_gbps must be positive")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if self.buffer_bytes_per_port < self.packet_bytes:
            raise ValueError("buffer must hold at least one packet")
        if self.link_latency_ns < 0 or self.switch_latency_ns < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def packet_time_ns(self) -> float:
        """Serialization time of one packet on a link."""
        return self.packet_bytes * 8.0 / self.link_bandwidth_gbps

    @property
    def buffer_packets_per_port(self) -> int:
        """Input-buffer capacity of one port, in packets."""
        return self.buffer_bytes_per_port // self.packet_bytes

    def buffer_packets_per_vc(self, num_vcs: int) -> int:
        """Per-VC share of the port buffer (at least one packet)."""
        if num_vcs < 1:
            raise ValueError(f"num_vcs={num_vcs} must be >= 1")
        return max(1, self.buffer_packets_per_port // num_vcs)

    def zero_load_latency_ns(self, num_router_hops: int) -> float:
        """Latency of an uncontended packet traversing *num_router_hops*
        router-to-router links (plus injection and ejection legs).

        Injection: serialization + link.  Each router traversal adds
        switch latency, serialization and a link (the final one being
        the ejection link).
        """
        ser = self.packet_time_ns
        link = self.link_latency_ns
        inject = ser + link
        per_router = self.switch_latency_ns + ser + link
        return inject + (num_router_hops + 1) * per_router


#: The paper's exact configuration.
PAPER_CONFIG = SimConfig()
