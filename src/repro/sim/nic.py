"""Network interface (end-node) model.

Each end-node owns a NIC with:

- an unbounded *source queue* of packet descriptors (drivers push into
  it, or attach a pull-source iterator for finite exchanges),
- a serializing injection link toward its router (same bandwidth and
  latency as network links),
- credit-based flow control toward the router's injection input buffer.

Routes are resolved when a packet *leaves* the NIC (the paper's "at the
moment of the packet's injection", Sec. 3.3), so UGAL-L sees live
congestion information.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Tuple, TYPE_CHECKING

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network
    from repro.sim.switch import Router

__all__ = ["NIC"]

#: A packet descriptor: (destination node, size in bytes, message id).
Descriptor = Tuple[int, int, Optional[int]]


class NIC:
    """Injection endpoint for one node."""

    __slots__ = (
        "node",
        "net",
        "engine",
        "router",
        "router_id",
        "in_idx",
        "queue",
        "source",
        "credits",
        "busy",
        "_ser",
        "_link",
        "queued_packets",
        "credit_stalls",
    )

    def __init__(self, node: int, net: "Network", router: "Router", in_idx: int):
        cfg = net.config
        self.node = node
        self.net = net
        self.engine = net.engine
        self.router = router
        self.router_id = router.rid
        self.in_idx = in_idx
        self.queue: deque = deque()
        self.source: Optional[Iterator[Descriptor]] = None
        self.credits = cfg.buffer_packets_per_port
        self.busy = False
        self._ser = cfg.packet_time_ns
        self._link = cfg.link_latency_ns
        self.queued_packets = 0
        # Times a pending packet found the link free but no injection
        # credit; each such stall is resumed by credit_return().
        self.credit_stalls = 0

    # -- driver interface ---------------------------------------------------

    def submit(self, dst_node: int, size: int, msg_id: Optional[int] = None) -> None:
        """Queue one packet for transmission (time-driven traffic)."""
        self.queue.append((dst_node, size, msg_id, self.engine.now))
        self.queued_packets += 1
        if not self.busy:
            self.try_send()

    def set_source(self, source: Iterator[Descriptor]) -> None:
        """Attach a pull-source of descriptors (finite exchanges).

        The NIC draws the next descriptor whenever its queue is empty and
        the link is free, so a finite exchange never materialises more
        than one outstanding descriptor per node.
        """
        self.source = source
        if not self.busy:
            self.try_send()

    # -- transmission ----------------------------------------------------------

    def try_send(self) -> None:
        """Start transmitting the next packet if link and credits allow.

        Both blocking conditions re-attempt deterministically: a busy
        link retries from :meth:`_link_free`, and exhausted credits
        retry from :meth:`credit_return` the moment the router frees an
        injection-buffer slot.  Engine events at equal timestamps run in
        schedule order (the heap's sequence tie-breaker), so the resume
        order -- and therefore packet order -- is reproducible run to
        run and independent of the routing implementation.
        """
        if self.busy:
            return
        if self.credits <= 0:
            # Link free but no downstream slot: the send is stalled
            # until a credit returns.  Count it so tests (and the
            # invariant checker's reports) can see the back-pressure.
            if self.queue or self.source is not None:
                self.credit_stalls += 1
            return
        gen_time = self.engine.now
        if self.queue:
            dst_node, size, msg_id, gen_time = self.queue.popleft()
            self.queued_packets -= 1
        elif self.source is not None:
            try:
                dst_node, size, msg_id = next(self.source)
            except StopIteration:
                self.source = None
                return
        else:
            return

        pkt = self.net.make_packet(self.node, dst_node, size, msg_id, gen_time)
        pkt.send_time = self.engine.now
        self.net.stats.record_inject(pkt)

        self.credits -= 1
        self.busy = True
        engine = self.engine
        engine.schedule(self._ser, self._link_free)
        engine.schedule(self._ser + self._link, self.router.receive, self.in_idx, 0, pkt)

    def _link_free(self) -> None:
        self.busy = False
        self.try_send()

    def credit_return(self, vc: int) -> None:
        """Injection-buffer slot freed at the router (credit callback)."""
        self.credits += 1
        if not self.busy:
            self.try_send()
