"""Routing algorithms and deadlock-avoidance machinery (paper Sec. 3).

- :class:`repro.routing.MinimalRouting` -- oblivious minimal (Sec. 3.1),
- :class:`repro.routing.IndirectRandomRouting` -- Valiant indirect random
  with topology-restricted intermediates (Sec. 3.2),
- :class:`repro.routing.UGALRouting` -- UGAL-L adaptive, generic and
  threshold variants, constant or length-ratio penalty (Sec. 3.3),
- :mod:`repro.routing.vc` -- VC assignment schemes (Sec. 3.4),
- :mod:`repro.routing.cache` -- precompiled per-(src, dst) route
  candidates shared by all algorithms (hot-path optimisation),
- :mod:`repro.routing.deadlock` -- channel-dependency-graph construction
  and cycle detection, used to prove deadlock freedom per instance.
"""

from repro.routing.base import (
    NULL_CONGESTION,
    ROUTE_INDIRECT,
    ROUTE_MINIMAL,
    CongestionContext,
    NullCongestion,
    Route,
    RoutingAlgorithm,
)
from repro.routing.deadlock import (
    ChannelDependencyGraph,
    build_cdg_indirect,
    build_cdg_minimal,
    find_cycle,
)
from repro.routing.cache import RouteCache
from repro.routing.minimal import MinimalRouting
from repro.routing.tables import ForwardingTables
from repro.routing.paths import MinimalPaths, all_shortest_paths_bfs
from repro.routing.ugal import UGALRouting
from repro.routing.valiant import IndirectRandomRouting, compose_indirect
from repro.routing.vc import HopIndexVC, PhaseVC, VCPolicy, default_vc_policy

__all__ = [
    "Route",
    "RoutingAlgorithm",
    "CongestionContext",
    "NullCongestion",
    "NULL_CONGESTION",
    "ROUTE_MINIMAL",
    "ROUTE_INDIRECT",
    "MinimalPaths",
    "all_shortest_paths_bfs",
    "RouteCache",
    "MinimalRouting",
    "ForwardingTables",
    "IndirectRandomRouting",
    "compose_indirect",
    "UGALRouting",
    "VCPolicy",
    "HopIndexVC",
    "PhaseVC",
    "default_vc_policy",
    "ChannelDependencyGraph",
    "build_cdg_minimal",
    "build_cdg_indirect",
    "find_cycle",
]
