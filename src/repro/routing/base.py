"""Routing abstractions: routes, congestion context, algorithm interface.

Routing in this library is *source routing*: the complete hop list
(router sequence plus a virtual channel per hop) is chosen when a packet
is injected, which matches the paper's UGAL formulation (the adaptive
decision is taken "at the moment of the packet's injection", Sec. 3.3)
and keeps the simulated routers simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Tuple

__all__ = [
    "Route",
    "CongestionContext",
    "NullCongestion",
    "NULL_CONGESTION",
    "RoutingAlgorithm",
    "ROUTE_MINIMAL",
    "ROUTE_INDIRECT",
]

ROUTE_MINIMAL = "minimal"
ROUTE_INDIRECT = "indirect"


@dataclass(frozen=True)
class Route:
    """A fully resolved route.

    Attributes
    ----------
    routers:
        Router sequence, source router first, destination router last.
    vcs:
        Virtual channel for each router-to-router hop
        (``len(vcs) == len(routers) - 1``).
    kind:
        ``"minimal"`` or ``"indirect"``.
    intermediate:
        For indirect routes, the index *within* ``routers`` of the
        Valiant intermediate; ``None`` for minimal routes.
    ports:
        Optional precompiled output-port index per router-to-router hop
        (``len(ports) == len(routers) - 1``, ejection port *not*
        included).  Filled by :class:`repro.routing.cache.RouteCache`
        so the simulator's packet construction needs no per-packet port
        lookups; derived data, so it does not participate in equality.
    """

    routers: Tuple[int, ...]
    vcs: Tuple[int, ...]
    kind: str = ROUTE_MINIMAL
    intermediate: Optional[int] = None
    ports: Optional[Tuple[int, ...]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(self.vcs) != len(self.routers) - 1:
            raise ValueError(
                f"Route: {len(self.routers)} routers need {len(self.routers) - 1} "
                f"VC labels, got {len(self.vcs)}"
            )
        if self.ports is not None and len(self.ports) != len(self.routers) - 1:
            raise ValueError(
                f"Route: {len(self.routers)} routers need {len(self.routers) - 1} "
                f"hop ports, got {len(self.ports)}"
            )

    @property
    def num_hops(self) -> int:
        """Number of router-to-router links traversed."""
        return len(self.routers) - 1

    def channels(self) -> Tuple[Tuple[int, int], ...]:
        """The directed channels ``(u, v)`` traversed, in order."""
        return tuple(zip(self.routers[:-1], self.routers[1:]))


class CongestionContext(Protocol):
    """Local congestion knowledge available to adaptive routing.

    The paper's UGAL-L reads "the occupancy of the first output port of
    the path" at the source router (Sec. 3.3).  The simulator implements
    this protocol over live switch state; analyses can pass
    :data:`NULL_CONGESTION`.
    """

    def queue_len(self, router: int, neighbor: int) -> int:
        """Packets currently queued at *router* for the output toward *neighbor*."""
        ...

    def queue_capacity(self) -> int:
        """Output-buffer capacity in packets (for threshold comparisons)."""
        ...


class NullCongestion:
    """Congestion context reporting an idle network (all queues empty)."""

    def queue_len(self, router: int, neighbor: int) -> int:
        return 0

    def queue_capacity(self) -> int:
        return 1


NULL_CONGESTION = NullCongestion()


class RoutingAlgorithm:
    """Base class for routing algorithms.

    Subclasses implement :meth:`route`; they are constructed around a
    topology and a VC policy and must declare how many virtual channels
    the simulator needs to provision (:attr:`num_vcs`).
    """

    name: str = "base"

    @property
    def num_vcs(self) -> int:
        """Number of virtual channels this algorithm requires."""
        raise NotImplementedError

    def route(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext = NULL_CONGESTION,
    ) -> Route:
        """Choose a route for a packet from *src_router* to *dst_router*."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
