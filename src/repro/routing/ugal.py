"""UGAL-L adaptive routing (paper Sec. 3.3).

The local variant of the Universal Globally-Adaptive Load-balanced
algorithm selects, per packet at injection time, between the minimal
route and one of ``nI`` randomly chosen indirect routes, based on the
occupancy of each candidate's *first output port* at the source router:

- minimal cost:  ``C_M = q_M``
- indirect cost: ``C_I^j = c * q_I^j``

where the penalty ``c`` is

- a constant (MLFM-A / OFT-A), or
- ``(L_I^j / L_M) * c_SF`` for the Slim Fly (SF-A), following the
  original UGAL cost that scales with the path-length ratio.

The *threshold* variants (SF-ATh, MLFM-ATh, OFT-ATh) route minimally
whenever ``q_M < T`` (``T`` a fraction of the buffer size) and only run
the adaptive choice above the threshold -- the paper's fix for the
generic algorithm's latency creep at high uniform loads.

Ties are broken in favour of the minimal route, so an idle network
routes minimally.

The hot path is an allocation-free scoring loop over precompiled
candidates (:mod:`repro.routing.cache`): each indirect candidate is
scored from its two minimal *legs* (random draws and congestion
lookups stay live, per-packet) and only the winner is materialised --
as a memoised compiled route.  ``compiled=False`` restores the legacy
build-everything-then-discard path; both are bit-identical under the
same seed (identical RNG draw order and float arithmetic).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.routing.base import (
    NULL_CONGESTION,
    ROUTE_MINIMAL,
    CongestionContext,
    Route,
    RoutingAlgorithm,
)
from repro.routing.cache import NoRouteError, RouteCache
from repro.routing.minimal import MinimalRouting
from repro.routing.valiant import IndirectRandomRouting
from repro.routing.vc import VCPolicy, default_vc_policy
from repro.topology.base import Topology

__all__ = ["UGALRouting"]


class UGALRouting(RoutingAlgorithm):
    """UGAL-L with constant or Slim-Fly (length-ratio) penalty and
    optional minimal-routing threshold.

    Parameters
    ----------
    topology:
        The network.
    num_indirect:
        ``nI``, the number of indirect candidates evaluated per packet.
    c:
        Constant penalty (MLFM-A / OFT-A) -- ignored in ``"sf"`` mode.
    cost_mode:
        ``"const"`` for ``C_I = c * q_I``; ``"sf"`` for
        ``C_I = (L_I / L_M) * c_SF * q_I``.
    c_sf:
        The Slim Fly constant ``c_SF`` (``"sf"`` mode only).
    threshold:
        If set (fraction of the buffer capacity, e.g. ``0.10`` for the
        paper's ``T = 10%``), packets route minimally while
        ``q_M < threshold * capacity`` (the "-ATh" variants).
    signal:
        ``"local"`` (default, the paper's UGAL-L: first output port at
        the source router) or ``"global"`` (the UGAL-G oracle the paper
        deems impractical to implement: the *maximum* queue along the
        entire candidate path) -- kept for the local-vs-global ablation.
    minimal_selection:
        Passed through to :class:`MinimalRouting`.
    seed:
        RNG seed.
    compiled:
        Score precompiled candidates allocation-free (default).
        ``False`` rebuilds every candidate per packet (legacy path, for
        benchmarking and equivalence testing).
    """

    def __init__(
        self,
        topology: Topology,
        num_indirect: int = 4,
        c: float = 2.0,
        cost_mode: str = "const",
        c_sf: float = 1.0,
        threshold: Optional[float] = None,
        vc_policy: Optional[VCPolicy] = None,
        minimal_selection: str = "random",
        seed: int = 0,
        intermediates: Optional[Sequence[int]] = None,
        signal: str = "local",
        compiled: bool = True,
    ):
        if cost_mode not in ("const", "sf"):
            raise ValueError(f"UGALRouting: unknown cost_mode {cost_mode!r}")
        if signal not in ("local", "global"):
            raise ValueError(f"UGALRouting: unknown signal {signal!r}")
        if num_indirect < 1:
            raise ValueError(f"UGALRouting: nI={num_indirect} must be >= 1")
        if threshold is not None and not (0.0 <= threshold <= 1.0):
            raise ValueError(f"UGALRouting: threshold {threshold} must be in [0, 1]")
        self.topology = topology
        self.vc_policy = vc_policy if vc_policy is not None else default_vc_policy(topology)
        self.num_indirect = num_indirect
        self.c = float(c)
        self.cost_mode = cost_mode
        self.c_sf = float(c_sf)
        self.threshold = threshold
        self.signal = signal
        self.compiled = compiled
        self._rng = random.Random(seed)
        # One shared compilation cache: the minimal candidates UGAL
        # scores are the very objects the minimal sub-router returns.
        self.cache = RouteCache(topology, self.vc_policy)
        self._minimal = MinimalRouting(
            topology,
            vc_policy=self.vc_policy,
            selection=minimal_selection,
            seed=seed + 1,
            compiled=compiled,
            cache=self.cache,
        )
        self._indirect = IndirectRandomRouting(
            topology,
            vc_policy=self.vc_policy,
            seed=seed + 2,
            intermediates=intermediates,
            compiled=compiled,
            cache=self.cache,
        )
        # Hot-path bindings (stable for the lifetime of the object).
        # The row-table lists are shared with the cache and mutated in
        # place as rows are built, so binding them here stays coherent.
        self._compose = self.cache.compose
        self._minimal_random = minimal_selection == "random"
        self._minimal_randbelow = self._minimal._rng._randbelow
        self._indirect_randbelow = self._indirect._rng._randbelow
        self._pool = self._indirect._pool
        self._min_rows = self.cache.minimal_rows
        self._leg_rows = self.cache.leg_rows
        self._min_fill = self.cache.minimal_fill
        self._leg_fill = self.cache.leg_fill
        self._ensure_leg_row = self.cache.ensure_leg_row
        self._local = signal == "local"
        self._sf_mode = cost_mode == "sf"
        suffix = "ATh" if threshold is not None else "A"
        if signal == "global":
            suffix = "G" + suffix[1:] if suffix != "A" else "G"
        self.name = f"UGAL-{suffix}"

    @property
    def num_vcs(self) -> int:
        return self.vc_policy.num_vcs(uses_indirect=True)

    def route(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext = NULL_CONGESTION,
    ) -> Route:
        if not self.compiled:
            return self._route_legacy(src_router, dst_router, congestion)
        # Inlined minimal selection (same RNG object and draw order as
        # MinimalRouting.route over the same candidate tuple).
        row = self._min_rows[src_router]
        candidates = row[dst_router] if row is not None else None
        if candidates is None:
            candidates = self._min_fill(src_router, dst_router)
        if len(candidates) == 1:
            minimal = candidates[0]
        elif self._minimal_random:
            minimal = candidates[self._minimal_randbelow(len(candidates))]
        else:
            minimal = self._minimal.route(src_router, dst_router, congestion)
        routers = minimal.routers
        len_min = len(routers) - 1
        if len_min == 0:
            return minimal
        queue_len = congestion.queue_len
        local = self._local
        if local:
            q_min = queue_len(routers[0], routers[1])
        else:
            q_min = max(
                queue_len(routers[i], routers[i + 1]) for i in range(len_min)
            )

        threshold = self.threshold
        if threshold is not None and q_min < threshold * congestion.queue_capacity():
            return minimal

        # Allocation-free scoring: each indirect candidate is drawn as a
        # (first leg, second leg) pair and scored straight off the leg
        # tuples; only the winning candidate is materialised (memoised).
        # Intermediate and leg draws are inlined from
        # IndirectRandomRouting.pick_intermediate / _pick_leg -- same RNG
        # object, same draw order, minus the call overhead.
        best_cost = float(q_min)
        best_first = None
        best_second = None
        randbelow = self._indirect_randbelow
        pool = self._pool
        npool = len(pool)
        leg_rows = self._leg_rows
        leg_fill = self._leg_fill
        src_legs = leg_rows[src_router]
        if src_legs is None:
            src_legs = self._ensure_leg_row(src_router)
        sf_mode = self._sf_mode
        c = self.c
        c_sf = self.c_sf
        for _ in range(self.num_indirect):
            while True:
                inter = pool[randbelow(npool)]
                if inter != src_router and inter != dst_router:
                    break
            cands = src_legs[inter]
            if cands is None:
                cands = leg_fill(src_router, inter)
            first = cands[0] if len(cands) == 1 else cands[randbelow(len(cands))]
            inter_legs = leg_rows[inter]
            cands = inter_legs[dst_router] if inter_legs is not None else None
            if cands is None:
                cands = leg_fill(inter, dst_router)
            second = cands[0] if len(cands) == 1 else cands[randbelow(len(cands))]
            if local:
                q_ind = queue_len(first[0], first[1])
            else:
                q_ind = max(
                    max(queue_len(first[i], first[i + 1]) for i in range(len(first) - 1)),
                    max(queue_len(second[i], second[i + 1]) for i in range(len(second) - 1)),
                )
            if sf_mode:
                # Same association as the legacy penalty * q_ind product
                # so the float results are bit-identical.
                hops = len(first) + len(second) - 2
                cost = ((hops / len_min) * c_sf) * q_ind
            else:
                cost = c * q_ind
            # Strict inequality: ties go to the (shorter) minimal route.
            if cost < best_cost:
                best_cost = cost
                best_first = first
                best_second = second
        if best_first is None:
            return minimal
        try:
            return self._compose(best_first, best_second)
        except NoRouteError:
            # Only reachable on a degraded adjacency: recomputed legs
            # can compose into a route past the indirect VC budget.
            # Route minimally instead of failing the injection.
            return minimal

    def _route_legacy(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext,
    ) -> Route:
        """Build-and-score every candidate per packet (pre-cache behaviour)."""
        minimal = self._minimal.route(src_router, dst_router, congestion)
        if minimal.num_hops == 0:
            return minimal
        q_min = self._occupancy(minimal, congestion)

        if self.threshold is not None:
            if q_min < self.threshold * congestion.queue_capacity():
                return minimal

        best = minimal
        best_cost = float(q_min)
        len_min = max(minimal.num_hops, 1)
        for _ in range(self.num_indirect):
            candidate = self._indirect.route(src_router, dst_router, congestion)
            q_ind = self._occupancy(candidate, congestion)
            if self.cost_mode == "sf":
                penalty = (candidate.num_hops / len_min) * self.c_sf
            else:
                penalty = self.c
            cost = penalty * q_ind
            # Strict inequality: ties go to the (shorter) minimal route.
            if cost < best_cost:
                best = candidate
                best_cost = cost
        return best

    def _occupancy(self, route: Route, congestion: CongestionContext) -> int:
        """The congestion signal of a candidate route.

        Local (UGAL-L): occupancy of the first output port at the
        source router.  Global (UGAL-G): the worst occupancy along the
        whole path.
        """
        routers = route.routers
        if self.signal == "local":
            return congestion.queue_len(routers[0], routers[1])
        return max(
            congestion.queue_len(routers[i], routers[i + 1])
            for i in range(len(routers) - 1)
        )

    def describe(self) -> str:
        """Short parameter string for reports (e.g. ``"UGAL-A(nI=4,c=2)"``)."""
        if self.cost_mode == "sf":
            inner = f"nI={self.num_indirect},cSF={self.c_sf:g}"
        else:
            inner = f"nI={self.num_indirect},c={self.c:g}"
        if self.threshold is not None:
            inner += f",T={self.threshold:.0%}"
        return f"{self.name}({inner})"
