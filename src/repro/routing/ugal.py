"""UGAL-L adaptive routing (paper Sec. 3.3).

The local variant of the Universal Globally-Adaptive Load-balanced
algorithm selects, per packet at injection time, between the minimal
route and one of ``nI`` randomly chosen indirect routes, based on the
occupancy of each candidate's *first output port* at the source router:

- minimal cost:  ``C_M = q_M``
- indirect cost: ``C_I^j = c * q_I^j``

where the penalty ``c`` is

- a constant (MLFM-A / OFT-A), or
- ``(L_I^j / L_M) * c_SF`` for the Slim Fly (SF-A), following the
  original UGAL cost that scales with the path-length ratio.

The *threshold* variants (SF-ATh, MLFM-ATh, OFT-ATh) route minimally
whenever ``q_M < T`` (``T`` a fraction of the buffer size) and only run
the adaptive choice above the threshold -- the paper's fix for the
generic algorithm's latency creep at high uniform loads.

Ties are broken in favour of the minimal route, so an idle network
routes minimally.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.routing.base import (
    NULL_CONGESTION,
    ROUTE_MINIMAL,
    CongestionContext,
    Route,
    RoutingAlgorithm,
)
from repro.routing.minimal import MinimalRouting
from repro.routing.valiant import IndirectRandomRouting
from repro.routing.vc import VCPolicy, default_vc_policy
from repro.topology.base import Topology

__all__ = ["UGALRouting"]


class UGALRouting(RoutingAlgorithm):
    """UGAL-L with constant or Slim-Fly (length-ratio) penalty and
    optional minimal-routing threshold.

    Parameters
    ----------
    topology:
        The network.
    num_indirect:
        ``nI``, the number of indirect candidates evaluated per packet.
    c:
        Constant penalty (MLFM-A / OFT-A) -- ignored in ``"sf"`` mode.
    cost_mode:
        ``"const"`` for ``C_I = c * q_I``; ``"sf"`` for
        ``C_I = (L_I / L_M) * c_SF * q_I``.
    c_sf:
        The Slim Fly constant ``c_SF`` (``"sf"`` mode only).
    threshold:
        If set (fraction of the buffer capacity, e.g. ``0.10`` for the
        paper's ``T = 10%``), packets route minimally while
        ``q_M < threshold * capacity`` (the "-ATh" variants).
    signal:
        ``"local"`` (default, the paper's UGAL-L: first output port at
        the source router) or ``"global"`` (the UGAL-G oracle the paper
        deems impractical to implement: the *maximum* queue along the
        entire candidate path) -- kept for the local-vs-global ablation.
    minimal_selection:
        Passed through to :class:`MinimalRouting`.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        topology: Topology,
        num_indirect: int = 4,
        c: float = 2.0,
        cost_mode: str = "const",
        c_sf: float = 1.0,
        threshold: Optional[float] = None,
        vc_policy: Optional[VCPolicy] = None,
        minimal_selection: str = "random",
        seed: int = 0,
        intermediates: Optional[Sequence[int]] = None,
        signal: str = "local",
    ):
        if cost_mode not in ("const", "sf"):
            raise ValueError(f"UGALRouting: unknown cost_mode {cost_mode!r}")
        if signal not in ("local", "global"):
            raise ValueError(f"UGALRouting: unknown signal {signal!r}")
        if num_indirect < 1:
            raise ValueError(f"UGALRouting: nI={num_indirect} must be >= 1")
        if threshold is not None and not (0.0 <= threshold <= 1.0):
            raise ValueError(f"UGALRouting: threshold {threshold} must be in [0, 1]")
        self.topology = topology
        self.vc_policy = vc_policy if vc_policy is not None else default_vc_policy(topology)
        self.num_indirect = num_indirect
        self.c = float(c)
        self.cost_mode = cost_mode
        self.c_sf = float(c_sf)
        self.threshold = threshold
        self.signal = signal
        self._rng = random.Random(seed)
        self._minimal = MinimalRouting(
            topology, vc_policy=self.vc_policy, selection=minimal_selection, seed=seed + 1
        )
        self._indirect = IndirectRandomRouting(
            topology, vc_policy=self.vc_policy, seed=seed + 2, intermediates=intermediates
        )
        suffix = "ATh" if threshold is not None else "A"
        if signal == "global":
            suffix = "G" + suffix[1:] if suffix != "A" else "G"
        self.name = f"UGAL-{suffix}"

    @property
    def num_vcs(self) -> int:
        return self.vc_policy.num_vcs(uses_indirect=True)

    def route(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext = NULL_CONGESTION,
    ) -> Route:
        minimal = self._minimal.route(src_router, dst_router, congestion)
        if minimal.num_hops == 0:
            return minimal
        q_min = self._occupancy(minimal, congestion)

        if self.threshold is not None:
            if q_min < self.threshold * congestion.queue_capacity():
                return minimal

        best = minimal
        best_cost = float(q_min)
        len_min = max(minimal.num_hops, 1)
        for _ in range(self.num_indirect):
            candidate = self._indirect.route(src_router, dst_router, congestion)
            q_ind = self._occupancy(candidate, congestion)
            if self.cost_mode == "sf":
                penalty = (candidate.num_hops / len_min) * self.c_sf
            else:
                penalty = self.c
            cost = penalty * q_ind
            # Strict inequality: ties go to the (shorter) minimal route.
            if cost < best_cost:
                best = candidate
                best_cost = cost
        return best

    def _occupancy(self, route: Route, congestion: CongestionContext) -> int:
        """The congestion signal of a candidate route.

        Local (UGAL-L): occupancy of the first output port at the
        source router.  Global (UGAL-G): the worst occupancy along the
        whole path.
        """
        routers = route.routers
        if self.signal == "local":
            return congestion.queue_len(routers[0], routers[1])
        return max(
            congestion.queue_len(routers[i], routers[i + 1])
            for i in range(len(routers) - 1)
        )

    def describe(self) -> str:
        """Short parameter string for reports (e.g. ``"UGAL-A(nI=4,c=2)"``)."""
        if self.cost_mode == "sf":
            inner = f"nI={self.num_indirect},cSF={self.c_sf:g}"
        else:
            inner = f"nI={self.num_indirect},c={self.c:g}"
        if self.threshold is not None:
            inner += f",T={self.threshold:.0%}"
        return f"{self.name}({inner})"
