"""Virtual-channel assignment policies (deadlock avoidance, Sec. 3.4).

Two schemes cover the paper's topologies:

- :class:`HopIndexVC` (Slim Fly and other flat topologies): the VC equals
  the hop index along the route.  Minimal routes use 2 VCs, indirect
  routes up to 4 -- exactly the Besta & Hoefler scheme the paper adopts.
  The VC strictly increases along every route, so the per-VC channel
  dependency graphs are layered and trivially acyclic.

- :class:`PhaseVC` (the SSPTs: MLFM and OFT): minimal routes are
  inherently deadlock-free because every route is an UP link followed by
  a DOWN link, so one VC suffices; indirect routes use VC 0 while
  heading to the Valiant intermediate and VC 1 afterwards, splitting the
  network into two virtual networks each with the acyclic UP->DOWN
  dependency structure.

:func:`default_vc_policy` picks the right scheme from the topology's
link-class structure.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.topology.base import LINK_FLAT, Topology

__all__ = ["VCPolicy", "HopIndexVC", "PhaseVC", "default_vc_policy"]


class VCPolicy:
    """Maps a router path (plus Valiant-intermediate position) to VC labels."""

    #: VCs needed when only minimal routes are used.
    num_vcs_minimal: int = 1
    #: VCs needed when indirect routes may be used.
    num_vcs_indirect: int = 1

    def assign(self, routers: Tuple[int, ...], intermediate: Optional[int]) -> Tuple[int, ...]:
        """Return one VC label per hop of the route ``routers``."""
        raise NotImplementedError

    def num_vcs(self, uses_indirect: bool) -> int:
        """VCs the simulator must provision for this policy."""
        return self.num_vcs_indirect if uses_indirect else self.num_vcs_minimal

    def check_legal(self, vcs: Tuple[int, ...], kind: str) -> Optional[str]:
        """Deadlock-avoidance legality of a route's VC labels.

        Returns ``None`` when *vcs* (one label per hop, route kind
        ``"minimal"`` or ``"indirect"``) satisfies this policy's ordering
        rules, else a human-readable description of the illegality.
        Used by the runtime invariant checker
        (:mod:`repro.sim.invariants`); the base policy accepts anything.
        """
        return None


class HopIndexVC(VCPolicy):
    """VC = hop index (Slim Fly scheme: 2 VCs minimal, 4 VCs indirect).

    The defaults are the paper's scheme for intact diameter-two
    topologies.  Degraded networks (see :mod:`repro.analysis.faults`)
    can have longer minimal paths; pass larger budgets for those.
    """

    def __init__(self, minimal_vcs: int = 2, indirect_vcs: int = 4):
        if not (1 <= minimal_vcs <= indirect_vcs):
            raise ValueError(
                f"HopIndexVC: need 1 <= minimal_vcs <= indirect_vcs, "
                f"got ({minimal_vcs}, {indirect_vcs})"
            )
        self.num_vcs_minimal = minimal_vcs
        self.num_vcs_indirect = indirect_vcs

    def assign(self, routers: Tuple[int, ...], intermediate: Optional[int]) -> Tuple[int, ...]:
        hops = len(routers) - 1
        budget = self.num_vcs_minimal if intermediate is None else self.num_vcs_indirect
        if hops > budget:
            raise ValueError(
                f"HopIndexVC: {'minimal' if intermediate is None else 'indirect'} route "
                f"of {hops} hops exceeds the {budget}-VC budget (degraded topology? "
                f"use a larger HopIndexVC or repro.analysis.faults.safe_vc_policy)"
            )
        return tuple(range(hops))

    def check_legal(self, vcs: Tuple[int, ...], kind: str) -> Optional[str]:
        expected = tuple(range(len(vcs)))
        if vcs != expected:
            return (
                f"hop-indexed VC order requires strictly increasing VCs "
                f"{expected}, route carries {vcs}"
            )
        budget = self.num_vcs_minimal if kind == "minimal" else self.num_vcs_indirect
        if len(vcs) > budget:
            return f"{kind} route of {len(vcs)} hops exceeds the {budget}-VC budget"
        return None


class PhaseVC(VCPolicy):
    """VC = Valiant phase (SSPT scheme: 1 VC minimal, 2 VCs indirect).

    Hops on or before the Valiant intermediate use VC 0 (the first
    "towards, away" pair of Sec. 3.4); hops after it use VC 1.
    """

    num_vcs_minimal = 1
    num_vcs_indirect = 2

    def assign(self, routers: Tuple[int, ...], intermediate: Optional[int]) -> Tuple[int, ...]:
        hops = len(routers) - 1
        if intermediate is None:
            return (0,) * hops
        if not (0 <= intermediate < len(routers)):
            raise ValueError(f"PhaseVC: intermediate index {intermediate} out of route")
        # Hop h crosses routers[h] -> routers[h+1]; it belongs to phase 1
        # once it *departs* the intermediate.
        return tuple(0 if h < intermediate else 1 for h in range(hops))

    def check_legal(self, vcs: Tuple[int, ...], kind: str) -> Optional[str]:
        if any(vc > 1 for vc in vcs):
            return f"phase VCs must be 0 or 1, route carries {vcs}"
        if kind == "minimal" and any(vc != 0 for vc in vcs):
            return f"minimal phase route must stay on VC 0, carries {vcs}"
        if any(a > b for a, b in zip(vcs, vcs[1:])):
            return f"phase VCs must be non-decreasing along the route, got {vcs}"
        return None


def default_vc_policy(topology: Topology) -> VCPolicy:
    """Pick the paper's VC scheme for *topology*.

    Topologies exposing an UP/DOWN link structure (the SSPTs) get
    :class:`PhaseVC`; flat topologies get :class:`HopIndexVC`.
    """
    for u, v in topology.directed_channels():
        return PhaseVC() if topology.link_class(u, v) != LINK_FLAT else HopIndexVC()
    raise ValueError(f"{topology.name}: no router-router channels")
