"""Channel-dependency-graph (CDG) deadlock analysis (paper Sec. 3.4).

A routing function is deadlock-free if its channel dependency graph --
vertices are *(directed channel, virtual channel)* pairs, edges connect
resources held consecutively by some route -- is acyclic (Dally &
Towles).  This module builds the exact CDG induced by:

- all minimal routes between endpoint routers, and/or
- all indirect routes (every ``source -> intermediate -> destination``
  combination with eligible intermediates),

under a given VC policy, and checks acyclicity.  The tests use it to
*prove* per instance the paper's claims:

- MLFM/OFT minimal routing is deadlock-free with a single VC (the
  UP -> DOWN order argument);
- MLFM/OFT indirect routing is deadlock-free with 2 VCs, and would NOT
  be with 1 (the cycle the paper describes);
- SF minimal/indirect routing is deadlock-free with 2/4 hop-indexed VCs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.routing.paths import MinimalPaths
from repro.routing.vc import VCPolicy
from repro.topology.base import Topology

__all__ = [
    "ChannelDependencyGraph",
    "build_cdg_minimal",
    "build_cdg_indirect",
    "find_cycle",
]

ChannelVC = Tuple[int, int, int]  # (from_router, to_router, vc)


class ChannelDependencyGraph:
    """Directed graph over *(channel, VC)* resources."""

    def __init__(self) -> None:
        self._succ: Dict[ChannelVC, Set[ChannelVC]] = {}

    def add_dependency(self, held: ChannelVC, wanted: ChannelVC) -> None:
        """Record that a route holds *held* while requesting *wanted*."""
        self._succ.setdefault(held, set()).add(wanted)
        self._succ.setdefault(wanted, set())

    def add_route(self, routers: Sequence[int], vcs: Sequence[int]) -> None:
        """Add the consecutive-resource dependencies of one route."""
        hops = [
            (routers[i], routers[i + 1], vcs[i]) for i in range(len(routers) - 1)
        ]
        for a, b in zip(hops[:-1], hops[1:]):
            self.add_dependency(a, b)

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def successors(self, vertex: ChannelVC) -> Set[ChannelVC]:
        return self._succ.get(vertex, set())

    def vertices(self) -> Iterable[ChannelVC]:
        return self._succ.keys()

    def is_acyclic(self) -> bool:
        """Kahn's algorithm: ``True`` iff the CDG has no cycle."""
        indegree: Dict[ChannelVC, int] = {v: 0 for v in self._succ}
        for succs in self._succ.values():
            for w in succs:
                indegree[w] += 1
        stack = [v for v, d in indegree.items() if d == 0]
        seen = 0
        while stack:
            v = stack.pop()
            seen += 1
            for w in self._succ[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    stack.append(w)
        return seen == len(self._succ)

    def find_cycle(self) -> Optional[List[ChannelVC]]:
        """Return one dependency cycle (as a vertex list), or ``None``.

        Iterative DFS with colouring; useful to *exhibit* the deadlock
        the paper warns about when indirect routes share a single VC.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        colour: Dict[ChannelVC, int] = {v: WHITE for v in self._succ}
        parent: Dict[ChannelVC, Optional[ChannelVC]] = {}
        for start in self._succ:
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[ChannelVC, Iterable[ChannelVC]]] = [
                (start, iter(self._succ[start]))
            ]
            colour[start] = GRAY
            parent[start] = None
            while stack:
                v, it = stack[-1]
                advanced = False
                for w in it:
                    if colour[w] == WHITE:
                        colour[w] = GRAY
                        parent[w] = v
                        stack.append((w, iter(self._succ[w])))
                        advanced = True
                        break
                    if colour[w] == GRAY:
                        # Found a back edge w -> ... -> v -> w.
                        cycle = [v]
                        node = v
                        while node != w:
                            node = parent[node]  # type: ignore[assignment]
                            cycle.append(node)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[v] = BLACK
                    stack.pop()
        return None


def _minimal_route_iter(
    topology: Topology, paths: MinimalPaths, sources: Sequence[int], dests: Sequence[int]
):
    for s in sources:
        for d in dests:
            if s == d:
                continue
            for p in paths.paths(s, d):
                yield p


def build_cdg_minimal(
    topology: Topology, vc_policy: VCPolicy
) -> ChannelDependencyGraph:
    """CDG induced by *all* minimal routes between endpoint routers."""
    cdg = ChannelDependencyGraph()
    paths = MinimalPaths(topology)
    endpoints = topology.endpoint_routers()
    for p in _minimal_route_iter(topology, paths, endpoints, endpoints):
        cdg.add_route(p, vc_policy.assign(p, None))
    return cdg


def build_cdg_indirect(
    topology: Topology,
    vc_policy: VCPolicy,
    include_minimal: bool = True,
) -> ChannelDependencyGraph:
    """CDG induced by all indirect routes (and optionally minimal ones).

    Enumerates every ``source -> intermediate`` and ``intermediate ->
    destination`` minimal-leg combination for all eligible
    intermediates.  Exhaustive over route *shapes*: complexity is
    O(|endpoints| x |intermediates| x diversity), fine for the instance
    sizes used in tests.
    """
    cdg = ChannelDependencyGraph()
    paths = MinimalPaths(topology)
    endpoints = topology.endpoint_routers()
    intermediates = topology.valiant_intermediates()

    if include_minimal:
        for p in _minimal_route_iter(topology, paths, endpoints, endpoints):
            cdg.add_route(p, vc_policy.assign(p, None))

    for s in endpoints:
        for i in intermediates:
            if i == s:
                continue
            for leg1 in paths.paths(s, i):
                for d in endpoints:
                    if d == i or d == s:
                        continue
                    for leg2 in paths.paths(i, d):
                        routers = leg1 + leg2[1:]
                        inter_idx = len(leg1) - 1
                        cdg.add_route(routers, vc_policy.assign(routers, inter_idx))
    return cdg


def find_cycle(cdg: ChannelDependencyGraph) -> Optional[List[ChannelVC]]:
    """Convenience wrapper around :meth:`ChannelDependencyGraph.find_cycle`."""
    return cdg.find_cycle()
