"""Oblivious minimal routing (paper Sec. 3.1).

For the diameter-two topologies every minimal route between distinct
endpoint routers is the direct edge (Slim Fly only) or a two-hop route
through a common neighbor.  When several minimal paths exist (rare:
same-column MLFM pairs, symmetric OFT pairs, a few SF pairs) the paper's
footnote offers two selections -- uniformly at random, or the one whose
first output buffer is least occupied; both are implemented.

Routes are precompiled per (src, dst) pair (see
:mod:`repro.routing.cache`): the hot path *selects among* immutable
cached candidates instead of materialising a fresh
:class:`~repro.routing.base.Route` per packet.  ``compiled=False``
restores the legacy per-packet construction -- the two paths are
bit-identical under the same seed (the equivalence tests assert it),
so the flag exists only for benchmarking and regression testing.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.routing.base import (
    NULL_CONGESTION,
    ROUTE_MINIMAL,
    CongestionContext,
    Route,
    RoutingAlgorithm,
)
from repro.routing.cache import RouteCache
from repro.routing.vc import VCPolicy, default_vc_policy
from repro.topology.base import Topology

__all__ = ["MinimalRouting"]


class MinimalRouting(RoutingAlgorithm):
    """Oblivious minimal routing.

    Parameters
    ----------
    topology:
        The network.
    vc_policy:
        Defaults to the paper's scheme for the topology
        (:func:`repro.routing.vc.default_vc_policy`).
    selection:
        ``"random"`` (default) picks uniformly among minimal paths;
        ``"best"`` picks the one with the least-occupied first output
        buffer (paper footnote 1).
    seed:
        RNG seed for reproducible random selections.
    compiled:
        Select among precompiled route candidates (default).  ``False``
        rebuilds each route per packet (the legacy path, kept for
        benchmarking and equivalence testing).
    cache:
        Optional shared :class:`~repro.routing.cache.RouteCache`
        (:class:`~repro.routing.ugal.UGALRouting` passes its own so all
        sub-routers compile each pair once).
    """

    name = "MIN"

    def __init__(
        self,
        topology: Topology,
        vc_policy: Optional[VCPolicy] = None,
        selection: str = "random",
        seed: int = 0,
        compiled: bool = True,
        cache: Optional[RouteCache] = None,
    ):
        if selection not in ("random", "best"):
            raise ValueError(f"MinimalRouting: unknown selection {selection!r}")
        self.topology = topology
        self.vc_policy = vc_policy if vc_policy is not None else default_vc_policy(topology)
        self.selection = selection
        self.compiled = compiled
        self.cache = cache if cache is not None else RouteCache(topology, self.vc_policy)
        self.paths = self.cache.paths
        self._rng = random.Random(seed)
        # randrange(n) for positive n is exactly _randbelow(n); binding it
        # skips the wrapper while consuming the identical random stream.
        self._randbelow = self._rng._randbelow
        # Shared with the cache and filled in place as rows are built.
        self._min_rows = self.cache.minimal_rows

    @property
    def num_vcs(self) -> int:
        return self.vc_policy.num_vcs(uses_indirect=False)

    def route(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext = NULL_CONGESTION,
    ) -> Route:
        if not self.compiled:
            return self._route_legacy(src_router, dst_router, congestion)
        row = self._min_rows[src_router]
        candidates = row[dst_router] if row is not None else None
        if candidates is None:
            candidates = self.cache.minimal_fill(src_router, dst_router)
        if len(candidates) == 1:
            return candidates[0]
        if self.selection == "random":
            return candidates[self._randbelow(len(candidates))]
        queue_len = congestion.queue_len
        best = None
        best_q = None
        for route in candidates:
            routers = route.routers
            q = queue_len(routers[0], routers[1]) if len(routers) > 1 else 0
            if best_q is None or q < best_q:
                best = route
                best_q = q
        return best  # type: ignore[return-value]  # candidates is non-empty

    def _route_legacy(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext,
    ) -> Route:
        """Per-packet route construction (pre-cache behaviour)."""
        candidates = self.cache.paths.paths(src_router, dst_router)
        if len(candidates) == 1:
            routers = candidates[0]
        elif self.selection == "random":
            routers = candidates[self._rng.randrange(len(candidates))]
        else:
            routers = min(
                candidates,
                key=lambda p: congestion.queue_len(p[0], p[1]) if len(p) > 1 else 0,
            )
        vcs = self.vc_policy.assign(routers, None)
        return Route(routers=routers, vcs=vcs, kind=ROUTE_MINIMAL, intermediate=None)
