"""Oblivious minimal routing (paper Sec. 3.1).

For the diameter-two topologies every minimal route between distinct
endpoint routers is the direct edge (Slim Fly only) or a two-hop route
through a common neighbor.  When several minimal paths exist (rare:
same-column MLFM pairs, symmetric OFT pairs, a few SF pairs) the paper's
footnote offers two selections -- uniformly at random, or the one whose
first output buffer is least occupied; both are implemented.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.routing.base import (
    NULL_CONGESTION,
    ROUTE_MINIMAL,
    CongestionContext,
    Route,
    RoutingAlgorithm,
)
from repro.routing.paths import MinimalPaths
from repro.routing.vc import VCPolicy, default_vc_policy
from repro.topology.base import Topology

__all__ = ["MinimalRouting"]


class MinimalRouting(RoutingAlgorithm):
    """Oblivious minimal routing.

    Parameters
    ----------
    topology:
        The network.
    vc_policy:
        Defaults to the paper's scheme for the topology
        (:func:`repro.routing.vc.default_vc_policy`).
    selection:
        ``"random"`` (default) picks uniformly among minimal paths;
        ``"best"`` picks the one with the least-occupied first output
        buffer (paper footnote 1).
    seed:
        RNG seed for reproducible random selections.
    """

    name = "MIN"

    def __init__(
        self,
        topology: Topology,
        vc_policy: Optional[VCPolicy] = None,
        selection: str = "random",
        seed: int = 0,
    ):
        if selection not in ("random", "best"):
            raise ValueError(f"MinimalRouting: unknown selection {selection!r}")
        self.topology = topology
        self.vc_policy = vc_policy if vc_policy is not None else default_vc_policy(topology)
        self.selection = selection
        self.paths = MinimalPaths(topology)
        self._rng = random.Random(seed)

    @property
    def num_vcs(self) -> int:
        return self.vc_policy.num_vcs(uses_indirect=False)

    def route(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext = NULL_CONGESTION,
    ) -> Route:
        candidates = self.paths.paths(src_router, dst_router)
        if len(candidates) == 1:
            routers = candidates[0]
        elif self.selection == "random":
            routers = candidates[self._rng.randrange(len(candidates))]
        else:
            routers = min(
                candidates,
                key=lambda p: congestion.queue_len(p[0], p[1]) if len(p) > 1 else 0,
            )
        vcs = self.vc_policy.assign(routers, None)
        return Route(routers=routers, vcs=vcs, kind=ROUTE_MINIMAL, intermediate=None)
