"""Distributed destination-based forwarding tables.

The simulator uses source routing, but a real deployment of these
topologies programs per-router forwarding tables (e.g. InfiniBand LFTs
or OpenFlow rules).  This module materialises the *destination-router
based* next-hop tables induced by minimal routing and verifies their
correctness and loop-freedom -- the artefact a network operator would
actually install.

For diameter-two topologies every table entry is trivially loop-free
(the next hop strictly decreases the remaining distance); the
verification walk proves it per instance, including for longer-diameter
reference topologies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.routing.paths import MinimalPaths
from repro.topology.base import Topology

__all__ = ["ForwardingTables"]


class ForwardingTables:
    """Per-router minimal next-hop tables.

    ``next_hops(router, dst_router)`` returns every neighbor that lies
    on a minimal path toward ``dst_router`` -- multipath entries where
    path diversity exists (ECMP-style), a single entry elsewhere.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self._paths = MinimalPaths(topology)
        self._tables: List[Dict[int, Tuple[int, ...]]] = [
            dict() for _ in range(topology.num_routers)
        ]
        self._built = [False] * topology.num_routers

    def _build_router(self, router: int) -> None:
        topo = self.topology
        table = self._tables[router]
        for dst in range(topo.num_routers):
            if dst == router:
                continue
            hops = sorted({p[1] for p in self._paths.paths(router, dst)})
            table[dst] = tuple(hops)
        self._built[router] = True

    def next_hops(self, router: int, dst_router: int) -> Tuple[int, ...]:
        """Minimal next hops from *router* toward *dst_router*."""
        if router == dst_router:
            return ()
        if not self._built[router]:
            self._build_router(router)
        return self._tables[router][dst_router]

    def table_size(self, router: int) -> int:
        """Number of (destination, next-hop) entries at *router*."""
        if not self._built[router]:
            self._build_router(router)
        return sum(len(v) for v in self._tables[router].values())

    def walk(self, src_router: int, dst_router: int, choose=min) -> List[int]:
        """Follow the tables hop by hop from source to destination.

        ``choose`` selects among multipath entries (default: lowest
        id).  Raises ``RuntimeError`` if a loop is detected (which the
        verification test proves never happens).
        """
        path = [src_router]
        current = src_router
        limit = self.topology.num_routers + 1
        while current != dst_router:
            hops = self.next_hops(current, dst_router)
            if not hops:
                raise RuntimeError(f"no route {current} -> {dst_router}")
            current = choose(hops)
            path.append(current)
            if len(path) > limit:
                raise RuntimeError(f"forwarding loop on {src_router} -> {dst_router}: {path}")
        return path

    def verify(self) -> List[str]:
        """Exhaustively check delivery and minimality between endpoint
        routers; returns violations (empty == correct)."""
        problems: List[str] = []
        endpoints = self.topology.endpoint_routers()
        for s in endpoints:
            for d in endpoints:
                if s == d:
                    continue
                expected = self._paths.distance(s, d)
                path = self.walk(s, d)
                if len(path) - 1 != expected:
                    problems.append(
                        f"{s}->{d}: walked {len(path) - 1} hops, minimal is {expected}"
                    )
                    if len(problems) > 10:
                        return problems
        return problems

    def total_entries(self) -> int:
        """Total forwarding entries across all routers (memory metric)."""
        return sum(self.table_size(r) for r in range(self.topology.num_routers))
