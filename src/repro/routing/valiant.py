"""Oblivious indirect random (Valiant) routing (paper Sec. 3.2).

A packet is first minimally routed to a uniformly random intermediate
router ``Ri`` (``Ri`` different from source and destination), then
minimally routed to its destination.

Intermediate eligibility follows the paper: for the Slim Fly *any*
router qualifies (indirect paths of 2--4 hops); for the SSPTs only
routers directly connected to end-nodes qualify (L0/L2 for the OFT,
local routers for the MLFM), which pins indirect paths to exactly
4 hops -- long enough to load-balance, short enough for latency.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.routing.base import (
    NULL_CONGESTION,
    ROUTE_INDIRECT,
    ROUTE_MINIMAL,
    CongestionContext,
    Route,
    RoutingAlgorithm,
)
from repro.routing.paths import MinimalPaths
from repro.routing.vc import VCPolicy, default_vc_policy
from repro.topology.base import Topology

__all__ = ["IndirectRandomRouting", "compose_indirect"]


def compose_indirect(
    first_leg: Tuple[int, ...], second_leg: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], int]:
    """Concatenate two minimal legs sharing the intermediate router.

    Returns ``(routers, intermediate_index)``; the duplicated
    intermediate is collapsed.
    """
    if first_leg[-1] != second_leg[0]:
        raise ValueError(
            f"compose_indirect: legs do not meet ({first_leg[-1]} != {second_leg[0]})"
        )
    routers = first_leg + second_leg[1:]
    return routers, len(first_leg) - 1


class IndirectRandomRouting(RoutingAlgorithm):
    """Valiant's algorithm with topology-restricted intermediates.

    Parameters
    ----------
    topology:
        The network; ``topology.valiant_intermediates()`` defines the
        eligible intermediates.
    vc_policy:
        Defaults to the paper's scheme for the topology.
    seed:
        RNG seed for reproducible intermediate selection.
    intermediates:
        Optional explicit override of the candidate intermediate set.
    """

    name = "INR"

    def __init__(
        self,
        topology: Topology,
        vc_policy: Optional[VCPolicy] = None,
        seed: int = 0,
        intermediates: Optional[Sequence[int]] = None,
    ):
        self.topology = topology
        self.vc_policy = vc_policy if vc_policy is not None else default_vc_policy(topology)
        self.paths = MinimalPaths(topology)
        self._rng = random.Random(seed)
        pool = list(intermediates) if intermediates is not None else topology.valiant_intermediates()
        if len(pool) < 3:
            raise ValueError(
                f"{topology.name}: need at least 3 candidate intermediates, have {len(pool)}"
            )
        self._pool = pool

    @property
    def num_vcs(self) -> int:
        return self.vc_policy.num_vcs(uses_indirect=True)

    def pick_intermediate(self, src_router: int, dst_router: int) -> int:
        """Uniformly random eligible intermediate, excluding src and dst."""
        while True:
            candidate = self._pool[self._rng.randrange(len(self._pool))]
            if candidate != src_router and candidate != dst_router:
                return candidate

    def route_via(
        self,
        src_router: int,
        intermediate: int,
        dst_router: int,
    ) -> Route:
        """Build the indirect route through a *given* intermediate."""
        first = self._pick_leg(src_router, intermediate)
        second = self._pick_leg(intermediate, dst_router)
        routers, inter_idx = compose_indirect(first, second)
        vcs = self.vc_policy.assign(routers, inter_idx)
        return Route(routers=routers, vcs=vcs, kind=ROUTE_INDIRECT, intermediate=inter_idx)

    def route(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext = NULL_CONGESTION,
    ) -> Route:
        if src_router == dst_router:
            # Intra-router traffic never enters the fabric (the paper's
            # X exchanges "stay within the first router" even under INR).
            return Route(routers=(src_router,), vcs=(), kind=ROUTE_MINIMAL)
        intermediate = self.pick_intermediate(src_router, dst_router)
        return self.route_via(src_router, intermediate, dst_router)

    def _pick_leg(self, a: int, b: int) -> Tuple[int, ...]:
        candidates = self.paths.paths(a, b)
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self._rng.randrange(len(candidates))]
