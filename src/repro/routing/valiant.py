"""Oblivious indirect random (Valiant) routing (paper Sec. 3.2).

A packet is first minimally routed to a uniformly random intermediate
router ``Ri`` (``Ri`` different from source and destination), then
minimally routed to its destination.

Intermediate eligibility follows the paper: for the Slim Fly *any*
router qualifies (indirect paths of 2--4 hops); for the SSPTs only
routers directly connected to end-nodes qualify (L0/L2 for the OFT,
local routers for the MLFM), which pins indirect paths to exactly
4 hops -- long enough to load-balance, short enough for latency.

The random draws (intermediate, then one leg choice per multi-path leg)
stay live and per-packet; the composed route for a given leg pair is
compiled once and memoised (see :mod:`repro.routing.cache`), so the
seeded draw sequence -- and therefore every routing decision -- is
bit-identical with the legacy ``compiled=False`` construction.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.routing.base import (
    NULL_CONGESTION,
    ROUTE_INDIRECT,
    ROUTE_MINIMAL,
    CongestionContext,
    Route,
    RoutingAlgorithm,
)
from repro.routing.cache import RouteCache, compose_indirect
from repro.routing.vc import VCPolicy, default_vc_policy
from repro.topology.base import Topology

__all__ = ["IndirectRandomRouting", "compose_indirect"]


class IndirectRandomRouting(RoutingAlgorithm):
    """Valiant's algorithm with topology-restricted intermediates.

    Parameters
    ----------
    topology:
        The network; ``topology.valiant_intermediates()`` defines the
        eligible intermediates.
    vc_policy:
        Defaults to the paper's scheme for the topology.
    seed:
        RNG seed for reproducible intermediate selection.
    intermediates:
        Optional explicit override of the candidate intermediate set.
    compiled:
        Return memoised composed routes (default).  ``False`` rebuilds
        each route per packet (legacy path, for benchmarking and
        equivalence testing).
    cache:
        Optional shared :class:`~repro.routing.cache.RouteCache`.
    """

    name = "INR"

    def __init__(
        self,
        topology: Topology,
        vc_policy: Optional[VCPolicy] = None,
        seed: int = 0,
        intermediates: Optional[Sequence[int]] = None,
        compiled: bool = True,
        cache: Optional[RouteCache] = None,
    ):
        self.topology = topology
        self.vc_policy = vc_policy if vc_policy is not None else default_vc_policy(topology)
        self.compiled = compiled
        self.cache = cache if cache is not None else RouteCache(topology, self.vc_policy)
        self.paths = self.cache.paths
        self._rng = random.Random(seed)
        # randrange(n) for positive n is exactly _randbelow(n); binding it
        # skips the argument-normalisation wrapper on every draw while
        # consuming the identical random stream.
        self._randbelow = self._rng._randbelow
        # Shared with the cache and filled in place as rows are built.
        self._leg_rows = self.cache.leg_rows
        pool = list(intermediates) if intermediates is not None else topology.valiant_intermediates()
        if len(pool) < 3:
            raise ValueError(
                f"{topology.name}: need at least 3 candidate intermediates, have {len(pool)}"
            )
        self._pool = pool

    @property
    def num_vcs(self) -> int:
        return self.vc_policy.num_vcs(uses_indirect=True)

    def pick_intermediate(self, src_router: int, dst_router: int) -> int:
        """Uniformly random eligible intermediate, excluding src and dst."""
        pool = self._pool
        n = len(pool)
        randbelow = self._randbelow
        while True:
            candidate = pool[randbelow(n)]
            if candidate != src_router and candidate != dst_router:
                return candidate

    def route_via(
        self,
        src_router: int,
        intermediate: int,
        dst_router: int,
    ) -> Route:
        """Build the indirect route through a *given* intermediate."""
        first = self._pick_leg(src_router, intermediate)
        second = self._pick_leg(intermediate, dst_router)
        if self.compiled:
            return self.cache.compose(first, second)
        routers, inter_idx = compose_indirect(first, second)
        vcs = self.vc_policy.assign(routers, inter_idx)
        return Route(routers=routers, vcs=vcs, kind=ROUTE_INDIRECT, intermediate=inter_idx)

    def route(
        self,
        src_router: int,
        dst_router: int,
        congestion: CongestionContext = NULL_CONGESTION,
    ) -> Route:
        if src_router == dst_router:
            # Intra-router traffic never enters the fabric (the paper's
            # X exchanges "stay within the first router" even under INR).
            if self.compiled:
                return self.cache.self_route(src_router)
            return Route(routers=(src_router,), vcs=(), kind=ROUTE_MINIMAL)
        intermediate = self.pick_intermediate(src_router, dst_router)
        return self.route_via(src_router, intermediate, dst_router)

    def _pick_leg(self, a: int, b: int) -> Tuple[int, ...]:
        row = self._leg_rows[a]
        candidates = row[b] if row is not None else None
        if candidates is None:
            candidates = self.cache.leg_fill(a, b)
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self._randbelow(len(candidates))]
