"""Shortest-path enumeration over router graphs.

For the diameter-two topologies a minimal route between endpoint
routers is either the direct edge or a two-hop route through a common
neighbor (paper Sec. 3.1); :class:`MinimalPaths` enumerates *all* of
them (the basis for path-diversity analysis, Sec. 2.3.3) with caching.
A generic BFS enumeration is provided for longer-diameter reference
topologies (3-level Fat-Tree, Dragonfly).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.base import Topology

__all__ = ["MinimalPaths", "all_shortest_paths_bfs"]

RouterPath = Tuple[int, ...]


def all_shortest_paths_bfs(topology: Topology, src: int, dst: int) -> List[RouterPath]:
    """All shortest router paths ``src -> dst`` by BFS + backtracking.

    Works for any diameter; used for reference topologies and as a
    cross-check of the specialised diameter-two enumeration.
    """
    if src == dst:
        return [(src,)]
    dist: Dict[int, int] = {src: 0}
    parents: Dict[int, List[int]] = {src: []}
    frontier = [src]
    found = False
    while frontier and not found:
        nxt: List[int] = []
        for u in frontier:
            du = dist[u]
            for v in topology.neighbors(u):
                if v not in dist:
                    dist[v] = du + 1
                    parents[v] = [u]
                    nxt.append(v)
                elif dist[v] == du + 1:
                    parents[v].append(u)
        if dst in dist:
            found = True
        frontier = nxt
    if dst not in dist:
        raise ValueError(f"{topology.name}: no path {src} -> {dst}")

    paths: List[RouterPath] = []

    def backtrack(v: int, suffix: Tuple[int, ...]) -> None:
        if v == src:
            paths.append((src,) + suffix)
            return
        for u in parents[v]:
            backtrack(u, (v,) + suffix)

    backtrack(dst, ())
    return paths


class MinimalPaths:
    """Cached enumeration of all minimal paths between router pairs.

    Specialised for diameter-two pairs (direct edge, else common
    neighbors); falls back to BFS for more distant pairs so the same
    object also serves the reference topologies.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self._cache: Dict[Tuple[int, int], Tuple[RouterPath, ...]] = {}

    def paths(self, src: int, dst: int) -> Tuple[RouterPath, ...]:
        """All minimal router paths from *src* to *dst* (inclusive ends)."""
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        topo = self.topology
        if src == dst:
            result: Tuple[RouterPath, ...] = ((src,),)
        elif topo.is_edge(src, dst):
            result = ((src, dst),)
        else:
            middles = topo.common_neighbors(src, dst)
            if middles:
                result = tuple((src, m, dst) for m in middles)
            else:
                result = tuple(all_shortest_paths_bfs(topo, src, dst))
        self._cache[key] = result
        return result

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two routers."""
        return len(self.paths(src, dst)[0]) - 1

    def diversity(self, src: int, dst: int) -> int:
        """Number of distinct minimal paths between two routers."""
        return len(self.paths(src, dst))
