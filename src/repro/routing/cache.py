"""Precompiled per-(src, dst) route-candidate cache.

Routes between a fixed (src, dst) router pair are structurally static:
the router sequence, the VC labels and the output port used at every hop
never change during a simulation.  Only the *choice* among candidates is
dynamic (random selection, UGAL's congestion-scored choice).  The legacy
hot path nevertheless rebuilt a :class:`~repro.routing.base.Route` --
VC assignment, tuple concatenation, frozen-dataclass construction -- for
every candidate of every packet (~5 allocations per packet under UGAL,
most immediately discarded).

:class:`RouteCache` compiles each candidate exactly once into an
immutable :class:`Route` carrying its hop-port tuple, so routing
algorithms *select among* cached candidates and the simulator's packet
construction needs a single eject-port lookup.  Three compiled forms
cover the paper's algorithms:

- :meth:`minimal_candidates` -- every minimal path of a pair
  (:class:`~repro.routing.paths.MinimalPaths` order is preserved, so
  seeded random selection picks the same candidate as the legacy path);
- :meth:`compose` -- the indirect route through a given (first leg,
  second leg) pair of minimal legs, built on first use and memoised
  (the same leg combination recurs constantly under Valiant routing);
- :meth:`self_route` -- the degenerate intra-router route.

The cache is purely structural: it never reads congestion state, so
adaptive decisions remain live and per-packet.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.routing.base import ROUTE_INDIRECT, ROUTE_MINIMAL, Route
from repro.routing.paths import MinimalPaths, RouterPath
from repro.routing.vc import VCPolicy
from repro.topology.base import Topology

__all__ = ["RouteCache", "compose_indirect"]


def compose_indirect(
    first_leg: Tuple[int, ...], second_leg: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], int]:
    """Concatenate two minimal legs sharing the intermediate router.

    Returns ``(routers, intermediate_index)``; the duplicated
    intermediate is collapsed.
    """
    if first_leg[-1] != second_leg[0]:
        raise ValueError(
            f"compose_indirect: legs do not meet ({first_leg[-1]} != {second_leg[0]})"
        )
    routers = first_leg + second_leg[1:]
    return routers, len(first_leg) - 1


class RouteCache:
    """Compiles and memoises immutable route candidates for one
    (topology, VC policy) pair.

    One instance is shared by all routing algorithms of one network --
    :class:`~repro.routing.ugal.UGALRouting` passes its cache to its
    minimal and indirect sub-routers, so the minimal candidates scored
    by UGAL are the very objects :class:`~repro.routing.minimal.
    MinimalRouting` would return.
    """

    def __init__(self, topology: Topology, vc_policy: VCPolicy):
        self.topology = topology
        self.vc_policy = vc_policy
        self.paths = MinimalPaths(topology)
        self._minimal: Dict[Tuple[int, int], Tuple[Route, ...]] = {}
        self._composed: Dict[Tuple[RouterPath, RouterPath], Route] = {}
        self._self: Dict[int, Route] = {}
        # Row tables: plain-list indexing is markedly cheaper than
        # hashing a (src, dst) tuple per lookup, which matters in UGAL's
        # per-candidate scoring loop.  Entries are filled strictly on
        # first use -- never eagerly -- because compiling a pair the
        # simulation never routes can legitimately fail (e.g. a 3-hop
        # minimal path on a degraded topology exceeds the VC budget).
        n = topology.num_routers
        self.leg_rows: List[Optional[List[Optional[Tuple[RouterPath, ...]]]]] = [None] * n
        self.minimal_rows: List[Optional[List[Optional[Tuple[Route, ...]]]]] = [None] * n

    # -- compilation ---------------------------------------------------------

    def hop_ports(self, routers: Tuple[int, ...]) -> Tuple[int, ...]:
        """Output-port index per router-to-router hop of *routers*."""
        port = self.topology.port
        return tuple(port(routers[i], routers[i + 1]) for i in range(len(routers) - 1))

    def minimal_candidates(self, src: int, dst: int) -> Tuple[Route, ...]:
        """All minimal routes ``src -> dst``, compiled; cached per pair.

        Candidate order matches :meth:`MinimalPaths.paths`, which makes
        seeded random selection over the compiled tuple draw-for-draw
        identical with selection over the raw path tuple.
        """
        key = (src, dst)
        cached = self._minimal.get(key)
        if cached is None:
            assign = self.vc_policy.assign
            cached = tuple(
                Route(
                    routers=p,
                    vcs=assign(p, None),
                    kind=ROUTE_MINIMAL,
                    intermediate=None,
                    ports=self.hop_ports(p),
                )
                for p in self.paths.paths(src, dst)
            )
            self._minimal[key] = cached
        return cached

    def compose(self, first_leg: RouterPath, second_leg: RouterPath) -> Route:
        """The compiled indirect route through ``first_leg + second_leg``.

        Memoised per leg pair; the memo grows with the number of leg
        combinations actually used, which is the same cardinality the
        old per-``routers``-tuple port cache reached.
        """
        key = (first_leg, second_leg)
        cached = self._composed.get(key)
        if cached is None:
            routers, inter_idx = compose_indirect(first_leg, second_leg)
            cached = Route(
                routers=routers,
                vcs=self.vc_policy.assign(routers, inter_idx),
                kind=ROUTE_INDIRECT,
                intermediate=inter_idx,
                ports=self.hop_ports(routers),
            )
            self._composed[key] = cached
        return cached

    def ensure_leg_row(self, a: int) -> List[Optional[Tuple[RouterPath, ...]]]:
        """The (possibly empty) leg row for source *a*, creating it."""
        row = self.leg_rows[a]
        if row is None:
            row = self.leg_rows[a] = [None] * self.topology.num_routers
        return row

    def leg_fill(self, a: int, b: int) -> Tuple[RouterPath, ...]:
        """Slow path: enumerate, memoise and return the ``a -> b`` legs."""
        row = self.ensure_leg_row(a)
        cands = self.paths.paths(a, b)
        row[b] = cands
        return cands

    def ensure_minimal_row(self, src: int) -> List[Optional[Tuple[Route, ...]]]:
        """The (possibly empty) minimal row for source *src*, creating it."""
        row = self.minimal_rows[src]
        if row is None:
            row = self.minimal_rows[src] = [None] * self.topology.num_routers
        return row

    def minimal_fill(self, src: int, dst: int) -> Tuple[Route, ...]:
        """Slow path: compile, memoise and return ``src -> dst`` candidates."""
        row = self.ensure_minimal_row(src)
        cands = self.minimal_candidates(src, dst)
        row[dst] = cands
        return cands

    def self_route(self, router: int) -> Route:
        """The degenerate single-router route (intra-router traffic)."""
        cached = self._self.get(router)
        if cached is None:
            cached = Route(routers=(router,), vcs=(), kind=ROUTE_MINIMAL, ports=())
            self._self[router] = cached
        return cached

    # -- array exports -------------------------------------------------------

    def port_row_table(self) -> List[List[int]]:
        """Dense directed-channel port table: ``table[u][v]`` is router
        *u*'s output-port index toward neighbor *v*, ``-1`` where no
        channel exists.

        This is the array-friendly dual of ``Topology.port``'s hash
        lookup: flat-state backends (:mod:`repro.sim.vec.state`) index
        it with plain integers to translate compiled route hops and
        UGAL's ``queue_len(router, neighbor)`` congestion probes into
        global port ids without per-lookup hashing.  Derived purely
        from the topology, so one export is valid for every routing
        sharing this cache.
        """
        topo = self.topology
        n = topo.num_routers
        table = [[-1] * n for _ in range(n)]
        for u in range(n):
            row = table[u]
            for out_idx, v in enumerate(topo.neighbors(u)):
                row[v] = out_idx
        return table

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cache-size counters (pairs compiled, composed routes, selfs)."""
        return {
            "minimal_pairs": len(self._minimal),
            "minimal_routes": sum(len(v) for v in self._minimal.values()),
            "composed_routes": len(self._composed),
            "self_routes": len(self._self),
        }
