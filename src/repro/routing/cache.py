"""Precompiled per-(src, dst) route-candidate cache.

Routes between a fixed (src, dst) router pair are structurally static:
the router sequence, the VC labels and the output port used at every hop
never change during a simulation.  Only the *choice* among candidates is
dynamic (random selection, UGAL's congestion-scored choice).  The legacy
hot path nevertheless rebuilt a :class:`~repro.routing.base.Route` --
VC assignment, tuple concatenation, frozen-dataclass construction -- for
every candidate of every packet (~5 allocations per packet under UGAL,
most immediately discarded).

:class:`RouteCache` compiles each candidate exactly once into an
immutable :class:`Route` carrying its hop-port tuple, so routing
algorithms *select among* cached candidates and the simulator's packet
construction needs a single eject-port lookup.  Three compiled forms
cover the paper's algorithms:

- :meth:`minimal_candidates` -- every minimal path of a pair
  (:class:`~repro.routing.paths.MinimalPaths` order is preserved, so
  seeded random selection picks the same candidate as the legacy path);
- :meth:`compose` -- the indirect route through a given (first leg,
  second leg) pair of minimal legs, built on first use and memoised
  (the same leg combination recurs constantly under Valiant routing);
- :meth:`self_route` -- the degenerate intra-router route.

The cache is purely structural: it never reads congestion state, so
adaptive decisions remain live and per-packet.

Fault awareness (:mod:`repro.resilience`): the cache keeps a set of
currently failed links.  :meth:`fail_link` scans the filled rows and
nulls exactly the entries whose candidates cross the failed link (in
place, so routing algorithms' bound row lists stay valid); the normal
lazy fill then reconstitutes them against the degraded adjacency --
surviving pristine candidates where any exist, a BFS-recomputed path
otherwise.  The scan runs at fault time precisely because faults are
rare and fills are hot: fault-free fills pay nothing but an empty-set
check (gated at <= 5% by the perf benchmark's ``fault_overhead``
entry).  The pristine memos (``_minimal``, ``_composed``, ``_self``)
are never polluted with degraded results, so :meth:`restore_link` only
needs to re-null the rows touched while links were down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.routing.base import ROUTE_INDIRECT, ROUTE_MINIMAL, Route
from repro.routing.paths import MinimalPaths, RouterPath
from repro.routing.vc import VCPolicy
from repro.topology.base import Topology

__all__ = ["NoRouteError", "RouteCache", "compose_indirect"]


class NoRouteError(RuntimeError):
    """No legal route exists between two routers on the current
    (degraded) adjacency -- either they are disconnected, or the only
    surviving paths exceed the provisioned VC budget."""


def compose_indirect(
    first_leg: Tuple[int, ...], second_leg: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], int]:
    """Concatenate two minimal legs sharing the intermediate router.

    Returns ``(routers, intermediate_index)``; the duplicated
    intermediate is collapsed.
    """
    if first_leg[-1] != second_leg[0]:
        raise ValueError(
            f"compose_indirect: legs do not meet ({first_leg[-1]} != {second_leg[0]})"
        )
    routers = first_leg + second_leg[1:]
    return routers, len(first_leg) - 1


class RouteCache:
    """Compiles and memoises immutable route candidates for one
    (topology, VC policy) pair.

    One instance is shared by all routing algorithms of one network --
    :class:`~repro.routing.ugal.UGALRouting` passes its cache to its
    minimal and indirect sub-routers, so the minimal candidates scored
    by UGAL are the very objects :class:`~repro.routing.minimal.
    MinimalRouting` would return.
    """

    def __init__(self, topology: Topology, vc_policy: VCPolicy):
        self.topology = topology
        self.vc_policy = vc_policy
        self.paths = MinimalPaths(topology)
        self._minimal: Dict[Tuple[int, int], Tuple[Route, ...]] = {}
        self._composed: Dict[Tuple[RouterPath, RouterPath], Route] = {}
        self._self: Dict[int, Route] = {}
        # Row tables: plain-list indexing is markedly cheaper than
        # hashing a (src, dst) tuple per lookup, which matters in UGAL's
        # per-candidate scoring loop.  Entries are filled strictly on
        # first use -- never eagerly -- because compiling a pair the
        # simulation never routes can legitimately fail (e.g. a 3-hop
        # minimal path on a degraded topology exceeds the VC budget).
        n = topology.num_routers
        self.leg_rows: List[Optional[List[Optional[Tuple[RouterPath, ...]]]]] = [None] * n
        self.minimal_rows: List[Optional[List[Optional[Tuple[Route, ...]]]]] = [None] * n
        # Fault state (see module docstring).  _touched records the
        # ("min" | "leg", src, dst) rows filled or nulled while links
        # were down, for restore-time re-nulling.
        self._failed: Set[Tuple[int, int]] = set()
        self._touched: Set[Tuple[str, int, int]] = set()
        # VCs the simulator actually provisioned; set when faults are
        # armed so degraded-path fallbacks never emit labels the switch
        # cannot buffer.  None (analysis use) = policy budget only.
        self.runtime_vcs: Optional[int] = None

    # -- compilation ---------------------------------------------------------

    def hop_ports(self, routers: Tuple[int, ...]) -> Tuple[int, ...]:
        """Output-port index per router-to-router hop of *routers*."""
        port = self.topology.port
        return tuple(port(routers[i], routers[i + 1]) for i in range(len(routers) - 1))

    def minimal_candidates(self, src: int, dst: int) -> Tuple[Route, ...]:
        """All minimal routes ``src -> dst``, compiled; cached per pair.

        Candidate order matches :meth:`MinimalPaths.paths`, which makes
        seeded random selection over the compiled tuple draw-for-draw
        identical with selection over the raw path tuple.
        """
        key = (src, dst)
        cached = self._minimal.get(key)
        if cached is None:
            assign = self.vc_policy.assign
            cached = tuple(
                Route(
                    routers=p,
                    vcs=assign(p, None),
                    kind=ROUTE_MINIMAL,
                    intermediate=None,
                    ports=self.hop_ports(p),
                )
                for p in self.paths.paths(src, dst)
            )
            self._minimal[key] = cached
        return cached

    def compose(self, first_leg: RouterPath, second_leg: RouterPath) -> Route:
        """The compiled indirect route through ``first_leg + second_leg``.

        Memoised per leg pair; the memo grows with the number of leg
        combinations actually used, which is the same cardinality the
        old per-``routers``-tuple port cache reached.
        """
        key = (first_leg, second_leg)
        cached = self._composed.get(key)
        if cached is None:
            routers, inter_idx = compose_indirect(first_leg, second_leg)
            try:
                vcs = self.vc_policy.assign(routers, inter_idx)
            except ValueError as exc:
                # Degraded legs can exceed the indirect VC budget; the
                # caller decides whether to fall back (UGAL routes
                # minimally instead) or propagate.
                raise NoRouteError(
                    f"indirect route {routers} is not VC-legal on the "
                    f"degraded adjacency: {exc}") from exc
            cached = Route(
                routers=routers,
                vcs=vcs,
                kind=ROUTE_INDIRECT,
                intermediate=inter_idx,
                ports=self.hop_ports(routers),
            )
            self._composed[key] = cached
        return cached

    def compose_or_none(
        self, first_leg: RouterPath, second_leg: RouterPath
    ) -> Optional[Route]:
        """:meth:`compose`, with :class:`NoRouteError` mapped to ``None``.

        The compiled kernel's UGAL fast path calls this for its winning
        leg pair so the degraded-adjacency VC-overflow case (the only
        way compose fails) becomes a plain minimal-fallback branch in C
        instead of an exception round-trip; the semantics are exactly
        the ``except NoRouteError: return minimal`` in
        :meth:`repro.routing.ugal.UGALRouting.route`.
        """
        try:
            return self.compose(first_leg, second_leg)
        except NoRouteError:
            return None

    def ensure_leg_row(self, a: int) -> List[Optional[Tuple[RouterPath, ...]]]:
        """The (possibly empty) leg row for source *a*, creating it."""
        row = self.leg_rows[a]
        if row is None:
            row = self.leg_rows[a] = [None] * self.topology.num_routers
        return row

    def leg_fill(self, a: int, b: int) -> Tuple[RouterPath, ...]:
        """Slow path: enumerate, memoise and return the ``a -> b`` legs."""
        row = self.ensure_leg_row(a)
        cands = self.paths.paths(a, b)
        if self._failed:
            live = tuple(p for p in cands if not self._crosses_failed(p))
            cands = live if live else (self._degraded_path(a, b),)
            self._touched.add(("leg", a, b))
        row[b] = cands
        return cands

    def ensure_minimal_row(self, src: int) -> List[Optional[Tuple[Route, ...]]]:
        """The (possibly empty) minimal row for source *src*, creating it."""
        row = self.minimal_rows[src]
        if row is None:
            row = self.minimal_rows[src] = [None] * self.topology.num_routers
        return row

    def minimal_fill(self, src: int, dst: int) -> Tuple[Route, ...]:
        """Slow path: compile, memoise and return ``src -> dst`` candidates.

        With failed links present, only candidates whose every hop is
        live survive; when none do, a single route recomputed on the
        degraded adjacency stands in (raising :class:`NoRouteError` on
        disconnection or VC-budget overflow).  The returned tuple is
        never empty.
        """
        row = self.ensure_minimal_row(src)
        cands = self.minimal_candidates(src, dst)
        if self._failed:
            live = tuple(r for r in cands if not self._crosses_failed(r.routers))
            cands = live if live else (self._degraded_route(src, dst),)
            self._touched.add(("min", src, dst))
        row[dst] = cands
        return cands

    def self_route(self, router: int) -> Route:
        """The degenerate single-router route (intra-router traffic)."""
        cached = self._self.get(router)
        if cached is None:
            cached = Route(routers=(router,), vcs=(), kind=ROUTE_MINIMAL, ports=())
            self._self[router] = cached
        return cached

    # -- fault handling ------------------------------------------------------

    def _crosses_failed(self, routers: Tuple[int, ...]) -> bool:
        failed = self._failed
        for i in range(len(routers) - 1):
            a, b = routers[i], routers[i + 1]
            if ((a, b) if a < b else (b, a)) in failed:
                return True
        return False

    @staticmethod
    def _uses_link(routers: Tuple[int, ...], e: Tuple[int, int]) -> bool:
        for i in range(len(routers) - 1):
            a, b = routers[i], routers[i + 1]
            if ((a, b) if a < b else (b, a)) == e:
                return True
        return False

    def fail_link(self, u: int, v: int) -> None:
        """Mark link ``u-v`` failed and invalidate (in place) exactly
        the row entries whose candidates cross it; they refill lazily
        against the degraded adjacency on next use.

        The filled rows are scanned here, at fault time, rather than
        reverse-indexed at fill time: faults are rare events while row
        fills are the routing hot path, so all bookkeeping lives on
        this side."""
        e = (u, v) if u < v else (v, u)
        if e in self._failed:
            return
        self._failed.add(e)
        uses = self._uses_link
        touched = self._touched
        for row_src, row in enumerate(self.minimal_rows):
            if row is None:
                continue
            for dst, cands in enumerate(row):
                if cands is not None and any(uses(r.routers, e) for r in cands):
                    row[dst] = None
                    touched.add(("min", row_src, dst))
        for row_src, row in enumerate(self.leg_rows):
            if row is None:
                continue
            for dst, legs in enumerate(row):
                if legs is not None and any(uses(p, e) for p in legs):
                    row[dst] = None
                    touched.add(("leg", row_src, dst))

    def restore_link(self, u: int, v: int) -> None:
        """Mark link ``u-v`` live again.  Every row entry filled or
        nulled while links were down is re-nulled (over-invalidation:
        entries that never used the link refill to the same content)."""
        e = (u, v) if u < v else (v, u)
        if e not in self._failed:
            return
        self._failed.discard(e)
        for kind, a, b in self._touched:
            rows = self.minimal_rows if kind == "min" else self.leg_rows
            row = rows[a]
            if row is not None:
                row[b] = None
        self._touched.clear()

    def _degraded_path(self, src: int, dst: int) -> Tuple[int, ...]:
        """Deterministic BFS shortest path over the live adjacency
        (neighbors in sorted order), or :class:`NoRouteError`."""
        if src == dst:
            return (src,)
        failed = self._failed
        neighbors = self.topology.neighbors
        parent = {src: -1}
        frontier = [src]
        while frontier and dst not in parent:
            nxt = []
            for u in frontier:
                for v in neighbors(u):
                    if v in parent:
                        continue
                    if ((u, v) if u < v else (v, u)) in failed:
                        continue
                    parent[v] = u
                    nxt.append(v)
            frontier = nxt
        if dst not in parent:
            raise NoRouteError(
                f"routers {src} and {dst} are disconnected by the current "
                f"link failures ({len(failed)} links down)")
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return tuple(path)

    def _degraded_route(self, src: int, dst: int) -> Route:
        """Compile the BFS fallback route for a pair with no surviving
        pristine candidate.  Paths longer than the minimal VC budget are
        labeled hop-indexed and tagged indirect (the checker validates
        against the indirect budget); beyond the provisioned VC count
        there is no legal label and :class:`NoRouteError` is raised."""
        path = self._degraded_path(src, dst)
        hops = len(path) - 1
        try:
            vcs = self.vc_policy.assign(path, None)
            kind = ROUTE_MINIMAL
        except ValueError:
            limit = self.vc_policy.num_vcs_indirect
            if self.runtime_vcs is not None:
                limit = min(limit, self.runtime_vcs)
            if hops > limit:
                raise NoRouteError(
                    f"degraded path {src}->{dst} needs {hops} hops but only "
                    f"{limit} VCs are available; provision headroom with "
                    "repro.analysis.faults.safe_vc_policy") from None
            vcs = tuple(range(hops))
            kind = ROUTE_INDIRECT
        return Route(routers=path, vcs=vcs, kind=kind, intermediate=None,
                     ports=self.hop_ports(path))

    # -- array exports -------------------------------------------------------

    def port_row_table(self) -> List[List[int]]:
        """Dense directed-channel port table: ``table[u][v]`` is router
        *u*'s output-port index toward neighbor *v*, ``-1`` where no
        channel exists.

        This is the array-friendly dual of ``Topology.port``'s hash
        lookup: flat-state backends (:mod:`repro.sim.vec.state`) index
        it with plain integers to translate compiled route hops and
        UGAL's ``queue_len(router, neighbor)`` congestion probes into
        global port ids without per-lookup hashing.  Derived purely
        from the topology, so one export is valid for every routing
        sharing this cache.
        """
        topo = self.topology
        n = topo.num_routers
        table = [[-1] * n for _ in range(n)]
        for u in range(n):
            row = table[u]
            for out_idx, v in enumerate(topo.neighbors(u)):
                row[v] = out_idx
        return table

    def flat_port_row(self) -> Tuple[int, List[int]]:
        """Row-major flattening of :meth:`port_row_table`:
        ``(stride, flat)`` with ``flat[u * stride + v]`` holding router
        *u*'s output-port index toward neighbor *v* (``-1`` where no
        channel exists).

        One flat list keeps the UGAL-L congestion probe -- the hottest
        per-packet lookup the routing escape makes under the batched and
        kernel backends -- to a single multiply-indexed load instead of
        chasing a row list per call.
        """
        topo = self.topology
        n = topo.num_routers
        flat = [-1] * (n * n)
        for u in range(n):
            base = u * n
            for out_idx, v in enumerate(topo.neighbors(u)):
                flat[base + v] = out_idx
        return n, flat

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cache-size counters (pairs compiled, composed routes, selfs)."""
        return {
            "minimal_pairs": len(self._minimal),
            "minimal_routes": sum(len(v) for v in self._minimal.values()),
            "composed_routes": len(self._composed),
            "self_routes": len(self._self),
        }
