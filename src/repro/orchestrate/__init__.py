"""Parallel experiment orchestration: job graphs, caching, fault tolerance.

The paper's evaluation (Figs. 6–14) is a large set of independent
(topology, routing, traffic, load, seed) points.  This package executes
such campaigns across processes with checkpoint/resume semantics:

- :mod:`~repro.orchestrate.job` — declarative, content-hashed job specs
  and the in-worker executor (bit-identical to the serial path);
- :mod:`~repro.orchestrate.store` — the disk-backed result cache;
- :mod:`~repro.orchestrate.scheduler` — serial and process-pool
  back-ends with per-job timeout, retry with backoff, and worker-crash
  recovery;
- :mod:`~repro.orchestrate.telemetry` — JSONL event stream plus live
  TTY progress;
- :mod:`~repro.orchestrate.campaign` — the policy layer
  (:func:`run_campaign`, :class:`Orchestrator`);
- :mod:`~repro.orchestrate.sweeps` — builders mapping load sweeps and
  finite exchanges onto jobs.
"""

from repro.orchestrate.campaign import CampaignResult, Orchestrator, run_campaign
from repro.orchestrate.job import CACHE_VERSION, Job, JobResult, run_job, sim_config_dict
from repro.orchestrate.scheduler import (
    JobOutcome,
    ProcessPoolScheduler,
    SerialScheduler,
    make_scheduler,
)
from repro.orchestrate.store import ResultStore
from repro.orchestrate.sweeps import (
    cli_pattern_spec,
    cli_routing_spec,
    exchange_job,
    orchestrated_load_sweep,
    points_from_outcomes,
    sweep_jobs,
    workload_job,
    workload_size_jobs,
)
from repro.orchestrate.telemetry import Telemetry

__all__ = [
    "CACHE_VERSION",
    "Job",
    "JobResult",
    "run_job",
    "sim_config_dict",
    "JobOutcome",
    "SerialScheduler",
    "ProcessPoolScheduler",
    "make_scheduler",
    "ResultStore",
    "Telemetry",
    "CampaignResult",
    "Orchestrator",
    "run_campaign",
    "sweep_jobs",
    "exchange_job",
    "workload_job",
    "workload_size_jobs",
    "points_from_outcomes",
    "orchestrated_load_sweep",
    "cli_routing_spec",
    "cli_pattern_spec",
]
