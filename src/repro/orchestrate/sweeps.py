"""Builders that turn sweep/exchange descriptions into campaign jobs.

The seed contract mirrors :func:`repro.experiments.runner.load_sweep`:
point ``i`` of a sweep started at base seed ``s`` becomes a job with
``seed = s + i`` (routing seed ``s+i``, traffic seed ``s+i+1000`` inside
the worker) — so the orchestrated and serial paths produce bit-identical
:class:`SweepPoint` values for the same inputs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import SweepPoint
from repro.orchestrate.campaign import CampaignResult, Orchestrator
from repro.orchestrate.job import Job, sim_config_dict
from repro.sim.config import PAPER_CONFIG, SimConfig
from repro.topology.base import Topology

__all__ = [
    "sweep_jobs",
    "exchange_job",
    "workload_job",
    "workload_size_jobs",
    "points_from_outcomes",
    "orchestrated_load_sweep",
    "cli_routing_spec",
    "cli_pattern_spec",
]

#: A declarative routing/pattern spec: (registry name, picklable kwargs).
Spec = Tuple[str, Dict[str, Any]]


def sweep_jobs(
    topology_spec: str,
    routing: Spec,
    pattern: Spec,
    loads: Sequence[float],
    warmup_ns: float = 2_000.0,
    measure_ns: float = 6_000.0,
    seed: int = 0,
    arrival: str = "poisson",
    config: SimConfig = PAPER_CONFIG,
    tag: str = "",
) -> List[Job]:
    """One sweep job per offered-load point, ordered like the load grid."""
    routing_name, routing_kwargs = routing
    pattern_name, pattern_kwargs = pattern
    return [
        Job(
            kind="sweep",
            topology=topology_spec,
            routing=routing_name,
            routing_kwargs=dict(routing_kwargs),
            pattern=pattern_name,
            pattern_kwargs=dict(pattern_kwargs),
            load=load,
            seed=seed + i,
            warmup_ns=warmup_ns,
            measure_ns=measure_ns,
            arrival=arrival,
            config=sim_config_dict(config),
            tag=tag or f"{topology_spec}/{routing_name}/{pattern_name}",
        )
        for i, load in enumerate(loads)
    ]


def exchange_job(
    topology_spec: str,
    routing: Spec,
    exchange: Spec,
    seed: int = 0,
    config: SimConfig = PAPER_CONFIG,
    tag: str = "",
) -> Job:
    """One finite-exchange job (``exchange`` is ``("a2a"|"nn", kwargs)``)."""
    routing_name, routing_kwargs = routing
    exchange_name, exchange_kwargs = exchange
    return Job(
        kind="exchange",
        topology=topology_spec,
        routing=routing_name,
        routing_kwargs=dict(routing_kwargs),
        pattern=exchange_name,
        pattern_kwargs=dict(exchange_kwargs),
        load=0.0,
        seed=seed,
        config=sim_config_dict(config),
        tag=tag or f"{topology_spec}/{routing_name}/{exchange_name}",
    )


def workload_job(
    topology_spec: str,
    routing: Spec,
    workload: Spec,
    seed: int = 0,
    config: SimConfig = PAPER_CONFIG,
    tag: str = "",
) -> Job:
    """One collective-workload job.

    ``workload`` is ``(name, kwargs)`` with a name registered in
    :data:`repro.workload.WORKLOAD_GENERATORS` and kwargs understood by
    :func:`repro.workload.build_workload` (``message_bytes``, ``ranks``,
    plus generator extras like ``iterations`` or ``barrier``).
    """
    routing_name, routing_kwargs = routing
    workload_name, workload_kwargs = workload
    return Job(
        kind="workload",
        topology=topology_spec,
        routing=routing_name,
        routing_kwargs=dict(routing_kwargs),
        pattern=workload_name,
        pattern_kwargs=dict(workload_kwargs),
        load=0.0,
        seed=seed,
        config=sim_config_dict(config),
        tag=tag or f"{topology_spec}/{routing_name}/{workload_name}",
    )


def workload_size_jobs(
    topology_spec: str,
    routing: Spec,
    workload_name: str,
    message_sizes: Sequence[int],
    workload_kwargs: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    config: SimConfig = PAPER_CONFIG,
    tag: str = "",
) -> List[Job]:
    """One workload job per message size (completion-vs-size curves)."""
    base = dict(workload_kwargs or {})
    jobs = []
    for size in message_sizes:
        kwargs = dict(base)
        kwargs["message_bytes"] = int(size)
        jobs.append(
            workload_job(
                topology_spec,
                routing,
                (workload_name, kwargs),
                seed=seed,
                config=config,
                tag=(tag or f"{topology_spec}/{routing[0]}/{workload_name}")
                + f"/B{size}",
            )
        )
    return jobs


def points_from_outcomes(result: CampaignResult, job_ids: Sequence[str]) -> List[SweepPoint]:
    """Sweep points for *job_ids*, in order; raises if any of them failed."""
    points: List[SweepPoint] = []
    for job_id in job_ids:
        outcome = result.outcomes[job_id]
        if not outcome.ok or outcome.result is None:
            raise RuntimeError(f"sweep job {job_id} failed: {outcome.error}")
        points.append(outcome.result.sweep_point())
    return points


def orchestrated_load_sweep(
    topology_spec: str,
    routing: Spec,
    pattern: Spec,
    loads: Sequence[float],
    orchestrator: Optional[Orchestrator] = None,
    warmup_ns: float = 2_000.0,
    measure_ns: float = 6_000.0,
    seed: int = 0,
    arrival: str = "poisson",
    config: SimConfig = PAPER_CONFIG,
) -> List[SweepPoint]:
    """Drop-in declarative counterpart of :func:`load_sweep`.

    Bit-identical to the serial path for the same arguments; the
    orchestrator only changes *where* points execute.
    """
    jobs = sweep_jobs(
        topology_spec, routing, pattern, loads,
        warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
        arrival=arrival, config=config,
    )
    orch = orchestrator or Orchestrator(jobs=1)
    result = orch.run(jobs)
    return points_from_outcomes(result, result.order)


# --------------------------------------------------------------------------
# CLI-name -> declarative-spec translation (mirrors repro.cli defaults).
# --------------------------------------------------------------------------


def cli_routing_spec(topology: Topology, name: str) -> Spec:
    """The declarative spec matching ``repro.cli``'s routing defaults."""
    from repro.topology import SlimFly

    name = name.lower()
    if name == "min":
        return ("min", {})
    if name == "inr":
        return ("inr", {})
    if name in ("ugal", "ugal-a", "ugal-ath", "ugalth"):
        threshold = 0.10 if name in ("ugal-ath", "ugalth") else None
        if isinstance(topology, SlimFly):
            kwargs: Dict[str, Any] = {"cost_mode": "sf", "c_sf": 1.0, "num_indirect": 4}
        else:
            kwargs = {"c": 2.0, "num_indirect": 4}
        if threshold is not None:
            kwargs["threshold"] = threshold
        return ("ugal", kwargs)
    raise ValueError(f"unknown routing {name!r} (min | inr | ugal | ugal-ath)")


def cli_pattern_spec(topology: Topology, name: str, seed: int = 0) -> Spec:
    """The declarative spec matching ``repro.cli``'s pattern names."""
    name = name.lower()
    if name == "uniform":
        return ("uniform", {})
    if name == "worstcase":
        return ("worstcase", {"seed": seed})
    if name.startswith("shift"):
        _, _, arg = name.partition(":")
        if arg:
            return ("shift", {"shift": int(arg)})
        return ("shift", {})
    if name in ("bitcomp", "bitrev", "transpose", "tornado"):
        return (name, {})
    if name.startswith("hotspot"):
        _, _, arg = name.partition(":")
        return ("hotspot", {"fraction": float(arg) if arg else 0.2})
    raise ValueError(
        f"unknown pattern {name!r} (uniform | worstcase | shift[:k] | bitcomp | "
        f"bitrev | transpose | tornado | hotspot[:frac])"
    )
