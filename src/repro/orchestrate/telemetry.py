"""Campaign telemetry: a JSONL event stream plus a live TTY summary.

Every scheduler/campaign event is appended as one JSON object per line
(``{"ts": ..., "type": ..., ...payload}``) so external tools can tail a
running campaign.  When attached to a terminal, a single status line is
redrawn in place::

    jobs 37/96 run=4 fail=1 cache=12 | 1.8M ev/s | eta 41s

Aggregation (events per second per worker, ETA) happens here, off the
workers' hot path — workers only report raw counters.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Any, Dict, Optional, TextIO, Union

__all__ = ["Telemetry"]

PathLike = Union[str, pathlib.Path]


class Telemetry:
    """Collect campaign events; optionally persist and display them."""

    def __init__(
        self,
        jsonl_path: Optional[PathLike] = None,
        stream: Optional[TextIO] = None,
        live: Optional[bool] = None,
        clock=time.time,
        min_redraw_s: float = 0.1,
        flush_every: int = 1,
    ):
        self._clock = clock
        self._fh: Optional[TextIO] = None
        # External tailers (``repro serve``'s /events endpoint, `tail -f`)
        # only see an event once it reaches the file, so the sink is
        # flushed every ``flush_every`` lines — 1 (the default) means
        # after every event; 0 defers to the io buffer / close().
        self._flush_every = max(int(flush_every), 0)
        self._lines_since_flush = 0
        if jsonl_path is not None:
            path = pathlib.Path(jsonl_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = path.open("a")
        self._stream = stream if stream is not None else sys.stderr
        self._live = live if live is not None else self._stream.isatty()
        self._min_redraw_s = min_redraw_s
        self._last_redraw = 0.0
        self._dirty_line = False

        self._started = time.monotonic()
        self.counts: Dict[str, int] = {
            "total": 0, "running": 0, "done": 0, "failed": 0,
            "cache_hits": 0, "retries": 0, "crashes": 0, "timeouts": 0,
        }
        self.events_total = 0
        self.sim_seconds_total = 0.0
        self.per_worker: Dict[int, Dict[str, float]] = {}

    # -- event intake ------------------------------------------------------

    def emit(self, type: str, **payload: Any) -> None:
        self._update(type, payload)
        if self._fh is not None:
            record = {"ts": self._clock(), "type": type}
            record.update(payload)
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._lines_since_flush += 1
            if self._flush_every and self._lines_since_flush >= self._flush_every:
                self._fh.flush()
                self._lines_since_flush = 0
        if self._live:
            self._redraw()

    def _update(self, type: str, payload: Dict[str, Any]) -> None:
        c = self.counts
        if type == "campaign_start":
            c["total"] = int(payload.get("total", 0))
            self._started = time.monotonic()
        elif type == "job_start":
            c["running"] += 1
        elif type == "job_done":
            c["running"] = max(0, c["running"] - 1)
            c["done"] += 1
            events = int(payload.get("events", 0))
            duration = float(payload.get("duration_s", 0.0))
            self.events_total += events
            self.sim_seconds_total += duration
            pid = payload.get("worker_pid")
            if pid is not None:
                w = self.per_worker.setdefault(int(pid), {"events": 0.0, "busy_s": 0.0, "jobs": 0.0})
                w["events"] += events
                w["busy_s"] += duration
                w["jobs"] += 1
        elif type == "job_failed":
            c["running"] = max(0, c["running"] - 1)
            c["failed"] += 1
        elif type == "job_retry":
            c["running"] = max(0, c["running"] - 1)
            c["retries"] += 1
        elif type == "cache_hit":
            c["cache_hits"] += 1
        elif type == "worker_crash":
            c["crashes"] += 1
        elif type == "job_timeout":
            c["timeouts"] += 1

    # -- display -----------------------------------------------------------

    def _format_rate(self, per_second: float) -> str:
        if per_second >= 1e6:
            return f"{per_second / 1e6:.1f}M"
        if per_second >= 1e3:
            return f"{per_second / 1e3:.1f}k"
        return f"{per_second:.0f}"

    def status_line(self) -> str:
        c = self.counts
        finished = c["done"] + c["failed"] + c["cache_hits"]
        elapsed = max(time.monotonic() - self._started, 1e-9)
        rate = self.events_total / elapsed
        executed = c["done"] + c["failed"]
        remaining = max(c["total"] - finished, 0)
        if executed and remaining:
            eta = f"{remaining * (elapsed / executed):.0f}s"
        else:
            eta = "-" if remaining else "0s"
        return (
            f"jobs {finished}/{c['total']} run={c['running']} fail={c['failed']} "
            f"cache={c['cache_hits']} | {self._format_rate(rate)} ev/s | eta {eta}"
        )

    def _redraw(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_redraw < self._min_redraw_s:
            return
        self._last_redraw = now
        self._stream.write("\r\x1b[K" + self.status_line())
        self._stream.flush()
        self._dirty_line = True

    # -- summary / lifecycle ----------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Aggregate campaign statistics (also emitted as ``campaign_end``)."""
        elapsed = time.monotonic() - self._started
        per_worker = {
            str(pid): {
                "jobs": int(w["jobs"]),
                "events": int(w["events"]),
                "events_per_second": (w["events"] / w["busy_s"]) if w["busy_s"] else 0.0,
            }
            for pid, w in sorted(self.per_worker.items())
        }
        return {
            "wall_clock_s": elapsed,
            "jobs": dict(self.counts),
            "events_total": self.events_total,
            "events_per_second": self.events_total / elapsed if elapsed > 0 else 0.0,
            "sim_busy_s": self.sim_seconds_total,
            "per_worker": per_worker,
        }

    def close(self) -> None:
        if self._live and self._dirty_line:
            self._redraw(force=True)
            self._stream.write("\n")
            self._stream.flush()
            self._dirty_line = False
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
