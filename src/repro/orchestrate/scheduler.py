"""Job execution back-ends: in-process serial and multi-process pool.

The :class:`ProcessPoolScheduler` owns one dedicated task queue per
worker, so it always knows *which* job a worker held when it died — the
precondition for fault tolerance.  Failure handling is uniform across
the three failure modes:

- the job raised (worker survives, reports the exception),
- the worker crashed (process exits without reporting — detected by
  liveness polling, worker is respawned),
- the job timed out (worker is terminated and respawned).

Every failure consumes one attempt; a job is re-queued with exponential
backoff until ``max_retries`` extra attempts are exhausted, then marked
``failed``.  A failed job never aborts the campaign — graceful
degradation is the contract, the caller decides whether partial results
are acceptable.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.orchestrate.job import Job, JobResult, run_job

__all__ = ["JobOutcome", "SerialScheduler", "ProcessPoolScheduler", "make_scheduler"]

#: ``on_event(type, **payload)`` callback signature used for telemetry.
EventFn = Callable[..., None]


@dataclass
class JobOutcome:
    """Terminal state of one job after scheduling (including retries)."""

    job_id: str
    status: str  # "done" | "failed"
    result: Optional[JobResult] = None
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "done"


#: ``on_result(job_id, outcome)`` — invoked the moment a job reaches a
#: terminal state, so callers can checkpoint incrementally (an
#: interrupted campaign keeps every point finished before the
#: interrupt).
ResultFn = Callable[[str, JobOutcome], None]


def _noop_event(_type: str, **_payload) -> None:
    return None


class SerialScheduler:
    """Run jobs inline, in submission order, with the same retry contract.

    No crash isolation (a hard ``os._exit`` probe takes the caller with
    it) — use the process pool when jobs are untrusted; this back-end
    exists for ``--jobs 1``, debugging and deterministic tests.
    """

    def __init__(self, max_retries: int = 1, retry_backoff_s: float = 0.0):
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s

    def run(
        self,
        items: Sequence[Tuple[str, Job]],
        on_event: Optional[EventFn] = None,
        on_result: Optional[ResultFn] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> Dict[str, JobOutcome]:
        emit = on_event or _noop_event
        outcomes: Dict[str, JobOutcome] = {}

        def record(outcome: JobOutcome) -> None:
            outcomes[outcome.job_id] = outcome
            if on_result is not None:
                on_result(outcome.job_id, outcome)

        for dispatched, (job_id, job) in enumerate(items):
            # Cooperative drain: stop *dispatching*; the job currently
            # executing (it runs inline here) already finished.  Jobs
            # never dispatched are absent from the outcome map, which is
            # how callers distinguish "not run" from "failed".
            if stop_event is not None and stop_event.is_set():
                emit("drain", remaining=len(items) - dispatched)
                break
            attempt = 0
            while True:
                attempt += 1
                emit("job_start", job_id=job_id, attempt=attempt, worker=0)
                try:
                    result = run_job(job)
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    if attempt <= self.max_retries:
                        emit("job_retry", job_id=job_id, attempt=attempt, error=error)
                        if self.retry_backoff_s:
                            time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))
                        continue
                    record(JobOutcome(job_id, "failed", None, attempt, error))
                    emit("job_failed", job_id=job_id, attempts=attempt, error=error)
                    break
                record(JobOutcome(job_id, "done", result, attempt))
                emit(
                    "job_done",
                    job_id=job_id,
                    attempts=attempt,
                    events=result.events,
                    duration_s=result.duration_s,
                    worker_pid=result.worker_pid,
                )
                break
        return outcomes


# --------------------------------------------------------------------------
# Process pool.
# --------------------------------------------------------------------------


def _worker_main(worker_idx: int, task_q, result_q) -> None:
    """Worker loop: pull one job, run it, report, repeat until sentinel."""
    while True:
        item = task_q.get()
        if item is None:
            return
        job_id, job = item
        try:
            result = run_job(job)
        except Exception as exc:
            detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
            result_q.put(("error", worker_idx, job_id, detail))
        else:
            result_q.put(("ok", worker_idx, job_id, result))


@dataclass
class _WorkerSlot:
    process: mp.process.BaseProcess
    task_q: object
    #: (job_id, job, attempt, start_monotonic) while busy, else None.
    busy: Optional[Tuple[str, Job, int, float]] = None
    restarts: int = 0


@dataclass
class _Pending:
    """Retry-aware work list: immediate deque + backoff-delayed heap."""

    ready: List[Tuple[str, Job, int]] = field(default_factory=list)
    delayed: List[Tuple[float, int, str, Job, int]] = field(default_factory=list)
    _tie: int = 0

    def push(self, job_id: str, job: Job, attempt: int, ready_at: float = 0.0) -> None:
        if ready_at <= time.monotonic():
            self.ready.append((job_id, job, attempt))
        else:
            self._tie += 1
            heapq.heappush(self.delayed, (ready_at, self._tie, job_id, job, attempt))

    def promote(self) -> None:
        now = time.monotonic()
        while self.delayed and self.delayed[0][0] <= now:
            _, _, job_id, job, attempt = heapq.heappop(self.delayed)
            self.ready.append((job_id, job, attempt))

    def pop(self) -> Optional[Tuple[str, Job, int]]:
        self.promote()
        return self.ready.pop(0) if self.ready else None

    def __bool__(self) -> bool:
        return bool(self.ready or self.delayed)

    def __len__(self) -> int:
        return len(self.ready) + len(self.delayed)


class ProcessPoolScheduler:
    """Fan jobs out over ``num_workers`` OS processes.

    Parameters
    ----------
    num_workers:
        Pool size (defaults to ``os.cpu_count()``, capped at 8).
    timeout_s:
        Per-job wall-clock budget; an over-budget worker is terminated
        and the job charged one attempt.  ``None`` disables.
    max_retries:
        Extra attempts after the first failure before a job is
        ``failed``.
    retry_backoff_s:
        Base of the exponential re-queue delay
        (``backoff * 2**(attempt-1)``).
    start_method:
        ``multiprocessing`` start method; ``None`` uses the platform
        default (``fork`` on Linux, cheapest for our read-only jobs).
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        max_retries: int = 1,
        retry_backoff_s: float = 0.05,
        start_method: Optional[str] = None,
    ):
        if num_workers is None:
            num_workers = min(mp.cpu_count() or 1, 8)
        if num_workers < 1:
            raise ValueError(f"num_workers={num_workers} must be >= 1")
        self.num_workers = num_workers
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self._ctx = mp.get_context(start_method)

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, worker_idx: int, result_q) -> _WorkerSlot:
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_idx, task_q, result_q),
            daemon=True,
            name=f"repro-orch-{worker_idx}",
        )
        proc.start()
        return _WorkerSlot(process=proc, task_q=task_q)

    @staticmethod
    def _stop_slot(slot: _WorkerSlot, terminate: bool) -> None:
        if terminate:
            slot.process.terminate()
        else:
            try:
                slot.task_q.put(None)
            except (OSError, ValueError):
                slot.process.terminate()
        slot.process.join(timeout=2.0)
        if slot.process.is_alive():
            slot.process.kill()
            slot.process.join(timeout=2.0)
        # Release the queue's feeder thread/fds promptly.
        try:
            slot.task_q.close()
            slot.task_q.join_thread()
        except (OSError, ValueError, AttributeError):
            pass

    # -- main loop ---------------------------------------------------------

    def run(
        self,
        items: Sequence[Tuple[str, Job]],
        on_event: Optional[EventFn] = None,
        on_result: Optional[ResultFn] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> Dict[str, JobOutcome]:
        emit = on_event or _noop_event
        outcomes: Dict[str, JobOutcome] = {}
        if not items:
            return outcomes

        def stopped() -> bool:
            return stop_event is not None and stop_event.is_set()

        def record(outcome: JobOutcome) -> None:
            outcomes[outcome.job_id] = outcome
            if on_result is not None:
                on_result(outcome.job_id, outcome)

        pending = _Pending()
        for job_id, job in items:
            pending.push(job_id, job, 0)

        result_q = self._ctx.Queue()
        pool_size = min(self.num_workers, len(items))
        slots: Dict[int, _WorkerSlot] = {
            i: self._spawn(i, result_q) for i in range(pool_size)
        }

        def fail_or_retry(job_id: str, job: Job, attempt: int, error: str) -> None:
            if attempt <= self.max_retries:
                delay = self.retry_backoff_s * (2 ** (attempt - 1))
                emit("job_retry", job_id=job_id, attempt=attempt, error=error)
                pending.push(job_id, job, attempt, ready_at=time.monotonic() + delay)
            else:
                record(JobOutcome(job_id, "failed", None, attempt, error))
                emit("job_failed", job_id=job_id, attempts=attempt, error=error)

        drained = False
        try:
            while pending or any(s.busy for s in slots.values()):
                # Cooperative drain: stop dispatching, let in-flight
                # workers finish, leave undispatched jobs unrecorded
                # (callers re-queue them; see ``repro.serve``).
                if stopped() and not any(s.busy for s in slots.values()):
                    if not drained:
                        drained = True
                        emit("drain", remaining=len(pending))
                    break
                # Dispatch to idle workers.
                for idx, slot in slots.items():
                    if stopped():
                        if not drained:
                            drained = True
                            emit("drain", remaining=len(pending))
                        break
                    if slot.busy is not None:
                        continue
                    item = pending.pop()
                    if item is None:
                        break
                    job_id, job, attempt = item
                    slot.busy = (job_id, job, attempt + 1, time.monotonic())
                    slot.task_q.put((job_id, job))
                    emit("job_start", job_id=job_id, attempt=attempt + 1, worker=idx)

                # Collect one result (or time out and run the health checks).
                try:
                    kind, idx, job_id, payload = result_q.get(timeout=0.05)
                except queue_mod.Empty:
                    kind = None
                if kind is not None:
                    slot = slots[idx]
                    if slot.busy is not None:
                        _, job, attempt, _ = slot.busy
                    else:  # late message from a worker already written off
                        job, attempt = self._job_of(items, job_id), 1
                    slot.busy = None
                    if kind == "ok":
                        result: JobResult = payload
                        record(JobOutcome(job_id, "done", result, attempt))
                        emit(
                            "job_done",
                            job_id=job_id,
                            attempts=attempt,
                            events=result.events,
                            duration_s=result.duration_s,
                            worker_pid=result.worker_pid,
                        )
                    else:
                        fail_or_retry(job_id, job, attempt, str(payload))
                    continue

                # Health checks: crashes and timeouts.
                now = time.monotonic()
                for idx, slot in list(slots.items()):
                    if slot.busy is None:
                        if not slot.process.is_alive():
                            # Idle worker died (e.g. interpreter issue): respawn.
                            slots[idx] = self._spawn(idx, result_q)
                            slots[idx].restarts = slot.restarts + 1
                        continue
                    job_id, job, attempt, started = slot.busy
                    if not slot.process.is_alive():
                        # Crashed mid-job; drain any result it managed to send.
                        if self._drain_for(result_q, record, slots, emit):
                            continue
                        code = slot.process.exitcode
                        self._stop_slot(slot, terminate=True)
                        replacement = self._spawn(idx, result_q)
                        replacement.restarts = slot.restarts + 1
                        slots[idx] = replacement
                        emit("worker_crash", worker=idx, job_id=job_id, exitcode=code)
                        fail_or_retry(
                            job_id, job, attempt, f"worker crashed (exitcode {code})"
                        )
                    elif self.timeout_s is not None and now - started > self.timeout_s:
                        self._stop_slot(slot, terminate=True)
                        replacement = self._spawn(idx, result_q)
                        replacement.restarts = slot.restarts + 1
                        slots[idx] = replacement
                        emit("job_timeout", worker=idx, job_id=job_id,
                             timeout_s=self.timeout_s)
                        fail_or_retry(
                            job_id, job, attempt,
                            f"timed out after {self.timeout_s:g}s",
                        )
        finally:
            for slot in slots.values():
                self._stop_slot(slot, terminate=slot.busy is not None)
            try:
                result_q.close()
                result_q.join_thread()
            except (OSError, ValueError, AttributeError):
                pass
        return outcomes

    @staticmethod
    def _job_of(items: Sequence[Tuple[str, Job]], job_id: str) -> Job:
        for jid, job in items:
            if jid == job_id:
                return job
        raise KeyError(job_id)

    @staticmethod
    def _drain_for(result_q, record, slots, emit) -> bool:
        """Consume a late result that raced with crash detection."""
        try:
            kind, idx, job_id, payload = result_q.get_nowait()
        except queue_mod.Empty:
            return False
        slot = slots[idx]
        attempt = slot.busy[2] if slot.busy else 1
        slot.busy = None
        if kind == "ok":
            record(JobOutcome(job_id, "done", payload, attempt))
            emit("job_done", job_id=job_id, attempts=attempt,
                 events=payload.events, duration_s=payload.duration_s,
                 worker_pid=payload.worker_pid)
        else:
            record(JobOutcome(job_id, "failed", None, attempt, str(payload)))
            emit("job_failed", job_id=job_id, attempts=attempt, error=str(payload))
        return True


def make_scheduler(
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    retry_backoff_s: float = 0.05,
    start_method: Optional[str] = None,
):
    """``jobs == 1`` -> :class:`SerialScheduler`, else a process pool."""
    if jobs <= 1:
        return SerialScheduler(max_retries=max_retries, retry_backoff_s=retry_backoff_s)
    return ProcessPoolScheduler(
        num_workers=jobs,
        timeout_s=timeout_s,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        start_method=start_method,
    )
