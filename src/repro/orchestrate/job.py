"""Declarative, picklable job specs and their single-process executor.

A :class:`Job` captures one simulation point as plain data — topology
spec string, routing/pattern names plus keyword dictionaries, load,
seed and the :class:`~repro.sim.config.SimConfig` fields — so it can
cross a process boundary and be content-hashed for result caching.
``run_job`` rebuilds the live objects inside the worker and executes
through the same primitives as the serial path
(:func:`repro.experiments.runner.run_sweep_point`,
:func:`repro.experiments.runner.run_exchange`), which is what makes the
parallel and serial paths bit-identical for fixed seeds.

Four job kinds exist:

- ``"sweep"``: one offered-load point (the unit of Figs. 6–12),
- ``"exchange"``: one finite exchange to completion (Figs. 13/14),
- ``"workload"``: one collective-communication DAG driven closed-loop
  to completion (:mod:`repro.workload`),
- ``"probe"``: a scheduler self-test job (sleep / raise / hard-exit),
  used by the fault-tolerance tests and CI smoke runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.experiments.runner import (
    SweepPoint,
    run_exchange,
    run_sweep_point,
    run_workload,
)
from repro.sim.config import SimConfig
from repro.topology.base import Topology

__all__ = ["Job", "JobResult", "run_job", "CACHE_VERSION", "sim_config_dict"]

#: Bumped whenever the result schema or simulation semantics change in a
#: way that invalidates cached results; part of every content hash.
#: v2: SimConfig grew ``check`` (the invariant checker), so the config
#: dict -- and with it every content hash -- changed shape; checked and
#: unchecked runs cache separately (a cached hit would skip verification).
#: v3: SimConfig grew ``backend`` (object vs. batched engine).  Results
#: are bit-identical across backends by contract, but the config dict
#: changed shape, and per-backend caching keeps a conformance regression
#: from hiding behind a stale cross-backend cache hit.
#: v4: SimConfig grew ``faults``/``fault_policy`` (repro.resilience).
#: Fault-bearing and fault-free runs of the same point measure different
#: networks, so they must hash -- and cache -- separately.
#: v5: SimConfig.backend accepts ``"kernel"`` (the compiled event
#: kernel, repro.sim.vec.kernel).  Kernel results are bit-identical by
#: contract, but per-backend caching keeps a kernel conformance
#: regression from hiding behind a stale cross-backend cache hit --
#: same reasoning as v3.
CACHE_VERSION = 5


def sim_config_dict(config: SimConfig) -> Dict[str, Any]:
    """A SimConfig as a plain, hashable-by-content dictionary.

    JSON-canonical: the ``faults`` tuple becomes a list, so a spec
    survives a JSON round-trip unchanged (``SimConfig.__post_init__``
    re-normalizes on reconstruction).
    """
    d = dataclasses.asdict(config)
    d["faults"] = list(d["faults"])
    return d


@dataclass
class Job:
    """One unit of campaign work, as plain picklable data.

    ``tag`` is a presentation label (figure/series the point belongs
    to); it is *excluded* from the content hash so relabelled reruns of
    the same computation still hit the cache.
    """

    kind: str = "sweep"  # "sweep" | "exchange" | "workload" | "probe"
    topology: str = ""  # CLI spec string, e.g. "sf:q=5,p=floor"
    routing: str = "min"
    routing_kwargs: Dict[str, Any] = field(default_factory=dict)
    pattern: str = "uniform"  # traffic pattern or exchange name
    pattern_kwargs: Dict[str, Any] = field(default_factory=dict)
    load: float = 0.5
    seed: int = 0
    warmup_ns: float = 2_000.0
    measure_ns: float = 6_000.0
    arrival: str = "poisson"
    config: Dict[str, Any] = field(default_factory=lambda: sim_config_dict(SimConfig()))
    params: Dict[str, Any] = field(default_factory=dict)  # probe/exchange extras
    tag: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON of every result-determining field."""
        payload = self.to_dict()
        payload.pop("tag", None)
        payload["__cache_version__"] = CACHE_VERSION
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def sim_config(self) -> SimConfig:
        return SimConfig(**self.config)


@dataclass
class JobResult:
    """What a worker hands back: measured payload plus run telemetry."""

    kind: str
    payload: Dict[str, Any]
    events: int = 0
    duration_s: float = 0.0
    worker_pid: int = 0
    cached: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def sweep_point(self) -> SweepPoint:
        if self.kind != "sweep":
            raise ValueError(f"not a sweep result (kind={self.kind!r})")
        return SweepPoint(**self.payload)


# --------------------------------------------------------------------------
# Spec -> live object builders (run inside the worker process).
# --------------------------------------------------------------------------


def _build_topology(spec: str) -> Topology:
    from repro.cli import parse_topology  # lazy: cli never imports us at module level

    return parse_topology(spec)


def _build_routing(name: str, kwargs: Dict[str, Any], topology: Topology, seed: int):
    from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting

    name = name.lower()
    if name == "min":
        return MinimalRouting(topology, seed=seed, **kwargs)
    if name == "inr":
        return IndirectRandomRouting(topology, seed=seed, **kwargs)
    if name == "ugal":
        return UGALRouting(topology, seed=seed, **kwargs)
    raise ValueError(f"unknown routing {name!r} (min | inr | ugal)")


def _build_pattern(name: str, kwargs: Dict[str, Any], topology: Topology):
    from repro.traffic import (
        BitComplement,
        BitReverse,
        HotspotTraffic,
        ShiftTraffic,
        Tornado,
        Transpose,
        UniformRandom,
        worst_case_traffic,
    )

    name = name.lower()
    n = topology.num_nodes
    if name == "uniform":
        return UniformRandom(n)
    if name == "worstcase":
        return worst_case_traffic(topology, seed=int(kwargs.get("seed", 0)))
    if name == "shift":
        shift = kwargs.get("shift")
        if shift is None:
            shift = topology.nodes_attached(topology.endpoint_routers()[0])
        return ShiftTraffic(n, int(shift))
    if name == "bitcomp":
        return BitComplement(n)
    if name == "bitrev":
        return BitReverse(n)
    if name == "transpose":
        return Transpose(n)
    if name == "tornado":
        return Tornado(n)
    if name == "hotspot":
        return HotspotTraffic(
            n,
            hotspots=list(kwargs.get("hotspots", [0])),
            hot_fraction=float(kwargs.get("fraction", 0.2)),
        )
    raise ValueError(f"unknown pattern {name!r}")


def _build_exchange(name: str, kwargs: Dict[str, Any], topology: Topology):
    from repro.traffic import AllToAll, NearestNeighbor3D, paper_torus_dims

    name = name.lower()
    if name == "a2a":
        return AllToAll(
            topology.num_nodes,
            message_bytes=int(kwargs.get("message_bytes", 512)),
            seed=int(kwargs.get("seed", 0)),
        )
    if name == "nn":
        return NearestNeighbor3D(
            topology.num_nodes,
            message_bytes=int(kwargs.get("message_bytes", 4096)),
            dims=paper_torus_dims(topology),
        )
    raise ValueError(f"unknown exchange {name!r} (a2a | nn)")


def _build_workload(name: str, kwargs: Dict[str, Any], topology: Topology):
    from repro.workload import build_workload

    kw = dict(kwargs)
    message_bytes = int(kw.pop("message_bytes", 4096))
    ranks = kw.pop("ranks", None)
    if "dims" in kw and kw["dims"] is not None:  # JSON round-trips as list
        kw["dims"] = tuple(int(d) for d in kw["dims"])
    return build_workload(
        name, topology.num_nodes, message_bytes, ranks=ranks, **kw
    )


# --------------------------------------------------------------------------
# Execution.
# --------------------------------------------------------------------------


def _run_probe(job: Job) -> Dict[str, Any]:
    """Scheduler self-test behaviours (used by tests and CI smoke)."""
    behavior = job.params.get("behavior", "ok")
    if behavior == "ok":
        return {"value": job.params.get("value", job.seed)}
    if behavior == "sleep":
        time.sleep(float(job.params.get("seconds", 60.0)))
        return {"value": job.params.get("value", job.seed)}
    if behavior == "raise":
        raise RuntimeError(job.params.get("message", "probe job asked to raise"))
    if behavior == "exit":
        # Simulate a hard worker crash: no exception, no result message.
        os._exit(int(job.params.get("code", 17)))
    raise ValueError(f"unknown probe behavior {behavior!r}")


def run_job(job: Job) -> JobResult:
    """Execute one job in the current process and return its result.

    The seed contract matches :func:`repro.experiments.runner.load_sweep`
    exactly: for a sweep job, ``job.seed`` seeds the routing algorithm
    and ``job.seed + 1000`` seeds the traffic/arrival process, so a job
    built with ``seed = base + i`` reproduces point ``i`` of a serial
    sweep that started from ``base``.
    """
    start = time.perf_counter()
    stats_out: Dict[str, Any] = {}

    if job.kind == "probe":
        payload = _run_probe(job)
    elif job.kind == "sweep":
        topo = _build_topology(job.topology)
        routing = _build_routing(job.routing, job.routing_kwargs, topo, job.seed)
        pattern = _build_pattern(job.pattern, job.pattern_kwargs, topo)
        point = run_sweep_point(
            topo,
            routing,
            pattern,
            job.load,
            warmup_ns=job.warmup_ns,
            measure_ns=job.measure_ns,
            traffic_seed=job.seed + 1000,
            arrival=job.arrival,
            config=job.sim_config(),
            stats_out=stats_out,
        )
        payload = dataclasses.asdict(point)
    elif job.kind == "exchange":
        topo = _build_topology(job.topology)
        exchange = _build_exchange(job.pattern, job.pattern_kwargs, topo)
        payload = dict(
            run_exchange(
                topo,
                lambda t, s: _build_routing(job.routing, job.routing_kwargs, t, s),
                exchange,
                seed=job.seed,
                config=job.sim_config(),
            )
        )
    elif job.kind == "workload":
        topo = _build_topology(job.topology)
        workload = _build_workload(job.pattern, job.pattern_kwargs, topo)
        payload = dict(
            run_workload(
                topo,
                lambda t, s: _build_routing(job.routing, job.routing_kwargs, t, s),
                workload,
                seed=job.seed,
                config=job.sim_config(),
            )
        )
        stats_out["events_executed"] = payload.get("events", 0)
    else:
        raise ValueError(f"unknown job kind {job.kind!r}")

    return JobResult(
        kind=job.kind,
        payload=payload,
        events=int(stats_out.get("events_executed", 0)),
        duration_s=time.perf_counter() - start,
        worker_pid=os.getpid(),
    )
