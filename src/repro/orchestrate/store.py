"""Disk-backed result cache keyed by job content hash.

Layout on disk (one JSON file per completed job, sharded by hash
prefix so directories stay small even for million-point campaigns)::

    <root>/
      <hh>/                     # first two hex digits of the hash
        <full-hash>.json        # {"version", "job", "result", "created"}

A file is written atomically (temp file + ``os.replace``), so a killed
campaign never leaves a truncated entry behind; a corrupt or
version-mismatched entry reads as a miss, not an error.  Checkpoint and
resume fall out of the keying: re-running a campaign looks every job up
by hash, skips the hits and executes only the remainder.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from typing import Iterator, Optional, Union

from repro.orchestrate.job import CACHE_VERSION, Job, JobResult

__all__ = ["ResultStore"]

PathLike = Union[str, pathlib.Path]


class ResultStore:
    """Content-addressed store of :class:`JobResult` values."""

    def __init__(self, root: PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, job: Job) -> Optional[JobResult]:
        """The cached result for *job*, or None on miss/corruption."""
        path = self.path_for(job.content_hash())
        try:
            with path.open() as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("version") != CACHE_VERSION:
            return None
        try:
            result = JobResult.from_dict(entry["result"])
        except (KeyError, TypeError):
            return None
        result.cached = True
        return result

    def put(self, job: Job, result: JobResult) -> pathlib.Path:
        """Persist *result* under *job*'s content hash (atomically)."""
        path = self.path_for(job.content_hash())
        entry = {
            "version": CACHE_VERSION,
            "created": time.time(),
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        # A concurrent invalidate()/prune() may rmdir the shard between
        # our mkdir and mkstemp (FileNotFoundError), or between
        # Path.mkdir's internal os.mkdir collision and its is_dir()
        # re-check (surfacing as FileExistsError despite exist_ok=True);
        # recreate and retry either way.
        for _ in range(20):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                break
            except (FileNotFoundError, FileExistsError):
                continue
        else:
            raise OSError(f"cannot create temp file in {path.parent}")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def read_entry(self, key: str) -> Optional[dict]:
        """The raw on-disk entry for *key* (hash), or None on miss.

        Unlike :meth:`get` this returns the whole record — job spec,
        result and creation time — which is what the service layer's
        ``GET /v1/results/{hash}`` endpoint hands back verbatim.
        """
        try:
            with self.path_for(key).open() as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return entry if entry.get("version") == CACHE_VERSION else None

    def invalidate(self, job: Job) -> bool:
        """Drop *job*'s cached entry; True if one existed."""
        path = self.path_for(job.content_hash())
        try:
            path.unlink()
        except OSError:
            return False
        self._rmdir_if_empty(path.parent)
        return True

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every entry (and writer debris); returns entries removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._sweep_debris()
        return removed

    def prune(self, max_age_s: float, now: Optional[float] = None) -> int:
        """Drop entries older than *max_age_s* seconds; returns entries removed.

        Age comes from the entry's ``created`` stamp (file mtime for
        unreadable entries, so corruption ages out too).  Orphaned
        ``*.tmp`` files from crashed writers past the cutoff and
        emptied shard directories are swept as well — this is the GC
        the server runs periodically on its result store.
        """
        cutoff = (time.time() if now is None else now) - max_age_s
        removed = 0
        for path in list(self.root.glob("??/*.json")):
            created: Optional[float] = None
            try:
                with path.open() as fh:
                    created = json.load(fh).get("created")
            except (OSError, json.JSONDecodeError):
                created = None
            if not isinstance(created, (int, float)):
                try:
                    created = path.stat().st_mtime
                except OSError:
                    continue
            if created <= cutoff:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        self._sweep_debris(tmp_cutoff=cutoff)
        return removed

    # -- housekeeping ------------------------------------------------------

    def _sweep_debris(self, tmp_cutoff: Optional[float] = None) -> None:
        """Remove orphaned temp files (all, or older than a cutoff) and
        then any shard directory left empty."""
        for tmp in list(self.root.glob("??/*.tmp")):
            try:
                if tmp_cutoff is None or tmp.stat().st_mtime <= tmp_cutoff:
                    tmp.unlink()
            except OSError:
                pass
        for shard in list(self.root.glob("??")):
            if shard.is_dir():
                self._rmdir_if_empty(shard)

    @staticmethod
    def _rmdir_if_empty(shard: pathlib.Path) -> None:
        try:
            shard.rmdir()  # refuses (OSError) unless empty
        except OSError:
            pass
