"""Disk-backed result cache keyed by job content hash.

Layout on disk (one JSON file per completed job, sharded by hash
prefix so directories stay small even for million-point campaigns)::

    <root>/
      <hh>/                     # first two hex digits of the hash
        <full-hash>.json        # {"version", "job", "result", "created"}

A file is written atomically (temp file + ``os.replace``), so a killed
campaign never leaves a truncated entry behind; a corrupt or
version-mismatched entry reads as a miss, not an error.  Checkpoint and
resume fall out of the keying: re-running a campaign looks every job up
by hash, skips the hits and executes only the remainder.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from typing import Iterator, Optional, Union

from repro.orchestrate.job import CACHE_VERSION, Job, JobResult

__all__ = ["ResultStore"]

PathLike = Union[str, pathlib.Path]


class ResultStore:
    """Content-addressed store of :class:`JobResult` values."""

    def __init__(self, root: PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, job: Job) -> Optional[JobResult]:
        """The cached result for *job*, or None on miss/corruption."""
        path = self.path_for(job.content_hash())
        try:
            with path.open() as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("version") != CACHE_VERSION:
            return None
        try:
            result = JobResult.from_dict(entry["result"])
        except (KeyError, TypeError):
            return None
        result.cached = True
        return result

    def put(self, job: Job, result: JobResult) -> pathlib.Path:
        """Persist *result* under *job*'s content hash (atomically)."""
        path = self.path_for(job.content_hash())
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "created": time.time(),
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def invalidate(self, job: Job) -> bool:
        """Drop *job*'s cached entry; True if one existed."""
        path = self.path_for(job.content_hash())
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
