"""Campaign execution: cache lookup, scheduling, persistence, summary.

``run_campaign`` is the policy layer tying the pieces together:

1. (``force``) drop every matching cache entry up front;
2. (``resume``) satisfy jobs from the :class:`ResultStore` by content
   hash — hits execute nothing;
3. fan the remainder out through a scheduler (serial or process pool);
4. persist every freshly computed success back to the store;
5. aggregate telemetry into a campaign summary.

A failed job is recorded as ``failed`` in the result map — never fatal
to the rest of the campaign.  :class:`Orchestrator` packages the same
flow behind a small object so experiment code (``figures.py``, the CLI)
can take one optional parameter instead of five.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.orchestrate.job import Job
from repro.orchestrate.scheduler import JobOutcome, make_scheduler
from repro.orchestrate.store import ResultStore
from repro.orchestrate.telemetry import Telemetry

__all__ = ["CampaignResult", "run_campaign", "Orchestrator"]

PathLike = Union[str, pathlib.Path]


@dataclass
class CampaignResult:
    """Outcome of every job, in submission order, plus summary stats."""

    order: List[str]
    outcomes: Dict[str, JobOutcome]
    stats: Dict[str, Any] = field(default_factory=dict)

    def outcome_list(self) -> List[JobOutcome]:
        return [self.outcomes[job_id] for job_id in self.order]

    @property
    def failed(self) -> List[JobOutcome]:
        return [o for o in self.outcome_list() if not o.ok]

    def raise_on_failure(self) -> "CampaignResult":
        bad = self.failed
        if bad:
            detail = "; ".join(f"{o.job_id}: {o.error}" for o in bad[:5])
            raise RuntimeError(
                f"{len(bad)} of {len(self.order)} campaign jobs failed ({detail})"
            )
        return self


def run_campaign(
    jobs: Sequence[Job],
    scheduler=None,
    store: Optional[ResultStore] = None,
    resume: bool = True,
    force: bool = False,
    telemetry: Optional[Telemetry] = None,
) -> CampaignResult:
    """Execute *jobs* (a flat list of :class:`Job`) and collect outcomes.

    Job ids are ``"<index>-<hash prefix>"`` — unique even when the same
    content appears twice (duplicates are still only *executed* once if
    a store is attached, because the second occurrence hits the cache
    written by the first... on the next campaign; within one campaign
    duplicates run independently to keep scheduling simple).
    """
    own_telemetry = telemetry is None
    tele = telemetry or Telemetry(live=False)
    sched = scheduler or make_scheduler(1)

    order: List[str] = []
    outcomes: Dict[str, JobOutcome] = {}
    to_run: List[Tuple[str, Job]] = []

    tele.emit("campaign_start", total=len(jobs))
    try:
        for index, job in enumerate(jobs):
            job_id = f"{index:04d}-{job.content_hash()[:10]}"
            order.append(job_id)
            if store is not None and force:
                store.invalidate(job)
            cached = store.get(job) if (store is not None and resume and not force) else None
            if cached is not None:
                outcomes[job_id] = JobOutcome(job_id, "done", cached, attempts=0)
                tele.emit("cache_hit", job_id=job_id, tag=job.tag)
            else:
                to_run.append((job_id, job))

        if to_run:
            by_id = dict(to_run)

            def persist(job_id: str, outcome: JobOutcome) -> None:
                # Checkpoint the moment each point finishes: an
                # interrupted campaign keeps everything completed so far.
                if store is not None and outcome.ok and outcome.result is not None:
                    store.put(by_id[job_id], outcome.result)

            outcomes.update(sched.run(to_run, on_event=tele.emit, on_result=persist))

        stats = tele.summary()
        stats["executed"] = len(to_run)
        stats["cache_hits"] = stats["jobs"]["cache_hits"]
        tele.emit("campaign_end", **{k: v for k, v in stats.items() if k != "per_worker"})
    finally:
        if own_telemetry:
            tele.close()
    return CampaignResult(order=order, outcomes=outcomes, stats=stats)


class Orchestrator:
    """One-stop configuration of the parallel execution subsystem.

    >>> orch = Orchestrator(jobs=4, cache_dir=".repro-cache", resume=True)
    >>> result = orch.run(jobs)          # CampaignResult
    >>> orch.last_stats["wall_clock_s"]
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[PathLike] = None,
        resume: bool = False,
        force: bool = False,
        timeout_s: Optional[float] = None,
        max_retries: int = 1,
        retry_backoff_s: float = 0.05,
        start_method: Optional[str] = None,
        telemetry_path: Optional[PathLike] = None,
        progress: Optional[bool] = None,
    ):
        self.jobs = jobs
        self.store = ResultStore(cache_dir) if cache_dir is not None else None
        self.resume = resume
        self.force = force
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.start_method = start_method
        self.telemetry_path = telemetry_path
        self.progress = progress
        self.last_stats: Dict[str, Any] = {}

    def scheduler(self):
        return make_scheduler(
            self.jobs,
            timeout_s=self.timeout_s,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s,
            start_method=self.start_method,
        )

    def run(self, jobs: Sequence[Job], strict: bool = False) -> CampaignResult:
        with Telemetry(jsonl_path=self.telemetry_path, live=self.progress) as tele:
            result = run_campaign(
                jobs,
                scheduler=self.scheduler(),
                store=self.store,
                resume=self.resume,
                force=self.force,
                telemetry=tele,
            )
        self.last_stats = result.stats
        return result.raise_on_failure() if strict else result
