"""Deterministic seed derivation.

Experiments involve many independent random streams (one per node, per
sweep point, per restart); deriving them all from one master seed keeps
every run exactly reproducible.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["spawn_seeds"]


def spawn_seeds(master_seed: int, count: int) -> List[int]:
    """Derive *count* independent 64-bit seeds from *master_seed*."""
    if count < 0:
        raise ValueError(f"spawn_seeds: count={count} must be non-negative")
    rng = random.Random(master_seed)
    return [rng.getrandbits(64) for _ in range(count)]
