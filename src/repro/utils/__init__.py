"""Small shared utilities."""

from repro.utils.rng import spawn_seeds

__all__ = ["spawn_seeds"]
