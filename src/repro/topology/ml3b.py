"""The Maximal Leaves Basic Building Block (k-ML3B) of the OFT.

Paper Sec. 2.2.4: the interconnection pattern of the Single-Path Tree
that generates the two-level Orthogonal Fat-Tree is the ``k``-ML3B, an
``RL x k`` table (``RL = 1 + k(k-1)``) whose *i*-th row lists the level-1
routers adjacent to level-0 router *i*.  The construction is defined for
``k = prime + 1`` and is built from the complete family of Mutually
Orthogonal Latin Squares of order ``k - 1``:

1. row 0 holds ``RL-k .. RL-1``;
2. the first column of the remaining rows holds ``k-1`` copies of each of
   ``RL-k .. RL-1``;
3. the remaining ``k(k-1) x (k-1)`` area is split into ``k`` squares of
   size ``(k-1) x (k-1)``: the first is ``0 .. (k-1)^2 - 1`` row-major,
   the second its transpose, and the remaining ``k-2`` are the MOLS
   ``L_a(i,j) = i + a*j mod (k-1)`` with column ``j`` shifted by
   ``j * (k-1)``.

The resulting table is the incidence structure of a projective plane of
order ``k - 1``: any two rows share exactly one value and every value
appears in exactly ``k`` rows -- this is what gives the SPT its
single-path property.  :func:`verify_ml3b` checks these invariants.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.maths.mols import galois_latin_square
from repro.maths.primes import is_prime_power

__all__ = ["ml3b_table", "verify_ml3b", "valid_oft_k"]


def valid_oft_k(k: int) -> bool:
    """``True`` iff the ``k``-ML3B is constructible.

    The paper describes the algorithm for ``k - 1`` prime; our MOLS
    substrate is built over ``GF(k - 1)``, which extends the identical
    construction to any *prime power* ``k - 1`` (e.g. ``k = 5, 9, 10``)
    -- the projective-plane argument only needs a complete MOLS family.
    """
    return k >= 3 and is_prime_power(k - 1)


def ml3b_table(k: int) -> np.ndarray:
    """Return the ``RL x k`` tabular representation of the ``k``-ML3B.

    Reproduces the paper's Table 2 exactly for ``k = 4``.
    """
    if not valid_oft_k(k):
        raise ValueError(f"ml3b_table: k={k} requires k-1 a prime power and k >= 3")
    n = k - 1  # prime-power order of the underlying MOLS / projective plane
    rl = 1 + k * n
    table = np.empty((rl, k), dtype=np.int64)

    top = np.arange(rl - k, rl)  # the k "top" values
    table[0, :] = top
    # First column: k-1 copies of each top value, in order.
    for t in range(k):
        table[1 + t * n : 1 + (t + 1) * n, 0] = top[t]

    col_shift = np.arange(n) * n  # the "+ (i-1)(k-1) per column" transform

    # Square 0: 0 .. n^2-1 row-major.
    square = np.arange(n * n).reshape(n, n)
    table[1 : 1 + n, 1:] = square
    # Square 1: its transpose == L_0(i, j) = i, plus the column shift.
    table[1 + n : 1 + 2 * n, 1:] = square.T
    # Squares 2 .. k-1: the k-2 MOLS L_a(i,j) = i + a*j over GF(n)
    # (a = 1 .. n-1; for prime n this is plain modular arithmetic and
    # reproduces the paper's Table 2 exactly), column j shifted by j*n.
    for idx, a in enumerate(range(1, n), start=1):
        block = galois_latin_square(n, a) + col_shift[np.newaxis, :]
        start = 1 + (idx + 1) * n
        table[start : start + n, 1:] = block
    return table


def verify_ml3b(table: np.ndarray) -> List[str]:
    """Return a list of violated invariants (empty == valid).

    Checks the projective-plane properties that underpin the SPT
    single-path guarantee:

    - every row holds ``k`` distinct values in ``[0, RL)``;
    - every value appears in exactly ``k`` rows;
    - any two distinct rows share exactly one common value.
    """
    table = np.asarray(table)
    problems: List[str] = []
    rl, k = table.shape
    if rl != 1 + k * (k - 1):
        problems.append(f"shape {table.shape} inconsistent: RL != 1 + k(k-1)")
        return problems
    if table.min() < 0 or table.max() >= rl:
        problems.append("values out of range [0, RL)")
    rows = [set(map(int, table[i])) for i in range(rl)]
    for i, row in enumerate(rows):
        if len(row) != k:
            problems.append(f"row {i} has repeated values")
    counts = np.bincount(table.ravel(), minlength=rl)
    bad_values = np.nonzero(counts != k)[0]
    if bad_values.size:
        problems.append(f"values {bad_values[:5].tolist()} do not appear exactly k times")
    for i in range(rl):
        for j in range(i + 1, rl):
            inter = len(rows[i] & rows[j])
            if inter != 1:
                problems.append(f"rows {i},{j} share {inter} values (want 1)")
                if len(problems) > 10:
                    return problems
    return problems
