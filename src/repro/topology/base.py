"""Core topology model shared by every network in the paper.

A :class:`Topology` is an undirected router graph plus an assignment of
end-nodes to routers.  Construction code in the sibling modules
(:mod:`repro.topology.slimfly`, :mod:`repro.topology.mlfm`, ...) produces
instances of (subclasses of) this class; routing, analysis and the
simulator consume them through the interface defined here.

Conventions
-----------
- Routers are integers ``0 .. num_routers - 1``.  Each concrete topology
  chooses its router numbering to match the paper's "morphology order"
  (Sec. 4.4) so that the contiguous process-to-node mapping used in the
  exchange experiments is reproduced faithfully.
- End-nodes are integers ``0 .. num_nodes - 1``, assigned contiguously to
  routers in router-id order (only routers with ``p > 0`` attached nodes
  receive ids).
- ``link_class(u, v)`` classifies the *directed* channel ``u -> v`` for
  deadlock analysis: topologies with an up/down structure (the SSPTs:
  MLFM and OFT) return :data:`LINK_UP` for channels toward the hub level
  and :data:`LINK_DOWN` for channels away from it; flat topologies (Slim
  Fly, HyperX) return :data:`LINK_FLAT`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = ["Topology", "LINK_FLAT", "LINK_UP", "LINK_DOWN"]

LINK_FLAT = 0
LINK_UP = 1
LINK_DOWN = 2


class Topology:
    """An undirected router graph with end-nodes attached to routers.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"SF(q=13,p=9)"``.
    adjacency:
        ``adjacency[r]`` is the list of routers adjacent to router ``r``.
        Must be symmetric, loop-free and duplicate-free.
    nodes_per_router:
        ``nodes_per_router[r]`` end-nodes are attached to router ``r``.
    params:
        The defining parameters of the instance (for reporting).
    """

    def __init__(
        self,
        name: str,
        adjacency: Sequence[Sequence[int]],
        nodes_per_router: Sequence[int],
        params: Optional[Dict[str, object]] = None,
    ):
        if len(adjacency) != len(nodes_per_router):
            raise ValueError(
                f"{name}: adjacency ({len(adjacency)} routers) and nodes_per_router "
                f"({len(nodes_per_router)}) disagree"
            )
        self.name = name
        self.params: Dict[str, object] = dict(params or {})
        self._adj: List[List[int]] = [sorted(set(neigh)) for neigh in adjacency]
        self._validate_adjacency()
        self._nodes_per_router: List[int] = [int(c) for c in nodes_per_router]
        if any(c < 0 for c in self._nodes_per_router):
            raise ValueError(f"{name}: negative node count")

        # Contiguous node-id assignment in router order.
        self._router_nodes: List[List[int]] = []
        self._node_router: List[int] = []
        nid = 0
        for r, count in enumerate(self._nodes_per_router):
            ids = list(range(nid, nid + count))
            self._router_nodes.append(ids)
            self._node_router.extend([r] * count)
            nid += count
        self.node_router: np.ndarray = np.asarray(self._node_router, dtype=np.int64)

        # Derived caches.
        self._neighbor_sets: List[Set[int]] = [set(n) for n in self._adj]
        self._port_of: List[Dict[int, int]] = [
            {neighbor: port for port, neighbor in enumerate(neigh)} for neigh in self._adj
        ]

    # -- size & cost metrics ----------------------------------------------

    @property
    def num_routers(self) -> int:
        """Number of routers ``R``."""
        return len(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of end-nodes ``N``."""
        return len(self._node_router)

    @property
    def num_router_links(self) -> int:
        """Number of router-to-router links."""
        return sum(len(n) for n in self._adj) // 2

    @property
    def num_links(self) -> int:
        """Total links ``Nl`` (router-router plus node-router)."""
        return self.num_router_links + self.num_nodes

    @property
    def num_ports(self) -> int:
        """Total router ports ``Np`` (network ports plus node-facing ports)."""
        return sum(len(n) for n in self._adj) + self.num_nodes

    def links_per_node(self) -> float:
        """Cost metric ``Nl / N`` (the paper's headline "2 links")."""
        return self.num_links / self.num_nodes

    def ports_per_node(self) -> float:
        """Cost metric ``Np / N`` (the paper's headline "3 ports")."""
        return self.num_ports / self.num_nodes

    # -- graph access --------------------------------------------------------

    def neighbors(self, router: int) -> List[int]:
        """Sorted list of routers adjacent to *router*."""
        return self._adj[router]

    def neighbor_set(self, router: int) -> Set[int]:
        """Set view of :meth:`neighbors` (cached)."""
        return self._neighbor_sets[router]

    def degree(self, router: int) -> int:
        """Network degree (number of router-to-router links) of *router*."""
        return len(self._adj[router])

    def radix(self, router: int) -> int:
        """Full radix: network links plus attached end-nodes."""
        return len(self._adj[router]) + self._nodes_per_router[router]

    def max_radix(self) -> int:
        """Largest router radix in the topology (the ``r`` of Fig. 3)."""
        return max(self.radix(r) for r in range(self.num_routers))

    def is_edge(self, a: int, b: int) -> bool:
        """``True`` iff routers *a* and *b* are directly connected."""
        return b in self._neighbor_sets[a]

    def port(self, a: int, b: int) -> int:
        """Output-port index used by router *a* to reach neighbor *b*."""
        return self._port_of[a][b]

    def common_neighbors(self, a: int, b: int) -> List[int]:
        """Routers adjacent to both *a* and *b* (sorted)."""
        small, large = (
            (self._neighbor_sets[a], self._neighbor_sets[b])
            if len(self._adj[a]) <= len(self._adj[b])
            else (self._neighbor_sets[b], self._neighbor_sets[a])
        )
        return sorted(x for x in small if x in large)

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate over undirected router-router edges ``(a, b)`` with a < b."""
        for a, neigh in enumerate(self._adj):
            for b in neigh:
                if a < b:
                    yield (a, b)

    def directed_channels(self) -> Iterable[Tuple[int, int]]:
        """Iterate over all directed router-router channels ``(u, v)``."""
        for a, neigh in enumerate(self._adj):
            for b in neigh:
                yield (a, b)

    # -- end-nodes ----------------------------------------------------------

    def nodes_of(self, router: int) -> List[int]:
        """End-node ids attached to *router*."""
        return self._router_nodes[router]

    def router_of(self, node: int) -> int:
        """Router an end-node is attached to."""
        return int(self.node_router[node])

    def nodes_attached(self, router: int) -> int:
        """Number of end-nodes attached to *router*."""
        return self._nodes_per_router[router]

    def endpoint_routers(self) -> List[int]:
        """Routers with at least one attached end-node, in id order."""
        return [r for r, c in enumerate(self._nodes_per_router) if c > 0]

    # -- routing/deadlock hooks (overridden by structured topologies) --------

    def link_class(self, u: int, v: int) -> int:
        """Deadlock class of the directed channel ``u -> v``.

        Flat (default).  SSPT subclasses override this to expose their
        up/down structure (paper Sec. 3.4).
        """
        return LINK_FLAT

    def valiant_intermediates(self) -> List[int]:
        """Eligible Valiant intermediate routers (paper Sec. 3.2).

        Default: routers with end-nodes.  The Slim Fly overrides this to
        allow *any* router.
        """
        return self.endpoint_routers()

    # -- interop -----------------------------------------------------------

    def to_networkx(self):
        """Router graph as a :class:`networkx.Graph` (lazy import)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_routers))
        g.add_edges_from(self.edges())
        return g

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency matrix of the router graph."""
        mat = np.zeros((self.num_routers, self.num_routers), dtype=bool)
        for a, b in self.edges():
            mat[a, b] = mat[b, a] = True
        return mat

    # -- diagnostics --------------------------------------------------------

    def diameter(self) -> int:
        """Exact router-graph diameter via BFS from every router."""
        worst = 0
        for source in range(self.num_routers):
            worst = max(worst, max(self._bfs_distances(source)))
        return worst

    def endpoint_diameter(self) -> int:
        """Largest distance between two routers that carry end-nodes.

        This is the paper's "diameter": for the indirect topologies the
        hub routers (GRs / L1) sit *between* endpoint routers, so the
        plain router-graph diameter exceeds 2 even though every
        node-to-node minimal route crosses at most 2 router-router
        links.
        """
        ep = self.endpoint_routers()
        ep_set = set(ep)
        worst = 0
        for source in ep:
            dist = self._bfs_distances(source)
            worst = max(worst, max(dist[r] for r in ep_set))
        return worst

    def _bfs_distances(self, source: int) -> List[int]:
        dist = [-1] * self.num_routers
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier:
            d += 1
            nxt: List[int] = []
            for u in frontier:
                for v in self._adj[u]:
                    if dist[v] < 0:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        if any(x < 0 for x in dist):
            raise ValueError(f"{self.name}: router graph is disconnected")
        return dist

    def _validate_adjacency(self) -> None:
        for a, neigh in enumerate(self._adj):
            for b in neigh:
                if b == a:
                    raise ValueError(f"{self.name}: self-loop at router {a}")
                if not (0 <= b < len(self._adj)):
                    raise ValueError(f"{self.name}: router {a} links to unknown router {b}")
                if a not in self._adj[b]:
                    raise ValueError(f"{self.name}: asymmetric edge {a} -> {b}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name}: R={self.num_routers} "
            f"N={self.num_nodes} r={self.max_radix()}>"
        )
