"""Network topologies studied by the paper.

Diameter-two designs:

- :class:`repro.topology.SlimFly` -- direct MMS-graph topology (Sec. 2.1.2),
- :class:`repro.topology.HyperX2D` -- direct generalized hypercube (Sec. 2.1.1),
- :class:`repro.topology.FatTree2L` -- indirect baseline (Sec. 2.2.1),
- :class:`repro.topology.MLFM` -- Multi-Layer Full-Mesh SSPT (Sec. 2.2.3),
- :class:`repro.topology.OFT` -- two-level Orthogonal Fat-Tree SSPT (Sec. 2.2.4).

Reference topologies for cost/scalability comparison:

- :class:`repro.topology.FatTree3L` (diameter 4),
- :class:`repro.topology.Dragonfly` (diameter 3).

All of them are :class:`repro.topology.Topology` instances; see
:mod:`repro.topology.base` for the shared interface.
"""

from repro.topology.base import LINK_DOWN, LINK_FLAT, LINK_UP, Topology
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree2L, FatTree3L
from repro.topology.hyperx import HyperX2D
from repro.topology.ml3b import ml3b_table, valid_oft_k, verify_ml3b
from repro.topology.mlfm import MLFM
from repro.topology.oft import OFT
from repro.topology.slimfly import SlimFly, slim_fly_delta, slim_fly_generator_sets, valid_slim_fly_q
from repro.topology.spt import SSPT, spt_incidence, verify_spt_incidence
from repro.topology.serialize import (
    LoadedTopology,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.validate import ValidationReport, validate_topology

__all__ = [
    "Topology",
    "LINK_FLAT",
    "LINK_UP",
    "LINK_DOWN",
    "SlimFly",
    "slim_fly_delta",
    "slim_fly_generator_sets",
    "valid_slim_fly_q",
    "HyperX2D",
    "FatTree2L",
    "FatTree3L",
    "MLFM",
    "OFT",
    "SSPT",
    "spt_incidence",
    "verify_spt_incidence",
    "ml3b_table",
    "verify_ml3b",
    "valid_oft_k",
    "Dragonfly",
    "ValidationReport",
    "validate_topology",
    "LoadedTopology",
    "save_topology",
    "load_topology",
    "topology_to_dict",
    "topology_from_dict",
]
