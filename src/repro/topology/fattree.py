"""Two-level and three-level Fat-Trees (comparison baselines).

Paper Sec. 2.2.1 and Fig. 3: the full-bisection two-level Fat-Tree built
from radix-``r`` routers has ``r`` level-1 routers with ``p = r/2``
end-nodes each, ``r/2`` level-2 routers, ``N = r^2 / 2`` end-nodes and a
cost of 3 ports / 2 links per end-node; its diameter is 2.

The three-level Fat-Tree baseline of Fig. 3 (``N ~ r^3/4``, 5 ports and
3 links per end-node, diameter 4) is the classic folded-Clos / "pod"
construction: ``r`` pods of ``r/2`` edge + ``r/2`` aggregation routers,
plus ``(r/2)^2`` core routers.
"""

from __future__ import annotations

from typing import List

from repro.topology.base import LINK_DOWN, LINK_UP, Topology

__all__ = ["FatTree2L", "FatTree3L"]


class FatTree2L(Topology):
    """Full-bisection two-level Fat-Tree from radix-``r`` routers.

    Level-1 router ``i`` (ids ``0 .. r-1``) has one link to each of the
    ``r/2`` level-2 routers (ids ``r .. 3r/2 - 1``) -- the graph is the
    complete bipartite ``K(r, r/2)``.
    """

    def __init__(self, r: int):
        if r < 2 or r % 2 != 0:
            raise ValueError(f"FatTree2L: radix r={r} must be even and >= 2")
        half = r // 2
        num_l1 = r
        num_l2 = half
        num_routers = num_l1 + num_l2
        adjacency: List[List[int]] = [[] for _ in range(num_routers)]
        for i in range(num_l1):
            for j in range(num_l2):
                adjacency[i].append(num_l1 + j)
                adjacency[num_l1 + j].append(i)
        nodes_per_router = [half] * num_l1 + [0] * num_l2
        super().__init__(
            name=f"FT2(r={r})",
            adjacency=adjacency,
            nodes_per_router=nodes_per_router,
            params={"r": r, "p": half},
        )
        self.r = r
        self.p = half
        self.num_l1 = num_l1
        self.num_l2 = num_l2

    def is_leaf(self, router: int) -> bool:
        """``True`` for level-1 (end-node-bearing) routers."""
        return router < self.num_l1

    def link_class(self, u: int, v: int) -> int:
        """Up toward level 2, down toward level 1."""
        return LINK_UP if not self.is_leaf(v) else LINK_DOWN

    @staticmethod
    def expected_num_nodes(r: int) -> int:
        """``N = r^2 / 2``."""
        return r * r // 2


class FatTree3L(Topology):
    """Three-level folded-Clos Fat-Tree (Fig. 3 baseline; diameter 4).

    ``r`` pods; pod ``g`` has edge routers ``(g, 0..r/2-1)`` each with
    ``r/2`` end-nodes and aggregation routers ``(g, 0..r/2-1)``; pods are
    internally complete-bipartite between edge and aggregation.  Core
    router ``(a, c)`` (``a, c in [0, r/2)``) connects to aggregation
    router ``a`` of every pod.
    """

    def __init__(self, r: int):
        if r < 2 or r % 2 != 0:
            raise ValueError(f"FatTree3L: radix r={r} must be even and >= 2")
        half = r // 2
        num_edge = r * half
        num_agg = r * half
        num_core = half * half
        num_routers = num_edge + num_agg + num_core

        def edge_id(pod: int, idx: int) -> int:
            return pod * half + idx

        def agg_id(pod: int, idx: int) -> int:
            return num_edge + pod * half + idx

        def core_id(a: int, c: int) -> int:
            return num_edge + num_agg + a * half + c

        adjacency: List[List[int]] = [[] for _ in range(num_routers)]
        for pod in range(r):
            for e in range(half):
                for a in range(half):
                    adjacency[edge_id(pod, e)].append(agg_id(pod, a))
                    adjacency[agg_id(pod, a)].append(edge_id(pod, e))
        for pod in range(r):
            for a in range(half):
                for c in range(half):
                    adjacency[agg_id(pod, a)].append(core_id(a, c))
                    adjacency[core_id(a, c)].append(agg_id(pod, a))

        nodes_per_router = [half] * num_edge + [0] * (num_agg + num_core)
        super().__init__(
            name=f"FT3(r={r})",
            adjacency=adjacency,
            nodes_per_router=nodes_per_router,
            params={"r": r, "p": half},
        )
        self.r = r
        self.p = half
        self.num_edge = num_edge
        self.num_agg = num_agg
        self.num_core = num_core

    def level(self, router: int) -> int:
        """0 = edge, 1 = aggregation, 2 = core."""
        if router < self.num_edge:
            return 0
        if router < self.num_edge + self.num_agg:
            return 1
        return 2

    def link_class(self, u: int, v: int) -> int:
        """Up toward the core, down toward the edge."""
        return LINK_UP if self.level(v) > self.level(u) else LINK_DOWN

    @staticmethod
    def expected_num_nodes(r: int) -> int:
        """``N = r^3 / 4``."""
        return r**3 // 4
