"""Two-Level Orthogonal Fat-Tree (k-OFT).

Paper Sec. 2.2.4: stacking two SPTs with ``r1 = r2 = k`` produces the
two-level ``k``-OFT, a three-layer indirect network:

- levels L0 and L2 each have ``RL = 1 + k(k-1)`` routers with ``k``
  end-nodes apiece;
- the common level L1 has ``RL`` routers with no end-nodes;
- L0 router *i* and L2 router *i* both connect to the L1 routers listed
  in row *i* of the ``k``-ML3B table (the "orthogonal" wiring), giving
  every router radix ``2k``.

Totals: ``N = 2 k RL = 2k^3 - 2k^2 + 2k`` end-nodes, ``R = 3 RL``
routers, cost 3 ports / 2 links per end-node.

Router ids follow the paper's morphology order: L0 routers ``0..RL-1``,
L1 routers ``RL..2RL-1``, L2 routers ``2RL..3RL-1``; end-node ids are
contiguous over L0 then L2 (L1 has none).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.topology.base import LINK_DOWN, LINK_UP, Topology
from repro.topology.ml3b import ml3b_table, valid_oft_k

__all__ = ["OFT"]


class OFT(Topology):
    """Two-level Orthogonal Fat-Tree built from the ``k``-ML3B.

    Parameters
    ----------
    k:
        Router-to-router radix of each SPT level; ``k - 1`` must be a
        prime power (the paper describes the prime case; our GF-based
        MOLS extend the identical construction to prime powers).  Full
        router radix is ``2k``.
    p:
        End-nodes per L0/L2 router; default ``k`` (the paper's balanced
        choice, Sec. 2.2.2).
    """

    LEVEL_L0 = 0
    LEVEL_L1 = 1
    LEVEL_L2 = 2

    def __init__(self, k: int, p: int | None = None):
        if not valid_oft_k(k):
            raise ValueError(f"OFT: k={k} requires k-1 a prime power and k >= 3")
        p_val = k if p is None else int(p)
        if p_val < 0:
            raise ValueError(f"OFT: p={p_val} must be non-negative")

        table = ml3b_table(k)
        rl = table.shape[0]
        num_routers = 3 * rl
        adjacency: List[List[int]] = [[] for _ in range(num_routers)]
        for i in range(rl):
            l0 = i
            l2 = 2 * rl + i
            for j in map(int, table[i]):
                l1 = rl + j
                adjacency[l0].append(l1)
                adjacency[l1].append(l0)
                adjacency[l2].append(l1)
                adjacency[l1].append(l2)

        nodes_per_router = [p_val] * rl + [0] * rl + [p_val] * rl
        super().__init__(
            name=f"OFT(k={k})" if p_val == k else f"OFT(k={k},p={p_val})",
            adjacency=adjacency,
            nodes_per_router=nodes_per_router,
            params={"k": k, "p": p_val, "RL": rl},
        )
        self.k = k
        self.p = p_val
        self.rl = rl
        self.table = table

    # -- structure queries ---------------------------------------------------

    def level(self, router: int) -> int:
        """0, 1 or 2 -- the layer of a router id."""
        return router // self.rl

    def index_in_level(self, router: int) -> int:
        """Position of a router within its layer."""
        return router % self.rl

    def symmetric_counterpart(self, router: int) -> int:
        """The L2 (resp. L0) router wired identically to this L0 (resp. L2) one.

        Paper Sec. 2.3.3: routers ``(0, i)`` and ``(2, i)`` connect to the
        same L1 routers, which is the only source of path diversity.
        Raises ``ValueError`` for L1 routers.
        """
        lvl = self.level(router)
        if lvl == self.LEVEL_L0:
            return router + 2 * self.rl
        if lvl == self.LEVEL_L2:
            return router - 2 * self.rl
        raise ValueError(f"OFT: L1 router {router} has no symmetric counterpart")

    # -- routing hooks ---------------------------------------------------------

    def link_class(self, u: int, v: int) -> int:
        """Channels toward L1 are UP, away from L1 are DOWN (Sec. 3.4)."""
        return LINK_UP if self.level(v) == self.LEVEL_L1 else LINK_DOWN

    # -- formulas (used by tests and Fig. 3) ------------------------------------

    @staticmethod
    def expected_num_nodes(k: int) -> int:
        """``N = 2k^3 - 2k^2 + 2k``."""
        return 2 * k**3 - 2 * k**2 + 2 * k

    @staticmethod
    def expected_num_routers(k: int) -> int:
        """``R = 3k^2 - 3k + 3``."""
        return 3 * k**2 - 3 * k + 3
