"""Multi-Layer Full-Mesh (MLFM).

Paper Sec. 2.2.3: the ``(h, l, p)``-MLFM consists of ``l`` layers of
``h + 1`` local routers (LRs) each, with ``p`` end-nodes per LR.  The
direct link of the full mesh between LR pair ``{a, b}`` of every layer
is replaced by two links through a shared global router (GR): GR
``{a, b}`` connects to ``LR(layer, a)`` and ``LR(layer, b)`` in *every*
layer, so there are ``Rg = h(h+1)/2`` GRs of radix ``2l``; LRs have
radix ``h + p``.

The single-radix instance studied in the paper is the ``h``-MLFM
(``h = l = p``), with ``R = 3h(h+1)/2`` radix-``2h`` routers and
``N = h^3 + h^2`` end-nodes.

Router ids follow the paper's morphology order: LRs first, ordered by
``(layer, index)`` (so node ids are contiguous intra-layer, then
inter-layer, matching Sec. 4.4's contiguous mapping), then GRs ordered
by pair ``(a, b)``, ``a < b``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.base import LINK_DOWN, LINK_UP, Topology

__all__ = ["MLFM"]


class MLFM(Topology):
    """Multi-Layer Full-Mesh topology.

    Parameters
    ----------
    h:
        Full-mesh degree: each layer has ``h + 1`` local routers.
    l:
        Number of layers (default ``h``, the single-radix ``h``-MLFM).
    p:
        End-nodes per local router (default ``h``).
    """

    def __init__(self, h: int, l: int | None = None, p: int | None = None):
        if h < 1:
            raise ValueError(f"MLFM: h={h} must be >= 1")
        l_val = h if l is None else int(l)
        p_val = h if p is None else int(p)
        if l_val < 1:
            raise ValueError(f"MLFM: l={l_val} must be >= 1")
        if p_val < 0:
            raise ValueError(f"MLFM: p={p_val} must be non-negative")

        num_lr = l_val * (h + 1)
        pairs: List[Tuple[int, int]] = [(a, b) for a in range(h + 1) for b in range(a + 1, h + 1)]
        pair_index: Dict[Tuple[int, int], int] = {ab: i for i, ab in enumerate(pairs)}
        num_gr = len(pairs)
        num_routers = num_lr + num_gr

        def lr_id(layer: int, idx: int) -> int:
            return layer * (h + 1) + idx

        def gr_id(a: int, b: int) -> int:
            return num_lr + pair_index[(a, b) if a < b else (b, a)]

        adjacency: List[List[int]] = [[] for _ in range(num_routers)]
        for layer in range(l_val):
            for a, b in pairs:
                g = gr_id(a, b)
                for idx in (a, b):
                    lr = lr_id(layer, idx)
                    adjacency[lr].append(g)
                    adjacency[g].append(lr)

        nodes_per_router = [p_val] * num_lr + [0] * num_gr
        is_h_mlfm = l_val == h and p_val == h
        name = f"MLFM(h={h})" if is_h_mlfm else f"MLFM(h={h},l={l_val},p={p_val})"
        super().__init__(
            name=name,
            adjacency=adjacency,
            nodes_per_router=nodes_per_router,
            params={"h": h, "l": l_val, "p": p_val},
        )
        self.h = h
        self.l = l_val
        self.p = p_val
        self.num_local_routers = num_lr
        self.num_global_routers = num_gr
        self._pairs = pairs

    # -- structure queries ------------------------------------------------

    def is_local(self, router: int) -> bool:
        """``True`` iff *router* is a local router (has end-nodes)."""
        return router < self.num_local_routers

    def layer_of(self, router: int) -> int:
        """Layer of a local router; raises for global routers."""
        if not self.is_local(router):
            raise ValueError(f"MLFM: router {router} is a global router")
        return router // (self.h + 1)

    def column_of(self, router: int) -> int:
        """Column (relative index within its layer) of a local router.

        Local routers in the same column are connected by ``h`` minimal
        paths (paper Sec. 2.3.3).
        """
        if not self.is_local(router):
            raise ValueError(f"MLFM: router {router} is a global router")
        return router % (self.h + 1)

    def gr_pair(self, router: int) -> Tuple[int, int]:
        """The LR-index pair ``(a, b)`` served by a global router."""
        if self.is_local(router):
            raise ValueError(f"MLFM: router {router} is a local router")
        return self._pairs[router - self.num_local_routers]

    # -- routing hooks -------------------------------------------------------

    def link_class(self, u: int, v: int) -> int:
        """Channels toward a GR are UP, away from it DOWN (Sec. 3.4)."""
        return LINK_UP if not self.is_local(v) else LINK_DOWN

    # -- formulas (used by tests and Fig. 3) ----------------------------------

    @staticmethod
    def expected_num_nodes(h: int) -> int:
        """``N = h^3 + h^2`` for the single-radix ``h``-MLFM."""
        return h**3 + h**2

    @staticmethod
    def expected_num_routers(h: int) -> int:
        """``R = 3h(h+1)/2`` for the single-radix ``h``-MLFM."""
        return 3 * h * (h + 1) // 2
