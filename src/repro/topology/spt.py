"""Single-Path Trees and the generic Stacked-SPT construction
(paper Sec. 2.2.2 -- the class the paper introduces).

An SPT(r1, r2) is a two-level indirect network in which

- level-1 routers (the leaves, carrying ``p = r1`` end-nodes each)
  have ``r1`` up-links,
- level-2 routers have ``r2`` down-links,
- **exactly one** minimal path exists between any pair of level-1
  routers, and the number of level-2 routers is minimal.

It scales to ``R1 = 1 + r1 (r2 - 1)`` level-1 and ``R2 = R1 r1 / r2``
level-2 routers.  Precise constructions are known for two cases (the
paper's own words), both implemented here:

- ``r2 = 2``: level-2 routers are the edges of the complete graph on
  the ``r1 + 1`` level-1 routers (a full mesh with midpoint routers);
- ``r2 = r1`` with ``r1 - 1`` a prime power: the k-ML3B projective-plane
  incidence (:mod:`repro.topology.ml3b`).

**Stacking** (Sec. 2.2.2): instantiate ``s = 2 r1 / r2`` identical
SPTs and merge each s-tuple of corresponding level-2 routers into one
physical radix-``2 r1`` router.  The result -- the SSPT -- preserves
the diameter-2 and (almost everywhere) single-path properties while
every router has the same radix.  ``SSPT(h, 2)`` *is* the h-MLFM and
``SSPT(k, k)`` *is* the two-level k-OFT; the tests verify the
isomorphisms against :class:`repro.topology.MLFM` / `OFT`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.maths.primes import is_prime_power
from repro.topology.base import LINK_DOWN, LINK_UP, Topology
from repro.topology.ml3b import ml3b_table, verify_ml3b

__all__ = ["spt_incidence", "verify_spt_incidence", "SSPT"]


def spt_incidence(r1: int, r2: int) -> np.ndarray:
    """The ``R1 x r1`` incidence table of an SPT(r1, r2).

    Row *i* lists the level-2 routers adjacent to level-1 router *i*.
    Only the two known constructions are supported; anything else
    raises ``ValueError`` (building arbitrary resolvable designs is an
    open combinatorial problem, as the paper notes).
    """
    if r1 < 2 or r2 < 2:
        raise ValueError(f"SPT(r1={r1}, r2={r2}): radices must be >= 2")
    if r2 == 2:
        # Full mesh with midpoint routers: R1 = r1 + 1 leaves; level-2
        # router {a, b} (a < b) sits on the mesh edge (a, b).
        n_leaves = r1 + 1
        pair_id = {}
        next_id = 0
        for a in range(n_leaves):
            for b in range(a + 1, n_leaves):
                pair_id[(a, b)] = next_id
                next_id += 1
        table = np.empty((n_leaves, r1), dtype=np.int64)
        for a in range(n_leaves):
            row = [pair_id[(min(a, b), max(a, b))] for b in range(n_leaves) if b != a]
            table[a, :] = row
        return table
    if r2 == r1:
        if not is_prime_power(r1 - 1):
            raise ValueError(
                f"SPT(r1={r1}, r2={r1}): construction requires r1 - 1 a prime power"
            )
        return ml3b_table(r1)
    raise ValueError(
        f"SPT(r1={r1}, r2={r2}): no known construction (supported: r2 = 2, r2 = r1 "
        f"with r1 - 1 a prime power)"
    )


def verify_spt_incidence(table: np.ndarray, r1: int, r2: int) -> List[str]:
    """Check the SPT defining properties on an incidence table.

    - shape ``R1 x r1`` with ``R1 = 1 + r1 (r2 - 1)``;
    - every level-2 router appears in exactly ``r2`` rows;
    - any two rows share exactly one level-2 router (single minimal
      path between any pair of level-1 routers).
    """
    problems: List[str] = []
    table = np.asarray(table)
    expect_r1_count = 1 + r1 * (r2 - 1)
    if table.shape != (expect_r1_count, r1):
        problems.append(f"shape {table.shape} != ({expect_r1_count}, {r1})")
        return problems
    r2_count = expect_r1_count * r1 // r2
    counts = np.bincount(table.ravel(), minlength=r2_count)
    if len(counts) > r2_count or np.any(counts != r2):
        problems.append(f"level-2 degrees != {r2}")
    rows = [set(map(int, table[i])) for i in range(table.shape[0])]
    for i in range(len(rows)):
        if len(rows[i]) != r1:
            problems.append(f"row {i} has repeats")
        for j in range(i + 1, len(rows)):
            if len(rows[i] & rows[j]) != 1:
                problems.append(f"rows {i},{j} share != 1 router")
                if len(problems) > 10:
                    return problems
    return problems


class SSPT(Topology):
    """Generic Stacked Single-Path Tree.

    Parameters
    ----------
    r1:
        Router-to-router radix of level-1 routers (also the per-router
        end-node count ``p``).
    r2:
        Down-link radix of level-2 routers within one SPT; must divide
        ``2 r1``.  ``r2 = 2`` yields the MLFM, ``r2 = r1`` the OFT.
    p:
        End-nodes per level-1 router; defaults to ``r1`` (balanced).

    Router numbering: the ``s = 2 r1 / r2`` SPT copies' level-1 routers
    first (copy-major, matching the MLFM/OFT morphology order), then
    the merged level-2 routers.
    """

    def __init__(self, r1: int, r2: int, p: int | None = None):
        table = spt_incidence(r1, r2)
        if (2 * r1) % r2 != 0:
            raise ValueError(f"SSPT(r1={r1}, r2={r2}): r2 must divide 2*r1")
        copies = 2 * r1 // r2
        p_val = r1 if p is None else int(p)
        if p_val < 0:
            raise ValueError(f"SSPT: p={p_val} must be non-negative")

        n_l1 = table.shape[0]  # per copy
        n_l2 = n_l1 * r1 // r2  # merged across copies
        num_bottom = copies * n_l1
        num_routers = num_bottom + n_l2

        adjacency: List[List[int]] = [[] for _ in range(num_routers)]
        for copy in range(copies):
            base = copy * n_l1
            for i in range(n_l1):
                leaf = base + i
                for j in map(int, table[i]):
                    top = num_bottom + j
                    adjacency[leaf].append(top)
                    adjacency[top].append(leaf)

        nodes_per_router = [p_val] * num_bottom + [0] * n_l2
        super().__init__(
            name=f"SSPT(r1={r1},r2={r2})",
            adjacency=adjacency,
            nodes_per_router=nodes_per_router,
            params={"r1": r1, "r2": r2, "p": p_val, "copies": copies},
        )
        self.r1 = r1
        self.r2 = r2
        self.p = p_val
        self.copies = copies
        self.leaves_per_copy = n_l1
        self.num_bottom = num_bottom
        self.num_top = n_l2
        self.table = table

    # -- structure ---------------------------------------------------------

    def is_leaf(self, router: int) -> bool:
        """Level-1 (end-node-bearing) router?"""
        return router < self.num_bottom

    def copy_of(self, router: int) -> int:
        """SPT copy index of a level-1 router."""
        if not self.is_leaf(router):
            raise ValueError(f"SSPT: router {router} is a level-2 router")
        return router // self.leaves_per_copy

    def index_in_copy(self, router: int) -> int:
        """Position of a level-1 router inside its SPT copy."""
        if not self.is_leaf(router):
            raise ValueError(f"SSPT: router {router} is a level-2 router")
        return router % self.leaves_per_copy

    def counterparts(self, router: int) -> List[int]:
        """Corresponding level-1 routers in the *other* copies.

        These are the only endpoint-router pairs with path diversity
        (``r1`` minimal paths; Sec. 2.2.2).
        """
        idx = self.index_in_copy(router)
        return [
            c * self.leaves_per_copy + idx
            for c in range(self.copies)
            if c != self.copy_of(router)
        ]

    # -- routing hooks ---------------------------------------------------------

    def link_class(self, u: int, v: int) -> int:
        """Toward the merged top level is UP, away is DOWN."""
        return LINK_UP if not self.is_leaf(v) else LINK_DOWN

    # -- formulas --------------------------------------------------------------

    @staticmethod
    def expected_num_nodes(r1: int, r2: int) -> int:
        """``N = (r1^2 (r2 - 1) + r1) * 2 r1 / r2`` (Sec. 2.2.2)."""
        return (r1 * r1 * (r2 - 1) + r1) * 2 * r1 // r2
