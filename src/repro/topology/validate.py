"""Structural validation of topology instances.

Centralises the invariant checks used throughout the test suite: radix
uniformity, diameter, node/router/port/link-count formulas and the
paper's headline cost metrics (~3 ports and ~2 links per end-node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.topology.base import Topology

__all__ = ["ValidationReport", "validate_topology"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_topology`."""

    topology: str
    problems: List[str] = field(default_factory=list)
    diameter: Optional[int] = None

    @property
    def ok(self) -> bool:
        """``True`` iff no invariant was violated."""
        return not self.problems

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        lines = [f"{self.topology}: {status}"]
        lines.extend(f"  - {p}" for p in self.problems)
        return "\n".join(lines)


def validate_topology(
    topology: Topology,
    expect_diameter: Optional[int] = 2,
    expect_uniform_radix: bool = True,
    max_ports_per_node: float = 3.5,
    max_links_per_node: float = 2.5,
    check_diameter: bool = True,
) -> ValidationReport:
    """Check the structural invariants shared by the paper's topologies.

    Parameters are permissive by default because the Slim Fly's ceil/floor
    rounding of ``p`` makes cost metrics hover slightly above/below 3 and 2
    (paper Sec. 2.1.2).
    """
    report = ValidationReport(topology=topology.name)

    if topology.num_routers == 0:
        report.problems.append("topology has no routers")
        return report
    if topology.num_nodes == 0:
        report.problems.append("topology has no end-nodes")
        return report  # per-node cost metrics are undefined

    # Adjacency symmetry/self-loop checks already ran in the constructor;
    # here we re-verify counts and degree structure.
    degrees = [topology.degree(r) for r in range(topology.num_routers)]
    if any(d == 0 for d in degrees):
        report.problems.append("isolated router (degree 0)")

    if expect_uniform_radix:
        radixes = {topology.radix(r) for r in range(topology.num_routers)}
        if len(radixes) != 1:
            report.problems.append(f"non-uniform radix: {sorted(radixes)}")

    ports = topology.ports_per_node()
    links = topology.links_per_node()
    if ports > max_ports_per_node:
        report.problems.append(f"ports/node {ports:.2f} > {max_ports_per_node}")
    if links > max_links_per_node:
        report.problems.append(f"links/node {links:.2f} > {max_links_per_node}")

    if check_diameter:
        # The paper's "diameter" is between endpoint routers: the hub
        # routers of the indirect topologies make the raw router-graph
        # diameter larger (e.g. 4 for the MLFM) even though every
        # node-to-node minimal route has at most 2 router-router hops.
        try:
            report.diameter = topology.endpoint_diameter()
        except ValueError as exc:
            report.problems.append(str(exc))
            return report
        if expect_diameter is not None and report.diameter != expect_diameter:
            report.problems.append(
                f"endpoint diameter {report.diameter} != expected {expect_diameter}"
            )
    return report
