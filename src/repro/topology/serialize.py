"""Topology serialisation (JSON).

Persists the graph-level content of any :class:`Topology` -- adjacency,
node attachment, parameters -- so instances can be shared with other
tools (or reloaded without re-running the constructions).  Structural
hooks that depend on the concrete class (``link_class``,
``valiant_intermediates``) are preserved *by value*: the per-channel
class labels and the intermediate list are stored explicitly and
replayed by the loaded :class:`LoadedTopology`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

from repro.topology.base import Topology

__all__ = ["topology_to_dict", "topology_from_dict", "save_topology", "load_topology",
           "LoadedTopology"]

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1


def topology_to_dict(topology: Topology) -> Dict:
    """Serialise a topology to a JSON-safe dict.

    A :class:`repro.analysis.faults.DegradedTopology` is stored as its
    intact base plus the failed-link list (not as a flattened graph), so
    the round-trip preserves both the degraded adjacency *and* the
    original structure the degradation came from.
    """
    from repro.analysis.faults import DegradedTopology  # lazy: avoids a cycle

    if isinstance(topology, DegradedTopology):
        return {
            "format_version": FORMAT_VERSION,
            "degraded": {
                "base": topology_to_dict(topology.base),
                "failed_links": [[int(u), int(v)]
                                 for u, v in topology.failed_links],
            },
        }
    link_classes = {}
    for u, v in topology.directed_channels():
        cls = topology.link_class(u, v)
        if cls != 0:
            link_classes[f"{u},{v}"] = cls
    return {
        "format_version": FORMAT_VERSION,
        "name": topology.name,
        "adjacency": [topology.neighbors(r) for r in range(topology.num_routers)],
        "nodes_per_router": [
            topology.nodes_attached(r) for r in range(topology.num_routers)
        ],
        "params": {k: _scalar(v) for k, v in topology.params.items()},
        "link_classes": link_classes,
        "valiant_intermediates": topology.valiant_intermediates(),
    }


def _scalar(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class LoadedTopology(Topology):
    """A topology reconstructed from serialised data.

    Replays the stored link classes and Valiant-intermediate pool, so
    routing, VC policies and deadlock analysis behave exactly as on the
    original instance.
    """

    def __init__(self, data: Dict):
        super().__init__(
            name=data["name"],
            adjacency=data["adjacency"],
            nodes_per_router=data["nodes_per_router"],
            params=data.get("params", {}),
        )
        self._link_classes: Dict[tuple, int] = {}
        for key, cls in data.get("link_classes", {}).items():
            u, v = key.split(",")
            self._link_classes[(int(u), int(v))] = int(cls)
        self._valiant: List[int] = list(
            data.get("valiant_intermediates", self.endpoint_routers())
        )

    def link_class(self, u: int, v: int) -> int:
        return self._link_classes.get((u, v), 0)

    def valiant_intermediates(self) -> List[int]:
        return list(self._valiant)


def topology_from_dict(data: Dict) -> Topology:
    """Inverse of :func:`topology_to_dict`.

    Returns a :class:`LoadedTopology`, or a
    :class:`~repro.analysis.faults.DegradedTopology` over one when the
    dict stores a degraded instance.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported topology format version {version!r}")
    if "degraded" in data:
        from repro.analysis.faults import DegradedTopology

        deg = data["degraded"]
        base = topology_from_dict(deg["base"])
        return DegradedTopology(
            base, [(int(u), int(v)) for u, v in deg["failed_links"]]
        )
    return LoadedTopology(data)


def save_topology(topology: Topology, path: PathLike) -> None:
    """Write a topology to a JSON file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(topology_to_dict(topology), fh)
        fh.write("\n")


def load_topology(path: PathLike) -> LoadedTopology:
    """Read a topology from a JSON file."""
    with pathlib.Path(path).open() as fh:
        return topology_from_dict(json.load(fh))
