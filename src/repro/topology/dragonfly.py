"""Dragonfly topology (related-work reference; paper Sec. 1).

The Dragonfly [Kim et al., ISCA '08] is the most widely deployed
cost-effective alternative to Fat-Trees and serves as a related-work
comparison point (diameter 3, cost comparable to the diameter-two
designs at lower scalability per radix).  We implement the balanced
canonical configuration: groups of ``a`` fully-connected routers, ``h``
global links per router, ``p`` end-nodes per router, with ``g = a*h + 1``
groups so that every group pair is joined by exactly one global link
(the "absolute" arrangement: router ``k`` of a group owns global links
``k*h .. k*h + h - 1``).

Balanced recommendation: ``a = 2p = 2h``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.base import Topology

__all__ = ["Dragonfly"]


class Dragonfly(Topology):
    """Canonical one-link-per-group-pair Dragonfly.

    Parameters
    ----------
    p:
        End-nodes per router.
    a:
        Routers per group (default ``2p``).
    h:
        Global links per router (default ``p``).
    """

    def __init__(self, p: int, a: int | None = None, h: int | None = None):
        if p < 1:
            raise ValueError(f"Dragonfly: p={p} must be >= 1")
        a_val = 2 * p if a is None else int(a)
        h_val = p if h is None else int(h)
        if a_val < 1 or h_val < 1:
            raise ValueError(f"Dragonfly: a={a_val}, h={h_val} must be >= 1")
        g = a_val * h_val + 1
        num_routers = g * a_val

        def rid(group: int, idx: int) -> int:
            return group * a_val + idx

        adjacency: List[List[int]] = [[] for _ in range(num_routers)]
        # Intra-group full mesh.
        for group in range(g):
            for i in range(a_val):
                for j in range(i + 1, a_val):
                    adjacency[rid(group, i)].append(rid(group, j))
                    adjacency[rid(group, j)].append(rid(group, i))
        # Global links, absolute arrangement: global channel slot
        # s in [0, a*h) of group ``src`` targets group offset s+1, and is
        # owned by router s // h.
        for src in range(g):
            for slot in range(a_val * h_val):
                dst = (src + slot + 1) % g
                if dst == src:
                    continue
                # The reverse slot in dst that points back at src.
                back = (src - dst - 1) % g
                if back >= a_val * h_val:
                    continue
                u = rid(src, slot // h_val)
                v = rid(dst, back // h_val)
                if v not in adjacency[u]:
                    adjacency[u].append(v)
                    adjacency[v].append(u)

        super().__init__(
            name=f"DF(p={p},a={a_val},h={h_val})",
            adjacency=adjacency,
            nodes_per_router=[p] * num_routers,
            params={"p": p, "a": a_val, "h": h_val, "g": g},
        )
        self.p = p
        self.a = a_val
        self.h = h_val
        self.g = g

    def group_of(self, router: int) -> int:
        """Group index of a router."""
        return router // self.a

    def coords(self, router: int) -> Tuple[int, int]:
        """``(group, index-in-group)``."""
        return divmod(router, self.a)

    def valiant_intermediates(self) -> List[int]:
        """Any router may serve as a Valiant intermediate."""
        return list(range(self.num_routers))
