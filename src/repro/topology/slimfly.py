"""Diameter-two Slim Fly topology (McKay--Miller--Siran graphs).

Implements the construction of paper Sec. 2.1.2 (following Besta &
Hoefler, SC '14).  Given a prime power ``q = 4w + delta`` with
``delta in {-1, 0, +1}``:

- compute a primitive element ``xi`` of ``GF(q)``,
- build the generator sets ``X`` (intra-column set of subgraph 0) and
  ``X'`` (intra-column set of subgraph 1),
- arrange ``R = 2 q^2`` routers in two subgraphs of ``q`` columns by
  ``q`` rows, connected by

  - ``(0, x, y) ~ (0, x, y')``  iff  ``y - y' in X``
  - ``(1, m, c) ~ (1, m, c')``  iff  ``c - c' in X'``
  - ``(0, x, y) ~ (1, m, c)``   iff  ``y = m*x + c``      (all over GF(q)).

The network radix is ``r' = (3q - delta)/2`` and the paper studies both
``p = floor(r'/2)`` and ``p = ceil(r'/2)`` attached end-nodes per router
(Sec. 2.1.2 discusses the cost/performance trade-off of that rounding).

Router numbering follows the paper's morphology order (Sec. 4.4): nodes
are ordered intra-router, then intra-column, then by subgraph, i.e.
router ``(s, a, b)`` has id ``s*q^2 + a*q + b`` where ``a`` is the column
(``x`` resp. ``m``) and ``b`` the row (``y`` resp. ``c``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.maths.galois import GaloisField
from repro.maths.primes import is_prime_power
from repro.topology.base import Topology

__all__ = ["SlimFly", "slim_fly_delta", "slim_fly_generator_sets", "valid_slim_fly_q"]


def slim_fly_delta(q: int) -> int:
    """Return ``delta in {-1, 0, +1}`` such that ``q = 4w + delta``.

    Raises ``ValueError`` if *q* is not of that form (i.e. ``q % 4 == 2``)
    or not a prime power.
    """
    if not is_prime_power(q):
        raise ValueError(f"Slim Fly: q={q} is not a prime power")
    rem = q % 4
    if rem == 1:
        return 1
    if rem == 3:
        return -1
    if rem == 0:
        return 0
    raise ValueError(f"Slim Fly: q={q} is not of the form 4w + delta, delta in {{-1,0,1}}")


def valid_slim_fly_q(q: int) -> bool:
    """``True`` iff *q* is a usable Slim Fly parameter."""
    try:
        slim_fly_delta(q)
    except ValueError:
        return False
    return q >= 4


def slim_fly_generator_sets(q: int) -> Tuple[Set[int], Set[int]]:
    """Build the MMS generator sets ``(X, X')`` over ``GF(q)``.

    Both sets are symmetric (``X == -X``), which makes the intra-column
    Cayley graphs undirected; this is asserted.
    """
    delta = slim_fly_delta(q)
    field = GaloisField(q)
    xi = field.primitive_element

    def powers(exponents) -> Set[int]:
        return {field.pow(xi, e) for e in exponents}

    if delta == 1:
        # q = 4w + 1: X = even powers (quadratic residues), X' = odd powers.
        x_set = powers(range(0, q - 1, 2))
        xp_set = powers(range(1, q - 1, 2))
    elif delta == 0:
        # q = 4w (char 2): X = {xi^0, xi^2, ..., xi^(q-2)},
        # X' = {xi^1, xi^3, ..., xi^(q-1)}; note xi^(q-1) == 1.  Symmetry is
        # automatic since -a == a in characteristic 2.
        x_set = powers(range(0, q - 1, 2))
        xp_set = powers(range(1, q, 2))
    else:
        # q = 4w - 1: mixed even/odd split (paper Sec. 2.1.2).
        w = (q + 1) // 4
        x_set = powers(range(0, 2 * w - 1, 2)) | powers(range(2 * w - 1, 4 * w - 2, 2))
        xp_set = powers(range(1, 2 * w, 2)) | powers(range(2 * w, 4 * w - 1, 2))

    for name, s in (("X", x_set), ("X'", xp_set)):
        negated = {field.neg(v) for v in s}
        if negated != s:
            raise AssertionError(f"Slim Fly q={q}: generator set {name} is not symmetric")
        if 0 in s:
            raise AssertionError(f"Slim Fly q={q}: generator set {name} contains 0")
    expected = (q - delta) // 2
    if len(x_set) != expected or len(xp_set) != expected:
        raise AssertionError(
            f"Slim Fly q={q}: generator set sizes {len(x_set)}/{len(xp_set)} != {expected}"
        )
    return x_set, xp_set


class SlimFly(Topology):
    """Slim Fly (MMS) topology with ``R = 2 q^2`` routers.

    Parameters
    ----------
    q:
        Prime power of the form ``4w + delta``, ``delta in {-1, 0, 1}``.
    p:
        End-nodes per router.  Default ``floor(r'/2)``; pass ``"ceil"``
        (or an int) for the alternative studied in the paper.
    """

    def __init__(self, q: int, p: int | str = "floor"):
        delta = slim_fly_delta(q)
        field = GaloisField(q)
        x_set, xp_set = slim_fly_generator_sets(q)
        network_radix = q + len(x_set)
        assert network_radix == (3 * q - delta) // 2

        if p == "floor":
            p_val = network_radix // 2
        elif p == "ceil":
            p_val = math.ceil(network_radix / 2)
        else:
            p_val = int(p)
        if p_val < 0:
            raise ValueError(f"Slim Fly: p={p_val} must be non-negative")

        num_routers = 2 * q * q

        def rid(s: int, a: int, b: int) -> int:
            return s * q * q + a * q + b

        adjacency: List[List[int]] = [[] for _ in range(num_routers)]
        # Intra-column links, subgraph 0: (0, x, y) ~ (0, x, y + g), g in X.
        for x in range(q):
            for y in range(q):
                me = rid(0, x, y)
                for g in x_set:
                    adjacency[me].append(rid(0, x, field.add(y, g)))
        # Intra-column links, subgraph 1.
        for m in range(q):
            for c in range(q):
                me = rid(1, m, c)
                for g in xp_set:
                    adjacency[me].append(rid(1, m, field.add(c, g)))
        # Inter-subgraph links: (0, x, y) ~ (1, m, c) iff y = m*x + c.
        for x in range(q):
            for y in range(q):
                me = rid(0, x, y)
                for m in range(q):
                    c = field.sub(y, field.mul(m, x))
                    other = rid(1, m, c)
                    adjacency[me].append(other)
                    adjacency[other].append(me)

        super().__init__(
            name=f"SF(q={q},p={p_val})",
            adjacency=adjacency,
            nodes_per_router=[p_val] * num_routers,
            params={"q": q, "delta": delta, "p": p_val, "network_radix": network_radix},
        )
        self.q = q
        self.delta = delta
        self.p = p_val
        self.network_radix = network_radix
        self.field = field
        self.generator_sets = (frozenset(x_set), frozenset(xp_set))
        self._coords: List[Tuple[int, int, int]] = [
            (s, a, b) for s in range(2) for a in range(q) for b in range(q)
        ]
        self._coord_to_id: Dict[Tuple[int, int, int], int] = {
            coord: i for i, coord in enumerate(self._coords)
        }

    # -- coordinates --------------------------------------------------------

    def coords(self, router: int) -> Tuple[int, int, int]:
        """``(subgraph, column, row)`` of a router id."""
        return self._coords[router]

    def router_id(self, subgraph: int, column: int, row: int) -> int:
        """Inverse of :meth:`coords`."""
        return self._coord_to_id[(subgraph, column, row)]

    # -- routing hooks -------------------------------------------------------

    def valiant_intermediates(self) -> List[int]:
        """Any router may serve as a Valiant intermediate (paper Sec. 3.2)."""
        return list(range(self.num_routers))

    # -- analysis helpers ----------------------------------------------------

    @staticmethod
    def expected_num_routers(q: int) -> int:
        """``R = 2 q^2``."""
        return 2 * q * q

    @staticmethod
    def expected_network_radix(q: int) -> int:
        """``r' = (3q - delta) / 2``."""
        return (3 * q - slim_fly_delta(q)) // 2
