"""Two-dimensional HyperX (Generalized Hypercube).

Paper Sec. 2.1.1: the Cartesian product of two fully-connected graphs.
Routers form an ``s1 x s2`` grid; routers sharing a row or a column are
directly connected.  The balanced configuration uses ``s1 = s2 = r/3 + 1``
and ``p = r/3`` end-nodes per router, giving ``N = (r/3) (r/3 + 1)^2``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.base import Topology

__all__ = ["HyperX2D"]


class HyperX2D(Topology):
    """Balanced (or custom) two-dimensional HyperX.

    Parameters
    ----------
    s1, s2:
        Sizes of the fully-connected graphs in each dimension.
    p:
        End-nodes per router; default the balanced ``(s1 - 1 + s2 - 1) // 2``
        is *not* used -- the paper's balanced choice is one third of the
        radix, i.e. ``p`` such that ``p == s1 - 1 == s2 - 1`` when square;
        by default ``p = min(s1, s2) - 1``.
    """

    def __init__(self, s1: int, s2: int, p: int | None = None):
        if s1 < 2 or s2 < 2:
            raise ValueError(f"HyperX2D: dimensions ({s1},{s2}) must be >= 2")
        p_val = min(s1, s2) - 1 if p is None else int(p)
        if p_val < 0:
            raise ValueError(f"HyperX2D: p={p_val} must be non-negative")
        num_routers = s1 * s2

        def rid(i: int, j: int) -> int:
            return i * s2 + j

        adjacency: List[List[int]] = [[] for _ in range(num_routers)]
        for i in range(s1):
            for j in range(s2):
                me = rid(i, j)
                for jj in range(s2):
                    if jj != j:
                        adjacency[me].append(rid(i, jj))
                for ii in range(s1):
                    if ii != i:
                        adjacency[me].append(rid(ii, j))

        super().__init__(
            name=f"HyperX({s1}x{s2},p={p_val})",
            adjacency=adjacency,
            nodes_per_router=[p_val] * num_routers,
            params={"s1": s1, "s2": s2, "p": p_val},
        )
        self.s1 = s1
        self.s2 = s2
        self.p = p_val

    @classmethod
    def balanced(cls, r: int) -> "HyperX2D":
        """Balanced square HyperX from router radix *r* (must be divisible by 3).

        ``s1 = s2 = r/3 + 1``, ``p = r/3`` (paper Sec. 2.1.1).
        """
        if r % 3 != 0 or r < 3:
            raise ValueError(f"HyperX2D.balanced: radix {r} must be a positive multiple of 3")
        side = r // 3 + 1
        return cls(side, side, r // 3)

    def coords(self, router: int) -> Tuple[int, int]:
        """Grid coordinates ``(i, j)`` of a router id."""
        return divmod(router, self.s2)

    def valiant_intermediates(self) -> List[int]:
        """Any router may serve as a Valiant intermediate (direct topology)."""
        return list(range(self.num_routers))

    @staticmethod
    def expected_num_nodes(r: int) -> int:
        """``N = (r/3) (r/3 + 1)^2`` for the balanced configuration."""
        if r % 3 != 0:
            raise ValueError(f"radix {r} not divisible by 3")
        third = r // 3
        return third * (third + 1) ** 2
