"""Traffic pattern abstractions.

Two families (matching the paper's Sec. 4.3 / 4.4 split):

- *synthetic* rate-driven patterns expose
  ``pick_destination(src_node, rng) -> Optional[int]`` and are run
  open-loop at a configured injection load;
- *exchange* patterns expose ``node_messages(node) -> iterable of
  (dst_node, size_bytes)`` and are simulated to completion.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

__all__ = [
    "SyntheticTraffic",
    "ExchangeTraffic",
    "PermutationTraffic",
]


class SyntheticTraffic(Protocol):
    """Rate-driven pattern: chooses a destination per generated packet."""

    def pick_destination(self, src_node: int, rng) -> Optional[int]:
        """Destination for the next packet of *src_node* (``None`` = idle)."""
        ...


class ExchangeTraffic(Protocol):
    """Finite exchange: an ordered message list per node."""

    def node_messages(self, node: int) -> Iterable[Tuple[int, int]]:
        """Ordered ``(dst_node, size_bytes)`` messages for *node*."""
        ...


class PermutationTraffic:
    """Fixed permutation traffic: node ``i`` always sends to ``dst[i]``.

    Nodes whose entry is negative stay idle.  Used for the adversarial
    worst-case patterns of Sec. 4.2 (which are all permutations, so the
    pattern is never end-node limited).
    """

    def __init__(self, destinations: Sequence[int]):
        self.destinations = np.asarray(destinations, dtype=np.int64)
        n = len(self.destinations)
        active = self.destinations[self.destinations >= 0]
        if np.any(active >= n):
            raise ValueError("destination out of range")
        if np.any(self.destinations == np.arange(n)):
            raise ValueError("self-destination in permutation")
        if len(np.unique(active)) != len(active):
            raise ValueError("destinations are not a (partial) permutation")

    def pick_destination(self, src_node: int, rng) -> Optional[int]:
        dst = int(self.destinations[src_node])
        return dst if dst >= 0 else None

    def as_messages(self, size_bytes: int) -> List[List[Tuple[int, int]]]:
        """The same pattern as a single-message-per-node exchange."""
        out: List[List[Tuple[int, int]]] = []
        for src, dst in enumerate(self.destinations):
            out.append([(int(dst), size_bytes)] if dst >= 0 else [])
        return out
