"""Classic synthetic traffic permutations and hotspot traffic.

Standard adversarial/benign patterns from the interconnection-network
literature (Dally & Towles) that complement the paper's worst-case
constructions: bit-complement, bit-reverse, transpose and tornado
permutations, plus configurable hotspot traffic.  They slot into the
same synthetic-traffic interface as everything else, so any topology /
routing combination can be evaluated against them.

The bit permutations are defined over ``2^b``-node domains; nodes
beyond the largest power of two stay idle (partial permutation), which
keeps the patterns well-formed on arbitrary node counts.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.traffic.base import PermutationTraffic

__all__ = [
    "BitComplement",
    "BitReverse",
    "Transpose",
    "Tornado",
    "HotspotTraffic",
]


def _bits(num_nodes: int) -> int:
    b = int(math.log2(num_nodes))
    return b


def _partial(dst: np.ndarray, num_nodes: int) -> np.ndarray:
    """Embed a 2^b-domain permutation into num_nodes (rest idle)."""
    full = np.full(num_nodes, -1, dtype=np.int64)
    full[: len(dst)] = dst
    # Self-destinations become idle (e.g. fixed points of transpose).
    self_idx = np.nonzero(full == np.arange(num_nodes))[0]
    full[self_idx] = -1
    return full


class BitComplement(PermutationTraffic):
    """``dst = ~src`` over the low ``b`` bits (b = floor(log2 N))."""

    def __init__(self, num_nodes: int):
        b = _bits(num_nodes)
        if b < 1:
            raise ValueError(f"BitComplement: need >= 2 nodes, got {num_nodes}")
        size = 1 << b
        src = np.arange(size)
        dst = (~src) & (size - 1)
        super().__init__(_partial(dst, num_nodes))
        self.bits = b


class BitReverse(PermutationTraffic):
    """``dst`` = the bit-reversal of ``src`` over ``b`` bits."""

    def __init__(self, num_nodes: int):
        b = _bits(num_nodes)
        if b < 1:
            raise ValueError(f"BitReverse: need >= 2 nodes, got {num_nodes}")
        size = 1 << b
        dst = np.zeros(size, dtype=np.int64)
        for s in range(size):
            r = 0
            x = s
            for _ in range(b):
                r = (r << 1) | (x & 1)
                x >>= 1
            dst[s] = r
        super().__init__(_partial(dst, num_nodes))
        self.bits = b


class Transpose(PermutationTraffic):
    """Matrix-transpose permutation: swap the high and low halves of the
    address bits (``b`` rounded down to even)."""

    def __init__(self, num_nodes: int):
        b = _bits(num_nodes)
        b -= b % 2
        if b < 2:
            raise ValueError(f"Transpose: need >= 4 nodes, got {num_nodes}")
        size = 1 << b
        half = b // 2
        mask = (1 << half) - 1
        src = np.arange(size)
        dst = ((src & mask) << half) | (src >> half)
        super().__init__(_partial(dst, num_nodes))
        self.bits = b


class Tornado(PermutationTraffic):
    """Half-way shift: ``dst = src + ceil(N/2) - 1 mod N`` (the classic
    torus adversary; on diameter-two topologies it behaves like a large
    shift)."""

    def __init__(self, num_nodes: int):
        if num_nodes < 3:
            raise ValueError(f"Tornado: need >= 3 nodes, got {num_nodes}")
        offset = (num_nodes + 1) // 2 - 1
        if offset == 0:
            offset = 1
        dst = (np.arange(num_nodes) + offset) % num_nodes
        super().__init__(dst)


class HotspotTraffic:
    """Uniform traffic with a configurable hotspot component.

    With probability *hot_fraction* a packet targets a uniformly chosen
    hotspot node; otherwise a uniform destination.  Models the incast
    behaviour of parallel file systems or reduction roots.
    """

    def __init__(self, num_nodes: int, hotspots, hot_fraction: float = 0.2):
        if num_nodes < 2:
            raise ValueError(f"HotspotTraffic: need >= 2 nodes, got {num_nodes}")
        self.hotspots = [int(h) for h in hotspots]
        if not self.hotspots:
            raise ValueError("HotspotTraffic: need at least one hotspot")
        if any(not (0 <= h < num_nodes) for h in self.hotspots):
            raise ValueError("HotspotTraffic: hotspot out of range")
        if not (0.0 <= hot_fraction <= 1.0):
            raise ValueError(f"HotspotTraffic: hot_fraction {hot_fraction} not in [0,1]")
        self.num_nodes = num_nodes
        self.hot_fraction = hot_fraction

    def pick_destination(self, src_node: int, rng) -> Optional[int]:
        if rng.random() < self.hot_fraction:
            dst = self.hotspots[rng.randrange(len(self.hotspots))]
            if dst != src_node:
                return dst
        dst = rng.randrange(self.num_nodes - 1)
        return dst if dst < src_node else dst + 1
