"""Nearest-neighbour exchange on a 3D torus (paper Sec. 4.4, Fig. 14).

Processes are arranged in the largest 3D torus that fits the topology's
node count and each process sends one message to each of its six torus
neighbours (X+/X-, Y+/Y-, Z+/Z-, in that order).  With the contiguous
mapping, X exchanges stay inside a router, Y exchanges inside a
layer/column, and Z exchanges cross the network -- the structure behind
the paper's Fig. 14 discussion.

The paper uses 512 KB messages; reduced-scale runs use smaller ones.
Nodes beyond the torus volume stay idle (the paper's tori also leave a
remainder, e.g. 12 x 14 x 19 = 3192 exactly for the OFT).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.traffic.mapping import best_torus_dims, torus_coords, torus_rank

__all__ = ["NearestNeighbor3D"]


class NearestNeighbor3D:
    """Six-direction nearest-neighbour exchange on a periodic 3D grid.

    ``interleave`` is honoured by :meth:`repro.sim.Network.run_exchange`
    and models the standard non-blocking implementation: all six sends
    are posted concurrently, so packets interleave across neighbours.
    """

    #: Exchange messages are sent concurrently (non-blocking sends).
    interleave = True

    def __init__(
        self,
        num_nodes: int,
        message_bytes: int = 524_288,
        dims: Optional[Tuple[int, int, int]] = None,
        node_map: Optional[Sequence[int]] = None,
    ):
        self.dims = dims if dims is not None else best_torus_dims(num_nodes)
        dx, dy, dz = self.dims
        if dx * dy * dz > num_nodes:
            raise ValueError(f"torus {self.dims} larger than node count {num_nodes}")
        if min(self.dims) < 1:
            raise ValueError(f"bad torus dims {self.dims}")
        if message_bytes < 1:
            raise ValueError(f"message_bytes={message_bytes} must be >= 1")
        self.num_nodes = num_nodes
        self.message_bytes = message_bytes
        self.volume = dx * dy * dz
        # Optional process-to-node mapping: node_map[rank] = node id.
        # Default is the paper's contiguous mapping (rank == node).
        if node_map is None:
            self.node_map: Optional[Tuple[int, ...]] = None
            self._node_rank: Optional[dict] = None
        else:
            node_map = tuple(int(n) for n in node_map)
            if len(node_map) != self.volume:
                raise ValueError(
                    f"node_map has {len(node_map)} entries, torus volume is {self.volume}"
                )
            if len(set(node_map)) != len(node_map):
                raise ValueError("node_map contains duplicate nodes")
            if any(not (0 <= n < num_nodes) for n in node_map):
                raise ValueError("node_map entry out of range")
            self.node_map = node_map
            self._node_rank = {n: r for r, n in enumerate(node_map)}

    def neighbors(self, rank: int) -> Iterator[int]:
        """The six torus neighbours of *rank*, X first, +1 before -1."""
        x, y, z = torus_coords(rank, self.dims)
        dx, dy, dz = self.dims
        yield torus_rank(((x + 1) % dx, y, z), self.dims)
        yield torus_rank(((x - 1) % dx, y, z), self.dims)
        yield torus_rank((x, (y + 1) % dy, z), self.dims)
        yield torus_rank((x, (y - 1) % dy, z), self.dims)
        yield torus_rank((x, y, (z + 1) % dz), self.dims)
        yield torus_rank((x, y, (z - 1) % dz), self.dims)

    def node_messages(self, node: int) -> Iterator[Tuple[int, int]]:
        """Messages of *node*: one per torus neighbour (idle if off-torus).

        Degenerate dimensions of size <= 2 would make +1 and -1 the same
        neighbour (or self); such duplicate/self targets are emitted once
        or skipped, keeping the pattern well-formed on small tori.
        """
        if self._node_rank is None:
            rank = node
            if rank >= self.volume:
                return
        else:
            maybe = self._node_rank.get(node)
            if maybe is None:
                return
            rank = maybe
        seen = set()
        for neighbor in self.neighbors(rank):
            if neighbor == rank or neighbor in seen:
                continue
            seen.add(neighbor)
            dst = neighbor if self.node_map is None else self.node_map[neighbor]
            yield (dst, self.message_bytes)

    @property
    def total_bytes(self) -> int:
        """Aggregate volume of the exchange."""
        participants = (
            range(self.volume) if self.node_map is None else self.node_map
        )
        total = 0
        for node in participants:
            for _ in self.node_messages(node):
                total += self.message_bytes
        return total
