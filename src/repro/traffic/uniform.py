"""Global uniform random traffic (paper Sec. 4.3).

Every generated packet draws a destination uniformly among all other
nodes -- the pattern all three topologies are provisioned for at
``p ~ r'/2`` (full global bandwidth).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["UniformRandom"]


class UniformRandom:
    """Uniformly random destinations over ``[0, num_nodes) \\ {src}``."""

    def __init__(self, num_nodes: int):
        if num_nodes < 2:
            raise ValueError(f"UniformRandom: need >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes

    def pick_destination(self, src_node: int, rng) -> Optional[int]:
        dst = rng.randrange(self.num_nodes - 1)
        return dst if dst < src_node else dst + 1
