"""Process-to-node mappings and torus geometry helpers (paper Sec. 4.4).

The paper assigns processes to nodes *contiguously* (process ``i`` on
node ``i``), with the node order derived from each topology's
morphology -- which our router/node numbering already encodes (see
:mod:`repro.topology.base`).  For the nearest-neighbour exchange, the
processes form the largest 3D torus that fits the node count, ranked in
dimension order (X fastest).
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["torus_rank", "torus_coords", "best_torus_dims", "paper_torus_dims"]


def torus_rank(coords: Tuple[int, int, int], dims: Tuple[int, int, int]) -> int:
    """Rank of torus coordinates ``(x, y, z)``, X fastest-varying."""
    x, y, z = coords
    dx, dy, dz = dims
    if not (0 <= x < dx and 0 <= y < dy and 0 <= z < dz):
        raise ValueError(f"coords {coords} out of torus {dims}")
    return x + dx * (y + dy * z)


def torus_coords(rank: int, dims: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Inverse of :func:`torus_rank`."""
    dx, dy, dz = dims
    if not (0 <= rank < dx * dy * dz):
        raise ValueError(f"rank {rank} out of torus {dims}")
    x = rank % dx
    y = (rank // dx) % dy
    z = rank // (dx * dy)
    return (x, y, z)


def paper_torus_dims(topology) -> Tuple[int, int, int]:
    """The torus shape the paper pairs with each topology (Sec. 4.4).

    - MLFM: ``(p, h+1, l)`` -- with the contiguous mapping, X exchanges
      stay inside a router, Y inside a layer, Z across a router column
      (exactly the structure behind Fig. 14's MLFM discussion; for
      ``h = 15`` this is the paper's 15 x 16 x 15).
    - Slim Fly: ``(q, q, 2p)`` -- the paper's 13 x 13 x 18 / 13 x 13 x 20.
    - Anything else (incl. OFT, whose aligned torus would be the
      "highly impractical" ``k x RL x 2``): the largest near-cubic fit,
      as the paper does for the OFT (12 x 14 x 19).
    """
    from repro.topology.mlfm import MLFM
    from repro.topology.slimfly import SlimFly

    if isinstance(topology, MLFM):
        return (topology.p, topology.h + 1, topology.l)
    if isinstance(topology, SlimFly):
        dims = (topology.q, topology.q, 2 * topology.p)
        if dims[0] * dims[1] * dims[2] <= topology.num_nodes:
            return dims
    return best_torus_dims(topology.num_nodes)


def best_torus_dims(num_nodes: int) -> Tuple[int, int, int]:
    """Largest (then most cubic) 3D torus with at most *num_nodes* ranks.

    Mirrors the paper's choice of "the largest 3D torus that fits in
    each topology" (e.g. 15 x 16 x 15 for the 3600-node MLFM).  Ties on
    volume are broken toward the smallest max/min side ratio.
    """
    if num_nodes < 8:
        raise ValueError(f"best_torus_dims: need >= 8 nodes, got {num_nodes}")
    best: Tuple[int, int, int] = (1, 1, 1)
    best_key = (-1, float("inf"))
    # a <= b <= c without loss of generality; a <= N^(1/3).
    a = 1
    while a * a * a <= num_nodes:
        b = a
        while a * b * b <= num_nodes:
            c = num_nodes // (a * b)
            if c >= b:
                volume = a * b * c
                key = (volume, c / a)
                if key[0] > best_key[0] or (key[0] == best_key[0] and key[1] < best_key[1]):
                    best_key = key
                    best = (a, b, c)
            b += 1
        a += 1
    return best
