"""Adversarial (worst-case) traffic patterns under minimal routing.

Paper Sec. 4.2, one construction per topology:

- **MLFM**: node shift by ``p`` (= ``h``); every local router's nodes
  target the next router, whose single minimal path carries ``h`` flows
  (saturation at ``1/h``).
- **OFT**: node shift by ``p`` (= ``k``); same single-path overload with
  ``k`` flows (saturation at ``1/k``).
- **Slim Fly**: routers communicate in distance-2 pairs whose minimal
  routes *overlap pairwise* (Fig. 5): we build a greedy walk
  ``r0, r1, r2, ...`` on the router graph and pair ``ri -> r(i+2)``, so
  that route ``i`` (``ri -> r(i+1) -> r(i+2)``) and route ``i+1`` share
  the link ``(r(i+1), r(i+2))`` -- ``2p`` flows per link, saturation at
  ``1/(2p)``.  The greedy step prefers successors that keep the pair at
  distance exactly 2 with the walk's midpoint as *unique* common
  neighbor (otherwise path diversity would dilute the overload).
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.topology.base import Topology
from repro.topology.mlfm import MLFM
from repro.topology.oft import OFT
from repro.topology.slimfly import SlimFly
from repro.traffic.base import PermutationTraffic
from repro.traffic.shift import ShiftTraffic

__all__ = [
    "worst_case_traffic",
    "slimfly_worst_case_chain",
    "slimfly_worst_case_chains",
    "SlimFlyWorstCase",
]


def slimfly_worst_case_chains(topology: Topology, seed: int = 0) -> List[List[int]]:
    """Greedy walk decomposition of the router graph for the SF worst case.

    Produces chains of routers in which consecutive routers are (almost
    always) adjacent; the greedy step prefers a successor ``n`` such
    that the predecessor ``prev`` and ``n`` are non-adjacent with the
    current router as their *only* common neighbor (the Fig. 5 overlap
    condition).  When the walk dead-ends a new chain is started from an
    unvisited router; chains shorter than 3 (which could not express a
    distance-2 pairing) are merged onto the previous chain, so a
    handful of junction steps may violate adjacency -- the aggregate
    overload (max link load ``~2p``) is unaffected, which the tests
    check analytically.
    """
    num = topology.num_routers
    rng = random.Random(seed)
    unvisited = set(range(num))
    chains: List[List[int]] = []
    while unvisited:
        start = rng.choice(sorted(unvisited))
        walk = [start]
        unvisited.discard(start)
        while True:
            current = walk[-1]
            prev = walk[-2] if len(walk) >= 2 else None
            candidates = [n for n in topology.neighbors(current) if n in unvisited]
            if not candidates:
                break
            rng.shuffle(candidates)
            best: Optional[int] = None
            best_rank = -1
            for n in candidates:
                if prev is None:
                    rank = 1
                elif topology.is_edge(prev, n):
                    rank = 0  # distance-1 pair: no overload at all
                else:
                    commons = topology.common_neighbors(prev, n)
                    rank = 3 if commons == [current] else 2
                if rank > best_rank:
                    best_rank = rank
                    best = n
                    if rank == 3:
                        break
            assert best is not None
            walk.append(best)
            unvisited.discard(best)
        if len(walk) >= 3 or not chains:
            chains.append(walk)
        else:
            chains[-1].extend(walk)
    # A single stranded chain of length < 3 cannot happen for the MMS
    # graphs used here (degree >= 5), but keep the invariant explicit.
    if any(len(c) < 3 for c in chains):
        raise RuntimeError(f"{topology.name}: degenerate worst-case chain decomposition")
    return chains


def slimfly_worst_case_chain(topology: Topology, seed: int = 0) -> List[int]:
    """Backwards-compatible single-walk view: concatenation of the chains."""
    return [r for chain in slimfly_worst_case_chains(topology, seed) for r in chain]


class SlimFlyWorstCase(PermutationTraffic):
    """SF adversarial permutation built from a greedy distance-2 chain.

    Router ``walk[i]`` sends to router ``walk[i+2]`` (cyclically); node
    ``j`` of the source targets node ``j`` of the destination.
    """

    def __init__(self, topology: SlimFly, seed: int = 0):
        chains = slimfly_worst_case_chains(topology, seed)
        dst = np.full(topology.num_nodes, -1, dtype=np.int64)
        for chain in chains:
            num = len(chain)
            for i, src_router in enumerate(chain):
                dst_router = chain[(i + 2) % num]
                src_nodes = topology.nodes_of(src_router)
                dst_nodes = topology.nodes_of(dst_router)
                for a, b in zip(src_nodes, dst_nodes):
                    dst[a] = b
        super().__init__(dst)
        self.chains = chains


def worst_case_traffic(topology: Topology, seed: int = 0) -> PermutationTraffic:
    """The paper's worst-case pattern for *topology* (Sec. 4.2)."""
    if isinstance(topology, SlimFly):
        return SlimFlyWorstCase(topology, seed=seed)
    if isinstance(topology, MLFM):
        return ShiftTraffic(topology.num_nodes, topology.p)
    if isinstance(topology, OFT):
        return ShiftTraffic(topology.num_nodes, topology.p)
    # Generic fallback: shift by the first endpoint router's node count,
    # which overloads single-path topologies in the same way.
    p = topology.nodes_attached(topology.endpoint_routers()[0])
    return ShiftTraffic(topology.num_nodes, max(p, 1))
