"""All-to-all exchange (paper Sec. 4.4, Fig. 13).

Each process sends one message to every other process (``N^2 - N``
messages total).  The exchange is staged in the style of Kumar et al.
[12]: at phase ``ph`` every process ``i`` targets process
``(i + ph) mod N``, so no destination is hit by two sources in the same
phase.  Our NICs send each node's message list in order without global
barriers, which reproduces that pipelined/staggered behaviour.

The paper uses 7.5 KB messages (30 packets of 256 B); the default here
is configurable because reduced-scale runs use proportionally smaller
messages (see DESIGN.md §4).
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

__all__ = ["AllToAll"]


class AllToAll:
    """All-to-all exchange with a configurable destination schedule.

    ``schedule="random"`` (default) gives every node an independent
    random permutation of its destinations -- the randomized injection
    order of optimized A2A implementations (Kumar et al.), which
    decorrelates the instantaneous traffic into a near-uniform load.
    ``schedule="staggered"`` uses the synchronous phase order
    ``dst = node + phase``; kept as the naive baseline (in lockstep it
    degenerates into a sequence of shift permutations, which is exactly
    the hotspot the optimized schedule avoids).
    """

    def __init__(
        self,
        num_nodes: int,
        message_bytes: int = 7_680,
        schedule: str = "random",
        seed: int = 0,
    ):
        if num_nodes < 2:
            raise ValueError(f"AllToAll: need >= 2 nodes, got {num_nodes}")
        if message_bytes < 1:
            raise ValueError(f"AllToAll: message_bytes={message_bytes} must be >= 1")
        if schedule not in ("random", "staggered"):
            raise ValueError(f"AllToAll: unknown schedule {schedule!r}")
        self.num_nodes = num_nodes
        self.message_bytes = message_bytes
        self.schedule = schedule
        self.seed = seed

    def node_messages(self, node: int) -> Iterator[Tuple[int, int]]:
        """Ordered messages of *node*, one per other process."""
        n = self.num_nodes
        size = self.message_bytes
        if self.schedule == "staggered":
            for phase in range(1, n):
                yield ((node + phase) % n, size)
        else:
            order = [(node + phase) % n for phase in range(1, n)]
            random.Random((self.seed << 32) ^ node).shuffle(order)
            for dst in order:
                yield (dst, size)

    @property
    def total_bytes(self) -> int:
        """Aggregate volume of the exchange."""
        return self.num_nodes * (self.num_nodes - 1) * self.message_bytes
