"""Shift (cyclic offset) permutation traffic.

Node ``i`` sends to ``(i + shift) mod N``.  With ``shift = p`` (the
number of nodes per router) this moves every router's traffic to the
next router -- the particular worst-case instantiation the paper uses
for the MLFM (shift ``h``) and the OFT (shift ``k``), Sec. 4.2.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import PermutationTraffic

__all__ = ["ShiftTraffic", "shift_permutation"]


def shift_permutation(num_nodes: int, shift: int) -> np.ndarray:
    """Destination array of the shift pattern."""
    if num_nodes < 2:
        raise ValueError(f"shift_permutation: need >= 2 nodes, got {num_nodes}")
    if shift % num_nodes == 0:
        raise ValueError(f"shift {shift} is a multiple of N={num_nodes} (self-traffic)")
    return (np.arange(num_nodes) + shift) % num_nodes


class ShiftTraffic(PermutationTraffic):
    """Permutation traffic ``i -> (i + shift) mod N``."""

    def __init__(self, num_nodes: int, shift: int):
        super().__init__(shift_permutation(num_nodes, shift))
        self.shift = shift
