"""Traffic patterns and workloads (paper Sec. 4.2-4.4).

Synthetic (rate-driven): :class:`UniformRandom`, :class:`ShiftTraffic`,
:class:`PermutationTraffic`, and the per-topology adversarial patterns
from :func:`worst_case_traffic`.

Exchanges (finite): :class:`AllToAll` and :class:`NearestNeighbor3D`.
"""

from repro.traffic.alltoall import AllToAll
from repro.traffic.base import ExchangeTraffic, PermutationTraffic, SyntheticTraffic
from repro.traffic.classic import (
    BitComplement,
    BitReverse,
    HotspotTraffic,
    Tornado,
    Transpose,
)
from repro.traffic.mapping import best_torus_dims, paper_torus_dims, torus_coords, torus_rank
from repro.traffic.nearest import NearestNeighbor3D
from repro.traffic.shift import ShiftTraffic, shift_permutation
from repro.traffic.uniform import UniformRandom
from repro.traffic.worstcase import (
    SlimFlyWorstCase,
    slimfly_worst_case_chain,
    worst_case_traffic,
)

__all__ = [
    "SyntheticTraffic",
    "ExchangeTraffic",
    "PermutationTraffic",
    "UniformRandom",
    "BitComplement",
    "BitReverse",
    "Transpose",
    "Tornado",
    "HotspotTraffic",
    "ShiftTraffic",
    "shift_permutation",
    "worst_case_traffic",
    "SlimFlyWorstCase",
    "slimfly_worst_case_chain",
    "AllToAll",
    "NearestNeighbor3D",
    "best_torus_dims",
    "paper_torus_dims",
    "torus_rank",
    "torus_coords",
]
