"""Plain-text rendering of experiment results.

All figure/table reproductions print through these helpers so that the
benchmark harness regenerates the paper's artefacts as readable ASCII
tables (the series behind each plot, not the pixels).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["ascii_table", "format_value", "series_table"]


def format_value(value: object, precision: int = 3) -> str:
    """Human formatting: floats rounded, None blank, rest str()."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def ascii_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: List[List[str]] = [
        [format_value(v, precision) for v in row] for row in rows
    ]
    widths = [len(c) for c in columns]
    for row in rendered:
        if len(row) != len(columns):
            raise ValueError(f"row has {len(row)} cells, expected {len(columns)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def series_table(
    x_name: str,
    x_values: Sequence[object],
    series: dict,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render one x-column plus one column per named series."""
    columns = [x_name] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return ascii_table(columns, rows, title=title, precision=precision)
