"""Closed-loop degradation experiments (repro.resilience).

How do the paper's diameter-two topologies absorb link failures that
happen *mid-collective*?  For each evaluation configuration (the four
paper configs plus a HyperX baseline) this module runs the same
dependency-DAG collective twice under adaptive routing -- once fault
free, once with an identical drip fault schedule injected mid-run --
and reports:

- **completion stretch**: degraded / fault-free schedule completion,
- **reroute counts**: packets diverted off dead links in flight,
- **post-fault link-load skew**: max/mean fabric-link utilization over
  the window from the first failure to completion, i.e. how evenly the
  surviving links carry the displaced traffic.

The drip schedule (``drip@T:n=K,every=E``) self-selects failed links
per topology -- seeded, connectivity-preserving -- so every topology
faces the same failure *process* at the same absolute times, the
apples-to-apples comparison the sweep is after.  ``python -m repro
resilience`` and ``python -m repro figure resilience`` front this
module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.configs import (
    ExperimentConfig,
    configs_for_scale,
    windows_for_scale,
)
from repro.experiments.report import ascii_table
from repro.experiments.runner import run_workload
from repro.sim import SimConfig
from repro.topology import HyperX2D
from repro.workload import build_workload

__all__ = ["resilience_data", "resilience_configs", "HYPERX_RADIX"]

#: HyperX radix per scale (balanced square; radix must be divisible by
#: 3, so it cannot share the SF/MLFM/OFT scale parameters).
HYPERX_RADIX = {"tiny": 6, "small": 12, "paper": 42}

#: Fraction of the fastest fault-free completion at which the first
#: drip failure lands: early enough that most of every schedule runs
#: degraded, late enough that traffic is in full flight.
_FAULT_AT_FRACTION = 0.3


def resilience_configs(scale: str = "tiny") -> List[ExperimentConfig]:
    """The degradation-sweep configurations: the paper's four plus HyperX."""
    configs = configs_for_scale(scale)
    r = HYPERX_RADIX[scale]
    configs.append(ExperimentConfig(
        "hyperx",
        lambda r=r: HyperX2D.balanced(r),
        {"c": 2.0, "num_indirect": 4},
        spec=f"hyperx:r={r}",
    ))
    return configs


def resilience_data(
    scale: str = "tiny",
    seed: int = 0,
    collective: str = "ring-allreduce",
    message_bytes: Optional[int] = None,
    drip_count: int = 2,
    drip_every_ns: float = 100.0,
    drip_seed: int = 1,
    fault_policy: str = "reroute",
    backend: str = "object",
    check: bool = False,
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> Dict:
    """Mid-collective degradation comparison across topologies.

    Two passes per configuration: the fault-free baselines first (their
    completions also fix the shared failure time), then the degraded
    runs under one identical fault schedule.
    """
    configs = (list(configs) if configs is not None
               else resilience_configs(scale))
    if message_bytes is None:
        message_bytes = windows_for_scale(scale).a2a_message_bytes

    def run_one(config: ExperimentConfig, sim_config: SimConfig) -> Dict:
        topo = config.topology()
        workload = build_workload(collective, topo.num_nodes, message_bytes)
        return run_workload(topo, config.adaptive, workload,
                            seed=seed, config=sim_config)

    base_config = SimConfig(backend=backend, check=check)
    baselines = {c.key: run_one(c, base_config) for c in configs}

    first_fault_ns = _FAULT_AT_FRACTION * min(
        res["completion_ns"] for res in baselines.values()
    )
    fault_specs = (
        f"drip@{first_fault_ns:g}:n={drip_count},every={drip_every_ns:g},"
        f"seed={drip_seed}",
    )
    degraded_config = SimConfig(
        backend=backend, check=check,
        faults=fault_specs, fault_policy=fault_policy,
    )
    degraded = {c.key: run_one(c, degraded_config) for c in configs}

    rows: List[List[object]] = []
    results: Dict[str, Dict[str, object]] = {}
    for config in configs:
        base = baselines[config.key]
        faulty = degraded[config.key]
        stretch = (faulty["completion_ns"] / base["completion_ns"]
                   if base["completion_ns"] > 0 else 0.0)
        results[config.key] = {
            "baseline": base,
            "degraded": faulty,
            "completion_stretch": stretch,
        }
        rows.append([
            config.key,
            base["completion_ns"],
            faulty["completion_ns"],
            stretch,
            faulty.get("fault_reroutes", 0),
            faulty.get("fault_dropped", 0),
            faulty.get("post_fault_link_load_skew", 0.0),
        ])
    return {
        "collective": collective,
        "message_bytes": int(message_bytes),
        "fault_specs": list(fault_specs),
        "fault_policy": fault_policy,
        "results": results,
        "rows": rows,
        "report": ascii_table(
            ["config", "fault-free ns", "degraded ns", "stretch",
             "reroutes", "dropped", "post-fault skew"],
            rows,
            title=(f"Mid-collective degradation: {collective} "
                   f"({drip_count} link failures from {first_fault_ns:.0f}ns, "
                   f"policy={fault_policy})"),
        ),
    }
