"""Full-reproduction orchestrator.

Runs every table/figure reproduction at a chosen scale and collects the
rendered reports into one Markdown document (plus optional JSON export
of the raw data) -- the "regenerate the whole evaluation section"
button.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.experiments import figures

__all__ = ["ALL_EXPERIMENTS", "run_all", "write_summary"]

PathLike = Union[str, pathlib.Path]

#: Experiment id -> (callable, takes_scale).
ALL_EXPERIMENTS: Dict[str, Tuple[Callable, bool]] = {
    "table2": (figures.table2_data, False),
    "fig3": (figures.fig3_data, False),
    "fig4": (figures.fig4_data, True),
    "fig5": (figures.fig5_data, True),
    "fig6": (figures.fig6_data, True),
    "fig7": (figures.fig7_data, True),
    "fig8": (figures.fig8_data, True),
    "fig9": (figures.fig9_data, True),
    "fig10": (figures.fig10_data, True),
    "fig11": (figures.fig11_data, True),
    "fig12": (figures.fig12_data, True),
    "fig13": (figures.fig13_data, True),
    "fig14": (figures.fig14_data, True),
    "diversity": (figures.diversity_data, True),
    "tail_effects": (figures.tail_effects_data, True),
}


def run_all(
    scale: str = "tiny",
    only: Optional[List[str]] = None,
    progress: Optional[Callable[[str, float], None]] = None,
) -> Dict[str, Dict]:
    """Run the selected experiments; returns ``{id: figure data}``.

    ``progress(experiment_id, seconds)`` is called after each one.
    """
    selected = list(ALL_EXPERIMENTS) if only is None else list(only)
    unknown = [x for x in selected if x not in ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown} (known: {sorted(ALL_EXPERIMENTS)})")
    results: Dict[str, Dict] = {}
    for exp_id in selected:
        func, takes_scale = ALL_EXPERIMENTS[exp_id]
        start = time.perf_counter()
        results[exp_id] = func(scale) if takes_scale else func()
        if progress is not None:
            progress(exp_id, time.perf_counter() - start)
    return results


def write_summary(
    results: Dict[str, Dict],
    path: PathLike,
    scale: str = "tiny",
) -> None:
    """Write the collected reports to one Markdown file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        "# Reproduction summary",
        "",
        f"Scale preset: `{scale}` (see DESIGN.md §4 for the scale substitution).",
        "",
    ]
    for exp_id, data in results.items():
        lines.append(f"## {exp_id}")
        lines.append("")
        lines.append("```")
        lines.append(data["report"])
        lines.append("```")
        lines.append("")
    path.write_text("\n".join(lines))
