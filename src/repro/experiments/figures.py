"""Per-figure reproduction experiments.

One function per table/figure of the paper (see DESIGN.md §3 for the
index).  Each returns a plain-data dict -- inputs, measured series and a
rendered ASCII table under ``"report"`` -- so the benchmark harness can
regenerate and print the paper's artefacts.

All simulation-based figures accept a ``scale`` preset (``"tiny"`` /
``"small"`` / ``"paper"``; DESIGN.md §4 explains the reduced-scale
substitution) plus overridable load grids, so quick runs and full
reproductions share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import (
    bisection_bandwidth,
    channel_loads_minimal,
    path_diversity_stats,
    permutation_flows,
    saturation_throughput,
    scalability_points,
)
from repro.analysis.cost import COST_TABLE
from repro.experiments.configs import ExperimentConfig, configs_for_scale, windows_for_scale
from repro.experiments.report import ascii_table
from repro.experiments.runner import SweepPoint, load_sweep, run_exchange, saturation_point

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.orchestrate import Orchestrator
from repro.topology import MLFM, OFT, SlimFly, ml3b_table
from repro.traffic import (
    AllToAll,
    UniformRandom,
    paper_torus_dims,
    worst_case_traffic,
)

__all__ = [
    "table2_data",
    "fig3_data",
    "fig4_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "fig8_data",
    "fig9_data",
    "fig10_data",
    "fig11_data",
    "fig12_data",
    "fig13_data",
    "fig14_data",
    "diversity_data",
    "tail_effects_data",
    "collectives_data",
]

UNI_LOADS = (0.2, 0.5, 0.8, 0.95)
WC_LOADS = (0.05, 0.1, 0.2, 0.35, 0.5)


# --------------------------------------------------------------------------
# Table 2 and the analytic figures (no simulation).
# --------------------------------------------------------------------------


def table2_data() -> Dict:
    """Table 2: the tabular representation of the 4-ML3B."""
    table = ml3b_table(4)
    rows = [[i] + [int(v) for v in table[i]] for i in range(table.shape[0])]
    return {
        "table": table,
        "report": ascii_table(
            ["i"] + [f"j{c}" for c in range(table.shape[1])],
            rows,
            title="Table 2: 4-ML3B (j s.t. (1,j) and (0,i) are connected)",
        ),
    }


def fig3_data(max_radix: int = 64) -> Dict:
    """Fig. 3: scale vs router radix, plus the cost table."""
    families = ("2D HyperX", "Slim Fly", "2-lvl Fat-Tree", "3-lvl Fat-Tree", "MLFM", "OFT")
    family_keys = {"2D HyperX": "HyperX2D", "Slim Fly": "SF", "2-lvl Fat-Tree": "FT2",
                   "3-lvl Fat-Tree": "FT3", "MLFM": "MLFM", "OFT": "OFT"}
    points = {name: scalability_points(family_keys[name], max_radix) for name in families}
    best = {name: max((n for _, n in pts), default=0) for name, pts in points.items()}
    rows = []
    for name in families:
        info = COST_TABLE[name]
        rows.append(
            [name, info["diameter"], info["scale"], info["links_per_node"],
             info["ports_per_node"], best[name]]
        )
    return {
        "points": points,
        "best_at_radix": best,
        "report": ascii_table(
            ["topology", "diam", "scale", "Nl/N", "Np/N", f"N @ r<={max_radix}"],
            rows,
            title=f"Fig. 3: scale and cost of low-diameter topologies (radix <= {max_radix})",
        ),
    }


def fig4_data(scale: str = "tiny", restarts: int = 6, seed: int = 0) -> Dict:
    """Fig. 4: approximate per-end-node bisection bandwidth vs size."""
    sizes = {
        "tiny": {"q": (5, 7), "h": (5, 7), "k": (4, 6)},
        "small": {"q": (5, 7, 9, 11), "h": (5, 7, 9, 11), "k": (4, 6, 8)},
        "paper": {"q": (5, 7, 9, 11, 13), "h": (5, 7, 9, 11, 15), "k": (4, 6, 8, 12)},
    }[scale]
    rows = []
    results = []
    for q in sizes["q"]:
        for p_mode in ("floor", "ceil"):
            topo = SlimFly(q, p_mode)
            bb = bisection_bandwidth(topo, restarts=restarts, seed=seed)
            results.append(bb)
            rows.append([bb.topology, topo.num_nodes, bb.cut_links, bb.per_node])
    for h in sizes["h"]:
        topo = MLFM(h)
        bb = bisection_bandwidth(topo, restarts=restarts, seed=seed)
        results.append(bb)
        rows.append([bb.topology, topo.num_nodes, bb.cut_links, bb.per_node])
    for k in sizes["k"]:
        topo = OFT(k)
        bb = bisection_bandwidth(topo, restarts=restarts, seed=seed)
        results.append(bb)
        rows.append([bb.topology, topo.num_nodes, bb.cut_links, bb.per_node])
    return {
        "results": results,
        "report": ascii_table(
            ["topology", "N", "cut links", "bisection b/node"],
            rows,
            title="Fig. 4: approximate bisection bandwidth (multilevel partitioner)",
        ),
    }


def fig5_data(scale: str = "tiny", seed: int = 0) -> Dict:
    """Fig. 5: the SF worst-case construction and its link overload.

    Validates that the greedy distance-2 pairing produces overlapping
    routes whose most-loaded link carries ``2p`` flows, i.e. analytic
    saturation ``1/(2p)``.
    """
    q = {"tiny": 5, "small": 7, "paper": 13}[scale]
    topo = SlimFly(q, "floor")
    wc = worst_case_traffic(topo, seed=seed)
    loads = channel_loads_minimal(topo, permutation_flows(wc.destinations))
    max_load = max(loads.values())
    sat = saturation_throughput(loads)
    rows = [[topo.name, topo.p, max_load, 2 * topo.p, sat, 1.0 / (2 * topo.p)]]
    return {
        "topology": topo.name,
        "max_link_load": max_load,
        "saturation": sat,
        "expected_saturation": 1.0 / (2 * topo.p),
        "report": ascii_table(
            ["topology", "p", "max link load", "2p", "analytic sat", "1/(2p)"],
            rows,
            title="Fig. 5: SF worst-case pairing (overlapping distance-2 routes)",
        ),
    }


# --------------------------------------------------------------------------
# Simulation figures.
# --------------------------------------------------------------------------


@dataclass
class _SweepTask:
    """One named sweep of a figure: serial factories + declarative specs."""

    key: str
    config: ExperimentConfig
    routing_factory: Callable
    routing_spec: Tuple[str, Dict[str, object]]
    pattern_factory: Callable
    pattern_spec: Tuple[str, Dict[str, object]]
    loads: Sequence[float]


def _run_sweep_tasks(
    tasks: Sequence[_SweepTask],
    orchestrator: Optional["Orchestrator"],
    warmup_ns: float,
    measure_ns: float,
    seed: int,
) -> Dict[str, List[SweepPoint]]:
    """Execute every task, in parallel when an orchestrator is given.

    Both paths are bit-identical for fixed seeds (the orchestrator
    executes point ``i`` through the same
    :func:`~repro.experiments.runner.run_sweep_point` primitive with
    ``seed = seed + i``).  Ad-hoc configs without a declarative
    ``spec`` fall back to the serial path.
    """
    use_orchestrator = orchestrator is not None and all(t.config.spec for t in tasks)
    out: Dict[str, List[SweepPoint]] = {}
    if not use_orchestrator:
        topo_cache: Dict[str, object] = {}
        for task in tasks:
            topo = topo_cache.setdefault(task.config.key, task.config.topology())
            out[task.key] = load_sweep(
                topo, task.routing_factory, task.pattern_factory, task.loads,
                warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
            )
        return out

    from repro.orchestrate import points_from_outcomes, sweep_jobs

    jobs = []
    slices: Dict[str, Tuple[int, int]] = {}
    for task in tasks:
        task_jobs = sweep_jobs(
            task.config.spec, task.routing_spec, task.pattern_spec, task.loads,
            warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed, tag=task.key,
        )
        slices[task.key] = (len(jobs), len(task_jobs))
        jobs.extend(task_jobs)
    result = orchestrator.run(jobs)
    for task in tasks:
        start, count = slices[task.key]
        out[task.key] = points_from_outcomes(result, result.order[start:start + count])
    return out


def fig6_data(
    scale: str = "tiny",
    uni_loads: Sequence[float] = UNI_LOADS,
    wc_loads: Sequence[float] = WC_LOADS,
    seed: int = 0,
    configs: Optional[Sequence[ExperimentConfig]] = None,
    orchestrator: Optional["Orchestrator"] = None,
) -> Dict:
    """Fig. 6: oblivious routing (MIN / INR) under uniform and worst-case.

    Reports throughput per offered load and the saturation point of
    every (config, routing, pattern) combination.  With *orchestrator*,
    the 16 sweeps run as one parallel, cached campaign.
    """
    configs = list(configs) if configs is not None else configs_for_scale(scale)
    windows = windows_for_scale(scale)
    tasks: List[_SweepTask] = []
    for config in configs:
        routings = (
            ("MIN", config.minimal, config.minimal_spec()),
            ("INR", config.indirect, config.indirect_spec()),
        )
        patterns = (
            ("UNI", lambda t: UniformRandom(t.num_nodes), ("uniform", {}), uni_loads),
            ("WC", lambda t: worst_case_traffic(t, seed=seed),
             ("worstcase", {"seed": seed}), wc_loads),
        )
        for rname, rfactory, rspec in routings:
            for pname, pfactory, pspec, loads in patterns:
                tasks.append(_SweepTask(
                    key=f"{config.key}/{rname}/{pname}", config=config,
                    routing_factory=rfactory, routing_spec=rspec,
                    pattern_factory=pfactory, pattern_spec=pspec, loads=loads,
                ))
    by_key = _run_sweep_tasks(
        tasks, orchestrator, windows.warmup_ns, windows.measure_ns, seed
    )
    rows: List[List[object]] = []
    saturations: Dict[str, float] = {}
    for task in tasks:
        points = by_key[task.key]
        saturations[task.key] = saturation_point(points)
        config_key, rname, pname = task.key.split("/")
        for p in points:
            rows.append([config_key, rname, pname, p.load, p.throughput, p.mean_latency_ns])
    return {
        "rows": rows,
        "saturations": saturations,
        "report": ascii_table(
            ["config", "routing", "pattern", "load", "throughput", "latency ns"],
            rows,
            title="Fig. 6: oblivious routing under uniform and worst-case traffic",
        ),
    }


def _adaptive_parameter_figure(
    config: ExperimentConfig,
    title: str,
    vary: str,
    values: Sequence[float],
    fixed: Dict[str, object],
    threshold: Optional[float],
    scale: str,
    uni_loads: Sequence[float],
    wc_loads: Sequence[float],
    seed: int,
    orchestrator: Optional["Orchestrator"] = None,
) -> Dict:
    """Shared engine of Figs. 7-12: UGAL parameter sensitivity sweeps."""
    windows = windows_for_scale(scale)
    tasks: List[_SweepTask] = []
    labels: Dict[str, str] = {}
    for value in values:
        overrides = dict(fixed)
        overrides[vary] = value
        overrides["threshold"] = threshold

        def rfactory(t, s, overrides=overrides):
            return config.adaptive(t, seed=s, **overrides)

        for pname, pfactory, pspec, loads in (
            ("UNI", lambda t: UniformRandom(t.num_nodes), ("uniform", {}), uni_loads),
            ("WC", lambda t: worst_case_traffic(t, seed=seed),
             ("worstcase", {"seed": seed}), wc_loads),
        ):
            key = f"{config.key}/{vary}={value:g}/{pname}"
            labels[key] = f"{vary}={value:g}"
            tasks.append(_SweepTask(
                key=key, config=config,
                routing_factory=rfactory,
                routing_spec=config.adaptive_spec(**overrides),
                pattern_factory=pfactory, pattern_spec=pspec, loads=loads,
            ))
    by_key = _run_sweep_tasks(
        tasks, orchestrator, windows.warmup_ns, windows.measure_ns, seed
    )
    rows: List[List[object]] = []
    for task in tasks:
        pname = task.key.rsplit("/", 1)[-1]
        for p in by_key[task.key]:
            rows.append([config.key, labels[task.key], pname, p.load, p.throughput,
                         p.mean_latency_ns, p.indirect_fraction])
    return {
        "rows": rows,
        "report": ascii_table(
            ["config", "param", "pattern", "load", "throughput", "latency ns", "indirect frac"],
            rows,
            title=title,
        ),
    }


def _config_by_key(scale: str, key: str) -> ExperimentConfig:
    for config in configs_for_scale(scale):
        if config.key == key:
            return config
    raise KeyError(key)


def fig7_data(scale="tiny", uni_loads=UNI_LOADS, wc_loads=WC_LOADS, seed=0,
              orchestrator=None,
              ni_values=(1, 2, 4), csf_values=(0.5, 1.0, 2.0)) -> Dict:
    """Fig. 7: SF-A sensitivity to nI (cSF = 1) and cSF (nI = 4)."""
    config = _config_by_key(scale, "sf-floor")
    part_a = _adaptive_parameter_figure(
        config, "Fig. 7a: SF-A varying nI (cSF=1)", "num_indirect", ni_values,
        {"cost_mode": "sf", "c_sf": 1.0}, None, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    part_b = _adaptive_parameter_figure(
        config, "Fig. 7b: SF-A varying cSF (nI=4)", "c_sf", csf_values,
        {"cost_mode": "sf", "num_indirect": 4}, None, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    return {"a": part_a, "b": part_b, "report": part_a["report"] + "\n\n" + part_b["report"]}


def fig8_data(scale="tiny", uni_loads=UNI_LOADS, wc_loads=WC_LOADS, seed=0,
              orchestrator=None,
              ni_values=(1, 2, 4), csf_values=(0.5, 1.0, 2.0), threshold=0.10) -> Dict:
    """Fig. 8: SF-ATh (T = 10%) sensitivity to nI and cSF."""
    config = _config_by_key(scale, "sf-floor")
    part_a = _adaptive_parameter_figure(
        config, f"Fig. 8a: SF-ATh varying nI (cSF=1, T={threshold:.0%})",
        "num_indirect", ni_values, {"cost_mode": "sf", "c_sf": 1.0},
        threshold, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    part_b = _adaptive_parameter_figure(
        config, f"Fig. 8b: SF-ATh varying cSF (nI=4, T={threshold:.0%})",
        "c_sf", csf_values, {"cost_mode": "sf", "num_indirect": 4},
        threshold, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    return {"a": part_a, "b": part_b, "report": part_a["report"] + "\n\n" + part_b["report"]}


def fig9_data(scale="tiny", uni_loads=UNI_LOADS, wc_loads=WC_LOADS, seed=0,
              orchestrator=None,
              ni_values=(1, 2, 5), c_values=(1.0, 2.0, 4.0)) -> Dict:
    """Fig. 9: MLFM-A sensitivity to nI (c = 2) and c (nI = 5)."""
    config = _config_by_key(scale, "mlfm")
    part_a = _adaptive_parameter_figure(
        config, "Fig. 9a: MLFM-A varying nI (c=2)", "num_indirect", ni_values,
        {"cost_mode": "const", "c": 2.0}, None, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    part_b = _adaptive_parameter_figure(
        config, "Fig. 9b: MLFM-A varying c (nI=5)", "c", c_values,
        {"cost_mode": "const", "num_indirect": 5}, None, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    return {"a": part_a, "b": part_b, "report": part_a["report"] + "\n\n" + part_b["report"]}


def fig10_data(scale="tiny", uni_loads=UNI_LOADS, wc_loads=WC_LOADS, seed=0,
              orchestrator=None,
               ni_values=(1, 2, 5), c_values=(1.0, 2.0, 4.0)) -> Dict:
    """Fig. 10: OFT-A sensitivity to nI (c = 2) and c (nI = 1)."""
    config = _config_by_key(scale, "oft")
    part_a = _adaptive_parameter_figure(
        config, "Fig. 10a: OFT-A varying nI (c=2)", "num_indirect", ni_values,
        {"cost_mode": "const", "c": 2.0}, None, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    part_b = _adaptive_parameter_figure(
        config, "Fig. 10b: OFT-A varying c (nI=1)", "c", c_values,
        {"cost_mode": "const", "num_indirect": 1}, None, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    return {"a": part_a, "b": part_b, "report": part_a["report"] + "\n\n" + part_b["report"]}


def fig11_data(scale="tiny", uni_loads=UNI_LOADS, wc_loads=WC_LOADS, seed=0,
              orchestrator=None,
               ni_values=(1, 2, 5), c_values=(1.0, 2.0, 4.0), threshold=0.10) -> Dict:
    """Fig. 11: MLFM-ATh (T = 10%) sensitivity to nI and c."""
    config = _config_by_key(scale, "mlfm")
    part_a = _adaptive_parameter_figure(
        config, f"Fig. 11a: MLFM-ATh varying nI (c=2, T={threshold:.0%})",
        "num_indirect", ni_values, {"cost_mode": "const", "c": 2.0},
        threshold, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    part_b = _adaptive_parameter_figure(
        config, f"Fig. 11b: MLFM-ATh varying c (nI=5, T={threshold:.0%})",
        "c", c_values, {"cost_mode": "const", "num_indirect": 5},
        threshold, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    return {"a": part_a, "b": part_b, "report": part_a["report"] + "\n\n" + part_b["report"]}


def fig12_data(scale="tiny", uni_loads=UNI_LOADS, wc_loads=WC_LOADS, seed=0,
              orchestrator=None,
               ni_values=(1, 2, 5), c_values=(1.0, 2.0, 4.0), threshold=0.10) -> Dict:
    """Fig. 12: OFT-ATh (T = 10%) sensitivity to nI and c."""
    config = _config_by_key(scale, "oft")
    part_a = _adaptive_parameter_figure(
        config, f"Fig. 12a: OFT-ATh varying nI (c=2, T={threshold:.0%})",
        "num_indirect", ni_values, {"cost_mode": "const", "c": 2.0},
        threshold, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    part_b = _adaptive_parameter_figure(
        config, f"Fig. 12b: OFT-ATh varying c (nI=1, T={threshold:.0%})",
        "c", c_values, {"cost_mode": "const", "num_indirect": 1},
        threshold, scale, uni_loads, wc_loads, seed,
        orchestrator=orchestrator)
    return {"a": part_a, "b": part_b, "report": part_a["report"] + "\n\n" + part_b["report"]}


def _run_exchange_tasks(
    tasks: Sequence[Tuple[str, ExperimentConfig, Callable, Tuple[str, Dict[str, object]],
                          Tuple[str, Dict[str, object]]]],
    orchestrator: Optional["Orchestrator"],
    seed: int,
) -> Dict[str, Dict[str, float]]:
    """Figs. 13/14 engine: run named finite exchanges, parallel if possible.

    Each task is ``(key, config, routing_factory, routing_spec,
    exchange_spec)``; returns the :func:`run_exchange` result dict per
    key.  Exchange objects are rebuilt per run in both paths (they are
    stateless descriptions), so serial and orchestrated results match.
    """
    use_orchestrator = orchestrator is not None and all(t[1].spec for t in tasks)
    out: Dict[str, Dict[str, float]] = {}
    if not use_orchestrator:
        from repro.orchestrate.job import _build_exchange  # shared builder

        topo_cache: Dict[str, object] = {}
        for key, config, rfactory, _rspec, (xname, xkwargs) in tasks:
            topo = topo_cache.setdefault(config.key, config.topology())
            exchange = _build_exchange(xname, xkwargs, topo)
            out[key] = run_exchange(topo, rfactory, exchange, seed=seed)
        return out

    from repro.orchestrate import exchange_job

    jobs = [
        exchange_job(config.spec, rspec, xspec, seed=seed, tag=key)
        for key, config, _rfactory, rspec, xspec in tasks
    ]
    result = orchestrator.run(jobs)
    for (key, *_), job_id in zip(tasks, result.order):
        outcome = result.outcomes[job_id]
        if not outcome.ok or outcome.result is None:
            raise RuntimeError(f"exchange job {job_id} ({key}) failed: {outcome.error}")
        out[key] = outcome.result.payload
    return out


def fig13_data(scale: str = "tiny", seed: int = 0,
               configs: Optional[Sequence[ExperimentConfig]] = None,
               orchestrator: Optional["Orchestrator"] = None) -> Dict:
    """Fig. 13: effective throughput of one all-to-all exchange."""
    configs = list(configs) if configs is not None else configs_for_scale(scale)
    windows = windows_for_scale(scale)
    tasks = []
    for config in configs:
        xspec = ("a2a", {"message_bytes": windows.a2a_message_bytes, "seed": seed})
        for rname, rfactory, rspec in (
            ("MIN", config.minimal, config.minimal_spec()),
            ("INR", config.indirect, config.indirect_spec()),
            ("ADAPT", config.adaptive, config.adaptive_spec()),
        ):
            tasks.append((f"{config.key}/{rname}", config, rfactory, rspec, xspec))
    by_key = _run_exchange_tasks(tasks, orchestrator, seed)
    rows: List[List[object]] = []
    results: Dict[str, float] = {}
    for key, config, *_ in tasks:
        res = by_key[key]
        eff = res["effective_throughput"]
        results[key] = eff
        rows.append([config.key, key.rsplit("/", 1)[-1], eff, res["completion_ns"]])
    return {
        "results": results,
        "rows": rows,
        "report": ascii_table(
            ["config", "routing", "effective throughput", "completion ns"],
            rows,
            title="Fig. 13: effective throughput, one all-to-all exchange",
        ),
    }


def fig14_data(scale: str = "tiny", seed: int = 0,
               configs: Optional[Sequence[ExperimentConfig]] = None,
               orchestrator: Optional["Orchestrator"] = None) -> Dict:
    """Fig. 14: effective throughput of one nearest-neighbour exchange."""
    configs = list(configs) if configs is not None else configs_for_scale(scale)
    windows = windows_for_scale(scale)
    tasks = []
    dims_of: Dict[str, Tuple[int, int, int]] = {}
    for config in configs:
        dims_of[config.key] = paper_torus_dims(config.topology())
        xspec = ("nn", {"message_bytes": windows.nn_message_bytes})
        for rname, rfactory, rspec in (
            ("MIN", config.minimal, config.minimal_spec()),
            ("INR", config.indirect, config.indirect_spec()),
            ("ADAPT", config.adaptive, config.adaptive_spec()),
        ):
            tasks.append((f"{config.key}/{rname}", config, rfactory, rspec, xspec))
    by_key = _run_exchange_tasks(tasks, orchestrator, seed)
    rows: List[List[object]] = []
    results: Dict[str, float] = {}
    for key, config, *_ in tasks:
        eff = by_key[key]["effective_throughput"]
        results[key] = eff
        dims = dims_of[config.key]
        rows.append([config.key, f"{dims[0]}x{dims[1]}x{dims[2]}",
                     key.rsplit("/", 1)[-1], eff])
    return {
        "results": results,
        "rows": rows,
        "report": ascii_table(
            ["config", "torus", "routing", "effective throughput"],
            rows,
            title="Fig. 14: effective throughput, nearest-neighbour exchange",
        ),
    }


def tail_effects_data(scale: str = "tiny", seed: int = 0,
                      configs: Optional[Sequence[ExperimentConfig]] = None) -> Dict:
    """Sec. 4.4's tail-effect argument, quantified.

    The paper argues that the A2A effective throughput being "almost
    identical to the steady state throughput is a strong indicator that
    tail effects are negligible".  This experiment measures both sides:
    the steady-state uniform throughput under minimal routing at high
    offered load, and the A2A effective throughput, and reports their
    ratio per configuration.
    """
    configs = list(configs) if configs is not None else configs_for_scale(scale)
    windows = windows_for_scale(scale)
    rows: List[List[object]] = []
    ratios: Dict[str, float] = {}
    for config in configs:
        topo = config.topology()
        points = load_sweep(
            topo, config.minimal, lambda t: UniformRandom(t.num_nodes), [0.95],
            warmup_ns=windows.warmup_ns, measure_ns=windows.measure_ns, seed=seed,
        )
        steady = points[0].throughput
        exchange = AllToAll(topo.num_nodes, message_bytes=windows.a2a_message_bytes,
                            seed=seed)
        eff = run_exchange(topo, config.minimal, exchange, seed=seed)[
            "effective_throughput"
        ]
        ratio = eff / steady
        ratios[config.key] = ratio
        rows.append([config.key, steady, eff, ratio])
    return {
        "ratios": ratios,
        "rows": rows,
        "report": ascii_table(
            ["config", "steady-state thr", "A2A effective thr", "ratio"],
            rows,
            title="Tail effects: steady-state vs finite-exchange throughput (Sec. 4.4)",
        ),
    }


def diversity_data(scale: str = "tiny") -> Dict:
    """Sec. 2.3.3: shortest-path diversity statistics per topology."""
    rows = []
    stats = []
    for config in configs_for_scale(scale):
        topo = config.topology()
        st = path_diversity_stats(topo)
        stats.append(st)
        rows.append([st.topology, st.num_pairs, st.mean, st.max,
                     st.mean_distance2, st.max_distance2])
    return {
        "stats": stats,
        "report": ascii_table(
            ["topology", "pairs", "mean", "max", "mean d2", "max d2"],
            rows,
            title="Sec. 2.3.3: minimal-path diversity between endpoint routers",
        ),
    }


# --------------------------------------------------------------------------
# Collective workloads (repro.workload): closed-loop completion times.
# --------------------------------------------------------------------------


def _run_workload_tasks(
    tasks: Sequence[Tuple[str, ExperimentConfig, Callable, Tuple[str, Dict[str, object]],
                          Tuple[str, Dict[str, object]]]],
    orchestrator: Optional["Orchestrator"],
    seed: int,
) -> Dict[str, Dict[str, object]]:
    """Workload-figure engine: run named collectives, parallel if possible.

    Each task is ``(key, config, routing_factory, routing_spec,
    workload_spec)``; returns the driver result dict per key.  Mirrors
    :func:`_run_exchange_tasks`: workloads are rebuilt per run from
    their declarative spec in both paths, so serial and orchestrated
    results match bit-for-bit.
    """
    use_orchestrator = orchestrator is not None and all(t[1].spec for t in tasks)
    out: Dict[str, Dict[str, object]] = {}
    if not use_orchestrator:
        from repro.experiments.runner import run_workload
        from repro.orchestrate.job import _build_workload  # shared builder

        topo_cache: Dict[str, object] = {}
        for key, config, rfactory, _rspec, (wname, wkwargs) in tasks:
            topo = topo_cache.setdefault(config.key, config.topology())
            workload = _build_workload(wname, dict(wkwargs), topo)
            out[key] = run_workload(topo, rfactory, workload, seed=seed)
        return out

    from repro.orchestrate import workload_job

    jobs = [
        workload_job(config.spec, rspec, wspec, seed=seed, tag=key)
        for key, config, _rfactory, rspec, wspec in tasks
    ]
    result = orchestrator.run(jobs)
    for (key, *_), job_id in zip(tasks, result.order):
        outcome = result.outcomes[job_id]
        if not outcome.ok or outcome.result is None:
            raise RuntimeError(f"workload job {job_id} ({key}) failed: {outcome.error}")
        out[key] = outcome.result.payload
    return out


def collectives_data(scale: str = "tiny", seed: int = 0,
                     collective: str = "ring-allreduce",
                     sizes: Optional[Sequence[int]] = None,
                     routings: Sequence[str] = ("MIN", "ADAPT"),
                     configs: Optional[Sequence[ExperimentConfig]] = None,
                     orchestrator: Optional["Orchestrator"] = None) -> Dict:
    """Collective completion time vs message size, per topology x routing.

    The closed-loop counterpart of Figs. 13/14: instead of a one-shot
    exchange's effective throughput, this measures how long a
    dependency-DAG collective (default: ring all-reduce over all nodes)
    takes to *complete* as the vector size grows -- the metric that
    separates low-diameter topologies on real workloads.  Also reports
    the DAG critical-path bound, the contention stretch (measured /
    bound) and the observed link-load skew.
    """
    configs = list(configs) if configs is not None else configs_for_scale(scale)
    if sizes is None:
        # Span latency-bound through bandwidth-bound regimes.  Ring
        # chunks are size/R bytes, so sizes must straddle multiples of
        # R * packet_bytes or adjacent points collapse onto the same
        # per-step packet count (and hence identical completion times).
        n = max(c.build().num_nodes for c in configs)
        step = n * 256  # one extra packet per ring step
        sizes = (step // 2, 2 * step, 8 * step)
    tasks = []
    for config in configs:
        for rname in routings:
            rspec = config.routing_spec(rname)
            rfactory = {"MIN": config.minimal, "INR": config.indirect,
                        "ADAPT": config.adaptive}[rname]
            for size in sizes:
                wspec = (collective, {"message_bytes": int(size)})
                tasks.append((f"{config.key}/{rname}/B{size}", config,
                              rfactory, rspec, wspec))
    by_key = _run_workload_tasks(tasks, orchestrator, seed)
    rows: List[List[object]] = []
    results: Dict[str, Dict[str, object]] = {}
    for key, config, *_ in tasks:
        res = by_key[key]
        results[key] = res
        _, rname, blabel = key.split("/")
        rows.append([
            config.key, rname, int(blabel[1:]), res["completion_ns"],
            res["critical_path_ideal_ns"], res["contention_stretch"],
            res["link_load_skew"],
        ])
    return {
        "collective": collective,
        "sizes": list(int(s) for s in sizes),
        "results": results,
        "rows": rows,
        "report": ascii_table(
            ["config", "routing", "msg bytes", "completion ns",
             "critical path ns", "stretch", "link skew"],
            rows,
            title=f"Collective completion time: {collective} (closed loop)",
        ),
    }
