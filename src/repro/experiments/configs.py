"""Named experiment configurations.

The paper evaluates four configurations sized like CORAL Summit
(Sec. 4.1):

- SF with q = 13, p = 9 (floor) -- N = 3042,
- SF with q = 13, p = 10 (ceil) -- N = 3380,
- MLFM with h = 15 -- N = 3600,
- OFT with k = 12 -- N = 3192.

Pure-Python flit-level simulation at that scale is expensive, so three
scale presets are provided (DESIGN.md §4): ``tiny`` and ``small`` keep
the identical structure at reduced size (the reproduced quantities are
scale-invariant ratios), ``paper`` matches the paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.routing import (
    IndirectRandomRouting,
    MinimalRouting,
    RoutingAlgorithm,
    UGALRouting,
)
from repro.topology import MLFM, OFT, SlimFly, Topology

__all__ = ["ExperimentConfig", "SCALES", "configs_for_scale", "SimWindows", "windows_for_scale"]


@dataclass
class ExperimentConfig:
    """One (topology, adaptive-routing defaults) evaluation target."""

    key: str  # short id, e.g. "sf-floor"
    build: Callable[[], Topology]
    #: Adaptive-routing keyword arguments that performed best for this
    #: topology under synthetic traffic (used for Figs. 13/14).
    ugal_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Declarative CLI-style topology spec (e.g. ``"sf:q=5,p=floor"``).
    #: Needed to ship this configuration's work to orchestrator workers
    #: (see :mod:`repro.orchestrate`); empty for ad-hoc configs, which
    #: then only support the serial path.
    spec: str = ""

    def topology(self) -> Topology:
        return self.build()

    def minimal(self, topology: Topology, seed: int = 0) -> RoutingAlgorithm:
        return MinimalRouting(topology, seed=seed)

    def indirect(self, topology: Topology, seed: int = 0) -> RoutingAlgorithm:
        return IndirectRandomRouting(topology, seed=seed)

    def adaptive(self, topology: Topology, seed: int = 0, **overrides) -> RoutingAlgorithm:
        kwargs = dict(self.ugal_kwargs)
        kwargs.update(overrides)
        return UGALRouting(topology, seed=seed, **kwargs)

    # -- declarative counterparts (picklable; used by repro.orchestrate) ---

    def minimal_spec(self) -> Tuple[str, Dict[str, object]]:
        return ("min", {})

    def indirect_spec(self) -> Tuple[str, Dict[str, object]]:
        return ("inr", {})

    def adaptive_spec(self, **overrides) -> Tuple[str, Dict[str, object]]:
        """The (name, kwargs) spec building the same router as :meth:`adaptive`."""
        kwargs = dict(self.ugal_kwargs)
        kwargs.update(overrides)
        return ("ugal", kwargs)

    def routing_spec(self, kind: str, **overrides) -> Tuple[str, Dict[str, object]]:
        if kind in ("min", "MIN"):
            return self.minimal_spec()
        if kind in ("inr", "INR"):
            return self.indirect_spec()
        if kind in ("ugal", "adaptive", "ADAPT"):
            return self.adaptive_spec(**overrides)
        raise ValueError(f"unknown routing kind {kind!r}")


def _sf_ugal(threshold: Optional[float] = None) -> Dict[str, object]:
    return {"cost_mode": "sf", "c_sf": 1.0, "num_indirect": 4, "threshold": threshold}


def _mlfm_ugal(threshold: Optional[float] = None) -> Dict[str, object]:
    return {"cost_mode": "const", "c": 4.0, "num_indirect": 5, "threshold": threshold}


def _oft_ugal(threshold: Optional[float] = None) -> Dict[str, object]:
    return {"cost_mode": "const", "c": 2.0, "num_indirect": 1, "threshold": threshold}


def _make(scale_params: Dict[str, Tuple]) -> List[ExperimentConfig]:
    q, h, k = scale_params["q"], scale_params["h"], scale_params["k"]
    return [
        ExperimentConfig("sf-floor", lambda q=q: SlimFly(q, "floor"), _sf_ugal(),
                         spec=f"sf:q={q},p=floor"),
        ExperimentConfig("sf-ceil", lambda q=q: SlimFly(q, "ceil"), _sf_ugal(),
                         spec=f"sf:q={q},p=ceil"),
        ExperimentConfig("mlfm", lambda h=h: MLFM(h), _mlfm_ugal(), spec=f"mlfm:h={h}"),
        ExperimentConfig("oft", lambda k=k: OFT(k), _oft_ugal(), spec=f"oft:k={k}"),
    ]


SCALES: Dict[str, Dict] = {
    # N in the low hundreds: seconds per simulation point.
    "tiny": {"q": 5, "h": 5, "k": 4},
    # N around 400-500: tens of seconds per point.
    "small": {"q": 7, "h": 7, "k": 6},
    # The paper's configurations (N ~ 3000-3600): hours per figure in
    # pure Python -- build them, but budget accordingly.
    "paper": {"q": 13, "h": 15, "k": 12},
}


def configs_for_scale(scale: str = "tiny") -> List[ExperimentConfig]:
    """The four evaluation configurations at the requested scale."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r} (choose from {sorted(SCALES)})")
    return _make(SCALES[scale])


@dataclass
class SimWindows:
    """Per-scale simulation horizons (ns) and message sizes (bytes)."""

    warmup_ns: float
    measure_ns: float
    a2a_message_bytes: int
    nn_message_bytes: int


def windows_for_scale(scale: str = "tiny") -> SimWindows:
    """Warm-up/measurement windows scaled with the configuration size.

    The paper simulates 20 us warm-up + 180 us measurement and uses
    7.5 KB (A2A) / 512 KB (NN) messages; reduced scales shrink both to
    keep each data point at interactive cost.
    """
    if scale == "paper":
        return SimWindows(20_000.0, 180_000.0, 7_680, 524_288)
    if scale == "small":
        return SimWindows(3_000.0, 10_000.0, 1_024, 8_192)
    return SimWindows(2_000.0, 6_000.0, 512, 4_096)
