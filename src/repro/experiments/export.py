"""Result export: CSV and JSON serialisation of experiment data.

The figure functions return plain dicts with a ``rows``/``results``
payload; these helpers persist them in formats that plotting tools and
notebooks consume directly, so the ASCII reports in ``benchmarks/out``
are not the only machine artefact.
"""

from __future__ import annotations

import csv
import json
import pathlib
from dataclasses import asdict, is_dataclass
from typing import Iterable, Sequence, Union

__all__ = ["write_csv", "write_json", "rows_to_dicts"]

PathLike = Union[str, pathlib.Path]


def rows_to_dicts(columns: Sequence[str], rows: Iterable[Sequence[object]]):
    """Zip column names over rows -> list of dicts (for JSON export)."""
    out = []
    for row in rows:
        if len(row) != len(columns):
            raise ValueError(f"row has {len(row)} cells, expected {len(columns)}")
        out.append(dict(zip(columns, row)))
    return out


def write_csv(path: PathLike, columns: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Write rows as CSV with a header line."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(columns)
        for row in rows:
            if len(row) != len(columns):
                raise ValueError(f"row has {len(row)} cells, expected {len(columns)}")
            writer.writerow(row)


def _jsonable(value):
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_json(path: PathLike, data: object, indent: int = 2) -> None:
    """Write any figure-function payload as JSON.

    Dataclasses, numpy arrays and nested containers are converted;
    anything else falls back to ``str()`` so exports never fail on
    auxiliary fields (e.g. the pre-rendered ``report`` string).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(_jsonable(data), fh, indent=indent)
        fh.write("\n")
