"""Experiment harness: configurations, sweep drivers and per-figure
reproduction functions (DESIGN.md §3 maps paper artefacts to these)."""

from repro.experiments.configs import (
    SCALES,
    ExperimentConfig,
    SimWindows,
    configs_for_scale,
    windows_for_scale,
)
from repro.experiments.figures import (
    diversity_data,
    fig3_data,
    fig4_data,
    fig5_data,
    fig6_data,
    fig7_data,
    fig8_data,
    fig9_data,
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
    fig14_data,
    table2_data,
    tail_effects_data,
)
from repro.experiments.export import rows_to_dicts, write_csv, write_json
from repro.experiments.report import ascii_table, format_value, series_table
from repro.experiments.runner import (
    ReplicatedPoint,
    SweepPoint,
    load_sweep,
    load_sweep_replicated,
    run_exchange,
    run_sweep_point,
    saturation_point,
)

__all__ = [
    "ExperimentConfig",
    "SCALES",
    "SimWindows",
    "configs_for_scale",
    "windows_for_scale",
    "SweepPoint",
    "ReplicatedPoint",
    "run_sweep_point",
    "load_sweep",
    "load_sweep_replicated",
    "saturation_point",
    "run_exchange",
    "write_csv",
    "write_json",
    "rows_to_dicts",
    "ascii_table",
    "series_table",
    "format_value",
    "table2_data",
    "fig3_data",
    "fig4_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "fig8_data",
    "fig9_data",
    "fig10_data",
    "fig11_data",
    "fig12_data",
    "fig13_data",
    "fig14_data",
    "diversity_data",
    "tail_effects_data",
]
