"""Experiment drivers: load sweeps and finite exchanges.

Thin orchestration over :class:`repro.sim.Network`; every data point
builds a fresh network so runs are independent and reproducible given
their seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.routing.base import RoutingAlgorithm
from repro.sim import Network, PAPER_CONFIG, SimConfig
from repro.topology.base import Topology

__all__ = [
    "SweepPoint",
    "ReplicatedPoint",
    "run_sweep_point",
    "load_sweep",
    "load_sweep_replicated",
    "saturation_point",
    "run_exchange",
    "run_workload",
]


@dataclass
class SweepPoint:
    """One (offered load, measured behaviour) sample."""

    load: float
    throughput: float
    mean_latency_ns: Optional[float]
    p99_latency_ns: Optional[float]
    ejected_packets: int
    indirect_fraction: float

    def accepted(self, tolerance: float = 0.05) -> bool:
        """Did the network sustain the offered load (within *tolerance*)?"""
        return self.throughput >= self.load * (1.0 - tolerance)


def run_sweep_point(
    topology: Topology,
    routing: RoutingAlgorithm,
    pattern: object,
    load: float,
    warmup_ns: float = 2_000.0,
    measure_ns: float = 6_000.0,
    traffic_seed: int = 0,
    arrival: str = "poisson",
    config: SimConfig = PAPER_CONFIG,
    stats_out: Optional[dict] = None,
) -> SweepPoint:
    """Simulate one (topology, routing, pattern, load) point.

    This is the single-point primitive shared by the serial
    :func:`load_sweep` and the parallel :mod:`repro.orchestrate`
    executor, so both paths are bit-identical by construction.  If
    *stats_out* is given, kernel telemetry (``events_executed``) is
    written into it for throughput accounting.
    """
    net = Network(topology, routing, config)
    stats = net.run_synthetic(
        pattern,
        load=load,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        arrival=arrival,
        seed=traffic_seed,
    )
    if stats_out is not None:
        stats_out["events_executed"] = net.engine.events_executed
    total_kinds = sum(stats.kind_counts.values()) or 1
    return SweepPoint(
        load=load,
        throughput=stats.throughput,
        mean_latency_ns=stats.mean_latency_ns,
        p99_latency_ns=stats.p99_latency_ns,
        ejected_packets=stats.ejected_packets,
        indirect_fraction=stats.kind_counts.get("indirect", 0) / total_kinds,
    )


def load_sweep(
    topology: Topology,
    routing_factory: Callable[[Topology, int], RoutingAlgorithm],
    pattern_factory: Callable[[Topology], object],
    loads: Sequence[float],
    warmup_ns: float = 2_000.0,
    measure_ns: float = 6_000.0,
    seed: int = 0,
    arrival: str = "poisson",
    config: SimConfig = PAPER_CONFIG,
) -> List[SweepPoint]:
    """Sweep offered load and measure throughput/latency at each point.

    ``routing_factory(topology, seed)`` and ``pattern_factory(topology)``
    build fresh per-point instances, so adaptive-routing RNG state and
    network state never leak between points.

    For multi-core execution of large sweeps, build declarative jobs
    instead and run them through :mod:`repro.orchestrate` (see
    ``orchestrate.sweeps.orchestrated_load_sweep``); point ``i`` of this
    serial loop corresponds exactly to a job with ``seed = seed + i``.
    """
    points: List[SweepPoint] = []
    for i, load in enumerate(loads):
        points.append(
            run_sweep_point(
                topology,
                routing_factory(topology, seed + i),
                pattern_factory(topology),
                load,
                warmup_ns=warmup_ns,
                measure_ns=measure_ns,
                traffic_seed=seed + 1000 + i,
                arrival=arrival,
                config=config,
            )
        )
    return points


@dataclass
class ReplicatedPoint:
    """Mean and spread over independent seeds at one offered load."""

    load: float
    mean_throughput: float
    std_throughput: float
    mean_latency_ns: Optional[float]
    std_latency_ns: Optional[float]
    replicas: int


def load_sweep_replicated(
    topology: Topology,
    routing_factory: Callable[[Topology, int], RoutingAlgorithm],
    pattern_factory: Callable[[Topology], object],
    loads: Sequence[float],
    replicas: int = 3,
    warmup_ns: float = 2_000.0,
    measure_ns: float = 6_000.0,
    seed: int = 0,
    arrival: str = "poisson",
    config: SimConfig = PAPER_CONFIG,
) -> List[ReplicatedPoint]:
    """Like :func:`load_sweep` but averaged over *replicas* seeds.

    Gives mean +/- standard deviation per point so confidence in the
    reproduced numbers is quantified, not eyeballed.
    """
    if replicas < 1:
        raise ValueError(f"replicas={replicas} must be >= 1")
    out: List[ReplicatedPoint] = []
    for i, load in enumerate(loads):
        thrs: List[float] = []
        lats: List[float] = []
        for rep in range(replicas):
            rep_seed = seed + 7919 * rep + i
            pts = load_sweep(
                topology, routing_factory, pattern_factory, [load],
                warmup_ns=warmup_ns, measure_ns=measure_ns, seed=rep_seed,
                arrival=arrival, config=config,
            )
            thrs.append(pts[0].throughput)
            if pts[0].mean_latency_ns is not None:
                lats.append(pts[0].mean_latency_ns)

        def _mean(xs: List[float]) -> float:
            return sum(xs) / len(xs)

        def _std(xs: List[float]) -> float:
            if len(xs) < 2:
                return 0.0
            m = _mean(xs)
            return (sum((x - m) ** 2 for x in xs) / (len(xs) - 1)) ** 0.5

        out.append(
            ReplicatedPoint(
                load=load,
                mean_throughput=_mean(thrs),
                std_throughput=_std(thrs),
                mean_latency_ns=_mean(lats) if lats else None,
                std_latency_ns=_std(lats) if lats else None,
                replicas=replicas,
            )
        )
    return out


def saturation_point(points: Sequence[SweepPoint], tolerance: float = 0.05) -> float:
    """Saturation throughput estimated from a sweep.

    The highest offered load still accepted within *tolerance*; if even
    the lowest point saturated, the maximum measured throughput is
    returned instead (the sustained post-saturation rate).
    """
    accepted = [p.load for p in points if p.accepted(tolerance)]
    if accepted:
        return max(accepted)
    return max(p.throughput for p in points)


def run_exchange(
    topology: Topology,
    routing_factory: Callable[[Topology, int], RoutingAlgorithm],
    exchange,
    seed: int = 0,
    config: SimConfig = PAPER_CONFIG,
) -> Dict[str, float]:
    """Simulate one finite exchange to completion."""
    net = Network(topology, routing_factory(topology, seed), config)
    return net.run_exchange(exchange)


def run_workload(
    topology: Topology,
    routing_factory: Callable[[Topology, int], RoutingAlgorithm],
    workload,
    seed: int = 0,
    config: SimConfig = PAPER_CONFIG,
    max_events: Optional[int] = None,
    net_sink: Optional[list] = None,
) -> Dict[str, object]:
    """Drive one dependency-DAG workload to completion (closed loop).

    *workload* is a :class:`repro.workload.Workload`; like
    :func:`run_exchange` this is the single-run primitive shared by the
    serial path and the :mod:`repro.orchestrate` worker, keeping the
    two bit-identical for fixed seeds.  When *net_sink* is a list the
    constructed :class:`Network` is appended to it, so callers (the
    CLI's kernel-profile report, tests) can inspect engine state after
    the run without changing the result payload.
    """
    net = Network(topology, routing_factory(topology, seed), config)
    if net_sink is not None:
        net_sink.append(net)
    return net.run_workload(workload, max_events=max_events)
