"""Golden end-to-end conformance fingerprints.

One fingerprint per topology x routing combination of the tiny-scale
evaluation configurations (:func:`repro.experiments.configs
.configs_for_scale`): the full :class:`~repro.sim.stats.WindowStats` of
a short uniform-traffic run plus a SHA-256 digest over the ordered
delivered-packet stream (pid, endpoints, route kind, ejection time).
The goldens are committed at ``tests/golden/conformance.json``; the
conformance test suite (``tests/test_golden_conformance.py``) recomputes
them serially, through a process pool, with the legacy (uncompiled)
routing path, and with the invariant checker enabled -- so any future
kernel, route-cache or checker change that alters *behaviour*, not just
crashes, fails loudly against a reviewable diff.

The fingerprint deliberately excludes event counts: the invariant
checker's watchdog schedules extra (physics-free) events, and the whole
point is that checked and unchecked runs must agree on everything a
paper figure could consume.

Regenerate after an *intended* behaviour change with::

    python -m repro.experiments.conformance --write

and commit the resulting JSON together with the change that explains it.
"""

from __future__ import annotations

import argparse
import hashlib
import json
from typing import Dict, List

from repro.experiments.configs import configs_for_scale
from repro.sim import Network, SimConfig
from repro.traffic import UniformRandom

__all__ = [
    "GOLDEN_PATH",
    "FAULT_GOLDEN_PATH",
    "CASE_KEYS",
    "FAULT_CASE_KEY",
    "run_case",
    "run_fault_case",
    "fault_specs",
    "compute_fingerprints",
    "load_golden",
    "load_fault_golden",
    "diff_fingerprints",
    "diff_fault_fingerprint",
    "write_fault_golden",
]

#: Repo-relative location of the committed goldens.
GOLDEN_PATH = "tests/golden/conformance.json"

#: Committed golden for the deterministic fault-schedule run
#: (repro.resilience): one case, verified across both backends and the
#: checked/pool paths by tests/test_golden_conformance.py.
FAULT_GOLDEN_PATH = "tests/golden/fault_conformance.json"

#: Run parameters -- small enough that the full 12-case suite stays in
#: test-suite budget, long enough that every pipeline stage (credit
#: stalls, VC round-robin, indirect routes) is exercised.
SCALE = "tiny"
LOAD = 0.3
WARMUP_NS = 300.0
MEASURE_NS = 1_200.0
ROUTING_SEED = 0
TRAFFIC_SEED = 1_000  # the runner's seed contract: traffic = seed + 1000

_ROUTING_KINDS = ("min", "inr", "ugal")

#: Every topology x routing case, in deterministic order.
CASE_KEYS: List[str] = [
    f"{cfg.key}/{kind}"
    for cfg in configs_for_scale(SCALE)
    for kind in _ROUTING_KINDS
]


def _build(
    case_key: str, check: bool, compiled: bool, backend: str = "object"
) -> Network:
    topo_key, _, kind = case_key.partition("/")
    by_key = {cfg.key: cfg for cfg in configs_for_scale(SCALE)}
    if topo_key not in by_key or kind not in _ROUTING_KINDS:
        raise ValueError(f"unknown conformance case {case_key!r}")
    cfg = by_key[topo_key]
    topo = cfg.topology()
    builder = {"min": cfg.minimal, "inr": cfg.indirect, "ugal": cfg.adaptive}[kind]
    routing = builder(topo, seed=ROUTING_SEED)
    # Force the requested routing implementation (default True); the
    # legacy path must produce bit-identical fingerprints.
    routing.compiled = compiled
    for sub in ("_minimal", "_indirect"):
        if hasattr(routing, sub):
            getattr(routing, sub).compiled = compiled
    return Network(topo, routing, SimConfig(check=check, backend=backend))


def run_case(
    case_key: str,
    check: bool = False,
    compiled: bool = True,
    backend: str = "object",
    listener: bool = True,
) -> Dict:
    """Compute one case's fingerprint (picklable: runs in pool workers).

    Returns ``{"stats": {... WindowStats fields ...}, "digest": hex,
    "delivered": total}``.  Floats pass through ``json`` unchanged
    (round-trip exact), so fingerprints compare with ``==``.

    ``listener=False`` skips the delivery-stream digest (returned as
    ``None``; :func:`diff_fingerprints` then compares stats only).  On
    the kernel backend that is the configuration where the C
    delivery-accounting fast path is live, so the no-listener legs gate
    its WindowStats bit-exactness against the same goldens.
    """
    net = _build(case_key, check, compiled, backend)
    digest = hashlib.sha256()

    def record(pkt) -> None:
        digest.update(
            f"{pkt.pid}:{pkt.src_node}:{pkt.dst_node}:{pkt.kind}:"
            f"{pkt.eject_time!r};".encode()
        )

    if listener:
        net.add_delivery_listener(record)
    stats = net.run_synthetic(
        UniformRandom(net.topology.num_nodes),
        load=LOAD,
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        seed=TRAFFIC_SEED,
        drain=True,
    )
    return {
        "stats": {name: getattr(stats, name) for name in stats.__slots__},
        "digest": digest.hexdigest() if listener else None,
        "delivered": net.stats.ejected_total,
    }


#: The fault-conformance case: adaptive routing on the SF floor config,
#: where candidate-set invalidation, minimal fallback and rerouting all
#: get exercised.
FAULT_CASE_KEY = "sf-floor/ugal"

#: Fault times sit inside the measurement window (300..1500 ns) so the
#: degraded interval is visible in the fingerprinted stats.
_FAULT_FAIL_NS = 600.0
_FAULT_RECOVER_NS = 1_100.0
_FAULT_DRIP_NS = 750.0


def fault_specs(topology) -> tuple:
    """The deterministic fault schedule of the fault-conformance case.

    Built from the topology so the failed link always exists: fail the
    lowest-numbered link of router 0 mid-measurement, recover it later,
    and drip two more connectivity-preserving failures in between.
    """
    v = min(topology.neighbors(0))
    return (
        f"fail@{_FAULT_FAIL_NS:g}:0-{v}",
        f"recover@{_FAULT_RECOVER_NS:g}:0-{v}",
        f"drip@{_FAULT_DRIP_NS:g}:n=2,every=100,seed=7",
    )


def run_fault_case(
    check: bool = False,
    backend: str = "object",
    policy: str = "reroute",
) -> Dict:
    """Fingerprint of the deterministic fault-schedule run.

    Same fingerprint shape as :func:`run_case` plus the fault manager's
    summary, so reroute/drop counts are golden-pinned too.  Picklable
    (runs in pool workers).
    """
    topo_key, _, kind = FAULT_CASE_KEY.partition("/")
    cfg = {c.key: c for c in configs_for_scale(SCALE)}[topo_key]
    topo = cfg.topology()
    builder = {"min": cfg.minimal, "inr": cfg.indirect, "ugal": cfg.adaptive}[kind]
    routing = builder(topo, seed=ROUTING_SEED)
    net = Network(
        topo,
        routing,
        SimConfig(
            check=check,
            backend=backend,
            faults=fault_specs(topo),
            fault_policy=policy,
        ),
    )
    digest = hashlib.sha256()

    def record(pkt) -> None:
        digest.update(
            f"{pkt.pid}:{pkt.src_node}:{pkt.dst_node}:{pkt.kind}:"
            f"{pkt.eject_time!r};".encode()
        )

    net.add_delivery_listener(record)
    stats = net.run_synthetic(
        UniformRandom(net.topology.num_nodes),
        load=LOAD,
        warmup_ns=WARMUP_NS,
        measure_ns=MEASURE_NS,
        seed=TRAFFIC_SEED,
        drain=True,
    )
    return {
        "stats": {name: getattr(stats, name) for name in stats.__slots__},
        "digest": digest.hexdigest(),
        "delivered": net.stats.ejected_total,
        "faults": net.fault_manager.summary(),
    }


def compute_fingerprints(
    case_keys=None,
    check: bool = False,
    compiled: bool = True,
    backend: str = "object",
) -> Dict[str, Dict]:
    """Fingerprints for *case_keys* (default: all), serially."""
    return {
        key: run_case(key, check=check, compiled=compiled, backend=backend)
        for key in (CASE_KEYS if case_keys is None else case_keys)
    }


def load_golden(path: str = GOLDEN_PATH) -> Dict[str, Dict]:
    """The committed golden fingerprints, keyed by case."""
    with open(path) as fh:
        return json.load(fh)["cases"]


def diff_fingerprints(golden: Dict, computed: Dict) -> List[str]:
    """Human-readable mismatches between two fingerprint maps."""
    problems = []
    for key in sorted(set(golden) | set(computed)):
        if key not in computed:
            problems.append(f"{key}: missing from computed set")
            continue
        if key not in golden:
            problems.append(f"{key}: not in golden file (regenerate goldens)")
            continue
        want, got = golden[key], computed[key]
        if got["digest"] is not None and want["digest"] != got["digest"]:
            problems.append(
                f"{key}: delivery-stream digest changed "
                f"({want['digest'][:12]} -> {got['digest'][:12]}, "
                f"delivered {want['delivered']} -> {got['delivered']})"
            )
        for field, ref in want["stats"].items():
            val = got["stats"].get(field)
            if val != ref:
                problems.append(f"{key}: stats.{field} changed {ref!r} -> {val!r}")
    return problems


def write_golden(path: str = GOLDEN_PATH) -> Dict[str, Dict]:
    """Recompute all fingerprints and write the golden file."""
    cases = compute_fingerprints()
    payload = {
        "meta": {
            "scale": SCALE,
            "load": LOAD,
            "warmup_ns": WARMUP_NS,
            "measure_ns": MEASURE_NS,
            "routing_seed": ROUTING_SEED,
            "traffic_seed": TRAFFIC_SEED,
            "note": "regenerate with: python -m repro.experiments.conformance --write",
        },
        "cases": cases,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return cases


def load_fault_golden(path: str = FAULT_GOLDEN_PATH) -> Dict:
    """The committed fault-conformance fingerprint."""
    with open(path) as fh:
        return json.load(fh)["case"]


def write_fault_golden(path: str = FAULT_GOLDEN_PATH) -> Dict:
    """Recompute the fault fingerprint (object reference) and write it."""
    case = run_fault_case()
    payload = {
        "meta": {
            "case": FAULT_CASE_KEY,
            "scale": SCALE,
            "load": LOAD,
            "warmup_ns": WARMUP_NS,
            "measure_ns": MEASURE_NS,
            "routing_seed": ROUTING_SEED,
            "traffic_seed": TRAFFIC_SEED,
            "fault_policy": "reroute",
            "note": "regenerate with: python -m repro.experiments.conformance --write",
        },
        "case": case,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return case


def diff_fault_fingerprint(golden: Dict, computed: Dict) -> List[str]:
    """Mismatches between two fault-case fingerprints (all fields)."""
    problems = []
    if golden["digest"] != computed["digest"]:
        problems.append(
            f"fault case: delivery-stream digest changed "
            f"({golden['digest'][:12]} -> {computed['digest'][:12]}, "
            f"delivered {golden['delivered']} -> {computed['delivered']})"
        )
    for field, ref in golden["stats"].items():
        val = computed["stats"].get(field)
        if val != ref:
            problems.append(f"fault case: stats.{field} changed {ref!r} -> {val!r}")
    for field, ref in golden["faults"].items():
        val = computed["faults"].get(field)
        if val != ref:
            problems.append(f"fault case: faults.{field} changed {ref!r} -> {val!r}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.conformance",
        description="verify or regenerate the golden conformance fingerprints",
    )
    parser.add_argument("--write", action="store_true",
                        help="recompute and overwrite the golden file")
    parser.add_argument("--path", default=GOLDEN_PATH,
                        help="golden JSON location (default: %(default)s)")
    parser.add_argument("--backend", choices=("object", "batched", "kernel"),
                        default="object",
                        help="simulator backend to verify against the "
                             "goldens (default: %(default)s); the goldens "
                             "themselves are always written from the "
                             "object reference")
    args = parser.parse_args(argv)
    if args.write:
        cases = write_golden(args.path)
        print(f"wrote {len(cases)} fingerprints to {args.path}")
        fault = write_fault_golden()
        print(f"wrote fault fingerprint ({fault['delivered']} delivered, "
              f"{fault['faults']['reroutes']} reroutes) to {FAULT_GOLDEN_PATH}")
        return 0
    problems = diff_fingerprints(
        load_golden(args.path), compute_fingerprints(backend=args.backend)
    )
    problems += diff_fault_fingerprint(
        load_fault_golden(), run_fault_case(backend=args.backend)
    )
    if problems:
        for problem in problems:
            print(f"MISMATCH {problem}")
        return 1
    print(
        f"all {len(CASE_KEYS)} conformance cases match {args.path} "
        f"(backend={args.backend})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
