"""Mathematical substrates used by the topology constructions.

This subpackage is self-contained (no dependency on the rest of
:mod:`repro`) and provides:

- :mod:`repro.maths.primes` -- primality testing, factorisation, and
  prime-power decomposition,
- :mod:`repro.maths.galois` -- finite-field arithmetic ``GF(p^n)`` with
  primitive-element search (required by the Slim Fly / MMS construction),
- :mod:`repro.maths.mols` -- Mutually Orthogonal Latin Squares (required by
  the ``k``-ML3B construction of the Orthogonal Fat-Tree),
- :mod:`repro.maths.moore` -- the Moore bound for the degree/diameter
  problem.
"""

from repro.maths.galois import GaloisField
from repro.maths.mols import latin_square, mols_prime, are_orthogonal, is_latin_square
from repro.maths.moore import moore_bound
from repro.maths.primes import (
    is_prime,
    is_prime_power,
    factorize,
    prime_power_decomposition,
    primes_up_to,
    next_prime,
)

__all__ = [
    "GaloisField",
    "latin_square",
    "mols_prime",
    "are_orthogonal",
    "is_latin_square",
    "moore_bound",
    "is_prime",
    "is_prime_power",
    "factorize",
    "prime_power_decomposition",
    "primes_up_to",
    "next_prime",
]
