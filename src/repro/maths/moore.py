"""The Moore bound for the degree/diameter problem.

Sec. 2.1.2 of the paper notes that MMS graphs (the Slim Fly router graph)
reach approximately 88% of the Moore bound for diameter 2.  These helpers
compute the bound so that tests and analyses can verify the claim.
"""

from __future__ import annotations

__all__ = ["moore_bound", "moore_fraction"]


def moore_bound(degree: int, diameter: int) -> int:
    """Maximum number of vertices of a graph with given *degree*/*diameter*.

    .. math:: M(d, k) = 1 + d \\sum_{i=0}^{k-1} (d-1)^i

    For diameter 2 this is ``1 + d^2``.
    """
    if degree < 0 or diameter < 0:
        raise ValueError("moore_bound: degree and diameter must be non-negative")
    if diameter == 0 or degree == 0:
        return 1
    if degree == 1:
        return 2
    total = 1
    term = degree
    for _ in range(diameter):
        total += term
        term *= degree - 1
    return total


def moore_fraction(num_vertices: int, degree: int, diameter: int) -> float:
    """Fraction of the Moore bound achieved by a graph of *num_vertices*."""
    return num_vertices / moore_bound(degree, diameter)
