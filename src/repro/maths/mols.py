"""Latin squares and Mutually Orthogonal Latin Squares (MOLS).

The tabular representation of the ``k``-ML3B building block of the
Orthogonal Fat-Tree (paper Sec. 2.2.4) is constructed from the complete
family of ``n - 1`` MOLS of prime order ``n = k - 1``.  For prime *n* the
classical construction

.. math:: L_a(i, j) = i + a \\cdot j \\pmod n, \\qquad a = 1, \\ldots, n - 1

yields ``n - 1`` pairwise-orthogonal Latin squares.  (The paper's Table 2
is reproduced exactly by this convention combined with the column shift
described in Sec. 2.2.4 -- see :mod:`repro.topology.ml3b`.)
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.maths.primes import is_prime, is_prime_power

__all__ = [
    "latin_square",
    "mols_prime",
    "mols_prime_power",
    "galois_latin_square",
    "is_latin_square",
    "are_orthogonal",
]


def latin_square(n: int, a: int) -> np.ndarray:
    """Return the order-*n* Latin square ``L_a(i, j) = i + a*j mod n``.

    ``a`` must be invertible mod *n* (for prime *n*: any ``a != 0``) for
    the result to be a Latin square; ``a = 0`` gives the degenerate square
    whose rows are constant in ``j`` (still useful as a building block:
    its columns are permutations).
    """
    if n < 1:
        raise ValueError(f"latin_square: order must be positive, got {n}")
    i = np.arange(n).reshape(n, 1)
    j = np.arange(n).reshape(1, n)
    return (i + a * j) % n


def mols_prime(n: int) -> List[np.ndarray]:
    """Return the complete family of ``n - 1`` MOLS of prime order *n*.

    Raises ``ValueError`` if *n* is not prime (the general prime-power
    construction is not needed by the paper: the OFT requires ``k - 1``
    prime).
    """
    if not is_prime(n):
        raise ValueError(f"mols_prime: order {n} is not prime")
    return [latin_square(n, a) for a in range(1, n)]


def galois_latin_square(q: int, a: int) -> np.ndarray:
    """Latin square ``L_a(i, j) = i + a * j`` over ``GF(q)``.

    Generalises :func:`latin_square` from prime to prime-power order
    (elements are the canonical integer encoding of the field).  For
    prime ``q`` the result coincides with ``latin_square(q, a)``.
    """
    from repro.maths.galois import get_field

    field = get_field(q)
    square = np.empty((q, q), dtype=np.int64)
    for i in range(q):
        for j in range(q):
            square[i, j] = field.add(i, field.mul(a, j))
    return square


def mols_prime_power(q: int) -> List[np.ndarray]:
    """The complete family of ``q - 1`` MOLS of prime-power order *q*.

    Classical construction over ``GF(q)``: ``L_a(i, j) = i + a*j`` for
    every nonzero ``a``.  This is what lets the ``k``-ML3B (and hence
    the OFT) extend beyond the paper's ``k - 1`` prime cases to any
    prime power (e.g. ``k = 5, 9, 10``).
    """
    if not is_prime_power(q):
        raise ValueError(f"mols_prime_power: order {q} is not a prime power")
    return [galois_latin_square(q, a) for a in range(1, q)]


def is_latin_square(square: np.ndarray) -> bool:
    """Check that every row and every column is a permutation of ``0..n-1``."""
    square = np.asarray(square)
    if square.ndim != 2 or square.shape[0] != square.shape[1]:
        return False
    n = square.shape[0]
    want = np.arange(n)
    rows_ok = all(np.array_equal(np.sort(square[i, :]), want) for i in range(n))
    cols_ok = all(np.array_equal(np.sort(square[:, j]), want) for j in range(n))
    return rows_ok and cols_ok


def are_orthogonal(a: np.ndarray, b: np.ndarray) -> bool:
    """Check orthogonality: the pairs ``(a[i,j], b[i,j])`` are all distinct."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 2:
        return False
    n = a.shape[0]
    pairs = {(int(x), int(y)) for x, y in zip(a.ravel(), b.ravel())}
    return len(pairs) == n * n
