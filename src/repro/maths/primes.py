"""Primality, factorisation and prime-power utilities.

The Slim Fly construction (Sec. 2.1.2 of the paper) is parameterised by a
prime power ``q = 4w + delta`` and the ``k``-ML3B construction of the OFT
(Sec. 2.2.4) requires ``k - 1`` prime.  These helpers keep that number
theory in one place.

All functions are deterministic and exact for the 64-bit range used by
realistic network sizes (router radices are at most a few hundred).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "is_prime",
    "primes_up_to",
    "factorize",
    "is_prime_power",
    "prime_power_decomposition",
    "next_prime",
    "next_prime_power",
]

# Deterministic Miller-Rabin witness set, valid for all n < 3.3 * 10^24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Return ``True`` iff *n* is prime (deterministic for ``n < 3e24``)."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def primes_up_to(limit: int) -> List[int]:
    """Return all primes ``<= limit`` via a simple sieve of Eratosthenes."""
    if limit < 2:
        return []
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    i = 2
    while i * i <= limit:
        if sieve[i]:
            sieve[i * i :: i] = bytearray(len(sieve[i * i :: i]))
        i += 1
    return [i for i in range(limit + 1) if sieve[i]]


def factorize(n: int) -> Dict[int, int]:
    """Return the prime factorisation of *n* as ``{prime: multiplicity}``.

    Trial division; adequate for the small integers appearing in topology
    parameters (radices, node counts of formulas, ...).
    """
    if n < 1:
        raise ValueError(f"factorize() requires a positive integer, got {n}")
    factors: Dict[int, int] = {}
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors[d] = factors.get(d, 0) + 1
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


def prime_power_decomposition(n: int) -> Optional[Tuple[int, int]]:
    """Return ``(p, e)`` with ``n == p**e`` and ``p`` prime, or ``None``.

    >>> prime_power_decomposition(27)
    (3, 3)
    >>> prime_power_decomposition(12) is None
    True
    """
    if n < 2:
        return None
    factors = factorize(n)
    if len(factors) != 1:
        return None
    (p, e), = factors.items()
    return p, e


def is_prime_power(n: int) -> bool:
    """Return ``True`` iff ``n = p**e`` for a prime ``p`` and ``e >= 1``."""
    return prime_power_decomposition(n) is not None


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than *n*."""
    candidate = max(n + 1, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def next_prime_power(n: int) -> int:
    """Return the smallest prime power strictly greater than *n*."""
    candidate = max(n + 1, 2)
    while not is_prime_power(candidate):
        candidate += 1
    return candidate
