"""Finite-field (Galois field) arithmetic ``GF(p^n)``.

The McKay--Miller--Siran construction behind the Slim Fly topology
(Sec. 2.1.2 of the paper) requires arithmetic over ``GF(q)`` for a prime
power ``q`` together with a *primitive element* ``xi`` (a generator of the
multiplicative group).  This module implements both from scratch:

- for ``q`` prime, arithmetic is plain modular arithmetic;
- for ``q = p^n`` with ``n > 1``, elements are polynomials of degree
  ``< n`` over ``GF(p)`` reduced modulo an irreducible monic polynomial
  found by exhaustive search.  Elements are encoded as integers in
  ``[0, q)`` whose base-``p`` digits are the polynomial coefficients
  (least significant digit = constant term).

Multiplication, inversion and powers are served from precomputed
exp/log tables (discrete logarithm w.r.t. the primitive element), which
makes every operation O(1) after an O(q) setup -- ample for the field
sizes appearing in realistic networks (``q`` up to a few hundred).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Tuple

from repro.maths.primes import factorize, prime_power_decomposition

__all__ = ["GaloisField"]


def _poly_from_int(value: int, p: int, n: int) -> Tuple[int, ...]:
    """Decode an integer into base-``p`` digits (length *n*, little-endian)."""
    coeffs = []
    for _ in range(n):
        coeffs.append(value % p)
        value //= p
    return tuple(coeffs)


def _poly_to_int(coeffs: Tuple[int, ...], p: int) -> int:
    """Encode little-endian base-``p`` digits into an integer."""
    value = 0
    for c in reversed(coeffs):
        value = value * p + c
    return value


def _poly_mul_mod(a: Tuple[int, ...], b: Tuple[int, ...], modulus: Tuple[int, ...], p: int) -> Tuple[int, ...]:
    """Multiply polynomials *a*, *b* over GF(p), reduce mod monic *modulus*.

    ``modulus`` is given with its leading coefficient 1 included and has
    degree ``n = len(modulus) - 1``; *a* and *b* have length ``n``.
    """
    n = len(modulus) - 1
    prod = [0] * (2 * n - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            if bj:
                prod[i + j] = (prod[i + j] + ai * bj) % p
    # Reduce: for every coefficient at degree >= n, subtract
    # coeff * x^(deg-n) * modulus.
    for deg in range(2 * n - 2, n - 1, -1):
        c = prod[deg]
        if c == 0:
            continue
        prod[deg] = 0
        shift = deg - n
        for k in range(n):
            prod[shift + k] = (prod[shift + k] - c * modulus[k]) % p
    return tuple(prod[:n])


def _is_irreducible(candidate: Tuple[int, ...], p: int) -> bool:
    """Check irreducibility of a monic polynomial over GF(p).

    Exhaustive trial division by every monic polynomial of degree
    ``1 .. n // 2``; fine for the tiny degrees used here (n <= 6).
    """
    n = len(candidate) - 1

    def poly_mod(dividend: List[int], divisor: Tuple[int, ...]) -> List[int]:
        dividend = list(dividend)
        d = len(divisor) - 1
        inv_lead = pow(divisor[-1], p - 2, p)
        for deg in range(len(dividend) - 1, d - 1, -1):
            c = dividend[deg]
            if c == 0:
                continue
            factor = c * inv_lead % p
            shift = deg - d
            for k in range(d + 1):
                dividend[shift + k] = (dividend[shift + k] - factor * divisor[k]) % p
        return dividend[:d] if d > 0 else []

    def gen_monic(degree: int) -> Iterator[Tuple[int, ...]]:
        total = p**degree
        for v in range(total):
            coeffs = list(_poly_from_int(v, p, degree)) + [1]
            yield tuple(coeffs)

    for deg in range(1, n // 2 + 1):
        for divisor in gen_monic(deg):
            remainder = poly_mod(list(candidate), divisor)
            if all(c == 0 for c in remainder):
                return False
    return True


def _find_irreducible(p: int, n: int) -> Tuple[int, ...]:
    """Find the lexicographically-smallest monic irreducible poly of degree *n*."""
    for v in range(p**n):
        candidate = tuple(list(_poly_from_int(v, p, n)) + [1])
        if _is_irreducible(candidate, p):
            return candidate
    raise ArithmeticError(f"no irreducible polynomial of degree {n} over GF({p})")  # pragma: no cover


class GaloisField:
    """Arithmetic in ``GF(q)`` for a prime power ``q``.

    Elements are integers in ``[0, q)``.  For prime ``q`` the encoding is
    the natural residue; for ``q = p^n`` the base-``p`` digits of the
    integer are the polynomial coefficients.

    Examples
    --------
    >>> F = GaloisField(13)
    >>> F.mul(7, 8)
    4
    >>> F = GaloisField(9)          # GF(3^2)
    >>> F.mul(F.primitive_element, F.inv(F.primitive_element))
    1
    """

    def __init__(self, q: int):
        decomposition = prime_power_decomposition(q)
        if decomposition is None:
            raise ValueError(f"GF({q}): order must be a prime power")
        self.q = q
        self.p, self.n = decomposition
        if self.n == 1:
            self._modulus: Tuple[int, ...] | None = None
        else:
            self._modulus = _find_irreducible(self.p, self.n)
        self._exp: List[int] = []
        self._log: List[int] = []
        self._primitive = self._find_primitive_element()
        self._build_tables()

    # -- encoding ------------------------------------------------------

    def coefficients(self, a: int) -> Tuple[int, ...]:
        """Return the base-``p`` (polynomial) coefficient tuple of *a*."""
        self._check(a)
        return _poly_from_int(a, self.p, self.n)

    def element_from_coefficients(self, coeffs: Tuple[int, ...]) -> int:
        """Inverse of :meth:`coefficients`."""
        if len(coeffs) != self.n or any(not (0 <= c < self.p) for c in coeffs):
            raise ValueError(f"GF({self.q}): bad coefficient vector {coeffs!r}")
        return _poly_to_int(tuple(coeffs), self.p)

    def elements(self) -> Iterator[int]:
        """Iterate over all field elements, 0 first."""
        return iter(range(self.q))

    # -- additive group --------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition."""
        self._check(a)
        self._check(b)
        if self.n == 1:
            return (a + b) % self.p
        ca = _poly_from_int(a, self.p, self.n)
        cb = _poly_from_int(b, self.p, self.n)
        return _poly_to_int(tuple((x + y) % self.p for x, y in zip(ca, cb)), self.p)

    def neg(self, a: int) -> int:
        """Additive inverse."""
        self._check(a)
        if self.n == 1:
            return (-a) % self.p
        ca = _poly_from_int(a, self.p, self.n)
        return _poly_to_int(tuple((-x) % self.p for x in ca), self.p)

    def sub(self, a: int, b: int) -> int:
        """Field subtraction ``a - b``."""
        return self.add(a, self.neg(b))

    # -- multiplicative group --------------------------------------------

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        self._check(a)
        self._check(b)
        if a == 0 or b == 0:
            return 0
        return self._exp[(self._log[a] + self._log[b]) % (self.q - 1)]

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ``ZeroDivisionError`` for 0."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError(f"GF({self.q}): 0 has no multiplicative inverse")
        return self._exp[(-self._log[a]) % (self.q - 1)]

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation ``a**e`` (``e`` may be negative if ``a != 0``)."""
        self._check(a)
        if a == 0:
            if e < 0:
                raise ZeroDivisionError(f"GF({self.q}): 0**{e}")
            return 0 if e != 0 else 1
        return self._exp[(self._log[a] * e) % (self.q - 1)]

    @property
    def primitive_element(self) -> int:
        """A generator ``xi`` of the multiplicative group ``GF(q)*``."""
        return self._primitive

    def element_order(self, a: int) -> int:
        """Multiplicative order of a nonzero element."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError(f"GF({self.q}): 0 has no multiplicative order")
        la = self._log[a]
        from math import gcd

        return (self.q - 1) // gcd(la, self.q - 1)

    # -- internals ---------------------------------------------------------

    def _check(self, a: int) -> None:
        if not (0 <= a < self.q):
            raise ValueError(f"GF({self.q}): element {a} out of range")

    def _raw_mul(self, a: int, b: int) -> int:
        """Multiplication without tables (used during setup)."""
        if self.n == 1:
            return a * b % self.p
        assert self._modulus is not None
        ca = _poly_from_int(a, self.p, self.n)
        cb = _poly_from_int(b, self.p, self.n)
        return _poly_to_int(_poly_mul_mod(ca, cb, self._modulus, self.p), self.p)

    def _raw_pow(self, a: int, e: int) -> int:
        result = 1
        base = a
        while e:
            if e & 1:
                result = self._raw_mul(result, base)
            base = self._raw_mul(base, base)
            e >>= 1
        return result

    def _find_primitive_element(self) -> int:
        order = self.q - 1
        prime_divisors = list(factorize(order)) if order > 1 else []
        for g in range(2, self.q) if self.q > 2 else range(1, self.q):
            if all(self._raw_pow(g, order // r) != 1 for r in prime_divisors):
                return g
        if self.q == 2:
            return 1
        raise ArithmeticError(f"GF({self.q}): no primitive element found")  # pragma: no cover

    def _build_tables(self) -> None:
        self._exp = [1] * (self.q - 1)
        self._log = [0] * self.q
        acc = 1
        for i in range(self.q - 1):
            self._exp[i] = acc
            self._log[acc] = i
            acc = self._raw_mul(acc, self._primitive)
        if acc != 1:  # pragma: no cover - guarded by primitive-element search
            raise ArithmeticError(f"GF({self.q}): {self._primitive} is not primitive")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.n == 1:
            return f"GaloisField({self.q})"
        return f"GaloisField({self.q} = {self.p}^{self.n})"


@lru_cache(maxsize=None)
def get_field(q: int) -> GaloisField:
    """Memoised :class:`GaloisField` factory (fields are immutable)."""
    return GaloisField(q)
