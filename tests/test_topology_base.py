"""Unit tests for repro.topology.base (the shared Topology model)."""

import numpy as np
import pytest

from repro.topology.base import LINK_FLAT, Topology


def triangle(p=2):
    """Three fully-connected routers with p nodes each."""
    return Topology("tri", [[1, 2], [0, 2], [0, 1]], [p, p, p])


def path4():
    """A 4-router path with nodes only at the ends."""
    return Topology("path", [[1], [0, 2], [1, 3], [2]], [2, 0, 0, 2])


class TestConstruction:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Topology("bad", [[1], [0]], [1])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Topology("bad", [[0]], [1])

    def test_rejects_asymmetric_edge(self):
        with pytest.raises(ValueError):
            Topology("bad", [[1], []], [1, 1])

    def test_rejects_unknown_router(self):
        with pytest.raises(ValueError):
            Topology("bad", [[5]], [1])

    def test_rejects_negative_nodes(self):
        with pytest.raises(ValueError):
            Topology("bad", [[1], [0]], [1, -1])

    def test_duplicate_neighbors_collapsed(self):
        t = Topology("dup", [[1, 1], [0, 0]], [1, 1])
        assert t.neighbors(0) == [1]
        assert t.num_router_links == 1


class TestCounts:
    def test_triangle_counts(self):
        t = triangle(p=2)
        assert t.num_routers == 3
        assert t.num_nodes == 6
        assert t.num_router_links == 3
        assert t.num_links == 9  # 3 router links + 6 node links
        assert t.num_ports == 12  # 6 network ports + 6 node ports

    def test_cost_metrics(self):
        t = triangle(p=2)
        assert t.links_per_node() == pytest.approx(1.5)
        assert t.ports_per_node() == pytest.approx(2.0)

    def test_radix(self):
        t = triangle(p=2)
        assert all(t.radix(r) == 4 for r in range(3))
        assert t.max_radix() == 4

    def test_path_radix_nonuniform(self):
        t = path4()
        assert t.radix(0) == 3 and t.radix(1) == 2


class TestNodeAssignment:
    def test_contiguous_ids(self):
        t = triangle(p=2)
        assert t.nodes_of(0) == [0, 1]
        assert t.nodes_of(1) == [2, 3]
        assert t.nodes_of(2) == [4, 5]

    def test_router_of_inverse(self):
        t = triangle(p=3)
        for r in range(3):
            for n in t.nodes_of(r):
                assert t.router_of(n) == r

    def test_node_router_array(self):
        t = triangle(p=2)
        assert np.array_equal(t.node_router, [0, 0, 1, 1, 2, 2])

    def test_endpoint_routers_skips_empty(self):
        t = path4()
        assert t.endpoint_routers() == [0, 3]

    def test_nodes_attached(self):
        t = path4()
        assert t.nodes_attached(1) == 0
        assert t.nodes_attached(0) == 2


class TestGraphAccess:
    def test_neighbors_sorted(self):
        t = Topology("t", [[2, 1], [0], [0]], [1, 1, 1])
        assert t.neighbors(0) == [1, 2]

    def test_is_edge(self):
        t = path4()
        assert t.is_edge(0, 1) and t.is_edge(1, 0)
        assert not t.is_edge(0, 2)

    def test_port_consistent_with_neighbors(self):
        t = triangle()
        for a in range(3):
            for i, b in enumerate(t.neighbors(a)):
                assert t.port(a, b) == i

    def test_common_neighbors(self):
        t = triangle()
        assert t.common_neighbors(0, 1) == [2]

    def test_common_neighbors_empty(self):
        t = path4()
        assert t.common_neighbors(0, 1) == []

    def test_edges_undirected_once(self):
        t = triangle()
        assert sorted(t.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_directed_channels_both_ways(self):
        t = path4()
        chans = set(t.directed_channels())
        assert (0, 1) in chans and (1, 0) in chans
        assert len(chans) == 2 * t.num_router_links


class TestDiameter:
    def test_triangle(self):
        assert triangle().diameter() == 1

    def test_path(self):
        assert path4().diameter() == 3

    def test_endpoint_diameter_smaller(self):
        # Endpoint routers are 0 and 3: endpoint diameter equals full
        # diameter here.
        assert path4().endpoint_diameter() == 3

    def test_disconnected_raises(self):
        t = Topology("disc", [[1], [0], [3], [2]], [1, 1, 1, 1])
        with pytest.raises(ValueError):
            t.diameter()


class TestHooksAndInterop:
    def test_default_link_class_flat(self):
        t = triangle()
        assert t.link_class(0, 1) == LINK_FLAT

    def test_default_valiant_intermediates(self):
        assert path4().valiant_intermediates() == [0, 3]

    def test_to_networkx(self):
        g = triangle().to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3

    def test_adjacency_matrix(self):
        m = path4().adjacency_matrix()
        assert m.shape == (4, 4)
        assert m[0, 1] and m[1, 0] and not m[0, 2]
        assert np.array_equal(m, m.T)
        assert not m.diagonal().any()
