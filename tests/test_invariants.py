"""Runtime invariant checker (repro.sim.invariants).

Two halves: clean simulations of every flavour must pass the checker
with identical physics, and deliberately injected faults -- corrupted
credits, tampered counters, illegal VC assignments, stuck links -- must
each be caught with a structured report naming the offending
router/port/VC.
"""

from __future__ import annotations

import pytest

from repro.routing import MinimalRouting, UGALRouting
from repro.routing.base import Route
from repro.routing.vc import HopIndexVC, PhaseVC
from repro.sim import InvariantViolation, Network, SimConfig
from repro.sim.invariants import CheckedNIC, CheckedRouter
from repro.sim.trace import EventRing
from repro.traffic import AllToAll, UniformRandom
from repro.workload import ring_allreduce

CHECKED = SimConfig(check=True)


def checked_net(topo, routing=None):
    return Network(topo, routing or MinimalRouting(topo), CHECKED)


# -- clean runs: checker on, nothing to report --------------------------------


class TestCleanRuns:
    def test_wiring(self, sf5):
        net = checked_net(sf5)
        assert net.checker is not None
        assert all(isinstance(r, CheckedRouter) for r in net.routers)
        assert all(isinstance(n, CheckedNIC) for n in net.nics)
        unchecked = Network(sf5, MinimalRouting(sf5))
        assert unchecked.checker is None
        assert not any(isinstance(r, CheckedRouter) for r in unchecked.routers)

    def test_synthetic_drains_quiescent(self, sf5):
        net = checked_net(sf5)
        stats = net.run_synthetic(UniformRandom(sf5.num_nodes), load=0.4,
                                  warmup_ns=300, measure_ns=1_200, seed=3,
                                  drain=True)
        assert stats.ejected_packets > 0
        assert net.checker.injected == net.checker.delivered > 0
        assert not net.checker.location  # nothing left in flight
        assert net.checker.audits >= 2  # watchdog ticked at least once

    def test_synthetic_physics_identical_with_checker(self, mlfm4):
        def run(check):
            net = Network(mlfm4, UGALRouting(mlfm4), SimConfig(check=check))
            s = net.run_synthetic(UniformRandom(mlfm4.num_nodes), load=0.5,
                                  warmup_ns=300, measure_ns=1_200, seed=9)
            return (s.throughput, s.mean_latency_ns, s.p99_latency_ns,
                    s.ejected_packets, s.kind_counts)

        assert run(False) == run(True)

    def test_exchange_verified(self, oft4):
        net = checked_net(oft4)
        res = net.run_exchange(AllToAll(oft4.num_nodes, 512))
        assert res["completion_ns"] > 0
        assert not net.checker.location

    def test_workload_verified(self, sf5):
        net = checked_net(sf5)
        res = net.run_workload(ring_allreduce(16, 2_048))
        assert res["completion_ns"] > 0
        assert not net.checker.location

    def test_watchdog_terminates(self, sf5):
        # The watchdog stops rescheduling once the network is empty, so
        # a drained run leaves an empty event heap (no immortal timers).
        net = checked_net(sf5)
        net.run_synthetic(UniformRandom(sf5.num_nodes), load=0.3,
                          warmup_ns=200, measure_ns=600, seed=1, drain=True)
        assert net.engine.pending == 0
        assert not net.checker._watchdog_running


# -- injected faults: each must be caught, named and explained -----------------


class TestInjectedFaults:
    def run_corrupted(self, topo, corrupt, at_ns=900.0, load=0.4):
        net = checked_net(topo)
        net.engine.schedule_at(at_ns, corrupt, net)
        with pytest.raises(InvariantViolation) as excinfo:
            net.run_synthetic(UniformRandom(topo.num_nodes), load=load,
                              warmup_ns=300, measure_ns=1_500, seed=5,
                              drain=True)
        return excinfo.value

    def test_phantom_credit_names_router_port_vc(self, sf5):
        # The acceptance-criteria fault: a corrupted credit counter.
        def corrupt(net):
            net.routers[2].out[1].credits[0] += 1

        err = self.run_corrupted(sf5, corrupt)
        assert err.rule == "credit-loop"
        assert (err.router, err.port, err.vc) == (2, 1, 0)
        report = err.report()
        assert "router=2" in report and "port=1" in report and "vc=0" in report
        assert "expected" in report  # states the capacity it should sum to
        assert "router[2].out[1]" in report  # snapshot of the port state
        assert "last" in report and "events" in report  # recent history

    def test_lost_credit(self, sf5):
        def corrupt(net):
            net.routers[0].out[0].credits[1] -= 1

        err = self.run_corrupted(sf5, corrupt)
        assert err.rule == "credit-loop"
        assert (err.router, err.port, err.vc) == (0, 0, 1)

    def test_vanished_packet_breaks_conservation(self, sf5):
        # A packet silently dropped from an output queue with the
        # counters "kept consistent" -- the signature of a buggy kernel
        # rewrite -- is caught by the registry audit.
        def corrupt(net):
            for router in net.routers:
                for out in router.out:
                    for vc, q in enumerate(out.oq):
                        if q:
                            q.popleft()
                            out.oq_occ[vc] -= 1
                            out.queued -= 1
                            return
            raise AssertionError("no buffered packet found to drop")

        err = self.run_corrupted(sf5, corrupt, load=0.6)
        assert err.rule == "conservation"

    def test_tampered_queued_counter(self, sf5):
        # `queued` feeds UGAL-L's congestion signal; drift is caught by
        # the audit even though it breaks no packet movement.
        def corrupt(net):
            net.routers[3].out[0].queued += 1

        err = self.run_corrupted(sf5, corrupt)
        assert err.rule == "conservation"
        assert (err.router, err.port) == (3, 0)
        assert "congestion signal" in err.message

    def test_tampered_oq_occupancy(self, sf5):
        def corrupt(net):
            net.routers[1].out[2].oq_occ[0] += 1

        err = self.run_corrupted(sf5, corrupt)
        assert err.rule in ("conservation", "credit-loop")
        assert err.router == 1 and err.port == 2

    def test_tampered_stats(self, sf5):
        def corrupt(net):
            net.stats.injected_total += 1

        err = self.run_corrupted(sf5, corrupt)
        assert err.rule == "conservation"
        assert "StatsCollector" in err.message

    def test_stuck_link_reported_as_starvation(self, sf5, monkeypatch):
        # Links that never free again (lost wake-up events): traffic
        # jams, nothing moves, and the watchdog must convert the silent
        # hang into a report with a buffer/credit snapshot.
        monkeypatch.setattr(CheckedRouter, "_link_free", lambda self, out: None)
        net = checked_net(sf5)
        with pytest.raises(InvariantViolation) as excinfo:
            net.run_synthetic(UniformRandom(sf5.num_nodes), load=0.6,
                              warmup_ns=200, measure_ns=800, seed=2,
                              drain=True)
        err = excinfo.value
        assert err.rule == "starvation"
        assert "no simulator progress" in err.message
        assert err.snapshot["in_flight_by_router"]  # the dumped state
        assert "pending_events" in err.snapshot

    def test_illegal_vc_assignment_rejected_at_injection(self, sf5):
        # A routing that violates the hop-index deadlock-avoidance rule
        # (all hops on VC 0) must be refused before the packet enters
        # the network.
        real = MinimalRouting(sf5)

        class BadVCRouting:
            num_vcs = real.num_vcs
            vc_policy = real.vc_policy

            def route(self, src, dst, congestion):
                r = real.route(src, dst, congestion)
                return Route(routers=r.routers, vcs=(0,) * (len(r.routers) - 1),
                             kind=r.kind, intermediate=r.intermediate,
                             ports=r.ports)

        net = Network(sf5, BadVCRouting(), CHECKED)
        with pytest.raises(InvariantViolation) as excinfo:
            net.run_synthetic(UniformRandom(sf5.num_nodes), load=0.2,
                              warmup_ns=200, measure_ns=400, seed=0)
        assert excinfo.value.rule == "vc-legality"
        assert "hop-indexed" in excinfo.value.message

    def test_detour_route_rejected(self, sf5):
        # A route whose final router is not the destination's router.
        real = MinimalRouting(sf5)

        class LostRouting:
            num_vcs = real.num_vcs
            vc_policy = real.vc_policy

            def route(self, src, dst, congestion):
                wrong = (dst + 1) % sf5.num_routers
                return real.route(src, wrong, congestion)

        net = Network(sf5, LostRouting(), CHECKED)
        with pytest.raises(InvariantViolation) as excinfo:
            net.run_synthetic(UniformRandom(sf5.num_nodes), load=0.2,
                              warmup_ns=200, measure_ns=400, seed=0)
        assert excinfo.value.rule == "route-legality"

    def test_latency_floor(self, sf5):
        # Unit-level: a delivery faster than the zero-load floor of its
        # hop count is physically impossible (lost serialization or
        # switch delay) and must be flagged.
        net = checked_net(sf5)
        pkt = net.make_packet(0, 1, 256, None, 0.0)
        pkt.send_time = net.engine.now  # "delivered" with zero elapsed time
        net.checker.location[pkt.pid] = (("eject", pkt.routers[-1], 0), pkt)
        with pytest.raises(InvariantViolation) as excinfo:
            net.checker.on_deliver(pkt)
        assert excinfo.value.rule == "latency-floor"
        assert "zero-load floor" in excinfo.value.message


# -- building blocks ----------------------------------------------------------


class TestEventRing:
    def test_bounded_with_visible_truncation(self):
        ring = EventRing(capacity=4)
        for i in range(10):
            ring.append(float(i), f"e{i}")
        assert len(ring) == 4
        assert ring.appended == 10
        assert ring.tail() == [(6.0, "e6"), (7.0, "e7"), (8.0, "e8"), (9.0, "e9")]
        assert ring.tail(2) == [(8.0, "e8"), (9.0, "e9")]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


class TestVCPolicyLegality:
    def test_hop_index_accepts_its_own_assignments(self):
        policy = HopIndexVC()
        assert policy.check_legal((0, 1), "minimal") is None
        assert policy.check_legal((0, 1, 2, 3), "indirect") is None
        assert policy.check_legal((), "minimal") is None

    def test_hop_index_rejects_disorder_and_overbudget(self):
        policy = HopIndexVC()
        assert "strictly increasing" in policy.check_legal((0, 0), "minimal")
        assert "strictly increasing" in policy.check_legal((1, 0), "minimal")
        assert "budget" in policy.check_legal((0, 1, 2), "minimal")

    def test_phase_accepts_its_own_assignments(self):
        policy = PhaseVC()
        assert policy.check_legal((0, 0), "minimal") is None
        assert policy.check_legal((0, 1), "indirect") is None
        assert policy.check_legal((0, 0, 1, 1), "indirect") is None

    def test_phase_rejects_illegal_sequences(self):
        policy = PhaseVC()
        assert "0 or 1" in policy.check_legal((0, 2), "indirect")
        assert "VC 0" in policy.check_legal((0, 1), "minimal")
        assert "non-decreasing" in policy.check_legal((1, 0), "indirect")


class TestViolationReport:
    def test_fields_and_formatting(self):
        err = InvariantViolation(
            "credit-loop", "credits do not sum", router=7, port=2, vc=1,
            pid=42, time_ns=123.5, snapshot={"credits": [1, 2]},
            history=((120.0, "tx pid=42"),),
        )
        assert err.rule == "credit-loop"
        report = err.report()
        assert "credit-loop" in report
        assert "router=7" in report and "port=2" in report
        assert "vc=1" in report and "pid=42" in report
        assert "t=123.5ns" in report
        assert "credits: [1, 2]" in report
        assert "tx pid=42" in report
        # The exception's str() is the report, so an uncaught violation
        # is fully actionable straight from the traceback.
        assert str(err) == report
