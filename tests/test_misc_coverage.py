"""Coverage for remaining edge paths: validation options, engine limit
combinations, route dataclass details, config derivations."""

import pytest

from repro.routing.base import NullCongestion, Route
from repro.sim.engine import Engine
from repro.topology import SSPT, MLFM, SlimFly
from repro.topology.base import Topology
from repro.topology.validate import validate_topology


class TestValidationOptions:
    def test_nonuniform_radix_flagged(self):
        t = Topology("path", [[1], [0, 2], [1]], [1, 1, 1])
        report = validate_topology(t, expect_diameter=2, max_links_per_node=10,
                                   max_ports_per_node=10)
        assert any("non-uniform radix" in p for p in report.problems)

    def test_nonuniform_radix_allowed_when_disabled(self):
        t = Topology("path", [[1], [0, 2], [1]], [1, 1, 1])
        report = validate_topology(
            t, expect_diameter=2, expect_uniform_radix=False,
            max_links_per_node=10, max_ports_per_node=10,
        )
        assert report.ok, report.problems

    def test_cost_violations_flagged(self):
        # A single link and lots of ports per node: cost checks trip.
        t = Topology("star", [[1, 2, 3], [0], [0], [0]], [0, 1, 1, 1])
        report = validate_topology(t, expect_diameter=2)
        assert not report.ok

    def test_no_nodes_flagged(self):
        t = Topology("empty", [[1], [0]], [0, 0])
        report = validate_topology(t, check_diameter=False)
        assert any("no end-nodes" in p for p in report.problems)

    def test_skip_diameter(self):
        t = MLFM(3)
        report = validate_topology(t, check_diameter=False)
        assert report.diameter is None and report.ok

    def test_report_str(self):
        report = validate_topology(MLFM(3))
        assert "OK" in str(report)

    def test_isolated_router_flagged(self):
        t = Topology("iso", [[1], [0], []], [1, 1, 0])
        report = validate_topology(t, check_diameter=False,
                                   expect_uniform_radix=False)
        assert any("isolated" in p for p in report.problems)


class TestEngineLimitCombos:
    def test_until_and_max_events_together(self):
        e = Engine()
        log = []
        for i in range(10):
            e.schedule(float(i), log.append, i)
        e.run(until=6.5, max_events=3)
        assert log == [0, 1, 2]
        e.run(until=6.5)
        assert log == [0, 1, 2, 3, 4, 5, 6]
        assert e.pending == 3

    def test_run_on_empty_queue_advances_to_until(self):
        e = Engine()
        e.run(until=100.0)
        assert e.now == 100.0

    def test_clock_never_goes_backwards(self):
        e = Engine()
        e.schedule(50.0, lambda: None)
        e.run(until=100.0)
        before = e.now
        e.run(until=10.0)  # lower horizon: nothing to do, clock stays
        assert e.now >= before


class TestRouteDetails:
    def test_zero_hop_route(self):
        r = Route(routers=(3,), vcs=())
        assert r.num_hops == 0 and r.channels() == ()

    def test_null_congestion_defaults(self):
        ctx = NullCongestion()
        assert ctx.queue_len(0, 1) == 0
        assert ctx.queue_capacity() == 1


class TestTopologyMiscPaths:
    def test_sspt_custom_p(self):
        s = SSPT(4, 2, p=1)
        assert s.num_nodes == s.num_bottom

    def test_slimfly_repr(self):
        assert "SF(q=5" in repr(SlimFly(5))

    def test_expected_helpers(self):
        assert SlimFly.expected_num_routers(5) == 50
        assert SlimFly.expected_network_radix(5) == 7

    def test_max_radix_nonuniform(self):
        t = Topology("mix", [[1], [0, 2], [1]], [3, 0, 1])
        assert t.max_radix() == 4  # router 0: 1 link + 3 nodes


class TestWindowStatsRepr:
    def test_repr_contains_throughput(self):
        from repro.sim.config import PAPER_CONFIG
        from repro.sim.stats import StatsCollector

        sc = StatsCollector(2, PAPER_CONFIG)
        sc.set_window(0.0, 100.0)
        stats = sc.window_stats()
        assert "thr=" in repr(stats)
