"""Unit and property tests for the Slim Fly construction (Sec. 2.1.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.maths.galois import get_field
from repro.topology import SlimFly, slim_fly_delta, slim_fly_generator_sets, valid_slim_fly_q
from repro.topology.validate import validate_topology

QS = [4, 5, 7, 8, 9, 11]


class TestParameters:
    def test_delta_values(self):
        assert slim_fly_delta(5) == 1
        assert slim_fly_delta(13) == 1
        assert slim_fly_delta(7) == -1
        assert slim_fly_delta(11) == -1
        assert slim_fly_delta(4) == 0
        assert slim_fly_delta(8) == 0

    def test_rejects_q_mod4_eq_2(self):
        with pytest.raises(ValueError):
            slim_fly_delta(2)

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            slim_fly_delta(15)
        with pytest.raises(ValueError):
            slim_fly_delta(12)

    def test_valid_q_predicate(self):
        assert valid_slim_fly_q(5)
        assert valid_slim_fly_q(9)
        assert not valid_slim_fly_q(6)
        assert not valid_slim_fly_q(2)


class TestGeneratorSets:
    @pytest.mark.parametrize("q", QS)
    def test_sizes(self, q):
        x_set, xp_set = slim_fly_generator_sets(q)
        expected = (q - slim_fly_delta(q)) // 2
        assert len(x_set) == expected
        assert len(xp_set) == expected

    @pytest.mark.parametrize("q", QS)
    def test_symmetry(self, q):
        field = get_field(q)
        for s in slim_fly_generator_sets(q):
            assert {field.neg(v) for v in s} == s

    @pytest.mark.parametrize("q", QS)
    def test_no_zero(self, q):
        x_set, xp_set = slim_fly_generator_sets(q)
        assert 0 not in x_set and 0 not in xp_set

    def test_delta1_sets_are_qr_split(self):
        # For q = 13 (delta = +1), X is the quadratic residues.
        q = 13
        field = get_field(q)
        x_set, xp_set = slim_fly_generator_sets(q)
        qrs = {field.mul(a, a) for a in range(1, q)}
        assert x_set == qrs
        assert xp_set == set(range(1, q)) - qrs


class TestStructure:
    @pytest.mark.parametrize("q", QS)
    def test_router_count(self, q):
        assert SlimFly(q).num_routers == 2 * q * q

    @pytest.mark.parametrize("q", QS)
    def test_uniform_network_degree(self, q):
        sf = SlimFly(q)
        expected = (3 * q - slim_fly_delta(q)) // 2
        assert all(sf.degree(r) == expected for r in range(sf.num_routers))
        assert sf.network_radix == expected

    @pytest.mark.parametrize("q", QS)
    def test_diameter_two(self, q):
        assert SlimFly(q).diameter() == 2

    @pytest.mark.parametrize("q", [5, 7, 8, 9])
    def test_validates(self, q):
        report = validate_topology(SlimFly(q))
        assert report.ok, report.problems

    def test_coords_roundtrip(self, sf5):
        for r in range(sf5.num_routers):
            s, a, b = sf5.coords(r)
            assert sf5.router_id(s, a, b) == r

    def test_morphology_order(self, sf5):
        # Router (s, a, b) must have id s*q^2 + a*q + b (Sec. 4.4 order).
        q = sf5.q
        assert sf5.coords(0) == (0, 0, 0)
        assert sf5.coords(q) == (0, 1, 0)
        assert sf5.coords(q * q) == (1, 0, 0)

    def test_intra_column_edges_use_x_set(self, sf5):
        field = sf5.field
        x_set = set(sf5.generator_sets[0])
        for r in range(sf5.num_routers):
            s, a, b = sf5.coords(r)
            if s != 0:
                continue
            for n in sf5.neighbors(r):
                s2, a2, b2 = sf5.coords(n)
                if s2 == 0:
                    assert a2 == a, "subgraph-0 intra links stay in a column"
                    assert field.sub(b, b2) in x_set

    def test_inter_subgraph_edges_satisfy_line_equation(self, sf5):
        field = sf5.field
        for r in range(sf5.num_routers):
            s, x, y = sf5.coords(r)
            if s != 0:
                continue
            inter = [sf5.coords(n) for n in sf5.neighbors(r) if sf5.coords(n)[0] == 1]
            assert len(inter) == sf5.q  # one per column of subgraph 1
            for _, m, c in inter:
                assert y == field.add(field.mul(m, x), c)


class TestEndpoints:
    def test_floor_vs_ceil(self):
        floor = SlimFly(5, "floor")
        ceil = SlimFly(5, "ceil")
        assert floor.p == 3 and ceil.p == 4  # r' = 7
        assert ceil.num_nodes - floor.num_nodes == floor.num_routers

    def test_explicit_p(self):
        sf = SlimFly(5, 2)
        assert sf.p == 2 and sf.num_nodes == 100

    def test_rejects_negative_p(self):
        with pytest.raises(ValueError):
            SlimFly(5, -1)

    def test_paper_configuration_q13(self):
        # The exact configurations of Sec. 4.1.
        floor = SlimFly(13, "floor")
        assert (floor.num_nodes, floor.num_routers, floor.max_radix()) == (3042, 338, 28)
        ceil = SlimFly(13, "ceil")
        assert (ceil.num_nodes, ceil.num_routers, ceil.max_radix()) == (3380, 338, 29)

    def test_valiant_intermediates_all_routers(self, sf5):
        assert sf5.valiant_intermediates() == list(range(sf5.num_routers))

    def test_cost_rounding_example_q13(self):
        # Sec. 2.1.2's example: p=10 -> 2.9 ports/1.95 links; p=9 -> 3.11/2.05.
        ceil = SlimFly(13, "ceil")
        assert ceil.ports_per_node() == pytest.approx(2.9, abs=0.01)
        assert ceil.links_per_node() == pytest.approx(1.95, abs=0.01)
        floor = SlimFly(13, "floor")
        assert floor.ports_per_node() == pytest.approx(3.11, abs=0.01)
        assert floor.links_per_node() == pytest.approx(2.05, abs=0.01)


@given(st.sampled_from([4, 5, 7, 8, 9]))
@settings(max_examples=10, deadline=None)
def test_property_every_noncadjacent_pair_has_common_neighbor(q):
    sf = SlimFly(q)
    # Sampled pairs: all pairs is O(R^2); take a stride.
    stride = max(1, sf.num_routers // 17)
    for a in range(0, sf.num_routers, stride):
        for b in range(0, sf.num_routers, stride + 1):
            if a == b:
                continue
            assert sf.is_edge(a, b) or sf.common_neighbors(a, b)
