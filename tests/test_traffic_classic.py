"""Tests for the classic permutation suite and hotspot traffic."""

import random

import numpy as np
import pytest

from repro.analysis.linkload import channel_loads_minimal, permutation_flows, saturation_throughput
from repro.routing import IndirectRandomRouting, MinimalRouting
from repro.sim import Network
from repro.topology import SlimFly
from repro.traffic import BitComplement, BitReverse, HotspotTraffic, Tornado, Transpose


class TestBitComplement:
    def test_power_of_two_full_permutation(self):
        bc = BitComplement(16)
        dst = bc.destinations
        assert sorted(dst) == list(range(16))
        assert dst[0] == 15 and dst[5] == 10

    def test_involution(self):
        bc = BitComplement(32)
        dst = bc.destinations
        for s in range(32):
            assert dst[dst[s]] == s

    def test_partial_on_non_power_of_two(self):
        bc = BitComplement(20)  # b = 4: nodes 16..19 idle
        dst = bc.destinations
        assert all(dst[i] == -1 for i in range(16, 20))
        assert sorted(d for d in dst if d >= 0) == list(range(16))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            BitComplement(1)


class TestBitReverse:
    def test_known_values(self):
        br = BitReverse(8)
        dst = br.destinations
        # 3 bits: 001 -> 100, 011 -> 110.
        assert dst[1] == 4 and dst[3] == 6
        # Palindromic addresses are fixed points -> idle.
        assert dst[0] == -1 and dst[7] == -1

    def test_involution_on_active(self):
        br = BitReverse(64)
        dst = br.destinations
        for s in range(64):
            if dst[s] >= 0:
                assert dst[dst[s]] == s


class TestTranspose:
    def test_swap_halves(self):
        t = Transpose(16)  # 4 bits: (hi, lo) -> (lo, hi)
        dst = t.destinations
        assert dst[0b0110] == 0b1001
        # Symmetric addresses (hi == lo) are fixed points -> idle.
        assert dst[0b0101] == -1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            Transpose(3)


class TestTornado:
    def test_offset(self):
        t = Tornado(10)
        assert t.pick_destination(0, None) == 4
        assert t.pick_destination(9, None) == 3

    def test_full_permutation(self):
        t = Tornado(11)
        assert sorted(t.destinations) == list(range(11))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            Tornado(2)


class TestHotspot:
    def test_biased_toward_hotspots(self):
        h = HotspotTraffic(50, hotspots=[7], hot_fraction=0.5)
        rng = random.Random(1)
        hits = sum(1 for _ in range(4000) if h.pick_destination(0, rng) == 7)
        # ~50% direct hot traffic plus ~1/49 of the uniform remainder.
        assert 0.4 <= hits / 4000 <= 0.6

    def test_zero_fraction_is_uniform(self):
        h = HotspotTraffic(20, hotspots=[3], hot_fraction=0.0)
        rng = random.Random(2)
        counts = np.zeros(20)
        for _ in range(4000):
            counts[h.pick_destination(5, rng)] += 1
        assert counts[5] == 0
        assert counts.max() < 3 * counts[counts > 0].min()

    def test_never_self(self):
        h = HotspotTraffic(10, hotspots=[4], hot_fraction=1.0)
        rng = random.Random(3)
        for _ in range(500):
            assert h.pick_destination(4, rng) != 4

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(10, hotspots=[])
        with pytest.raises(ValueError):
            HotspotTraffic(10, hotspots=[10])
        with pytest.raises(ValueError):
            HotspotTraffic(10, hotspots=[1], hot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotTraffic(1, hotspots=[0])


class TestOnTopologies:
    def test_classic_patterns_milder_than_tailored_worst_case(self, sf5):
        # Any node-aligned permutation concentrates router traffic, but
        # the classic torus adversaries are measurably milder on the SF
        # than the tailored overlapping-routes construction (1/(2p)):
        # Tornado lands at 1/p, BitComplement at 1.5/(2p).
        wc_floor = 1.0 / (2 * sf5.p)
        for pattern_cls, factor in ((Tornado, 2.0), (BitComplement, 1.5)):
            pattern = pattern_cls(sf5.num_nodes)
            loads = channel_loads_minimal(
                sf5, permutation_flows(pattern.destinations)
            )
            sat = saturation_throughput(loads)
            assert sat == pytest.approx(factor * wc_floor, rel=0.05), pattern_cls
            assert sat < 1.0

    def test_hotspot_saturates_ejection(self, sf5):
        # All-hot traffic to one node: the hotspot's ejection link is
        # the bottleneck; aggregate throughput ~ 1/N.
        h = HotspotTraffic(sf5.num_nodes, hotspots=[0], hot_fraction=1.0)
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        stats = net.run_synthetic(h, load=0.5, warmup_ns=1500, measure_ns=5000, seed=3)
        assert stats.throughput < 0.1

    def test_tornado_simulates(self, sf5):
        net = Network(sf5, IndirectRandomRouting(sf5, seed=1))
        stats = net.run_synthetic(
            Tornado(sf5.num_nodes), load=0.3, warmup_ns=1000, measure_ns=3000, seed=3
        )
        assert stats.throughput == pytest.approx(0.3, rel=0.12)
