"""Tests for VC policies and channel-dependency-graph deadlock analysis
(Sec. 3.4) -- these are the per-instance *proofs* of the paper's claims."""

import pytest

from repro.routing.deadlock import (
    ChannelDependencyGraph,
    build_cdg_indirect,
    build_cdg_minimal,
)
from repro.routing.vc import HopIndexVC, PhaseVC, default_vc_policy
from repro.topology import MLFM, OFT, FatTree2L, HyperX2D, SlimFly


class TestVCPolicies:
    def test_hop_index_assignment(self):
        pol = HopIndexVC()
        assert pol.assign((0, 1, 2), None) == (0, 1)
        assert pol.assign((0, 1, 2, 3, 4), 2) == (0, 1, 2, 3)

    def test_hop_index_rejects_too_long(self):
        with pytest.raises(ValueError):
            HopIndexVC().assign((0, 1, 2, 3, 4, 5), None)

    def test_phase_assignment_minimal(self):
        assert PhaseVC().assign((0, 1, 2), None) == (0, 0)

    def test_phase_assignment_indirect(self):
        # 4-hop route, intermediate at position 2: VC 0,0 then 1,1.
        assert PhaseVC().assign((0, 1, 2, 3, 4), 2) == (0, 0, 1, 1)

    def test_phase_rejects_bad_intermediate(self):
        with pytest.raises(ValueError):
            PhaseVC().assign((0, 1, 2), 7)

    def test_vc_counts(self):
        assert HopIndexVC().num_vcs(False) == 2
        assert HopIndexVC().num_vcs(True) == 4
        assert PhaseVC().num_vcs(False) == 1
        assert PhaseVC().num_vcs(True) == 2

    def test_default_policy_dispatch(self, sf5, mlfm4, oft4, hyperx, ft2):
        assert isinstance(default_vc_policy(sf5), HopIndexVC)
        assert isinstance(default_vc_policy(hyperx), HopIndexVC)
        assert isinstance(default_vc_policy(mlfm4), PhaseVC)
        assert isinstance(default_vc_policy(oft4), PhaseVC)
        assert isinstance(default_vc_policy(ft2), PhaseVC)


class TestCDGPrimitives:
    def test_acyclic_empty(self):
        assert ChannelDependencyGraph().is_acyclic()

    def test_detects_two_cycle(self):
        g = ChannelDependencyGraph()
        a, b = (0, 1, 0), (1, 0, 0)
        g.add_dependency(a, b)
        g.add_dependency(b, a)
        assert not g.is_acyclic()
        cycle = g.find_cycle()
        assert cycle is not None and set(cycle) == {a, b}

    def test_chain_acyclic(self):
        g = ChannelDependencyGraph()
        g.add_route((0, 1, 2, 3), (0, 0, 0))
        assert g.is_acyclic()
        assert g.find_cycle() is None

    def test_counts(self):
        g = ChannelDependencyGraph()
        g.add_route((0, 1, 2), (0, 0))
        assert g.num_vertices == 2 and g.num_edges == 1


class TestPaperDeadlockClaims:
    """Each test proves one claim of Sec. 3.4 on a concrete instance."""

    def test_mlfm_minimal_deadlock_free_one_vc(self, mlfm4):
        cdg = build_cdg_minimal(mlfm4, PhaseVC())
        assert cdg.is_acyclic()

    def test_oft_minimal_deadlock_free_one_vc(self, oft4):
        cdg = build_cdg_minimal(oft4, PhaseVC())
        assert cdg.is_acyclic()

    def test_ft2_minimal_deadlock_free_one_vc(self, ft2):
        cdg = build_cdg_minimal(ft2, PhaseVC())
        assert cdg.is_acyclic()

    def test_mlfm_indirect_deadlock_free_two_vcs(self, mlfm4):
        cdg = build_cdg_indirect(mlfm4, PhaseVC())
        assert cdg.is_acyclic()

    def test_oft_indirect_deadlock_free_two_vcs(self, oft3):
        cdg = build_cdg_indirect(oft3, PhaseVC())
        assert cdg.is_acyclic()

    def test_mlfm_indirect_single_vc_deadlocks(self, mlfm4):
        # The negative control: without the second VC the towards/away/
        # towards/away pattern closes cycles on the CDG (Sec. 3.4).
        class OneVC(PhaseVC):
            def assign(self, routers, intermediate):
                return (0,) * (len(routers) - 1)

        cdg = build_cdg_indirect(mlfm4, OneVC())
        assert not cdg.is_acyclic()
        assert cdg.find_cycle() is not None

    def test_oft_indirect_single_vc_deadlocks(self, oft3):
        class OneVC(PhaseVC):
            def assign(self, routers, intermediate):
                return (0,) * (len(routers) - 1)

        cdg = build_cdg_indirect(oft3, OneVC())
        assert not cdg.is_acyclic()

    def test_sf_minimal_deadlock_free_two_vcs(self, sf5):
        cdg = build_cdg_minimal(sf5, HopIndexVC())
        assert cdg.is_acyclic()

    def test_sf_indirect_deadlock_free_four_vcs(self, sf5):
        cdg = build_cdg_indirect(sf5, HopIndexVC())
        assert cdg.is_acyclic()

    def test_sf_minimal_single_vc_deadlocks(self, sf5):
        # Without VCs, minimal routing over the SF's flat structure has
        # cyclic dependencies (2-hop paths cross in both directions).
        class OneVC(HopIndexVC):
            def assign(self, routers, intermediate):
                return (0,) * (len(routers) - 1)

        cdg = build_cdg_minimal(sf5, OneVC())
        assert not cdg.is_acyclic()

    def test_hyperx_minimal_two_vcs(self, hyperx):
        cdg = build_cdg_minimal(hyperx, HopIndexVC())
        assert cdg.is_acyclic()
