"""Cross-module property-based tests (hypothesis).

Randomised invariants that tie the layers together: any valid topology
parameter draw must produce a structurally sound network whose routes,
VC labels and static analyses are mutually consistent.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.linkload import channel_loads_minimal, permutation_flows
from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting
from repro.routing.paths import MinimalPaths
from repro.topology import MLFM, OFT, SSPT, HyperX2D, SlimFly
from repro.traffic import ShiftTraffic

# Strategy: topology constructors over small valid parameter spaces.
TOPOLOGY_STRATEGY = st.one_of(
    st.sampled_from([4, 5, 7, 8]).map(SlimFly),
    st.sampled_from([2, 3, 4, 5]).map(MLFM),
    st.sampled_from([3, 4]).map(OFT),
    st.sampled_from([(3, 3), (4, 4), (3, 4)]).map(lambda s: HyperX2D(*s)),
    st.sampled_from([(3, 2), (4, 2), (4, 4)]).map(lambda a: SSPT(*a)),
)


@given(TOPOLOGY_STRATEGY)
@settings(max_examples=25, deadline=None)
def test_structural_invariants(topo):
    # Node bookkeeping is consistent.
    assert sum(topo.nodes_attached(r) for r in range(topo.num_routers)) == topo.num_nodes
    for r in topo.endpoint_routers()[:5]:
        for n in topo.nodes_of(r):
            assert topo.router_of(n) == r
    # Handshake: port maps agree with adjacency.
    for r in range(0, topo.num_routers, max(1, topo.num_routers // 7)):
        for i, neighbor in enumerate(topo.neighbors(r)):
            assert topo.port(r, neighbor) == i
    # All the paper's topologies are endpoint-diameter-2.
    assert topo.endpoint_diameter() == 2
    # And cost at most ~3.5 ports / 2.5 links (SF rounding slack).
    assert topo.ports_per_node() <= 3.5
    assert topo.links_per_node() <= 2.5


@given(TOPOLOGY_STRATEGY, st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_minimal_routes_are_valid_and_minimal(topo, seed):
    mr = MinimalRouting(topo, seed=seed)
    mp = MinimalPaths(topo)
    rng = random.Random(seed)
    endpoints = topo.endpoint_routers()
    for _ in range(10):
        s = endpoints[rng.randrange(len(endpoints))]
        d = endpoints[rng.randrange(len(endpoints))]
        route = mr.route(s, d)
        # Route endpoints and edge validity.
        assert route.routers[0] == s and route.routers[-1] == d
        for u, v in route.channels():
            assert topo.is_edge(u, v)
        # Minimality.
        assert route.num_hops == mp.distance(s, d)
        # VC labels within the policy budget.
        assert len(route.vcs) == route.num_hops
        if route.vcs:
            assert max(route.vcs) < mr.num_vcs


@given(TOPOLOGY_STRATEGY, st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_indirect_routes_pass_through_intermediate(topo, seed):
    ir = IndirectRandomRouting(topo, seed=seed)
    rng = random.Random(seed)
    endpoints = topo.endpoint_routers()
    pool = set(topo.valiant_intermediates())
    for _ in range(10):
        s = endpoints[rng.randrange(len(endpoints))]
        d = endpoints[rng.randrange(len(endpoints))]
        route = ir.route(s, d)
        if s == d:
            assert route.routers == (s,)
            continue
        inter = route.routers[route.intermediate]
        assert inter in pool and inter not in (s, d)
        # VC labels never decrease along an indirect route (both the
        # hop-indexed and the phase scheme are monotone).
        assert list(route.vcs) == sorted(route.vcs)
        assert max(route.vcs) < ir.num_vcs


@given(TOPOLOGY_STRATEGY, st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_ugal_routes_structurally_sound(topo, seed):
    ug = UGALRouting(topo, seed=seed)
    rng = random.Random(seed)
    endpoints = topo.endpoint_routers()
    for _ in range(8):
        s = endpoints[rng.randrange(len(endpoints))]
        d = endpoints[rng.randrange(len(endpoints))]
        route = ug.route(s, d)
        assert route.routers[0] == s and route.routers[-1] == d
        for u, v in route.channels():
            assert topo.is_edge(u, v)


@given(TOPOLOGY_STRATEGY)
@settings(max_examples=15, deadline=None)
def test_linkload_conservation(topo):
    """Total channel load equals total (flow x hops): nothing lost."""
    if topo.num_nodes < 4:
        return
    pattern = ShiftTraffic(topo.num_nodes, topo.num_nodes // 2)
    flows = list(permutation_flows(pattern.destinations))
    loads = channel_loads_minimal(topo, flows)
    mp = MinimalPaths(topo)
    expected = 0.0
    for s, d, w in flows:
        rs, rd = topo.router_of(s), topo.router_of(d)
        if rs != rd:
            expected += w * mp.distance(rs, rd)
    assert sum(loads.values()) == pytest.approx(expected)


@given(st.sampled_from([4, 5, 7]), st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_simulation_determinism(q, seed):
    """Identical seeds produce identical simulations, bit for bit."""
    from repro.sim import Network
    from repro.traffic import UniformRandom

    results = []
    for _ in range(2):
        topo = SlimFly(q)
        net = Network(topo, MinimalRouting(topo, seed=seed))
        stats = net.run_synthetic(
            UniformRandom(topo.num_nodes), load=0.4,
            warmup_ns=300, measure_ns=1200, seed=seed,
        )
        results.append(
            (stats.throughput, stats.mean_latency_ns, stats.ejected_packets,
             net.engine.events_executed)
        )
    assert results[0] == results[1]
